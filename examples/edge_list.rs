//! Load a real edge-list graph (instead of the synthetic generator) and
//! walk it with the same polymorphic-edge machinery the GraphChi
//! workloads use: allocate one edge object per edge via SharedOA,
//! dispatch `visit()` through COAL, and run a BFS round by hand.
//!
//! ```sh
//! cargo run --release --example edge_list
//! ```

use gvf::prelude::*;
use gvf::workloads::graphchi::parse_edge_list;

fn main() {
    let g = parse_edge_list(include_str!("data/sample_graph.txt")).expect("valid sample");
    println!("loaded graph: {} vertices, {} edges", g.n, g.m());

    // Two polymorphic edge types, as in GraphChi-vE.
    let mut reg = TypeRegistry::new();
    let plain = reg.add_type("PlainEdge", 16, &[FuncId(0)]);
    let weighted = reg.add_type("WeightedEdge", 16, &[FuncId(1)]);

    let mut mem = DeviceMemory::with_capacity(32 << 20);
    let mut prog = DeviceProgram::new(&mut mem, &reg, Strategy::Coal);
    let mut alloc = SharedOa::new();
    prog.register_types(&mut alloc);

    // One edge object per edge; field 0 = dst vertex.
    let mut edge_objs = Vec::with_capacity(g.m());
    for (e, &dst) in g.out_dst.iter().enumerate() {
        let t = if e % 3 == 0 { weighted } else { plain };
        let obj = prog.construct(&mut mem, &mut alloc, t);
        mem.write_u32(obj.strip_tag().offset(prog.header_bytes()), dst)
            .unwrap();
        edge_objs.push(obj);
    }
    prog.finalize_ranges(&mut mem, &alloc);

    // One BFS frontier expansion from vertex 0: every thread takes one
    // edge, virtual-calls visit(), and collects the destination.
    let mut reachable = vec![false; g.n];
    reachable[0] = true;
    let src_of: Vec<usize> = (0..g.n)
        .flat_map(|v| std::iter::repeat_n(v, g.out_deg(v) as usize))
        .collect();
    let kernel = gvf::sim::run_kernel(&mut mem, edge_objs.len(), |w| {
        let objs = lanes_from_fn(|l| edge_objs.get(w.thread_id(l)).copied());
        let mut dsts = [None; WARP_SIZE];
        prog.vcall(w, &CallSite::new(0), &objs, |w, _fid| {
            let d = prog.ld_field(w, &objs, 0, 4);
            for l in w.active_lanes().collect::<Vec<_>>() {
                dsts[l] = d[l];
            }
            w.alu(1);
        });
        for (l, dst) in dsts.iter().enumerate() {
            let tid = w.thread_id(l);
            if let Some(d) = *dst {
                if tid < src_of.len() && src_of[tid] == 0 {
                    reachable[d as usize] = true;
                }
            }
        }
    });

    let stats = Gpu::new(GpuConfig::small()).execute(&kernel);
    let frontier: Vec<usize> = (0..g.n).filter(|&v| reachable[v]).collect();
    println!("vertices reachable from 0 in one hop: {frontier:?}");
    println!(
        "kernel: {} cycles, {} virtual calls, {} load transactions",
        stats.cycles, stats.vfunc_calls, stats.global_load_transactions
    );
    assert!(frontier.contains(&1) && frontier.contains(&2) && frontier.contains(&5));
}
