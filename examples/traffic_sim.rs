//! Drive the Nagel–Schreckenberg traffic workload (TRAF) and sweep
//! TypePointer's two tag modes (§6.2) plus the allocator-independence
//! claim (§6.1, Fig. 11).
//!
//! ```sh
//! cargo run --release --example traffic_sim
//! ```

use gvf::prelude::*;

fn main() {
    let mut cfg = WorkloadConfig::tiny();
    cfg.scale = 2;
    cfg.iterations = 4;

    let base = run_workload(WorkloadKind::Traffic, Strategy::SharedOa, &cfg);
    println!(
        "TRAF: {} objects ({} types), {} simulated iterations",
        base.table2.objects, base.table2.types, cfg.iterations
    );

    // TypePointer, offset-mode tags (default): tag = byte offset of the
    // type's vTable inside the contiguous region.
    let tp_offset = run_workload(WorkloadKind::Traffic, Strategy::TypePointerHw, &cfg);

    // Index-mode tags: tag = type index, vTables padded to uniform size.
    let mut cfg_idx = cfg.clone();
    cfg_idx.tag_mode = TagMode::Index;
    let tp_index = run_workload(WorkloadKind::Traffic, Strategy::TypePointerHw, &cfg_idx);

    // Allocator independence: TypePointer over the default CUDA heap.
    let mut cfg_cuda = cfg.clone();
    cfg_cuda.allocator_override = Some(AllocatorKind::Cuda);
    let tp_on_cuda = run_workload(WorkloadKind::Traffic, Strategy::TypePointerHw, &cfg_cuda);
    let cuda = run_workload(WorkloadKind::Traffic, Strategy::Cuda, &cfg);

    assert_eq!(base.checksum, tp_offset.checksum);
    assert_eq!(base.checksum, tp_index.checksum);
    assert_eq!(base.checksum, tp_on_cuda.checksum);
    assert_eq!(base.checksum, cuda.checksum);

    println!("\nconfiguration                       cycles   vs SharedOA");
    println!("---------------------------------------------------------");
    for (name, r) in [
        ("SharedOA (CUDA dispatch)", &base),
        ("TypePointer, offset tags", &tp_offset),
        ("TypePointer, index tags", &tp_index),
        ("TypePointer on CUDA allocator", &tp_on_cuda),
        ("CUDA (default everything)", &cuda),
    ] {
        println!(
            "{:<34} {:>8} {:>10.2}",
            name,
            r.stats.cycles,
            base.stats.cycles as f64 / r.stats.cycles as f64
        );
    }

    println!("\nAll five configurations produced identical traffic (checksums");
    println!("match); tag encoding and allocator choice affect only timing.");
}
