//! Quickstart: build a tiny polymorphic program, run it under every
//! dispatch strategy, and watch where the memory traffic goes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gvf::prelude::*;

fn main() {
    // A little zoo: two concrete types behind one virtual slot.
    let mut reg = TypeRegistry::new();
    let cat = reg.add_type("Cat", 24, &[FuncId(0)]);
    let dog = reg.add_type("Dog", 24, &[FuncId(1)]);

    println!("strategy        cycles  ld-transactions  L1-hit   meows  barks");
    println!("----------------------------------------------------------------");
    for strategy in [
        Strategy::Cuda,
        Strategy::Concord,
        Strategy::SharedOa,
        Strategy::Coal,
        Strategy::TypePointerProto,
        Strategy::TypePointerHw,
    ] {
        let mut mem = DeviceMemory::with_capacity(64 << 20);
        let mut prog = DeviceProgram::new(&mut mem, &reg, strategy);

        // Pick the allocator the paper pairs with each strategy.
        let mut alloc: Box<dyn DeviceAllocator> = match strategy.default_allocator() {
            AllocatorKind::Cuda => Box::new(CudaHeapAllocator::new()),
            AllocatorKind::SharedOa => Box::new(SharedOa::new()),
        };
        prog.register_types(alloc.as_mut());

        // 4096 pets, types interleaved as a real program would build them.
        let pets: Vec<VirtAddr> = (0..4096)
            .map(|i| prog.construct(&mut mem, alloc.as_mut(), if i % 3 == 0 { dog } else { cat }))
            .collect();
        prog.finalize_ranges(&mut mem, alloc.as_ref());

        // One kernel: every thread makes its pet speak.
        let mut meows = 0u64;
        let mut barks = 0u64;
        let kernel = run_kernel(&mut mem, pets.len(), |w| {
            let objs = lanes_from_fn(|l| pets.get(w.thread_id(l)).copied());
            prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
                let n = w.mask().count_ones() as u64;
                if fid == FuncId(0) {
                    meows += n;
                } else {
                    barks += n;
                }
                w.alu(2); // the function body
            });
        });

        let stats = Gpu::new(GpuConfig::v100_scaled(4)).execute(&kernel);
        println!(
            "{:<14} {:>7} {:>16} {:>7.1}% {:>7} {:>6}",
            strategy.label(),
            stats.cycles,
            stats.global_load_transactions,
            stats.l1_hit_rate() * 100.0,
            meows,
            barks
        );
        assert_eq!(meows + barks, 4096);
    }
    println!("\nEvery strategy dispatched the same 4096 calls; they differ only");
    println!("in how they learned each object's type (paper Fig. 1 / Table 1).");
}
