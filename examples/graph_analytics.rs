//! Run the GraphChi-style graph-analytics workloads (virtual edges, and
//! virtual edges + nodes) under the paper's dispatch strategies and
//! report the Fig. 6/8-style metrics on your machine.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use gvf::prelude::*;

fn main() {
    let mut cfg = WorkloadConfig::tiny();
    cfg.scale = 2;

    for kind in [
        WorkloadKind::VeBfs,
        WorkloadKind::VeCc,
        WorkloadKind::VePr,
        WorkloadKind::VenBfs,
        WorkloadKind::VenCc,
        WorkloadKind::VenPr,
    ] {
        let base = run_workload(kind, Strategy::SharedOa, &cfg);
        println!(
            "\n{kind}: {} objects, vFuncPKI {:.1}",
            base.table2.objects, base.table2.vfunc_pki
        );
        println!("  strategy        norm-perf  ld-transactions  L1-hit");
        for strategy in [
            Strategy::Cuda,
            Strategy::Concord,
            Strategy::SharedOa,
            Strategy::Coal,
            Strategy::TypePointerProto,
        ] {
            let r = run_workload(kind, strategy, &cfg);
            assert_eq!(r.checksum, base.checksum, "functional mismatch");
            println!(
                "  {:<14} {:>9.2} {:>16} {:>6.1}%",
                strategy.label(),
                base.stats.cycles as f64 / r.stats.cycles as f64,
                r.stats.global_load_transactions,
                r.stats.l1_hit_rate() * 100.0,
            );
        }
    }
    println!("\nvEN kernels make roughly twice the virtual calls of vE (vertices");
    println!("are polymorphic too), which is why the paper reports higher");
    println!("vFuncPKI for them (Table 2).");
}
