//! Render the RAY workload's scene and show why ray tracing is the odd
//! one out in the paper's evaluation: its virtual calls are warp-
//! converged, so COAL's heuristic leaves them uninstrumented and
//! Concord's switch is competitive (paper §8.1).
//!
//! ```sh
//! cargo run --release --example raytrace_scene
//! ```

use gvf::prelude::*;

fn main() {
    let mut cfg = WorkloadConfig::tiny();
    cfg.scale = 2;
    cfg.iterations = 1;

    println!(
        "Rendering {}x{} rays over {} polymorphic objects...\n",
        64,
        16 * cfg.scale,
        250
    );
    let mut results = Vec::new();
    for strategy in [
        Strategy::Cuda,
        Strategy::Concord,
        Strategy::SharedOa,
        Strategy::Coal,
        Strategy::TypePointerProto,
    ] {
        let r = run_workload(WorkloadKind::Raytrace, strategy, &cfg);
        results.push((strategy, r));
    }

    let base = results
        .iter()
        .find(|(s, _)| *s == Strategy::SharedOa)
        .map(|(_, r)| r.stats.cycles)
        .expect("SharedOA run");

    println!("strategy        cycles   norm-perf  vfunc-calls  checksum");
    println!("-----------------------------------------------------------");
    for (s, r) in &results {
        println!(
            "{:<14} {:>8} {:>9.2} {:>12} {:>16x}",
            s.label(),
            r.stats.cycles,
            base as f64 / r.stats.cycles as f64,
            r.stats.vfunc_calls,
            r.checksum
        );
    }
    let first = results[0].1.checksum;
    assert!(
        results.iter().all(|(_, r)| r.checksum == first),
        "images must match"
    );

    println!("\nAll five strategies rendered bit-identical images. Because every");
    println!("lane tests the SAME object per loop iteration, the vTable-pointer");
    println!("load is converged here — COAL detects this statically and falls");
    println!("back to the plain CUDA sequence (its bar ≈ SharedOA's).");
}
