//! Workspace-level integration tests: the full stack (mem → alloc →
//! core → sim → workloads) exercised through the public `gvf` API.

use gvf::prelude::*;

#[test]
fn end_to_end_quickstart_flow() {
    let mut mem = DeviceMemory::with_capacity(32 << 20);
    let mut reg = TypeRegistry::new();
    let a = reg.add_type("A", 16, &[FuncId(1)]);
    let b = reg.add_type("B", 16, &[FuncId(2)]);

    let mut prog = DeviceProgram::new(&mut mem, &reg, Strategy::Coal);
    let mut alloc = SharedOa::new();
    prog.register_types(&mut alloc);
    let objs: Vec<VirtAddr> = (0..256)
        .map(|i| prog.construct(&mut mem, &mut alloc, if i % 2 == 0 { a } else { b }))
        .collect();
    prog.finalize_ranges(&mut mem, &alloc);

    let mut calls = [0u32; 3];
    let kernel = run_kernel(&mut mem, objs.len(), |w| {
        let ptrs = lanes_from_fn(|l| objs.get(w.thread_id(l)).copied());
        prog.vcall(w, &CallSite::new(0), &ptrs, |w, fid| {
            calls[fid.0 as usize] += w.mask().count_ones();
            w.alu(1);
        });
    });
    assert_eq!(calls[1], 128);
    assert_eq!(calls[2], 128);

    let stats = Gpu::new(GpuConfig::small()).execute(&kernel);
    assert!(stats.cycles > 0);
    assert!(stats.vfunc_calls > 0);
    assert_eq!(
        stats.stall(AccessTag::VtablePtr),
        0,
        "COAL never reads the vptr"
    );
}

#[test]
fn strategies_differ_in_traffic_not_results() {
    let cfg = WorkloadConfig::tiny();
    let cuda = run_workload(WorkloadKind::Structure, Strategy::Cuda, &cfg);
    let tp = run_workload(WorkloadKind::Structure, Strategy::TypePointerHw, &cfg);
    assert_eq!(cuda.checksum, tp.checksum);
    assert!(
        tp.stats.global_load_transactions < cuda.stats.global_load_transactions,
        "TypePointer must generate less load traffic than CUDA"
    );
}

#[test]
fn sharedoa_packs_tighter_than_cuda_heap() {
    let cfg = WorkloadConfig::tiny();
    let cuda = run_workload(WorkloadKind::GameOfLife, Strategy::Cuda, &cfg);
    let soa = run_workload(WorkloadKind::GameOfLife, Strategy::SharedOa, &cfg);
    assert!(soa.alloc_stats.reserved_bytes < cuda.alloc_stats.reserved_bytes);
    assert_eq!(soa.alloc_stats.objects, cuda.alloc_stats.objects);
}

#[test]
fn init_cost_model_matches_paper_magnitude() {
    let cfg = WorkloadConfig::tiny();
    let cuda = run_workload(WorkloadKind::VeCc, Strategy::Cuda, &cfg);
    let soa = run_workload(WorkloadKind::VeCc, Strategy::SharedOa, &cfg);
    let speedup = cuda.init_cycles as f64 / soa.init_cycles as f64;
    assert!(
        (50.0..150.0).contains(&speedup),
        "paper reports ~80x, got {speedup:.0}x"
    );
}

#[test]
fn mmu_tag_mode_round_trip_through_prelude() {
    let mut mem = DeviceMemory::with_capacity(1 << 20);
    let p = mem.reserve(8, 8);
    mem.write_u64(p, 99).unwrap();
    assert!(mem.read_u64(p.with_tag(3)).is_err());
    mem.mmu_mut().set_mode(MmuMode::IgnoreTagBits);
    assert_eq!(mem.read_u64(p.with_tag(3)).unwrap(), 99);
}

#[test]
fn fig1b_shape_vtable_load_dominates() {
    // The paper's headline measurement: ~87% of CUDA dispatch latency is
    // the vTable-pointer load. Check A > 60% on a representative app.
    let cfg = WorkloadConfig::tiny();
    let r = run_workload(WorkloadKind::VenPr, Strategy::Cuda, &cfg);
    let (a, b, c) = r.stats.dispatch_latency_breakdown();
    assert!(a > 0.6, "A = {a:.2} should dominate (paper: 0.87)");
    assert!(a > b && a > c);
}

#[test]
fn fig11_shape_typepointer_helps_on_cuda_allocator() {
    let mut cfg = WorkloadConfig::tiny();
    cfg.scale = 2;
    let cuda = run_workload(WorkloadKind::VeBfs, Strategy::Cuda, &cfg);
    cfg.allocator_override = Some(AllocatorKind::Cuda);
    let tp = run_workload(WorkloadKind::VeBfs, Strategy::TypePointerHw, &cfg);
    assert_eq!(cuda.checksum, tp.checksum);
    assert!(
        tp.stats.cycles < cuda.stats.cycles,
        "TypePointer on the CUDA allocator must beat CUDA (paper: +18%)"
    );
}

#[test]
fn micro_branch_is_fastest_cuda_slowest() {
    let mut cfg = WorkloadConfig::tiny();
    cfg.iterations = 1;
    let params = MicroParams {
        n_objects: 16384,
        n_types: 4,
    };
    let branch = gvf::workloads::micro::run(Strategy::Branch, params, &cfg);
    let cuda = gvf::workloads::micro::run(Strategy::Cuda, params, &cfg);
    let tp = gvf::workloads::micro::run(Strategy::TypePointerProto, params, &cfg);
    assert!(branch.stats.cycles < tp.stats.cycles, "BRANCH is the ideal");
    assert!(
        tp.stats.cycles < cuda.stats.cycles,
        "TypePointer beats CUDA"
    );
}
