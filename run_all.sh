#!/bin/bash
# Regenerate every paper figure/table plus the test and bench suites,
# collecting a machine-readable artifact tree under results/.
#
#   ./run_all.sh [--jobs N]
#
# --jobs N is passed through to every harness binary: N concurrent
# simulations, 0 = all cores, default = all cores. Results are
# bit-identical for any value (the engine's determinism contract); only
# wall-clock changes.
#
# Artifacts: results/<bin>.json is each binary's gvf.run-manifest; fig6
# additionally records results/fig6.trace.json (Chrome trace-event /
# Perfetto timeline) and results/fig6.metrics.json (per-epoch metrics).
# Every artifact is re-parsed by the in-repo validator before the run
# counts as green.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=0
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      [ $# -ge 2 ] || { echo "error: --jobs needs a value" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    *)
      echo "error: unknown argument '$1' (usage: $0 [--jobs N])" >&2; exit 2 ;;
  esac
done

fail() {
  echo >&2
  echo "run_all.sh: FAILED at step '$1' — see output above." >&2
  echo "Re-run just that step with: $2" >&2
  exit 1
}

run_step() {
  local name="$1"; shift
  echo; echo "########## $name ##########"
  "$@" || fail "$name" "$*"
}

mkdir -p results

run_step "cargo test" cargo test --workspace 2>&1 | tee test_output.txt

{
  run_step "cargo bench" cargo bench --workspace
  echo
  echo "================================================================"
  echo "  PAPER FIGURE / TABLE HARNESS (cargo run -p gvf-bench --bin <x>)"
  echo "================================================================"
  # Every binary sweeps its grid on --jobs threads and drops its run
  # manifest into results/; fig6 also records the observability
  # artifacts from its first grid cell.
  for b in fig1b table1 table2 fig6 fig7 fig8 fig9 fig11 fig12 alloc_init fig10 ablation_lookup generations counters; do
    extra=()
    if [ "$b" = fig6 ]; then
      extra=(--trace-out results/fig6.trace.json --metrics-out results/fig6.metrics.json)
    fi
    run_step "$b" cargo run --release -p gvf-bench --bin "$b" -- \
      --jobs "$JOBS" --json-out "results/$b.json" "${extra[@]}"
  done
  run_step "validate artifacts" cargo run --release -p gvf-bench --bin validate_json -- results/*.json
} 2>&1 | tee bench_output.txt
echo ALL_DONE
