#!/bin/bash
# Regenerate every paper figure/table plus the test and bench suites.
#
#   ./run_all.sh [--jobs N]
#
# --jobs N is passed through to every harness binary that sweeps a
# simulation grid (fig6..fig12, table1, table2): N concurrent
# simulations, 0 = all cores, default = all cores. Results are
# bit-identical for any value (the engine's determinism contract); only
# wall-clock changes.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=0
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      [ $# -ge 2 ] || { echo "error: --jobs needs a value" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    *)
      echo "error: unknown argument '$1' (usage: $0 [--jobs N])" >&2; exit 2 ;;
  esac
done

fail() {
  echo >&2
  echo "run_all.sh: FAILED at step '$1' — see output above." >&2
  echo "Re-run just that step with: $2" >&2
  exit 1
}

run_step() {
  local name="$1"; shift
  echo; echo "########## $name ##########"
  "$@" || fail "$name" "$*"
}

run_step "cargo test" cargo test --workspace 2>&1 | tee test_output.txt

{
  run_step "cargo bench" cargo bench --workspace
  echo
  echo "================================================================"
  echo "  PAPER FIGURE / TABLE HARNESS (cargo run -p gvf-bench --bin <x>)"
  echo "================================================================"
  # Grid binaries take --jobs; the single-run ones (fig1b, alloc_init,
  # ablation_lookup, generations, counters) do not sweep and run as-is.
  for b in fig1b table1 table2 fig6 fig7 fig8 fig9 fig11 fig12 alloc_init fig10 ablation_lookup generations; do
    case "$b" in
      table1|table2|fig6|fig7|fig8|fig9|fig10|fig11|fig12)
        run_step "$b" cargo run --release -p gvf-bench --bin "$b" -- --jobs "$JOBS" ;;
      *)
        run_step "$b" cargo run --release -p gvf-bench --bin "$b" ;;
    esac
  done
} 2>&1 | tee bench_output.txt
echo ALL_DONE
