#!/bin/bash
set -x
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
{
  cargo bench --workspace 2>&1
  echo
  echo "================================================================"
  echo "  PAPER FIGURE / TABLE HARNESS (cargo run -p gvf-bench --bin <x>)"
  echo "================================================================"
  for b in fig1b table1 table2 fig6 fig7 fig8 fig9 fig11 fig12 alloc_init fig10 ablation_lookup generations; do
    echo; echo "########## $b ##########"
    cargo run --release -p gvf-bench --bin $b 2>/dev/null
  done
} 2>&1 | tee /root/repo/bench_output.txt
echo ALL_DONE
