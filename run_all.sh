#!/bin/bash
# Regenerate every paper figure/table plus the test and bench suites,
# collecting a machine-readable artifact tree under results/.
#
#   ./run_all.sh [--jobs N] [--out DIR] [--keep-going] [--smoke]
#                [--quiet] [--resume | --no-cache] [--samples N]
#                [--baseline DIR]
#
# --jobs N is passed through to every harness binary: N concurrent
# simulations, 0 = all cores, default = all cores. Results are
# bit-identical for any value (the engine's determinism contract); only
# wall-clock changes.
# --out DIR redirects the artifact tree (default: results/).
# --keep-going runs every step even after a failure and prints a
# failure summary at the end (exit stays non-zero) — useful for seeing
# the full damage of a broken change in one pass. Fault isolation
# inside each binary is finer still: a panicking grid cell produces a
# v2 failure manifest and a non-zero exit, without losing the other
# cells' work.
# --smoke shrinks every binary to the CI-sized config (seconds, not
# minutes) — the interrupted-run CI job uses this.
# --quiet trims the tooling chatter: perf_gate PASS/SKIP lines,
# perf_record append lines and the report progress line are silenced
# (failures still print, exit codes are unchanged).
# --resume reads completed cells back from $OUT/.cellcache/ (after an
# interrupted or failed run) instead of re-simulating; manifests come
# out byte-identical to an uninterrupted run apart from hostPerf.
# --no-cache disables the cell cache entirely.
# --samples N records N wall-clock samples per binary into the
# trajectory: after the primary sweep, each binary reruns N-1 more
# times (manifest-only, cache disabled) into $OUT/samples/, and
# perf_record folds the whole group into one median entry. Default: 3
# for benchmark-grade runs, 1 under --smoke (smoke samples never enter
# the baseline anyway).
# --baseline DIR diffs this run against a previous artifact tree: after
# validation, diffrun writes $OUT/rundiff.json (gvf.rundiff — semantic /
# performance / coverage drift, every regression attributed), the
# validator checks it, and the report renders it under "What changed
# since the baseline".
#
# Artifacts: $OUT/<bin>.json is each binary's gvf.run-manifest (with an
# embedded gvf.hostperf section), $OUT/<bin>.attrib.json its
# mechanism-attribution report (gvf.attribution), $OUT/<bin>.profile.json
# its host-side span profile (gvf.hostprofile — where the wall-clock
# time went), $OUT/<bin>.audit.json its cycle audit (gvf.cycleaudit —
# how much simulated time was skippable) and $OUT/<bin>.events.jsonl its
# live telemetry stream (gvf.events — sweep/cell lifecycle, heartbeats,
# resource samples; watch a live run with `status --follow`); fig6
# additionally records $OUT/fig6.trace.json (Chrome trace-event /
# Perfetto timeline) and $OUT/fig6.metrics.json (per-epoch metrics).
# Every artifact is re-parsed by the in-repo validator before the run
# counts as green, and each events stream is reconciled 1:1 against its
# binary's manifest.
# After the sweep, perf_gate judges the run against the recorded
# BENCH_gvf.json baseline; only a run that passes the gate is folded
# into the trajectory by perf_record (so a regressed run can never
# become part of its own — or any future — baseline). The report
# binary then collates everything into $OUT/REPORT.md.
set -euo pipefail
cd "$(dirname "$0")"

JOBS=0
OUT=results
KEEP_GOING=0
CACHE_FLAGS=()
SMOKE_FLAGS=()
QUIET_FLAGS=()
SAMPLES=""
BASELINE=""
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      [ $# -ge 2 ] || { echo "error: --jobs needs a value" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    --out)
      [ $# -ge 2 ] || { echo "error: --out needs a value" >&2; exit 2; }
      OUT="$2"; shift 2 ;;
    --samples)
      [ $# -ge 2 ] || { echo "error: --samples needs a value" >&2; exit 2; }
      SAMPLES="$2"; shift 2 ;;
    --baseline)
      [ $# -ge 2 ] || { echo "error: --baseline needs a value" >&2; exit 2; }
      BASELINE="$2"; shift 2 ;;
    --keep-going)
      KEEP_GOING=1; shift ;;
    --smoke)
      SMOKE_FLAGS=(--smoke); shift ;;
    --quiet)
      QUIET_FLAGS=(--quiet); shift ;;
    --resume)
      CACHE_FLAGS=(--resume); shift ;;
    --no-cache)
      CACHE_FLAGS=(--no-cache); shift ;;
    *)
      echo "error: unknown argument '$1' (usage: $0 [--jobs N] [--out DIR] [--keep-going] [--smoke] [--quiet] [--resume | --no-cache] [--samples N] [--baseline DIR])" >&2; exit 2 ;;
  esac
done
# Benchmark-grade (non-smoke) runs default to the trajectory's
# recommended sample count; smoke samples never enter the baseline, so
# one is enough.
if [ -z "$SAMPLES" ]; then
  if [ "${#SMOKE_FLAGS[@]}" -gt 0 ]; then SAMPLES=1; else SAMPLES=3; fi
fi

# The benchmark block below runs inside a pipe subshell (tee), so
# failures are collected in a file rather than a shell variable.
FAILURES_FILE="$(mktemp)"
trap 'rm -f "$FAILURES_FILE"' EXIT

fail() {
  echo >&2
  echo "run_all.sh: FAILED at step '$1' — see output above." >&2
  echo "Re-run just that step with: $2" >&2
  if [ "$KEEP_GOING" = 1 ]; then
    echo "$1" >> "$FAILURES_FILE"
  else
    exit 1
  fi
}

run_step() {
  local name="$1"; shift
  echo; echo "########## $name ##########"
  "$@" || fail "$name" "$*"
}

mkdir -p "$OUT"

run_step "cargo test" cargo test --workspace 2>&1 | tee test_output.txt

{
  run_step "cargo bench" cargo bench --workspace
  echo
  echo "================================================================"
  echo "  PAPER FIGURE / TABLE HARNESS (cargo run -p gvf-bench --bin <x>)"
  echo "================================================================"
  # Every binary sweeps its grid on --jobs threads and drops its run
  # manifest, mechanism-attribution report, host span profile and
  # cycle audit into $OUT/; fig6 also records the observability
  # artifacts from its first grid cell.
  for b in fig1b table1 table2 fig6 fig7 fig8 fig9 fig11 fig12 alloc_init fig10 ablation_lookup generations counters; do
    extra=()
    if [ "$b" = fig6 ]; then
      extra=(--trace-out "$OUT/fig6.trace.json" --metrics-out "$OUT/fig6.metrics.json")
    fi
    run_step "$b" cargo run --release -p gvf-bench --bin "$b" -- \
      --jobs "$JOBS" --json-out "$OUT/$b.json" \
      --attrib-out "$OUT/$b.attrib.json" \
      --profile-out "$OUT/$b.profile.json" \
      --audit-out "$OUT/$b.audit.json" \
      --events-out "$OUT/$b.events.jsonl" \
      "${SMOKE_FLAGS[@]}" "${CACHE_FLAGS[@]}" "${extra[@]}"
  done
  # Extra wall-clock samples for the trajectory: N-1 manifest-only
  # reruns per binary into $OUT/samples/ (a subdirectory, so the
  # validator glob and the report's scan of $OUT never mix them in with
  # the primary artifacts). Cache disabled — a cache-hit sample takes
  # near-zero wall time and perf_record would rightly skip it.
  if [ "$SAMPLES" -gt 1 ]; then
    mkdir -p "$OUT/samples"
    for s in $(seq 2 "$SAMPLES"); do
      for b in fig1b table1 table2 fig6 fig7 fig8 fig9 fig11 fig12 alloc_init fig10 ablation_lookup generations counters; do
        run_step "$b sample $s" cargo run --release -p gvf-bench --bin "$b" -- \
          --jobs "$JOBS" --json-out "$OUT/samples/$b.s$s.json" --no-cache \
          "${SMOKE_FLAGS[@]}"
      done
    done
  fi
  # The glob picks up every per-binary artifact family: .json manifest,
  # .attrib.json, .profile.json, .audit.json (plus fig6's trace and
  # metrics) — the validator dispatches on each file's schema header
  # and, for gvf.cycleaudit, re-checks the epoch accounting invariant.
  run_step "validate artifacts" cargo run --release -p gvf-bench --bin validate_json -- "$OUT"/*.json
  if compgen -G "$OUT/samples/*.json" > /dev/null; then
    run_step "validate samples" cargo run --release -p gvf-bench --bin validate_json -- "$OUT"/samples/*.json
  fi
  # Cell-cache entries are artifacts too: each carries a content hash
  # that the validator recomputes, so a corrupted or hand-edited entry
  # is caught here rather than silently resumed into a future manifest.
  if compgen -G "$OUT/.cellcache/*.json" > /dev/null; then
    run_step "validate cell cache" cargo run --release -p gvf-bench --bin validate_json -- "$OUT"/.cellcache/*.json
  fi
  # Telemetry streams are artifacts too: validate each against the
  # gvf.events lifecycle invariants, reconcile it 1:1 with its binary's
  # manifest, and print the status console's roll-up (also asserting
  # that `status --summary` sees a cleanly finished run).
  if compgen -G "$OUT/*.events.jsonl" > /dev/null; then
    run_step "validate events" cargo run --release -p gvf-bench --bin validate_json -- "$OUT"/*.events.jsonl
    for ev in "$OUT"/*.events.jsonl; do
      mf="${ev%.events.jsonl}.json"
      [ -f "$mf" ] || continue
      run_step "reconcile $(basename "$ev")" cargo run --release -p gvf-bench --bin validate_json -- --events-reconcile "$ev" "$mf"
    done
    run_step "status" cargo run --release -p gvf-bench --bin status -- --summary "$OUT/fig7.events.jsonl"
  fi

  # Judge this run against the recorded baseline FIRST, and fold it
  # into the trajectory only once it passes. Recording first would put
  # the gated sample inside its own baseline (with one prior entry per
  # bin the median becomes the midpoint and the gate mathematically
  # cannot fail), and appending unconditionally would let a persistent
  # regression rewrite the baseline into the new normal. A fresh
  # checkout still bootstraps cleanly: with no matching baseline the
  # gate skips (never fails) and the first recording stands it up.
  manifests=()
  for b in fig1b table1 table2 fig6 fig7 fig8 fig9 fig11 fig12 alloc_init fig10 ablation_lookup generations counters; do
    [ -f "$OUT/$b.json" ] && manifests+=("$OUT/$b.json")
  done
  if [ "${#manifests[@]}" -gt 0 ]; then
    run_step "perf_gate" cargo run --release -p gvf-bench --bin perf_gate -- "${QUIET_FLAGS[@]}" "${manifests[@]}"
    # Under --keep-going a gate failure lands in FAILURES_FILE instead
    # of exiting; either way, a run that failed the gate is not
    # recorded.
    if grep -qx "perf_gate" "$FAILURES_FILE" 2>/dev/null; then
      echo "run_all.sh: perf_gate failed — not folding this run into BENCH_gvf.json" >&2
    else
      # The extra --samples reruns join the primary manifests here;
      # perf_record groups by (generator, config) and records one
      # median entry per group.
      rec_manifests=("${manifests[@]}")
      if compgen -G "$OUT/samples/*.json" > /dev/null; then
        rec_manifests+=("$OUT"/samples/*.json)
      fi
      run_step "perf_record" cargo run --release -p gvf-bench --bin perf_record -- "${QUIET_FLAGS[@]}" "${rec_manifests[@]}"
      run_step "validate trajectory" cargo run --release -p gvf-bench --bin validate_json -- BENCH_gvf.json
    fi
  fi

  # Differential observability: diff this tree against the provided
  # baseline tree and validate the artifact. Runs before the report so
  # $OUT/rundiff.json lands in its "What changed since the baseline"
  # section.
  if [ -n "$BASELINE" ]; then
    run_step "diffrun" cargo run --release -p gvf-bench --bin diffrun -- \
      --out "$OUT/rundiff.json" "${QUIET_FLAGS[@]}" "$BASELINE" "$OUT"
    run_step "validate rundiff" cargo run --release -p gvf-bench --bin validate_json -- "$OUT/rundiff.json"
  fi

  # Collate everything into the human-readable reproduction report.
  run_step "report" cargo run --release -p gvf-bench --bin report -- --results "$OUT" "${QUIET_FLAGS[@]}"
} 2>&1 | tee bench_output.txt

if [ -s "$FAILURES_FILE" ]; then
  echo
  echo "run_all.sh: $(wc -l < "$FAILURES_FILE") step(s) FAILED:"
  sed 's/^/  - /' "$FAILURES_FILE"
  exit 1
fi
echo ALL_DONE
