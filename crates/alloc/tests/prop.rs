//! Property tests for the allocators: the invariants COAL's correctness
//! rests on (on the in-repo `gvf-prop` harness; the workspace builds
//! offline).

use gvf_alloc::{CudaHeapAllocator, DeviceAllocator, SharedOa, TypeKey};
use gvf_mem::DeviceMemory;
use gvf_prop::{gen, props, Rng};

/// 8-byte aligned object sizes, as gvf-core produces.
fn type_sizes(rng: &mut Rng) -> Vec<u64> {
    gen::vec(gen::range_u64(8, 128), 1..6)(rng)
        .into_iter()
        .map(|s| s.div_ceil(8) * 8)
        .collect()
}

/// Every pointer SharedOA hands out lies inside exactly one range of
/// the virtual range table, and that range belongs to its type.
#[test]
fn sharedoa_ranges_cover_and_type_objects() {
    props!(48, |rng| {
        let sizes = type_sizes(rng);
        let seq = gen::vec(gen::range_usize(0, 6), 1..400)(rng);
        let chunk = *rng.pick(&[4u64, 16, 64, 1024]);
        let mut mem = DeviceMemory::with_capacity(1 << 28);
        let mut soa = SharedOa::with_initial_chunk(chunk);
        for (i, &s) in sizes.iter().enumerate() {
            soa.register_type(TypeKey(i as u32), s);
        }
        let mut ptrs = Vec::new();
        for pick in seq {
            let t = TypeKey((pick % sizes.len()) as u32);
            ptrs.push((t, soa.alloc(&mut mem, t)));
        }
        let ranges = soa.ranges();
        // Ranges are disjoint and sorted.
        for w in ranges.windows(2) {
            assert!(w[0].end().canonical() <= w[1].base.canonical());
        }
        for (t, p) in ptrs {
            let hits: Vec<_> = ranges.iter().filter(|r| r.contains(p)).collect();
            assert_eq!(hits.len(), 1, "pointer covered by exactly one range");
            assert_eq!(hits[0].ty, t);
            assert_eq!(soa.type_of(p), Some(t));
        }
    });
}

/// Same-type consecutive allocations are exactly obj_size apart
/// (packing — SharedOA has no internal fragmentation).
#[test]
fn sharedoa_packs_contiguously() {
    props!(48, |rng| {
        let size = rng.range_u64(8, 256).div_ceil(8) * 8;
        let n = rng.range_usize(2, 200);
        let mut mem = DeviceMemory::with_capacity(1 << 28);
        // Chunk sized to the demand: zero external fragmentation, and
        // (always) zero internal fragmentation.
        let mut soa = SharedOa::with_initial_chunk(n as u64);
        soa.register_type(TypeKey(0), size);
        let ptrs: Vec<_> = (0..n).map(|_| soa.alloc(&mut mem, TypeKey(0))).collect();
        for w in ptrs.windows(2) {
            assert_eq!(w[1].canonical() - w[0].canonical(), size);
        }
        assert_eq!(soa.stats().external_fragmentation(), 0.0);
    });
}

/// Allocation stats are conserved: used ≤ reserved, objects counted.
#[test]
fn stats_conservation() {
    props!(48, |rng| {
        let sizes = type_sizes(rng);
        let seq = gen::vec(gen::range_usize(0, 6), 1..200)(rng);
        let mut mem = DeviceMemory::with_capacity(1 << 28);
        let mut soa = SharedOa::with_initial_chunk(32);
        let mut cuda = CudaHeapAllocator::new();
        for (i, &s) in sizes.iter().enumerate() {
            soa.register_type(TypeKey(i as u32), s);
            cuda.register_type(TypeKey(i as u32), s);
        }
        let mut expected_used = 0u64;
        for pick in &seq {
            let t = TypeKey((pick % sizes.len()) as u32);
            soa.alloc(&mut mem, t);
            cuda.alloc(&mut mem, t);
            expected_used += sizes[pick % sizes.len()];
        }
        for stats in [soa.stats(), cuda.stats()] {
            assert_eq!(stats.objects, seq.len() as u64);
            assert!(stats.used_bytes <= stats.reserved_bytes);
            assert!((0.0..=1.0).contains(&stats.external_fragmentation()));
        }
        assert_eq!(soa.stats().used_bytes, expected_used);
    });
}

/// The CUDA heap never hands out overlapping blocks, and no SharedOA
/// range ever contains a CUDA-heap pointer (different address space
/// slices of the same brk).
#[test]
fn cuda_blocks_disjoint() {
    props!(48, |rng| {
        let seq = gen::vec(gen::range_usize(0, 3), 1..200)(rng);
        let mut mem = DeviceMemory::with_capacity(1 << 28);
        let mut cuda = CudaHeapAllocator::new();
        for t in 0..3u32 {
            cuda.register_type(TypeKey(t), 24 + t as u64 * 16);
        }
        let mut ptrs = Vec::new();
        for pick in seq {
            let t = TypeKey((pick % 3) as u32);
            ptrs.push((cuda.alloc(&mut mem, t), 24 + (pick % 3) as u64 * 16));
        }
        ptrs.sort_by_key(|(p, _)| *p);
        for w in ptrs.windows(2) {
            assert!(w[0].0.canonical() + w[0].1 <= w[1].0.canonical());
        }
    });
}
