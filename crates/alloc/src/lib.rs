//! # gvf-alloc — device object allocators
//!
//! The allocation substrate for the `gvf` reproduction of *"Judging a
//! Type by Its Pointer"* (ASPLOS 2021):
//!
//! - [`CudaHeapAllocator`] models the default CUDA device heap the paper
//!   uses as its baseline: program-order placement that interleaves types
//!   plus per-allocation padding (§8.2);
//! - [`SharedOa`] is the paper's type-based **Shared Object Allocator**
//!   (§4): contiguous per-type regions sized in object counts, chunk
//!   doubling, merging of adjacent chunks, and the *virtual range table*
//!   that COAL's lookup walks.
//!
//! TypePointer's pointer tagging is applied on top of either allocator by
//! `gvf-core`, which owns the vTable layout and therefore knows each
//! type's tag value — matching the paper's claim that TypePointer is
//! allocator-independent (§6.1).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cuda;
mod sharedoa;
mod traits;

pub use cuda::CudaHeapAllocator;
pub use sharedoa::{SharedOa, TypeRegionStats};
pub use traits::{AllocStats, AllocatorKind, DeviceAllocator, TypeKey, TypeRange};
