//! SharedOA — the paper's type-based shared object allocator (§4).

use crate::traits::{AllocStats, AllocatorKind, DeviceAllocator, TypeKey, TypeRange};
use gvf_mem::{DeviceMemory, VirtAddr};
use std::collections::HashMap;

/// Read-only snapshot of one type's region accounting, as reported by
/// [`SharedOa::region_stats`] — the allocator-side evidence of the
/// attribution profiler (region growth, merging effectiveness, per-type
/// range-table size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TypeRegionStats {
    /// The type these regions hold.
    pub ty: TypeKey,
    /// Object size in bytes.
    pub obj_size: u64,
    /// Range-table entries for this type *after* merging.
    pub regions: u64,
    /// Total capacity across the type's regions, in objects.
    pub capacity_objs: u64,
    /// Objects actually allocated.
    pub used_objs: u64,
    /// Capacity of the largest single region, in objects (merging
    /// success concentrates capacity here).
    pub largest_region_objs: u64,
    /// Capacity the *next* chunk would get (the doubling cursor).
    pub next_region_objs: u64,
}

#[derive(Clone, Debug)]
struct Region {
    base: VirtAddr,
    capacity_objs: u64,
    used_objs: u64,
}

#[derive(Clone, Debug)]
struct TypeState {
    obj_size: u64,
    regions: Vec<Region>,
    next_region_objs: u64,
    /// Next free byte inside the type's current VA arena.
    arena_next: u64,
    /// One past the arena's last byte.
    arena_end: u64,
}

/// The type-based **Shared Object Allocator**.
///
/// SharedOA dedicates contiguous chunks of the unified CPU–GPU address
/// space to each object type and tracks them in a *virtual range table*
/// (paper Fig. 3). Region sizing follows §4/§5:
///
/// - regions are sized in **object counts**, not bytes, so larger objects
///   get proportionally larger chunks;
/// - the first region of a type holds
///   [`initial_chunk_objs`](Self::initial_chunk_objs) objects (default
///   4096, the paper's "4K objects");
/// - when a region fills, the next one **doubles** in capacity;
/// - a new region that starts exactly where the previous region of the
///   same type ends is **merged** into it, keeping the range table small.
///
/// To make merging effective, each type carves its chunks out of a large
/// per-type **virtual-address arena** (virtual space is plentiful in a
/// 49-bit address space and costs nothing until touched, thanks to demand
/// paging). Chunks of one type are therefore almost always contiguous and
/// collapse into a single range-table entry, which is what keeps COAL's
/// lookup tree shallow. Only *committed* chunk bytes count as reserved in
/// the fragmentation statistics (Fig. 10b), not arena address space.
///
/// Objects within a region are packed at their natural size — SharedOA
/// has no internal fragmentation (§8.2) — and
/// [`AllocStats::external_fragmentation`] reports the Fig. 10b metric.
///
/// ```
/// use gvf_alloc::{DeviceAllocator, SharedOa, TypeKey};
/// use gvf_mem::DeviceMemory;
///
/// let mut mem = DeviceMemory::with_capacity(1 << 24);
/// let mut soa = SharedOa::new();
/// soa.register_type(TypeKey(0), 48);
/// let a = soa.alloc(&mut mem, TypeKey(0));
/// let b = soa.alloc(&mut mem, TypeKey(0));
/// assert_eq!(b.canonical() - a.canonical(), 48); // same-type objects pack
/// ```
#[derive(Debug)]
pub struct SharedOa {
    types: HashMap<TypeKey, TypeState>,
    initial_chunk_objs: u64,
    merges: u64,
}

impl SharedOa {
    /// Default number of objects in a type's first region (§4: "a small
    /// region size (i.e. 4K objects)").
    pub const DEFAULT_INITIAL_CHUNK_OBJS: u64 = 4096;

    /// Creates a SharedOA with the default initial chunk size.
    pub fn new() -> Self {
        Self::with_initial_chunk(Self::DEFAULT_INITIAL_CHUNK_OBJS)
    }

    /// Creates a SharedOA whose first region per type holds
    /// `initial_chunk_objs` objects — the knob swept in Fig. 10.
    ///
    /// # Panics
    /// Panics if `initial_chunk_objs` is zero.
    pub fn with_initial_chunk(initial_chunk_objs: u64) -> Self {
        assert!(
            initial_chunk_objs > 0,
            "initial chunk must hold at least one object"
        );
        SharedOa {
            types: HashMap::new(),
            initial_chunk_objs,
            merges: 0,
        }
    }

    /// The configured initial chunk size, in objects.
    pub fn initial_chunk_objs(&self) -> u64 {
        self.initial_chunk_objs
    }

    /// How many times adjacent same-type regions were merged.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Per-type region accounting, sorted by type key — a read-only
    /// snapshot for attribution artifacts. Complements
    /// [`merges`](Self::merges): `capacity_objs` counts chunks that were
    /// merged away, `regions` counts the table entries that remain.
    pub fn region_stats(&self) -> Vec<TypeRegionStats> {
        let mut out: Vec<TypeRegionStats> = self
            .types
            .iter()
            .map(|(&ty, st)| TypeRegionStats {
                ty,
                obj_size: st.obj_size,
                regions: st.regions.len() as u64,
                capacity_objs: st.regions.iter().map(|r| r.capacity_objs).sum(),
                used_objs: st.regions.iter().map(|r| r.used_objs).sum(),
                largest_region_objs: st
                    .regions
                    .iter()
                    .map(|r| r.capacity_objs)
                    .max()
                    .unwrap_or(0),
                next_region_objs: st.next_region_objs,
            })
            .collect();
        out.sort_by_key(|s| s.ty);
        out
    }

    /// Looks up which type owns `addr`, if any (host-side use; the
    /// GPU-side equivalent is COAL's instrumented lookup in `gvf-core`).
    pub fn type_of(&self, addr: VirtAddr) -> Option<TypeKey> {
        let a = addr.canonical();
        for (&ty, st) in &self.types {
            for r in &st.regions {
                let base = r.base.canonical();
                if a >= base && a < base + r.used_objs * st.obj_size {
                    return Some(ty);
                }
            }
        }
        None
    }
}

impl Default for SharedOa {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceAllocator for SharedOa {
    fn register_type(&mut self, ty: TypeKey, obj_size: u64) {
        assert!(obj_size > 0, "zero-sized object type");
        let initial = self.initial_chunk_objs;
        let st = self.types.entry(ty).or_insert_with(|| TypeState {
            obj_size,
            regions: Vec::new(),
            next_region_objs: initial,
            arena_next: 0,
            arena_end: 0,
        });
        assert_eq!(
            st.obj_size, obj_size,
            "{ty} re-registered with a different size"
        );
    }

    fn alloc(&mut self, mem: &mut DeviceMemory, ty: TypeKey) -> VirtAddr {
        let st = self
            .types
            .get_mut(&ty)
            .unwrap_or_else(|| panic!("{ty} not registered"));
        let need_new = match st.regions.last() {
            Some(r) => r.used_objs == r.capacity_objs,
            None => true,
        };
        if need_new {
            let capacity = st.next_region_objs;
            st.next_region_objs = capacity.saturating_mul(2);
            let chunk_bytes = capacity * st.obj_size;
            // Carve the chunk from the type's VA arena; grow the arena
            // when exhausted. Generous arenas keep same-type chunks
            // contiguous so they merge (§4).
            if st.arena_next + chunk_bytes > st.arena_end {
                let arena_bytes = (chunk_bytes * 256).max(1 << 22);
                let base = mem.reserve(arena_bytes, 256);
                st.arena_next = base.canonical();
                st.arena_end = st.arena_next + arena_bytes;
            }
            let base = VirtAddr::new(st.arena_next);
            st.arena_next += chunk_bytes;
            match st.regions.last_mut() {
                Some(prev)
                    if prev.base.canonical() + prev.capacity_objs * st.obj_size
                        == base.canonical() =>
                {
                    prev.capacity_objs += capacity;
                    self.merges += 1;
                }
                _ => st.regions.push(Region {
                    base,
                    capacity_objs: capacity,
                    used_objs: 0,
                }),
            }
        }
        let r = st.regions.last_mut().expect("region exists after growth");
        let addr = r.base.offset(r.used_objs * st.obj_size);
        r.used_objs += 1;
        addr
    }

    fn ranges(&self) -> Vec<TypeRange> {
        let mut out: Vec<TypeRange> = self
            .types
            .iter()
            .flat_map(|(&ty, st)| {
                st.regions.iter().map(move |r| TypeRange {
                    ty,
                    base: r.base,
                    len: r.capacity_objs * st.obj_size,
                })
            })
            .collect();
        out.sort_by_key(|r| r.base);
        out
    }

    fn stats(&self) -> AllocStats {
        let mut s = AllocStats::default();
        for st in self.types.values() {
            for r in &st.regions {
                s.objects += r.used_objs;
                s.used_bytes += r.used_objs * st.obj_size;
                s.reserved_bytes += r.capacity_objs * st.obj_size;
                s.regions += 1;
            }
        }
        s
    }

    fn kind(&self) -> AllocatorKind {
        AllocatorKind::SharedOa
    }

    fn shared_oa(&self) -> Option<&SharedOa> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> DeviceMemory {
        DeviceMemory::with_capacity(1 << 24)
    }

    #[test]
    fn same_type_objects_are_contiguous() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(8);
        soa.register_type(TypeKey(0), 64);
        let addrs: Vec<_> = (0..8).map(|_| soa.alloc(&mut m, TypeKey(0))).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1].canonical() - w[0].canonical(), 64);
        }
    }

    #[test]
    fn doubling_region_growth_merges_within_arena() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(4);
        soa.register_type(TypeKey(0), 16);
        // Interleave another type; arenas keep each type's chunks
        // contiguous anyway, so the 4+8+16 chunks merge into one range.
        soa.register_type(TypeKey(1), 16);
        for i in 0..28 {
            soa.alloc(&mut m, TypeKey(0));
            if i % 4 == 0 {
                soa.alloc(&mut m, TypeKey(1));
            }
        }
        let ranges: Vec<_> = soa
            .ranges()
            .into_iter()
            .filter(|r| r.ty == TypeKey(0))
            .collect();
        assert_eq!(ranges.len(), 1, "chunks in one arena merge");
        assert_eq!(ranges[0].len / 16, 4 + 8 + 16);
        assert!(soa.merges() >= 2, "type 0's doubled chunks must merge");
    }

    #[test]
    fn contiguous_chunks_merge() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(4);
        soa.register_type(TypeKey(0), 64);
        // Only this type allocates ⇒ chunks are brk-adjacent ⇒ merged.
        for _ in 0..64 {
            soa.alloc(&mut m, TypeKey(0));
        }
        assert_eq!(soa.ranges().len(), 1, "adjacent regions should merge");
        assert!(soa.merges() > 0);
    }

    #[test]
    fn range_table_covers_all_objects() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(4);
        soa.register_type(TypeKey(0), 48);
        soa.register_type(TypeKey(1), 32);
        let mut ptrs = Vec::new();
        for i in 0..50 {
            let ty = TypeKey((i % 2) as u32);
            ptrs.push((ty, soa.alloc(&mut m, ty)));
        }
        let ranges = soa.ranges();
        for (ty, p) in ptrs {
            let owner = ranges.iter().find(|r| r.contains(p)).expect("covered");
            assert_eq!(owner.ty, ty);
            assert_eq!(soa.type_of(p), Some(ty));
        }
    }

    #[test]
    fn ranges_are_disjoint_and_sorted() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(4);
        for t in 0..5u32 {
            soa.register_type(TypeKey(t), 24 + t as u64 * 8);
        }
        for i in 0..200u32 {
            soa.alloc(&mut m, TypeKey(i % 5));
        }
        let ranges = soa.ranges();
        for w in ranges.windows(2) {
            assert!(w[0].end().canonical() <= w[1].base.canonical());
        }
    }

    #[test]
    fn fragmentation_grows_with_initial_chunk() {
        let frag_for = |chunk: u64| {
            let mut m = mem();
            let mut soa = SharedOa::with_initial_chunk(chunk);
            soa.register_type(TypeKey(0), 64);
            for _ in 0..100 {
                soa.alloc(&mut m, TypeKey(0));
            }
            soa.stats().external_fragmentation()
        };
        assert!(frag_for(4096) > frag_for(16));
    }

    #[test]
    fn no_internal_fragmentation() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(10);
        soa.register_type(TypeKey(0), 40);
        for _ in 0..10 {
            soa.alloc(&mut m, TypeKey(0));
        }
        let s = soa.stats();
        assert_eq!(s.used_bytes, 400);
        assert_eq!(s.reserved_bytes, 400);
        assert_eq!(s.external_fragmentation(), 0.0);
    }

    #[test]
    fn type_of_unknown_address() {
        let soa = SharedOa::new();
        assert_eq!(soa.type_of(VirtAddr::new(0x1234)), None);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn alloc_unregistered_panics() {
        let mut m = mem();
        SharedOa::new().alloc(&mut m, TypeKey(3));
    }

    #[test]
    fn region_stats_track_merge_accounting_across_growth() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(4);
        soa.register_type(TypeKey(0), 16);
        let st0 = soa.region_stats()[0];
        assert_eq!((st0.regions, st0.capacity_objs), (0, 0), "no chunk yet");
        assert_eq!(st0.next_region_objs, 4, "first grab is the initial chunk");
        // 28 objects force three chunk grabs (4 + 8 + 16); arenas keep
        // them adjacent, so grabs 2 and 3 each merge into the first.
        for i in 1..=28u64 {
            soa.alloc(&mut m, TypeKey(0));
            let st = &soa.region_stats()[0];
            assert_eq!(st.used_objs, i, "every alloc is accounted");
            // Capacity after k chunk grabs is 4(2^k - 1); every grab
            // beyond the first merged, so merges = k - 1.
            let chunks = (st.capacity_objs / 4 + 1).trailing_zeros() as u64;
            assert_eq!(
                soa.merges(),
                chunks - 1,
                "every grab after the first merges"
            );
        }
        let st = soa.region_stats()[0];
        assert_eq!(st.ty, TypeKey(0));
        assert_eq!(st.obj_size, 16);
        assert_eq!(st.regions, 1, "merging keeps one table entry");
        assert_eq!(st.capacity_objs, 4 + 8 + 16);
        assert_eq!(st.used_objs, 28);
        assert_eq!(st.largest_region_objs, 28, "merges concentrate capacity");
        assert_eq!(st.next_region_objs, 32, "doubling cursor past 16");
        assert_eq!(soa.merges(), 2);
        assert_eq!(soa.stats().regions, st.regions, "views agree");
    }

    #[test]
    fn region_stats_sorted_by_type() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(4);
        for t in [3u32, 0, 7] {
            soa.register_type(TypeKey(t), 32);
            soa.alloc(&mut m, TypeKey(t));
        }
        let tys: Vec<_> = soa.region_stats().iter().map(|s| s.ty).collect();
        assert_eq!(tys, vec![TypeKey(0), TypeKey(3), TypeKey(7)]);
    }

    #[test]
    fn type_of_unmapped_address_stays_none() {
        let mut m = mem();
        let mut soa = SharedOa::with_initial_chunk(4);
        soa.register_type(TypeKey(0), 64);
        let mut last = soa.alloc(&mut m, TypeKey(0));
        for _ in 0..2 {
            last = soa.alloc(&mut m, TypeKey(0));
        }
        assert_eq!(soa.type_of(last), Some(TypeKey(0)));
        // One past the last live object: inside the region's reserved
        // capacity but never allocated ("freed"/unmapped slot) — must
        // not be attributed to the type.
        assert_eq!(soa.type_of(last.offset(64)), None);
        // Far past the region, inside the type's VA arena.
        assert_eq!(soa.type_of(last.offset(64 * 100)), None);
        // Just below the region's base.
        let first = soa.region_stats()[0];
        assert_eq!(first.used_objs, 3);
        assert_eq!(soa.type_of(VirtAddr::new(last.canonical() - 3 * 64)), None);
    }
}
