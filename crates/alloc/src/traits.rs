//! The device-allocator abstraction shared by all allocation strategies.

use gvf_mem::{DeviceMemory, VirtAddr};
use std::fmt;

/// Opaque key identifying an object type to the allocator.
///
/// The allocator does not know about vTables or inheritance — that is
/// `gvf-core`'s job. It only needs a stable key and an object size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeKey(pub u32);

impl fmt::Display for TypeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

/// One contiguous address range holding objects of a single type —
/// a row of the paper's *virtual range table* (Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TypeRange {
    /// The type whose objects live in this range.
    pub ty: TypeKey,
    /// First byte of the range.
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

impl TypeRange {
    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        self.base.offset(self.len)
    }

    /// Whether `addr` (canonical) falls inside this range.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        let a = addr.canonical();
        a >= self.base.canonical() && a < self.base.canonical() + self.len
    }
}

/// Aggregate allocator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Objects allocated.
    pub objects: u64,
    /// Bytes occupied by live objects (including per-object headers and
    /// allocator padding attributable to the object).
    pub used_bytes: u64,
    /// Bytes reserved from the address space (regions / heap growth).
    pub reserved_bytes: u64,
    /// Number of distinct regions (range-table entries for SharedOA).
    pub regions: u64,
}

impl AllocStats {
    /// External fragmentation: the fraction of reserved bytes not
    /// occupied by live objects (`0` when nothing is reserved).
    ///
    /// This is the metric swept in the paper's Fig. 10b.
    pub fn external_fragmentation(&self) -> f64 {
        if self.reserved_bytes == 0 {
            0.0
        } else {
            1.0 - self.used_bytes as f64 / self.reserved_bytes as f64
        }
    }
}

/// Which allocator implementation is in use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// The default CUDA device heap (baseline).
    Cuda,
    /// The paper's type-based Shared Object Allocator (§4).
    SharedOa,
}

impl AllocatorKind {
    /// Modeled cost, in GPU-equivalent cycles, of allocating and
    /// initializing **one object** during the setup phase.
    ///
    /// The paper reports SharedOA's host-side initialization beating
    /// device-side CUDA `new` by a geomean of **80×** (§8.2): device
    /// `malloc` serializes thousands of threads on a global heap lock,
    /// while SharedOA bump-allocates from the host. These constants model
    /// that measurement for the `alloc_init` harness; they do not affect
    /// kernel timing.
    pub fn init_cycles_per_object(self) -> u64 {
        match self {
            AllocatorKind::Cuda => 2400,
            AllocatorKind::SharedOa => 30,
        }
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocatorKind::Cuda => f.write_str("CUDA"),
            AllocatorKind::SharedOa => f.write_str("SharedOA"),
        }
    }
}

/// A device object allocator.
///
/// Implementations place objects in the simulated [`DeviceMemory`]
/// address space; they never write object *contents* (constructors in
/// `gvf-core` do that).
pub trait DeviceAllocator: fmt::Debug {
    /// Declares a type and its object size (bytes, header included).
    /// Must be called before the first [`alloc`](Self::alloc) of that
    /// type; idempotent if repeated with the same size.
    ///
    /// # Panics
    /// Implementations panic if a type is re-registered with a different
    /// size.
    fn register_type(&mut self, ty: TypeKey, obj_size: u64);

    /// Allocates one object of `ty`, returning its (untagged) address.
    ///
    /// # Panics
    /// Panics if `ty` was never registered or the address space is
    /// exhausted.
    fn alloc(&mut self, mem: &mut DeviceMemory, ty: TypeKey) -> VirtAddr;

    /// The current virtual range table: one entry per contiguous
    /// same-type region. The baseline CUDA allocator returns an empty
    /// table (it keeps no per-type ranges — precisely its problem).
    fn ranges(&self) -> Vec<TypeRange>;

    /// Aggregate statistics.
    fn stats(&self) -> AllocStats;

    /// Which allocator this is.
    fn kind(&self) -> AllocatorKind;

    /// The SharedOA introspection surface, when this allocator is one.
    /// Defaults to `None` (the CUDA baseline keeps no per-type state
    /// worth attributing). Lets harness code reach
    /// [`SharedOa::region_stats`](crate::SharedOa::region_stats)
    /// through a `Box<dyn DeviceAllocator>` without downcasting.
    fn shared_oa(&self) -> Option<&crate::SharedOa> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains() {
        let r = TypeRange {
            ty: TypeKey(1),
            base: VirtAddr::new(0x1000),
            len: 0x100,
        };
        assert!(r.contains(VirtAddr::new(0x1000)));
        assert!(r.contains(VirtAddr::new(0x10ff)));
        assert!(!r.contains(VirtAddr::new(0x1100)));
        assert!(!r.contains(VirtAddr::new(0xfff)));
        // Tag bits must not affect membership.
        assert!(r.contains(VirtAddr::new(0x1080).with_tag(42)));
    }

    #[test]
    fn fragmentation_math() {
        let s = AllocStats {
            objects: 10,
            used_bytes: 750,
            reserved_bytes: 1000,
            regions: 1,
        };
        assert!((s.external_fragmentation() - 0.25).abs() < 1e-9);
        assert_eq!(AllocStats::default().external_fragmentation(), 0.0);
    }

    #[test]
    fn init_cost_gap_is_large() {
        let cuda = AllocatorKind::Cuda.init_cycles_per_object();
        let soa = AllocatorKind::SharedOa.init_cycles_per_object();
        assert!(cuda / soa >= 50, "paper reports ~80x");
    }
}
