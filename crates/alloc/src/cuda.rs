//! The baseline CUDA-like device heap.

use crate::traits::{AllocStats, AllocatorKind, DeviceAllocator, TypeKey, TypeRange};
use gvf_mem::{DeviceMemory, VirtAddr};
use std::collections::HashMap;

/// A model of the default CUDA device heap.
///
/// The paper observes (§8.2) that the (undocumented) CUDA allocator
/// "does not allocate objects of the same type consecutively and adds
/// additional padding between allocated objects". This model reproduces
/// both properties:
///
/// - allocations are served in **program order** from a single bump
///   heap, so interleaved construction of different types interleaves
///   them in memory;
/// - every allocation carries a 16-byte heap header and is rounded up to
///   a 64-byte granule, the padding behaviour visible on silicon.
///
/// The result is exactly the pathology SharedOA fixes: neighbouring
/// threads touching same-type objects hit scattered, padded addresses.
#[derive(Debug)]
pub struct CudaHeapAllocator {
    sizes: HashMap<TypeKey, u64>,
    stats: AllocStats,
}

impl CudaHeapAllocator {
    /// Per-allocation metadata header (bytes).
    pub const HEADER_BYTES: u64 = 16;
    /// Allocation granule: every block is rounded up to this (bytes).
    pub const GRANULE_BYTES: u64 = 64;

    /// Creates an empty heap.
    pub fn new() -> Self {
        CudaHeapAllocator {
            sizes: HashMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// The gross block size for an object of `obj_size` bytes.
    pub fn block_size(obj_size: u64) -> u64 {
        let gross = obj_size + Self::HEADER_BYTES;
        gross.div_ceil(Self::GRANULE_BYTES) * Self::GRANULE_BYTES
    }
}

impl Default for CudaHeapAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceAllocator for CudaHeapAllocator {
    fn register_type(&mut self, ty: TypeKey, obj_size: u64) {
        assert!(obj_size > 0, "zero-sized object type");
        if let Some(&prev) = self.sizes.get(&ty) {
            assert_eq!(prev, obj_size, "{ty} re-registered with a different size");
        }
        self.sizes.insert(ty, obj_size);
    }

    fn alloc(&mut self, mem: &mut DeviceMemory, ty: TypeKey) -> VirtAddr {
        let size = *self
            .sizes
            .get(&ty)
            .unwrap_or_else(|| panic!("{ty} not registered"));
        let block = Self::block_size(size);
        let base = mem.reserve(block, Self::GRANULE_BYTES);
        self.stats.objects += 1;
        self.stats.used_bytes += size;
        self.stats.reserved_bytes += block;
        self.stats.regions = 1;
        // Objects start after the heap header.
        base.offset(Self::HEADER_BYTES)
    }

    fn ranges(&self) -> Vec<TypeRange> {
        Vec::new()
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }

    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Cuda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaves_types_in_allocation_order() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let mut a = CudaHeapAllocator::new();
        a.register_type(TypeKey(0), 40);
        a.register_type(TypeKey(1), 40);
        let p0 = a.alloc(&mut mem, TypeKey(0));
        let p1 = a.alloc(&mut mem, TypeKey(1));
        let p2 = a.alloc(&mut mem, TypeKey(0));
        assert!(p0 < p1 && p1 < p2, "program-order placement");
        // Same-type objects are NOT adjacent: a different-type block sits
        // between them.
        assert!(p2.canonical() - p0.canonical() >= 2 * CudaHeapAllocator::block_size(40));
    }

    #[test]
    fn padding_inflates_footprint() {
        assert_eq!(CudaHeapAllocator::block_size(40), 64);
        assert_eq!(CudaHeapAllocator::block_size(120), 192);
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let mut a = CudaHeapAllocator::new();
        a.register_type(TypeKey(0), 40);
        for _ in 0..10 {
            a.alloc(&mut mem, TypeKey(0));
        }
        let s = a.stats();
        assert_eq!(s.objects, 10);
        assert_eq!(s.used_bytes, 400);
        assert_eq!(s.reserved_bytes, 640);
    }

    #[test]
    fn no_range_table() {
        let a = CudaHeapAllocator::new();
        assert!(a.ranges().is_empty());
        assert_eq!(a.kind(), AllocatorKind::Cuda);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn alloc_unregistered_panics() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        CudaHeapAllocator::new().alloc(&mut mem, TypeKey(9));
    }

    #[test]
    #[should_panic(expected = "different size")]
    fn size_conflict_panics() {
        let mut a = CudaHeapAllocator::new();
        a.register_type(TypeKey(0), 40);
        a.register_type(TypeKey(0), 48);
    }
}
