//! Criterion: raw simulator throughput — how fast `gvf-sim` replays
//! traces (host instructions per simulated warp instruction). Useful
//! when judging how large a `--scale` is affordable.

use gvf_bench::harness::{BenchmarkId, Criterion, Throughput};
use gvf_bench::{criterion_group, criterion_main};
use gvf_sim::{AccessTag, Gpu, GpuConfig, KernelTrace, MemOp, Op, Space, WarpTrace};

fn synthetic_kernel(warps: usize, ops_per_warp: usize) -> KernelTrace {
    let mk_warp = |wi: usize| {
        let mut w = WarpTrace::new();
        for k in 0..ops_per_warp {
            match k % 4 {
                0 => w.push(Op::Alu(3)),
                1 => {
                    let addrs: Vec<u64> = (0..32)
                        .map(|l| ((wi * ops_per_warp + k) * 32 + l) as u64 * 32)
                        .collect();
                    w.push(Op::Mem(MemOp {
                        space: Space::Global,
                        is_store: false,
                        width: 8,
                        mask: u32::MAX,
                        addrs: addrs.into(),
                        tag: AccessTag::Field,
                    }));
                }
                2 => w.push(Op::Branch),
                _ => w.push(Op::Mem(MemOp {
                    space: Space::Global,
                    is_store: true,
                    width: 4,
                    mask: u32::MAX,
                    addrs: (0..32u64)
                        .map(|l| 0x80_0000 + l * 4)
                        .collect::<Vec<u64>>()
                        .into(),
                    tag: AccessTag::Other,
                })),
            }
        }
        w
    };
    KernelTrace {
        warps: (0..warps).map(mk_warp).collect(),
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_replay");
    for warps in [64usize, 512] {
        let kernel = synthetic_kernel(warps, 64);
        let instrs = kernel.dyn_instrs();
        group.throughput(Throughput::Elements(instrs));
        group.bench_with_input(BenchmarkId::new("v100_scaled8", warps), &kernel, |b, k| {
            let gpu = Gpu::new(GpuConfig::v100_scaled(8));
            b.iter(|| gpu.execute(k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
