//! Criterion ablation: COAL's segment tree vs a linear range scan
//! (the design choice of paper §5 / Algorithm 1 — `O(log K)` lookups).
//! Measures both host-side lookup throughput and the emitted device
//! instruction counts as the range count grows.

use gvf_bench::harness::{BenchmarkId, Criterion};
use gvf_bench::{criterion_group, criterion_main};
use gvf_core::{LinearRangeTable, ResolvedRange, SegmentTree};
use gvf_mem::{DeviceMemory, VirtAddr};
use gvf_sim::{lanes_from_fn, run_kernel};

fn ranges(k: usize) -> Vec<ResolvedRange> {
    (0..k)
        .map(|i| ResolvedRange {
            lo: (i as u64 + 1) * 0x10000,
            hi: (i as u64 + 1) * 0x10000 + 0x8000,
            vtable: VirtAddr::new(0x100 + i as u64 * 16),
        })
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_lookup");
    for k in [4usize, 16, 64, 256] {
        let rs = ranges(k);
        let mut mem = DeviceMemory::with_capacity(16 << 20);
        let tree = SegmentTree::build(&mut mem, &rs);
        let linear = LinearRangeTable::build(&mut mem, &rs);
        let probes: Vec<VirtAddr> = (0..1024)
            .map(|i| VirtAddr::new((i % k as u64 + 1) * 0x10000 + (i * 8) % 0x8000))
            .collect();

        group.bench_with_input(BenchmarkId::new("segment_tree", k), &k, |b, _| {
            b.iter(|| {
                probes
                    .iter()
                    .map(|&p| tree.lookup(p))
                    .filter(Option::is_some)
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", k), &k, |b, _| {
            b.iter(|| {
                probes
                    .iter()
                    .map(|&p| linear.lookup(p))
                    .filter(Option::is_some)
                    .count()
            })
        });
    }
    group.finish();

    // Device-side instruction-count ablation.
    println!("\nemitted device mem-ops per warp lookup (tree vs linear):");
    for k in [4usize, 16, 64, 256] {
        let rs = ranges(k);
        let mut mem = DeviceMemory::with_capacity(16 << 20);
        let tree = SegmentTree::build(&mut mem, &rs);
        let linear = LinearRangeTable::build(&mut mem, &rs);
        let worst = VirtAddr::new(k as u64 * 0x10000 + 4); // last range
        let objs = lanes_from_fn(|_| Some(worst));
        let kt = run_kernel(&mut mem, 32, |w| {
            tree.emit_walk(w, &objs);
        });
        let kl = run_kernel(&mut mem, 32, |w| {
            linear.emit_scan(w, &objs);
        });
        println!(
            "  K={k:>3}: tree {} ops (depth {}), linear {} ops",
            kt.dyn_instrs(),
            tree.depth(),
            kl.dyn_instrs()
        );
    }
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
