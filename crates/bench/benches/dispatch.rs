//! Criterion: per-strategy virtual-dispatch cost on the §8.3
//! microbenchmark, in *simulated GPU cycles per call* (reported via
//! wall-time of the whole simulation; the printed custom metric is the
//! interesting one — see the `fig6`/`fig12` harness binaries for the
//! paper-format numbers).

use gvf_bench::harness::{BenchmarkId, Criterion};
use gvf_bench::{criterion_group, criterion_main};
use gvf_core::Strategy;
use gvf_workloads::{micro, MicroParams, WorkloadConfig};

fn bench_dispatch(c: &mut Criterion) {
    let mut cfg = WorkloadConfig::tiny();
    cfg.iterations = 1;
    let params = MicroParams {
        n_objects: 8192,
        n_types: 4,
    };

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    for strategy in [
        Strategy::Branch,
        Strategy::Cuda,
        Strategy::Concord,
        Strategy::SharedOa,
        Strategy::Coal,
        Strategy::TypePointerProto,
        Strategy::TypePointerHw,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &s| b.iter(|| micro::run(s, params, &cfg)),
        );
    }
    group.finish();

    // Print the simulated-cycle comparison once, for the record.
    println!("\nsimulated cycles per 8192 calls (4 types):");
    for strategy in [
        Strategy::Branch,
        Strategy::Cuda,
        Strategy::Coal,
        Strategy::TypePointerHw,
    ] {
        let r = micro::run(strategy, params, &cfg);
        println!("  {:<16} {:>9}", strategy.label(), r.stats.cycles);
    }
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
