//! Criterion mirror of the Fig. 6 harness at reduced size: end-to-end
//! workload simulation per strategy (GOL and vE-BFS as representatives
//! of the model-simulation and graph-analytics suites).

use gvf_bench::harness::{BenchmarkId, Criterion};
use gvf_bench::{criterion_group, criterion_main};
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadConfig, WorkloadKind};

fn bench_fig6(c: &mut Criterion) {
    let mut cfg = WorkloadConfig::tiny();
    cfg.iterations = 1;

    for kind in [WorkloadKind::GameOfLife, WorkloadKind::VeBfs] {
        let mut group = c.benchmark_group(format!("fig6/{kind}"));
        group.sample_size(10);
        for strategy in Strategy::EVALUATED {
            group.bench_with_input(
                BenchmarkId::from_parameter(strategy.label()),
                &strategy,
                |b, &s| b.iter(|| run_workload(kind, s, &cfg)),
            );
        }
        group.finish();

        // Simulated-cycle record for the bench log.
        let base = run_workload(kind, Strategy::SharedOa, &cfg);
        println!("\n{kind} simulated cycles (normalized to SharedOA):");
        for strategy in Strategy::EVALUATED {
            let r = run_workload(kind, strategy, &cfg);
            println!(
                "  {:<14} {:>9} ({:.2})",
                strategy.label(),
                r.stats.cycles,
                base.stats.cycles as f64 / r.stats.cycles as f64
            );
        }
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
