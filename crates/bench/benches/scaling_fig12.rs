//! Criterion mirror of Fig. 12a at reduced size: microbenchmark object
//! scaling for BRANCH / CUDA / COAL / TypePointer.

use gvf_bench::harness::{BenchmarkId, Criterion};
use gvf_bench::{criterion_group, criterion_main};
use gvf_core::Strategy;
use gvf_workloads::{micro, MicroParams, WorkloadConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut cfg = WorkloadConfig::tiny();
    cfg.iterations = 1;

    let mut group = c.benchmark_group("fig12a");
    group.sample_size(10);
    for objects in [4096usize, 16384, 65536] {
        for strategy in [
            Strategy::Branch,
            Strategy::Cuda,
            Strategy::Coal,
            Strategy::TypePointerProto,
        ] {
            let params = MicroParams {
                n_objects: objects,
                n_types: 4,
            };
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), objects),
                &(strategy, params),
                |b, &(s, p)| b.iter(|| micro::run(s, p, &cfg)),
            );
        }
    }
    group.finish();

    println!("\nsimulated cycles, normalized to BRANCH at each size:");
    for objects in [4096usize, 16384, 65536] {
        let params = MicroParams {
            n_objects: objects,
            n_types: 4,
        };
        let base = micro::run(Strategy::Branch, params, &cfg).stats.cycles as f64;
        print!("  {objects:>6} objs:");
        for strategy in [
            Strategy::Branch,
            Strategy::Cuda,
            Strategy::Coal,
            Strategy::TypePointerProto,
        ] {
            let r = micro::run(strategy, params, &cfg);
            print!(
                "  {}={:.1}x",
                strategy.label(),
                r.stats.cycles as f64 / base
            );
        }
        println!();
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
