//! Criterion: allocator throughput and packing — CudaHeap vs SharedOA
//! (the §8.2 comparison's host-side component), plus the chunk-size
//! sensitivity that drives Fig. 10.

use gvf_alloc::{CudaHeapAllocator, DeviceAllocator, SharedOa, TypeKey};
use gvf_bench::harness::{BenchmarkId, Criterion};
use gvf_bench::{criterion_group, criterion_main};
use gvf_mem::DeviceMemory;

const N: u32 = 20_000;

fn alloc_n(alloc: &mut dyn DeviceAllocator) {
    let mut mem = DeviceMemory::with_capacity(256 << 20);
    for t in 0..4u32 {
        alloc.register_type(TypeKey(t), 32 + t as u64 * 8);
    }
    for i in 0..N {
        alloc.alloc(&mut mem, TypeKey(i % 4));
    }
}

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocators");
    group.sample_size(20);
    group.bench_function("cuda_heap/20k", |b| {
        b.iter(|| alloc_n(&mut CudaHeapAllocator::new()))
    });
    group.bench_function("sharedoa/20k", |b| b.iter(|| alloc_n(&mut SharedOa::new())));
    for chunk in [256u64, 4096, 65536] {
        group.bench_with_input(
            BenchmarkId::new("sharedoa_chunk", chunk),
            &chunk,
            |b, &chunk| b.iter(|| alloc_n(&mut SharedOa::with_initial_chunk(chunk))),
        );
    }
    group.finish();

    // Packing report (Fig. 10b flavour).
    let mut soa = SharedOa::new();
    alloc_n(&mut soa);
    let mut cuda = CudaHeapAllocator::new();
    alloc_n(&mut cuda);
    println!("\npacking after 20k mixed allocations:");
    println!(
        "  CudaHeap: reserved {} B for {} B live ({:.0}% overhead)",
        cuda.stats().reserved_bytes,
        cuda.stats().used_bytes,
        cuda.stats().external_fragmentation() * 100.0
    );
    println!(
        "  SharedOA: reserved {} B for {} B live ({:.0}% fragmentation), {} ranges",
        soa.stats().reserved_bytes,
        soa.stats().used_bytes,
        soa.stats().external_fragmentation() * 100.0,
        soa.ranges().len()
    );
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
