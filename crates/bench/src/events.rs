//! Live run telemetry: the `gvf.events` v1 structured event stream,
//! flight recorder and stall watchdog.
//!
//! Every other observability layer in this repo (probes, `hostPerf`,
//! spans, the cycle audit) is post-hoc — artifacts written after the
//! sweep. This module emits machine-readable telemetry **while** a
//! sweep runs:
//!
//! - an append-only JSONL stream (`--events-out`): one compact JSON
//!   object per line, flushed per event, so a killed run leaves a valid
//!   prefix (crash-safe at line granularity);
//! - sweep lifecycle (`runStart` with the config-grid fingerprint,
//!   `sweepStart`/`sweepEnd`, throttled `progress` with ETA) and
//!   per-cell lifecycle (`cellScheduled`/`cellStarted` and exactly one
//!   terminal `cellFinished`/`cellCacheHit`/`cellFailed` per started
//!   cell, each carrying worker id, queue wait and duration);
//! - periodic `resource` samples (RSS + CPU from `/proc`, span-registry
//!   deltas) and `stall` diagnostics from a watchdog thread that flags
//!   any in-flight cell exceeding `--stall-factor` × the rolling
//!   upper-quartile non-cached cell time ([`stall_baseline_ms`]),
//!   attaching every thread's current span stack
//!   ([`gvf_sim::spans::live_stacks`]) and the engine's global progress
//!   counters ([`gvf_sim::progress`]);
//! - a bounded in-memory ring of the last [`FLIGHT_RECORDER_EVENTS`]
//!   events that doubles as a **flight recorder**: when a cell panics,
//!   the ring is snapshotted and embedded in the failure manifest's
//!   entry for that cell, so dead cells carry their surrounding context
//!   even when no `--events-out` was given.
//!
//! The stderr progress heartbeat that used to live in
//! [`crate::sweep::run_cells`] is reimplemented here as one *consumer*
//! of the in-process event dispatch (the JSONL sink is another, only
//! attached when `--events-out` is given). The resumed-run ETA skew is
//! fixed at the same time: cache-hit cells complete in microseconds, so
//! folding them into the rate made `--resume` ETAs wildly optimistic —
//! [`eta_seconds`] extrapolates from **non-cached** completions only.
//!
//! Like `hostPerf`, everything here is host-side wall-clock data: it
//! never touches stdout, never feeds back into simulated timing, and
//! the events file is excluded from the determinism view by
//! construction (a separate artifact, not a manifest section). With
//! `--events-out` off, the only residual work is the in-process
//! dispatch (counter updates plus the ring) at per-cell granularity.

use crate::json::Json;
use gvf_sim::CellObservation;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::Write;
use std::sync::{Mutex, OnceLock};

/// Schema identifier of the events stream.
pub const EVENTS_SCHEMA: &str = crate::schemas::EVENTS.id;
/// Current schema version.
pub const EVENTS_SCHEMA_VERSION: u32 = crate::schemas::EVENTS.version;

/// Flight-recorder depth: how many trailing events are embedded into a
/// dead cell's failure-manifest entry.
pub const FLIGHT_RECORDER_EVENTS: usize = 32;

/// Default `--stall-factor`: an in-flight cell is flagged once it
/// exceeds this multiple of the rolling upper-quartile non-cached cell
/// time ([`stall_baseline_ms`]).
pub const DEFAULT_STALL_FACTOR: f64 = 8.0;

/// Minimum milliseconds between progress heartbeats (same throttle the
/// pre-events stderr heartbeat used).
const HEARTBEAT_MS: u64 = 1000;
/// Watchdog wake-up period.
const WATCHDOG_TICK_MS: u64 = 250;
/// Minimum milliseconds between `resource` samples.
const RESOURCE_SAMPLE_MS: u64 = 1000;
/// Completed non-cached cells needed before the stall baseline is
/// meaningful.
const STALL_MIN_SAMPLES: usize = 3;
/// Floor on the stall threshold, so millisecond-scale smoke cells do
/// not trip the watchdog on scheduling jitter.
const STALL_MIN_THRESHOLD_MS: u64 = 100;

/// Run-scoped header data for the `runStart` event.
#[derive(Clone, Debug)]
pub struct RunInfo {
    /// Binary name (the generator).
    pub bin: String,
    /// Config-grid fingerprint (see
    /// [`crate::cellcache::config_fingerprint`]).
    pub fingerprint: String,
    /// Requested `--jobs` value.
    pub jobs: usize,
    /// Whether `--smoke` shrank the config.
    pub smoke: bool,
    /// The stall watchdog's threshold multiple.
    pub stall_factor: f64,
}

struct SweepState {
    label: String,
    total: usize,
    quiet: bool,
    start_ms: u64,
    done: usize,
    cached: usize,
    failed: Vec<usize>,
    /// Completions that actually simulated (not cache hits, not
    /// panics) — the only population the ETA extrapolates from.
    noncached_done: usize,
    /// Durations of those completions, for the stall baseline.
    durations_ms: Vec<u64>,
    /// Cells whose closure reported a cache hit (key by cell), consumed
    /// when the pool reports the cell finished.
    pending_hits: HashMap<usize, String>,
    /// In-flight cells: cell → (worker, started-at ms).
    inflight: HashMap<usize, (usize, u64)>,
    /// Cells already flagged by the watchdog (one `stall` event each).
    stalled: HashSet<usize>,
    last_beat_ms: u64,
}

#[derive(Default)]
struct Inner {
    sink: Option<std::fs::File>,
    stall_factor: f64,
    ring: VecDeque<Json>,
    /// Flight-recorder snapshots: (sweep label, cell) → last-K events
    /// at the moment the cell's failure was dispatched.
    flight: HashMap<(String, usize), Vec<Json>>,
    active: Option<SweepState>,
    run_ended: bool,
    last_resource_ms: u64,
    last_span_paths: u64,
    last_span_ns: u64,
}

fn inner() -> &'static Mutex<Inner> {
    static LOG: OnceLock<Mutex<Inner>> = OnceLock::new();
    LOG.get_or_init(|| {
        Mutex::new(Inner {
            stall_factor: DEFAULT_STALL_FACTOR,
            ..Inner::default()
        })
    })
}

/// Milliseconds since [`gvf_sim::hostperf::process_start`] — every
/// event's `tMs`. One monotonic clock, so each thread's events carry
/// non-decreasing timestamps (the per-worker monotonicity invariant).
fn now_ms() -> u64 {
    gvf_sim::hostperf::elapsed_ns() / 1_000_000
}

fn event(ev: &str, t_ms: u64) -> Json {
    Json::obj()
        .with("ev", Json::str(ev))
        .with("tMs", Json::num_u64(t_ms))
}

/// Appends one event to every consumer: the bounded ring (always) and
/// the JSONL sink (when installed), flushed so a crash never loses
/// acknowledged lines. `stderr_line` is the heartbeat consumer's
/// rendering, already quiet-filtered by the caller.
fn dispatch(inner: &mut Inner, e: Json, stderr_line: Option<String>) {
    if inner.ring.len() >= FLIGHT_RECORDER_EVENTS {
        inner.ring.pop_front();
    }
    inner.ring.push_back(e.clone());
    if let Some(sink) = &mut inner.sink {
        let mut line = e.render_compact();
        line.push('\n');
        // A failed write degrades telemetry, never the run.
        let _ = sink.write_all(line.as_bytes()).and_then(|_| sink.flush());
    }
    if let Some(line) = stderr_line {
        eprintln!("{line}");
    }
}

/// Installs the JSONL sink at `path`, writes the `runStart` header
/// event, enables span live-stack publishing and engine progress
/// counters (the stall watchdog's data sources) and spawns the watchdog
/// thread. Called once from flag parsing when `--events-out` is given;
/// exits non-zero on an unwritable path (fatal misuse, like an
/// unwritable `--json-out`).
pub fn init(path: &str, run: &RunInfo) {
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot create events file {path}: {e}");
            std::process::exit(1);
        }
    };
    gvf_sim::spans::enable_live_stacks();
    gvf_sim::progress::enable();
    {
        let mut inner = inner().lock().expect("events mutex");
        inner.sink = Some(file);
        inner.stall_factor = run.stall_factor;
        let e = Json::obj()
            .with("schema", Json::str(EVENTS_SCHEMA))
            .with("version", Json::num_u64(EVENTS_SCHEMA_VERSION as u64))
            .with("ev", Json::str("runStart"))
            .with("tMs", Json::num_u64(now_ms()))
            .with("bin", Json::str(&run.bin))
            .with("configFingerprint", Json::str(&run.fingerprint))
            .with("jobs", Json::num_u64(run.jobs as u64))
            .with("smoke", Json::Bool(run.smoke))
            .with("stallFactor", Json::Num(run.stall_factor));
        dispatch(&mut inner, e, None);
    }
    std::thread::Builder::new()
        .name("events-watchdog".into())
        .spawn(watchdog_loop)
        .expect("spawn events watchdog");
}

/// Whether a JSONL sink is installed (used by tests and the watchdog).
pub fn sink_installed() -> bool {
    inner().lock().expect("events mutex").sink.is_some()
}

/// Opens a sweep: emits `sweepStart` plus one `cellScheduled` per grid
/// cell. Called by [`crate::sweep::run_cells`] before the pool starts.
pub fn sweep_start(label: &str, total: usize, jobs: usize, quiet: bool) {
    let mut inner = inner().lock().expect("events mutex");
    let t = now_ms();
    let e = event("sweepStart", t)
        .with("sweep", Json::str(label))
        .with("cells", Json::num_u64(total as u64))
        .with("jobs", Json::num_u64(jobs as u64));
    dispatch(&mut inner, e, None);
    for cell in 0..total {
        let e = event("cellScheduled", t)
            .with("sweep", Json::str(label))
            .with("cell", Json::num_u64(cell as u64));
        dispatch(&mut inner, e, None);
    }
    inner.active = Some(SweepState {
        label: label.to_string(),
        total,
        quiet,
        start_ms: t,
        done: 0,
        cached: 0,
        failed: Vec::new(),
        noncached_done: 0,
        durations_ms: Vec::new(),
        pending_hits: HashMap::new(),
        inflight: HashMap::new(),
        stalled: HashSet::new(),
        last_beat_ms: 0,
    });
}

/// A pool worker picked up a cell (fires on that worker's thread).
pub fn cell_started(cell: usize, worker: usize) {
    let mut inner = inner().lock().expect("events mutex");
    let t = now_ms();
    let Some(sweep) = inner.active.as_mut() else {
        return;
    };
    sweep.inflight.insert(cell, (worker, t));
    let label = sweep.label.clone();
    let e = event("cellStarted", t)
        .with("sweep", Json::str(label))
        .with("cell", Json::num_u64(cell as u64))
        .with("worker", Json::num_u64(worker as u64));
    dispatch(&mut inner, e, None);
}

/// The cell cache satisfied this cell from disk (called by
/// [`crate::cellcache::CellCache::run`] on the worker thread, mid-cell).
/// The terminal event becomes `cellCacheHit` instead of `cellFinished`
/// when the pool reports the cell done.
pub fn note_cache_hit(cell: usize, key: &str) {
    let mut inner = inner().lock().expect("events mutex");
    if let Some(sweep) = inner.active.as_mut() {
        sweep.pending_hits.insert(cell, key.to_string());
    }
}

/// A cell completed (fires on its worker's thread): emits the terminal
/// `cellFinished`/`cellCacheHit`/`cellFailed` event, snapshots the
/// flight recorder on failure, and drives the heartbeat consumer
/// (throttled `progress` events; the completion beat always fires).
pub fn cell_done(obs: &CellObservation, done: usize, total: usize) {
    let mut inner = inner().lock().expect("events mutex");
    let t = now_ms();
    let Some(sweep) = inner.active.as_mut() else {
        return;
    };
    sweep.inflight.remove(&obs.index);
    sweep.done = sweep.done.max(done);
    let label = sweep.label.clone();
    let duration_ms = obs.busy_ns / 1_000_000;
    let queue_wait_ms = obs.queue_wait_ns / 1_000_000;
    let base = |ev: &str| {
        event(ev, t)
            .with("sweep", Json::str(&label))
            .with("cell", Json::num_u64(obs.index as u64))
            .with("worker", Json::num_u64(obs.worker as u64))
            .with("durationMs", Json::num_u64(duration_ms))
            .with("queueWaitMs", Json::num_u64(queue_wait_ms))
    };
    let hit = sweep.pending_hits.remove(&obs.index);
    let failed = obs.panic.is_some();
    let e = if let Some(payload) = &obs.panic {
        sweep.failed.push(obs.index);
        base("cellFailed").with("panic", Json::str(payload))
    } else if let Some(key) = hit {
        sweep.cached += 1;
        base("cellCacheHit").with("key", Json::str(key))
    } else {
        sweep.noncached_done += 1;
        sweep.durations_ms.push(duration_ms);
        base("cellFinished")
    };
    dispatch(&mut inner, e, None);
    if failed {
        // Snapshot the ring (which now ends with the cellFailed event)
        // for the failure manifest's flightRecorder section.
        let snapshot: Vec<Json> = inner.ring.iter().cloned().collect();
        inner.flight.insert((label.clone(), obs.index), snapshot);
    }
    // Heartbeat consumer: throttled progress events; the completion
    // beat is unconditional (the last cell must never be swallowed).
    let Some(sweep) = inner.active.as_mut() else {
        return;
    };
    let elapsed_ms = t.saturating_sub(sweep.start_ms);
    if !heartbeat_due(done, total, elapsed_ms, sweep.last_beat_ms) {
        return;
    }
    sweep.last_beat_ms = elapsed_ms;
    let eta = eta_seconds(
        sweep.noncached_done,
        done,
        total,
        elapsed_ms as f64 / 1000.0,
    );
    let quiet = sweep.quiet;
    let e = event("progress", t)
        .with("sweep", Json::str(&label))
        .with("done", Json::num_u64(done as u64))
        .with("total", Json::num_u64(total as u64))
        .with("etaS", eta.map(Json::Num).unwrap_or(Json::Null));
    let line = if quiet {
        None
    } else if done == total {
        Some(format!("[{label}] {done}/{total} cells"))
    } else {
        match eta {
            Some(eta) => Some(format!("[{label}] {done}/{total} cells, ETA {eta:.0}s")),
            None => Some(format!("[{label}] {done}/{total} cells")),
        }
    };
    dispatch(&mut inner, e, line);
}

/// Closes the active sweep with a `sweepEnd` carrying the terminal
/// counts and wall time.
pub fn sweep_end(label: &str) {
    let mut inner = inner().lock().expect("events mutex");
    let t = now_ms();
    let Some(sweep) = inner.active.take() else {
        return;
    };
    let e = event("sweepEnd", t)
        .with("sweep", Json::str(label))
        .with("cells", Json::num_u64(sweep.total as u64))
        .with("finished", Json::num_u64(sweep.noncached_done as u64))
        .with("cached", Json::num_u64(sweep.cached as u64))
        .with("failed", Json::num_u64(sweep.failed.len() as u64))
        .with("wallMs", Json::num_u64(t.saturating_sub(sweep.start_ms)));
    dispatch(&mut inner, e, None);
}

/// Closes the stream with a `runEnd` (`status` is `"ok"` or
/// `"failed"`). Idempotent: only the first call emits, so the failure
/// path and the regular emission path cannot double-close.
pub fn run_end(status: &str) {
    let mut inner = inner().lock().expect("events mutex");
    if inner.run_ended {
        return;
    }
    inner.run_ended = true;
    let e = event("runEnd", now_ms()).with("status", Json::str(status));
    dispatch(&mut inner, e, None);
}

/// The flight-recorder snapshot taken when `(sweep, cell)` failed: the
/// last [`FLIGHT_RECORDER_EVENTS`] events up to and including its
/// `cellFailed`. `None` when the cell did not fail under an active
/// sweep.
pub fn flight_recorder(label: &str, cell: usize) -> Option<Vec<Json>> {
    let inner = inner().lock().expect("events mutex");
    inner.flight.get(&(label.to_string(), cell)).cloned()
}

/// The worker id and queue-wait recorded for a failed cell's terminal
/// event, for the failure manifest (`None` when the cell was not
/// observed failing).
pub fn failed_cell_runtime(label: &str, cell: usize) -> Option<(u64, u64)> {
    let inner = inner().lock().expect("events mutex");
    let events = inner.flight.get(&(label.to_string(), cell))?;
    let last = events.last()?;
    let num = |k: &str| last.get(k).and_then(Json::as_num).map(|n| n as u64);
    Some((num("worker")?, num("queueWaitMs")?))
}

/// Whether a progress line should be considered at all: the completion
/// beat (`done == total`) is always due — the throttle used to swallow
/// it when the last cell landed inside the window — and intermediate
/// beats are due once the window has elapsed.
fn heartbeat_due(done: usize, total: usize, elapsed_ms: u64, prev_beat_ms: u64) -> bool {
    done == total || elapsed_ms >= prev_beat_ms + HEARTBEAT_MS
}

/// Remaining-time estimate from **non-cached** completions only.
///
/// The resumed-run skew this fixes: a `--resume` sweep satisfies most
/// cells from the cache in microseconds; dividing wall time by *all*
/// completions then predicts the remaining (to-be-simulated) cells at
/// cache-hit speed, which is wildly optimistic. Extrapolating the rate
/// from cells that actually simulated is conservative instead — if some
/// remaining cells turn out to be cached too, the sweep finishes early,
/// never late. With zero cache hits this is exactly the old
/// `elapsed / done × remaining`.
///
/// `None` when there is nothing to extrapolate from (no non-cached
/// completion yet, or no measurable elapsed time).
pub fn eta_seconds(
    noncached_done: usize,
    done: usize,
    total: usize,
    elapsed_s: f64,
) -> Option<f64> {
    if noncached_done == 0 || elapsed_s <= 0.0 {
        return None;
    }
    Some(elapsed_s / noncached_done as f64 * total.saturating_sub(done) as f64)
}

/// The watchdog thread: wakes every [`WATCHDOG_TICK_MS`], samples host
/// resources on a [`RESOURCE_SAMPLE_MS`] cadence, and flags in-flight
/// cells exceeding `stall_factor` × the rolling upper-quartile
/// non-cached cell time (each cell at most once). Runs for the life of the process —
/// the sink is flushed per line, so dying with the process loses
/// nothing.
fn watchdog_loop() {
    loop {
        std::thread::sleep(std::time::Duration::from_millis(WATCHDOG_TICK_MS));
        watchdog_tick();
    }
}

fn watchdog_tick() {
    let t = now_ms();
    let mut guard = inner().lock().expect("events mutex");
    let inner = &mut *guard;
    // Periodic resource sample: RSS + CPU from /proc, span-registry
    // deltas since the previous sample.
    if t.saturating_sub(inner.last_resource_ms) >= RESOURCE_SAMPLE_MS {
        inner.last_resource_ms = t;
        let spans = gvf_sim::spans::snapshot();
        let span_paths = spans.len() as u64;
        let span_ns: u64 = spans.iter().map(|s| s.total_ns).sum();
        let mut e = event("resource", t);
        match current_rss_bytes() {
            Some(rss) => e.set("rssBytes", Json::num_u64(rss)),
            None => e.set("rssBytes", Json::Null),
        };
        match cpu_time_ms() {
            Some(cpu) => e.set("cpuMs", Json::num_u64(cpu)),
            None => e.set("cpuMs", Json::Null),
        };
        e.set(
            "spans",
            Json::obj()
                .with("paths", Json::num_u64(span_paths))
                .with(
                    "newPaths",
                    Json::num_u64(span_paths.saturating_sub(inner.last_span_paths)),
                )
                .with(
                    "deltaNs",
                    Json::num_u64(span_ns.saturating_sub(inner.last_span_ns)),
                ),
        );
        inner.last_span_paths = span_paths;
        inner.last_span_ns = span_ns;
        dispatch(inner, e, None);
    }
    // Stall scan.
    let Some(sweep) = inner.active.as_mut() else {
        return;
    };
    if sweep.durations_ms.len() < STALL_MIN_SAMPLES {
        return;
    }
    let baseline_ms = stall_baseline_ms(&sweep.durations_ms);
    let threshold_ms =
        ((inner.stall_factor * baseline_ms as f64) as u64).max(STALL_MIN_THRESHOLD_MS);
    let label = sweep.label.clone();
    let quiet = sweep.quiet;
    let factor = inner.stall_factor;
    let stuck: Vec<(usize, usize, u64)> = sweep
        .inflight
        .iter()
        .filter(|(cell, (_, started))| {
            t.saturating_sub(*started) > threshold_ms && !sweep.stalled.contains(cell)
        })
        .map(|(cell, (worker, started))| (*cell, *worker, t.saturating_sub(*started)))
        .collect();
    for (cell, _, _) in &stuck {
        sweep.stalled.insert(*cell);
    }
    for (cell, worker, elapsed_ms) in stuck {
        let stacks: Vec<Json> = gvf_sim::spans::live_stacks()
            .into_iter()
            .map(|(thread, path)| {
                Json::obj()
                    .with("thread", Json::str(thread))
                    .with("path", Json::str(path))
            })
            .collect();
        let engine = gvf_sim::progress::snapshot();
        let e = event("stall", t)
            .with("sweep", Json::str(&label))
            .with("cell", Json::num_u64(cell as u64))
            .with("worker", Json::num_u64(worker as u64))
            .with("elapsedMs", Json::num_u64(elapsed_ms))
            .with("baselineMs", Json::num_u64(baseline_ms))
            .with("factor", Json::Num(factor))
            .with(
                "engine",
                Json::obj()
                    .with("epochs", Json::num_u64(engine.epochs))
                    .with("cycles", Json::num_u64(engine.cycles))
                    .with("kernels", Json::num_u64(engine.kernels)),
            )
            .with("stacks", Json::Arr(stacks));
        let line = (!quiet).then(|| {
            format!(
                "[{label}] cell {cell} on worker {worker} stalled: {:.1}s vs baseline {:.1}s",
                elapsed_ms as f64 / 1000.0,
                baseline_ms as f64 / 1000.0,
            )
        });
        dispatch(inner, e, line);
    }
}

/// The stall baseline: the **upper quartile** of completed non-cached
/// cell durations, not the median. With fast-forward on, a sweep's cell
/// durations are bimodal — quiet-heavy configs skip their idle epochs
/// and finish several times faster than busy configs of the same shape.
/// A plain median can land in the fast mode and flag every healthy
/// slow-mode cell as stalled; the upper quartile tracks the slow mode,
/// so only cells abnormal *for the slow mode* trip the watchdog.
fn stall_baseline_ms(durations_ms: &[u64]) -> u64 {
    debug_assert!(!durations_ms.is_empty());
    let mut sorted = durations_ms.to_vec();
    sorted.sort_unstable();
    sorted[((sorted.len() * 3) / 4).min(sorted.len() - 1)]
}

/// Current resident set size in bytes (`VmRSS` from
/// `/proc/self/status`; `VmHWM` is the *peak*, which `hostPerf` already
/// reports — the live sampler wants the current value).
fn current_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_kb_line(&status, "VmRSS:")
}

fn parse_kb_line(status: &str, key: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kb: u64 = line
        .trim_start_matches(key)
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Cumulative user+system CPU time of this process in milliseconds,
/// from `/proc/self/stat` fields 14/15 (`utime`/`stime`, in clock
/// ticks; `_SC_CLK_TCK` is 100 on every Linux we target).
fn cpu_time_ms() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    parse_cpu_ticks(&stat).map(|ticks| ticks * 10)
}

/// Parses `utime + stime` (clock ticks) out of a `/proc/<pid>/stat`
/// line; the comm field may contain spaces, so fields are counted from
/// the closing paren.
fn parse_cpu_ticks(stat: &str) -> Option<u64> {
    let rest = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // `rest` starts at field 3 (state), so utime/stime (fields 14/15)
    // are at offsets 11/12.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

// ---------------------------------------------------------------------
// Stream parsing, validation, reconciliation — shared by the `status`
// binary, `validate_json` and `report`.
// ---------------------------------------------------------------------

/// Parses a JSONL events stream into one [`Json`] per line. A torn
/// **final** line (a writer killed mid-`write`) is dropped — crash
/// safety is at line granularity — but any earlier unparsable line is
/// an error.
pub fn parse_stream(text: &str) -> Result<Vec<Json>, String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut events = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match Json::parse(line) {
            Ok(e) => events.push(e),
            Err(err) if i + 1 == lines.len() => {
                let _ = err; // torn final line: the crash-safe contract
                break;
            }
            Err(err) => return Err(format!("line {}: {err}", i + 1)),
        }
    }
    Ok(events)
}

/// Per-sweep roll-up of a validated stream.
#[derive(Clone, Debug, Default)]
pub struct SweepSummary {
    /// Sweep label.
    pub label: String,
    /// Grid cells announced by `sweepStart`.
    pub total: usize,
    /// Cells that finished by simulating.
    pub finished: Vec<usize>,
    /// Cells satisfied from the cell cache.
    pub cached: Vec<usize>,
    /// Cells that died.
    pub failed: Vec<usize>,
    /// Cells started but never terminated (only legal in a truncated
    /// stream).
    pub in_flight: Vec<usize>,
    /// Stall diagnostics emitted for this sweep.
    pub stalls: usize,
    /// Wall time from `sweepEnd`, when the sweep closed.
    pub wall_ms: Option<u64>,
    /// Whether `sweepEnd` was seen.
    pub ended: bool,
    /// Per-worker busy milliseconds (summed terminal `durationMs`).
    pub worker_busy_ms: BTreeMap<u64, u64>,
}

impl SweepSummary {
    /// Cells with exactly one terminal event.
    pub fn terminals(&self) -> usize {
        self.finished.len() + self.cached.len() + self.failed.len()
    }
}

/// Whole-stream roll-up produced by [`validate_stream`].
#[derive(Clone, Debug, Default)]
pub struct StreamSummary {
    /// Generator binary from `runStart`.
    pub bin: String,
    /// Config-grid fingerprint from `runStart`.
    pub fingerprint: String,
    /// `--jobs` from `runStart`.
    pub jobs: u64,
    /// Sweeps in stream order.
    pub sweeps: Vec<SweepSummary>,
    /// `runEnd` status, `None` for a truncated (interrupted) stream.
    pub run_status: Option<String>,
    /// `resource` samples seen.
    pub resource_samples: usize,
    /// Last sampled RSS, if any sample carried one.
    pub last_rss_bytes: Option<u64>,
    /// Last sampled cumulative CPU time, if any.
    pub last_cpu_ms: Option<u64>,
    /// Timestamp of the last event.
    pub last_t_ms: u64,
}

fn field_u64(e: &Json, k: &str) -> Result<u64, String> {
    e.get(k)
        .and_then(Json::as_num)
        .map(|n| n as u64)
        .ok_or_else(|| format!("missing numeric {k:?}"))
}

fn field_str<'j>(e: &'j Json, k: &str) -> Result<&'j str, String> {
    e.get(k)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string {k:?}"))
}

/// Validates a parsed `gvf.events` stream against the v1 lifecycle
/// invariants and returns its roll-up:
///
/// - the first event is `runStart` with this schema (version ≤ current);
/// - every event has a known `ev` and a numeric `tMs`;
/// - timestamps are non-decreasing **per worker** within a sweep;
/// - per sweep: `cellScheduled` covers exactly `0..cells`, every
///   terminal cell was `cellStarted` first, and no cell has more than
///   one terminal event;
/// - once a sweep has ended (`sweepEnd`) every started cell must have
///   terminated in exactly one of finished/cacheHit/failed, and the
///   `sweepEnd` counts must match; a **truncated** stream (interrupted
///   run: no `sweepEnd`/`runEnd`) may leave cells in flight;
/// - `runEnd` appears at most once, last.
pub fn validate_stream(events: &[Json]) -> Result<StreamSummary, String> {
    let Some(first) = events.first() else {
        return Err("empty stream".into());
    };
    if first.get("schema").and_then(Json::as_str) != Some(EVENTS_SCHEMA) {
        return Err(format!(
            "first event is not a {EVENTS_SCHEMA:?} runStart header"
        ));
    }
    let version = field_u64(first, "version")? as u32;
    if version == 0 || version > EVENTS_SCHEMA_VERSION {
        return Err(format!(
            "events version {version} (validator knows 1..={EVENTS_SCHEMA_VERSION})"
        ));
    }
    if field_str(first, "ev")? != "runStart" {
        return Err("stream does not begin with runStart".into());
    }
    let mut summary = StreamSummary {
        bin: field_str(first, "bin")?.to_string(),
        fingerprint: field_str(first, "configFingerprint")?.to_string(),
        jobs: field_u64(first, "jobs")?,
        ..StreamSummary::default()
    };

    struct OpenSweep {
        summary: SweepSummary,
        scheduled: HashSet<usize>,
        started: HashMap<usize, u64>, // cell -> worker
        terminated: HashSet<usize>,
        worker_last_t: HashMap<u64, u64>,
    }
    let mut open: Option<OpenSweep> = None;
    let mut ended_run = false;

    let close_sweep = |open: &mut Option<OpenSweep>,
                       summary: &mut StreamSummary,
                       truncated: bool|
     -> Result<(), String> {
        let Some(mut s) = open.take() else {
            return Ok(());
        };
        let label = s.summary.label.clone();
        let mut in_flight: Vec<usize> = s
            .started
            .keys()
            .filter(|c| !s.terminated.contains(c))
            .copied()
            .collect();
        in_flight.sort_unstable();
        if !truncated && !in_flight.is_empty() {
            return Err(format!(
                "sweep {label:?}: started cells {in_flight:?} never terminated"
            ));
        }
        if !truncated && s.summary.terminals() != s.summary.total {
            return Err(format!(
                "sweep {label:?}: {} terminal cells for {} scheduled",
                s.summary.terminals(),
                s.summary.total
            ));
        }
        s.summary.in_flight = in_flight;
        summary.sweeps.push(s.summary);
        Ok(())
    };

    for (i, e) in events.iter().enumerate().skip(1) {
        let at = |msg: String| format!("event {}: {msg}", i + 1);
        let ev = field_str(e, "ev").map_err(&at)?;
        let t = field_u64(e, "tMs").map_err(&at)?;
        summary.last_t_ms = summary.last_t_ms.max(t);
        if ended_run {
            return Err(at(format!("{ev:?} after runEnd")));
        }
        match ev {
            "runStart" => return Err(at("second runStart".into())),
            "sweepStart" => {
                close_sweep(&mut open, &mut summary, true).map_err(&at)?;
                open = Some(OpenSweep {
                    summary: SweepSummary {
                        label: field_str(e, "sweep").map_err(&at)?.to_string(),
                        total: field_u64(e, "cells").map_err(&at)? as usize,
                        ..SweepSummary::default()
                    },
                    scheduled: HashSet::new(),
                    started: HashMap::new(),
                    terminated: HashSet::new(),
                    worker_last_t: HashMap::new(),
                });
            }
            "cellScheduled" => {
                let s = open.as_mut().ok_or_else(|| at("no open sweep".into()))?;
                let cell = field_u64(e, "cell").map_err(&at)? as usize;
                if cell >= s.summary.total || !s.scheduled.insert(cell) {
                    return Err(at(format!("cell {cell} scheduled out of range or twice")));
                }
            }
            "cellStarted" | "cellFinished" | "cellCacheHit" | "cellFailed" => {
                let s = open.as_mut().ok_or_else(|| at("no open sweep".into()))?;
                let cell = field_u64(e, "cell").map_err(&at)? as usize;
                let worker = field_u64(e, "worker").map_err(&at)?;
                if !s.scheduled.contains(&cell) {
                    return Err(at(format!("cell {cell} was never scheduled")));
                }
                let last = s.worker_last_t.entry(worker).or_insert(0);
                if t < *last {
                    return Err(at(format!(
                        "worker {worker} timestamps go backwards ({t} < {last})"
                    )));
                }
                *last = t;
                if ev == "cellStarted" {
                    if s.started.insert(cell, worker).is_some() {
                        return Err(at(format!("cell {cell} started twice")));
                    }
                } else {
                    if !s.started.contains_key(&cell) {
                        return Err(at(format!("{ev} for cell {cell} that never started")));
                    }
                    if !s.terminated.insert(cell) {
                        return Err(at(format!("cell {cell} has more than one terminal event")));
                    }
                    let duration = field_u64(e, "durationMs").map_err(&at)?;
                    *s.summary.worker_busy_ms.entry(worker).or_insert(0) += duration;
                    match ev {
                        "cellFinished" => s.summary.finished.push(cell),
                        "cellCacheHit" => {
                            field_str(e, "key").map_err(&at)?;
                            s.summary.cached.push(cell);
                        }
                        _ => {
                            field_str(e, "panic").map_err(&at)?;
                            s.summary.failed.push(cell);
                        }
                    }
                }
            }
            "progress" => {
                let s = open.as_mut().ok_or_else(|| at("no open sweep".into()))?;
                let done = field_u64(e, "done").map_err(&at)? as usize;
                if done > s.summary.total {
                    return Err(at(format!(
                        "progress done {done} > total {}",
                        s.summary.total
                    )));
                }
            }
            "stall" => {
                if let Some(s) = open.as_mut() {
                    s.summary.stalls += 1;
                }
            }
            "resource" => {
                summary.resource_samples += 1;
                if let Some(rss) = e.get("rssBytes").and_then(Json::as_num) {
                    summary.last_rss_bytes = Some(rss as u64);
                }
                if let Some(cpu) = e.get("cpuMs").and_then(Json::as_num) {
                    summary.last_cpu_ms = Some(cpu as u64);
                }
            }
            "sweepEnd" => {
                let s = open.as_mut().ok_or_else(|| at("no open sweep".into()))?;
                let label = field_str(e, "sweep").map_err(&at)?;
                if label != s.summary.label {
                    return Err(at(format!(
                        "sweepEnd for {label:?} inside sweep {:?}",
                        s.summary.label
                    )));
                }
                for (k, have) in [
                    ("finished", s.summary.finished.len()),
                    ("cached", s.summary.cached.len()),
                    ("failed", s.summary.failed.len()),
                ] {
                    let claimed = field_u64(e, k).map_err(&at)? as usize;
                    if claimed != have {
                        return Err(at(format!(
                            "sweepEnd claims {claimed} {k} cells, stream has {have}"
                        )));
                    }
                }
                s.summary.ended = true;
                s.summary.wall_ms = Some(field_u64(e, "wallMs").map_err(&at)?);
                close_sweep(&mut open, &mut summary, false).map_err(&at)?;
            }
            "runEnd" => {
                close_sweep(&mut open, &mut summary, true).map_err(&at)?;
                summary.run_status = Some(field_str(e, "status").map_err(&at)?.to_string());
                ended_run = true;
            }
            other => return Err(at(format!("unknown event kind {other:?}"))),
        }
        if let Some(s) = open.as_mut() {
            // Scheduled-set completeness is only checkable once cells
            // start; enforce lazily at first start.
            if matches!(ev, "cellStarted") && s.scheduled.len() != s.summary.total {
                return Err(at(format!(
                    "sweep {:?}: {} of {} cells scheduled before first start",
                    s.summary.label,
                    s.scheduled.len(),
                    s.summary.total
                )));
            }
        }
    }
    close_sweep(&mut open, &mut summary, true)?;
    Ok(summary)
}

/// Reconciles a validated stream against its run manifest:
///
/// - a **green** manifest (no failed entries): every sweep in the
///   stream must be complete, no cell failed, and the terminal cells
///   must cover the manifest's grid — exactly (`== cells`) for a
///   single-sweep generator; multi-sweep generators may append derived
///   records, so the sum of sweep totals must not exceed the manifest's
///   cell count;
/// - a **failure** manifest: its cells mirror the failing (last) sweep
///   — totals equal, and the failed index sets match exactly;
/// - when the manifest's `hostPerf.cellCache` counters are present, the
///   stream's cache-hit count must equal `cachedCells`.
pub fn reconcile(summary: &StreamSummary, manifest: &Json) -> Result<(), String> {
    if manifest.get("schema").and_then(Json::as_str) != Some(crate::manifest::MANIFEST_SCHEMA) {
        return Err("manifest document has the wrong schema".into());
    }
    let cells = manifest
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("manifest without cells")?;
    let mut manifest_failed: Vec<usize> = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| c.get("status").and_then(Json::as_str) == Some("failed"))
        .map(|(i, _)| i)
        .collect();
    manifest_failed.sort_unstable();
    if summary.sweeps.is_empty() {
        return Err("stream has no sweeps to reconcile".into());
    }
    for s in &summary.sweeps {
        if s.terminals() != s.total {
            return Err(format!(
                "sweep {:?} is incomplete ({} of {} cells terminal) — cannot reconcile",
                s.label,
                s.terminals(),
                s.total
            ));
        }
    }
    if manifest_failed.is_empty() {
        let stream_failed: usize = summary.sweeps.iter().map(|s| s.failed.len()).sum();
        if stream_failed != 0 {
            return Err(format!(
                "stream has {stream_failed} failed cells but the manifest is green"
            ));
        }
        let terminals: usize = summary.sweeps.iter().map(|s| s.terminals()).sum();
        if summary.sweeps.len() == 1 && terminals != cells.len() {
            return Err(format!(
                "stream has {terminals} terminal cells, manifest has {}",
                cells.len()
            ));
        }
        if terminals > cells.len() {
            return Err(format!(
                "stream has {terminals} terminal cells for a {}-cell manifest",
                cells.len()
            ));
        }
    } else {
        let failing = summary
            .sweeps
            .last()
            .expect("non-empty sweeps checked above");
        if failing.total != cells.len() {
            return Err(format!(
                "failure manifest has {} cells, failing sweep {:?} has {}",
                cells.len(),
                failing.label,
                failing.total
            ));
        }
        let mut stream_failed = failing.failed.clone();
        stream_failed.sort_unstable();
        if stream_failed != manifest_failed {
            return Err(format!(
                "failed cells differ: stream {stream_failed:?}, manifest {manifest_failed:?}"
            ));
        }
    }
    if let Some(cached_cells) = manifest
        .get("hostPerf")
        .and_then(|h| h.get("cellCache"))
        .and_then(|c| c.get("cachedCells"))
        .and_then(Json::as_num)
    {
        let stream_cached: usize = summary.sweeps.iter().map(|s| s.cached.len()).sum();
        if stream_cached != cached_cells as usize {
            return Err(format!(
                "stream has {stream_cached} cache hits, manifest hostPerf counts {cached_cells}"
            ));
        }
    }
    Ok(())
}

/// Renders a human-readable summary of a stream (the `status --summary`
/// view): run header, per-sweep cell outcomes and worker occupancy,
/// last resource sample, final status.
pub fn render_summary(s: &StreamSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run: {} (config {}, jobs {})",
        s.bin, s.fingerprint, s.jobs
    );
    for sweep in &s.sweeps {
        let _ = write!(
            out,
            "sweep {}: {} cells — {} simulated, {} cached, {} failed",
            sweep.label,
            sweep.total,
            sweep.finished.len(),
            sweep.cached.len(),
            sweep.failed.len(),
        );
        match sweep.wall_ms {
            Some(wall) => {
                let _ = writeln!(out, ", wall {:.2}s", wall as f64 / 1000.0);
            }
            None => {
                let _ = writeln!(out, ", INTERRUPTED ({} in flight)", sweep.in_flight.len());
            }
        }
        if !sweep.failed.is_empty() {
            let _ = writeln!(out, "  failed cells: {:?}", sweep.failed);
        }
        if sweep.stalls > 0 {
            let _ = writeln!(out, "  stall warnings: {}", sweep.stalls);
        }
        if let Some(wall) = sweep.wall_ms.filter(|w| *w > 0) {
            let occupancy: Vec<String> = sweep
                .worker_busy_ms
                .iter()
                .map(|(w, busy)| format!("w{w} {:.0}%", (*busy as f64 / wall as f64) * 100.0))
                .collect();
            if !occupancy.is_empty() {
                let _ = writeln!(out, "  worker occupancy: {}", occupancy.join("  "));
            }
        }
    }
    if let Some(rss) = s.last_rss_bytes {
        let cpu = s
            .last_cpu_ms
            .map(|ms| format!(", cpu {:.1}s", ms as f64 / 1000.0))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "resources: rss {:.1} MB{cpu} ({} samples)",
            rss as f64 / (1024.0 * 1024.0),
            s.resource_samples
        );
    }
    let _ = writeln!(
        out,
        "status: {}",
        s.run_status.as_deref().unwrap_or("interrupted (no runEnd)")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_guards_degenerate_inputs() {
        assert_eq!(eta_seconds(0, 0, 10, 1.0), None);
        assert_eq!(eta_seconds(5, 5, 10, 0.0), None);
        assert_eq!(eta_seconds(5, 5, 10, -1.0), None);
        let eta = eta_seconds(5, 5, 10, 2.0).expect("well-defined");
        assert!((eta - 2.0).abs() < 1e-9);
        // Finished sweeps extrapolate to zero remaining.
        assert_eq!(eta_seconds(10, 10, 10, 3.0), Some(0.0));
    }

    #[test]
    fn resumed_run_eta_ignores_cache_hits() {
        // The regression (satellite): 50 cache hits and 5 simulated
        // cells done of 100 after 10 s. The old `elapsed / done` rate
        // predicted the remaining 45 cells at cache-hit speed
        // (10/55 × 45 ≈ 8 s); the fixed rate extrapolates from the 5
        // cells that actually simulated (10/5 × 45 = 90 s).
        let eta = eta_seconds(5, 55, 100, 10.0).expect("well-defined");
        assert!((eta - 90.0).abs() < 1e-9);
        let old_skewed = 10.0 / 55.0 * 45.0;
        assert!(
            eta > old_skewed * 5.0,
            "cache hits must not deflate the estimate"
        );
        // Without cache hits the estimate is exactly the old formula.
        let plain = eta_seconds(5, 5, 10, 2.0).expect("well-defined");
        assert!((plain - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stall_baseline_tracks_slow_mode_of_bimodal_sweeps() {
        // The regression (satellite): with fast-forward on, quiet-heavy
        // cells finish several times faster than busy cells, so the
        // duration population is bimodal. A median of this sample lands
        // at 10 ms (fast mode) — an 8× threshold of 80 ms would flag
        // every healthy 2 s slow-mode cell. The upper quartile lands in
        // the slow mode.
        assert_eq!(stall_baseline_ms(&[10, 10, 10, 10, 2000, 2000]), 2000);
        // Even a 75% fast-mode majority must not drag the baseline down.
        assert_eq!(
            stall_baseline_ms(&[10, 10, 10, 10, 10, 10, 2000, 2000]),
            2000
        );
        // Uniform populations behave like the old median.
        assert_eq!(stall_baseline_ms(&[500, 500, 500, 500]), 500);
        assert_eq!(stall_baseline_ms(&[7]), 7);
        // Order-insensitive.
        assert_eq!(stall_baseline_ms(&[2000, 10, 2000, 10, 10, 10]), 2000);
    }

    #[test]
    fn completion_heartbeat_is_never_throttled() {
        // The last cell completing 1 ms after a beat, inside the
        // throttle window, must still be due.
        assert!(heartbeat_due(10, 10, 501, 500));
        assert!(heartbeat_due(10, 10, 0, 0), "instant sweeps too");
        assert!(!heartbeat_due(5, 10, 501, 500));
        assert!(heartbeat_due(5, 10, 500 + HEARTBEAT_MS, 500));
    }

    #[test]
    fn parses_cpu_ticks_past_comm_with_spaces() {
        let stat = "1234 (fig 6 (odd)) S 1 1 1 0 -1 4194560 500 0 0 0 7 3 0 0 20 0 1 0 100 \
                    1000000 300 18446744073709551615";
        assert_eq!(parse_cpu_ticks(stat), Some(10));
        assert_eq!(parse_cpu_ticks("garbage"), None);
    }

    #[test]
    fn parses_vm_rss_line() {
        let status = "Name:\tfig6\nVmRSS:\t  2048 kB\nThreads:\t1\n";
        assert_eq!(parse_kb_line(status, "VmRSS:"), Some(2048 * 1024));
        assert_eq!(parse_kb_line("Name:\tx\n", "VmRSS:"), None);
    }

    #[test]
    fn torn_final_line_is_dropped_but_torn_middle_is_an_error() {
        let good = r#"{"a":1}
{"b":2}
{"truncat"#;
        let events = parse_stream(good).expect("torn tail tolerated");
        assert_eq!(events.len(), 2);
        let bad = "{\"a\":1}\n{\"torn\n{\"b\":2}\n";
        assert!(parse_stream(bad).is_err());
    }
}
