//! `gvf.hostperf` v1 — the host-performance section of a run manifest.
//!
//! [`gvf_sim::hostperf`] collects the raw numbers (phase nanoseconds,
//! per-worker pool telemetry, peak RSS); this module turns a
//! [`HostPerfSnapshot`] into the versioned JSON section every figure
//! binary embeds under the manifest's `hostPerf` key. The section is
//! **host-side only** and wall-clock dependent, so:
//!
//! - the serial-vs-parallel determinism diff strips it (see
//!   [`crate::manifest::strip_host_perf`] and `validate_json
//!   --det-diff`);
//! - nothing here ever reaches stdout;
//! - throughput figures (cells/sec, simulated cycles/sec) are the
//!   quantities `perf_record` tracks over time in `BENCH_gvf.json`.
//!
//! Schema fields (v1):
//!
//! ```json
//! {
//!   "schema": "gvf.hostperf", "version": 1,
//!   "wall_s": 1.9, "peak_rss_bytes": 73728000,
//!   "phases": {"setup_s": .., "alloc_s": .., "simulate_s": .., "report_s": ..},
//!   "sweeps": [{"label": "fig6", "cells": 55, "jobs": 4, "wall_s": ..,
//!               "cells_per_sec": ..,
//!               "workers": [{"busy_s": .., "queue_wait_s": .., "idle_s": .., "cells": ..}]}],
//!   "throughput": {"cells": 55, "cells_per_sec": ..,
//!                  "sim_cycles": 123456, "sim_cycles_per_sec": ..}
//! }
//! ```
//!
//! `alloc_s`/`simulate_s` are CPU time summed across pool workers, so
//! they can exceed `wall_s` on a parallel run; `setup_s`/`report_s` are
//! wall time outside the sweeps. Versioning follows the manifest policy
//! (bump on breaking change, consumers must check).

use crate::json::Json;
use gvf_sim::hostperf;
use gvf_sim::HostPerfSnapshot;

/// Host-performance schema identifier.
pub const HOSTPERF_SCHEMA: &str = crate::schemas::HOSTPERF.id;
/// Host-performance schema version; bump on breaking changes.
pub const HOSTPERF_SCHEMA_VERSION: u32 = crate::schemas::HOSTPERF.version;

fn secs(ns: u64) -> Json {
    Json::Num(ns as f64 / 1e9)
}

/// Rate `num / (ns as seconds)`, `0` when no time elapsed (a degenerate
/// run must still produce finite JSON).
fn per_sec(num: u64, ns: u64) -> Json {
    if ns == 0 {
        Json::Num(0.0)
    } else {
        Json::Num(num as f64 / (ns as f64 / 1e9))
    }
}

/// Builds the `gvf.hostperf` section from an explicit snapshot — the
/// pure, testable core of [`host_perf_json`]. `total_sim_cycles` is the
/// run's summed simulated cycles (from the manifest's cells), used for
/// the cycles/sec throughput figure.
pub fn host_perf_json_from(snap: &HostPerfSnapshot, total_sim_cycles: u64) -> Json {
    let sweeps: Vec<Json> = snap
        .sweeps
        .iter()
        .map(|s| {
            let workers: Vec<Json> = s
                .pool
                .workers
                .iter()
                .map(|w| {
                    let idle_ns = s
                        .pool
                        .wall_ns
                        .saturating_sub(w.busy_ns)
                        .saturating_sub(w.queue_wait_ns);
                    Json::obj()
                        .with("busy_s", secs(w.busy_ns))
                        .with("queue_wait_s", secs(w.queue_wait_ns))
                        .with("idle_s", secs(idle_ns))
                        .with("cells", Json::num_u64(w.cells))
                })
                .collect();
            Json::obj()
                .with("label", Json::str(&s.label))
                .with("cells", Json::num_u64(s.cells))
                .with("jobs", Json::num_u64(s.pool.jobs as u64))
                .with("wall_s", secs(s.pool.wall_ns))
                .with("cells_per_sec", per_sec(s.cells, s.pool.wall_ns))
                .with("workers", Json::Arr(workers))
        })
        .collect();
    let total_cells: u64 = snap.sweeps.iter().map(|s| s.cells).sum();
    let sweep_wall_ns: u64 = snap.sweeps.iter().map(|s| s.pool.wall_ns).sum();
    Json::obj()
        .with("schema", Json::str(HOSTPERF_SCHEMA))
        .with("version", Json::num_u64(HOSTPERF_SCHEMA_VERSION as u64))
        .with("wall_s", secs(snap.wall_ns))
        .with(
            "peak_rss_bytes",
            match snap.peak_rss_bytes {
                Some(b) => Json::num_u64(b),
                None => Json::Null,
            },
        )
        .with(
            "phases",
            Json::obj()
                .with("setup_s", secs(snap.setup_ns))
                .with("alloc_s", secs(snap.alloc_ns))
                .with("simulate_s", secs(snap.simulate_ns))
                .with("report_s", secs(snap.report_ns)),
        )
        .with("sweeps", Json::Arr(sweeps))
        .with(
            "throughput",
            Json::obj()
                .with("cells", Json::num_u64(total_cells))
                .with("cells_per_sec", per_sec(total_cells, sweep_wall_ns))
                .with("sim_cycles", Json::num_u64(total_sim_cycles))
                .with(
                    "sim_cycles_per_sec",
                    per_sec(total_sim_cycles, sweep_wall_ns),
                ),
        )
}

/// The `hostPerf` section for this process right now: snapshots the
/// global collector and appends the cell-cache counters (how many cells
/// were resumed from the cache vs simulated — the *only* place a
/// resumed run differs from a fresh one, and it is stripped by the
/// determinism diff). Called by [`crate::manifest::emit`].
pub fn host_perf_json(total_sim_cycles: u64) -> Json {
    host_perf_json_from(&hostperf::snapshot(), total_sim_cycles)
        .with("cellCache", crate::cellcache::counters_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvf_sim::{PoolTelemetry, SweepTelemetry, WorkerTelemetry};

    pub(crate) fn sample_snapshot(wall_ns: u64) -> HostPerfSnapshot {
        HostPerfSnapshot {
            wall_ns,
            setup_ns: wall_ns / 10,
            report_ns: wall_ns / 20,
            alloc_ns: wall_ns / 4,
            simulate_ns: wall_ns / 2,
            sweeps: vec![SweepTelemetry {
                label: "fig6".into(),
                cells: 55,
                pool: PoolTelemetry {
                    wall_ns: wall_ns / 2,
                    jobs: 2,
                    workers: vec![
                        WorkerTelemetry {
                            busy_ns: wall_ns / 4,
                            queue_wait_ns: 1_000,
                            cells: 30,
                        },
                        WorkerTelemetry {
                            busy_ns: wall_ns / 5,
                            queue_wait_ns: 2_000,
                            cells: 25,
                        },
                    ],
                },
            }],
            peak_rss_bytes: Some(64 << 20),
        }
    }

    #[test]
    fn section_has_schema_and_round_trips() {
        let doc = host_perf_json_from(&sample_snapshot(2_000_000_000), 1_000_000);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(HOSTPERF_SCHEMA)
        );
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
        let throughput = parsed.get("throughput").expect("throughput");
        assert_eq!(throughput.get("cells").and_then(Json::as_num), Some(55.0));
        let cps = throughput
            .get("sim_cycles_per_sec")
            .and_then(Json::as_num)
            .expect("rate");
        assert!(cps > 0.0);
    }

    #[test]
    fn degenerate_snapshot_stays_finite() {
        let doc = host_perf_json_from(&HostPerfSnapshot::default(), 0);
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
        // The rate helper guards the division by zero of an empty run.
        assert_eq!(
            parsed
                .get("throughput")
                .and_then(|t| t.get("sim_cycles_per_sec"))
                .and_then(Json::as_num),
            Some(0.0)
        );
    }
}
