//! Minimal flag parsing shared by the harness binaries.

use gvf_sim::ProbeSpec;
use gvf_workloads::WorkloadConfig;

/// Default timeline event cap per SM when `--trace-out` is given.
pub const DEFAULT_TRACE_EVENTS_PER_SM: usize = 4096;
/// Default metrics bucket width when `--metrics-out` is given.
pub const DEFAULT_METRICS_BUCKET_CYCLES: u64 = 256;

/// Common harness options: `--scale N`, `--iters N`, `--seed N`,
/// `--jobs N`, `--engine-threads N`, `--smoke`, `--quiet`, plus the
/// observability outputs `--json-out PATH`, `--trace-out PATH`,
/// `--metrics-out PATH`, `--attrib-out PATH`, `--profile-out PATH`,
/// `--audit-out PATH`, `--events-out PATH`.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Workload configuration assembled from the flags.
    pub cfg: WorkloadConfig,
    /// Concurrent (workload × strategy) simulations (`--jobs`, default
    /// 1; `0` = all cores). Feeds [`gvf_sim::SimPool`]; results are
    /// bit-identical for any value.
    pub jobs: usize,
    /// CI smoke mode (`--smoke`): shrink to the test-sized config so
    /// the binary finishes in seconds while still exercising the full
    /// pipeline.
    pub smoke: bool,
    /// Suppress stderr progress heartbeats and sweep summaries
    /// (`--quiet`) — for scripted runs whose stderr is part of a log.
    /// Stdout is unaffected (it is already identical either way).
    pub quiet: bool,
    /// Write the versioned run manifest here (`--json-out`).
    pub json_out: Option<String>,
    /// Write a Chrome trace-event timeline of the grid's first cell
    /// here (`--trace-out`).
    pub trace_out: Option<String>,
    /// Write the first cell's per-epoch metrics series here
    /// (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Write the mechanism-attribution report (`gvf.attribution` v1)
    /// here (`--attrib-out`).
    pub attrib_out: Option<String>,
    /// Write the host-side span profile (`gvf.hostprofile` v1) here
    /// (`--profile-out`). Enables [`gvf_sim::spans`] recording for the
    /// whole process. Wall-clock data: excluded from determinism diffs.
    pub profile_out: Option<String>,
    /// Write the deterministic cycle-audit report (`gvf.cycleaudit` v1)
    /// here (`--audit-out`). Byte-identical for any `--jobs` /
    /// `--engine-threads` value.
    pub audit_out: Option<String>,
    /// Read completed cells back from the content-addressed cell cache
    /// (`--resume`) instead of re-simulating them. Resumed sweeps emit
    /// byte-identical manifests (see [`crate::cellcache`]).
    pub resume: bool,
    /// Disable the cell cache entirely (`--no-cache`): no reads, no
    /// writes. Mutually exclusive with `--resume`.
    pub no_cache: bool,
    /// Cell-cache directory override (`--cache-dir`). Defaults to
    /// `.cellcache/` next to the `--json-out` artifact.
    pub cache_dir: Option<String>,
    /// Write the live `gvf.events` v1 JSONL telemetry stream here
    /// (`--events-out`). Wall-clock data, excluded from the determinism
    /// view; see [`crate::events`].
    pub events_out: Option<String>,
    /// Stall-watchdog threshold multiple (`--stall-factor`, default
    /// 8.0): an in-flight cell is flagged once it exceeds this multiple
    /// of the rolling upper-quartile non-cached cell time.
    pub stall_factor: f64,
    /// Panic injection for telemetry/fault-isolation testing
    /// (`--fail-cell N`): grid cell `N` panics instead of simulating.
    /// The failure takes the real per-cell isolation path, so CI can
    /// assert that failure manifests carry flight-recorder context.
    pub fail_cell: Option<usize>,
    /// Slowdown injection for run-diff attribution testing
    /// (`--slow-cell N`): grid cell `N` busy-waits for ~9× its own wall
    /// time (min 250 ms) after simulating, inside the host span
    /// `sweep.slow_cell_injection`. Simulated results, stdout, and every
    /// determinism-checked artifact are untouched — only wall-clock
    /// telemetry moves — so CI can assert that `diffrun` attributes the
    /// regression to exactly that span.
    pub slow_cell: Option<usize>,
}

/// Prints a usage error and exits with status 2.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2);
}

impl HarnessOpts {
    /// Parses `std::env::args`, starting from the evaluation defaults.
    /// Exits with status 2 and a usage message on malformed flags.
    pub fn from_args() -> Self {
        // Anchor the host-perf wall clock before any work, so the
        // manifest's `setup` phase covers flag parsing and startup.
        gvf_sim::hostperf::process_start();
        let mut cfg = WorkloadConfig::eval();
        let mut jobs = 1usize;
        let mut smoke = false;
        let mut quiet = false;
        let mut json_out = None;
        let mut trace_out = None;
        let mut metrics_out = None;
        let mut attrib_out = None;
        let mut profile_out = None;
        let mut audit_out = None;
        let mut resume = false;
        let mut no_cache = false;
        let mut cache_dir = None;
        let mut events_out = None;
        let mut stall_factor = crate::events::DEFAULT_STALL_FACTOR;
        let mut fail_cell = None;
        let mut slow_cell = None;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need = |i: usize| {
                args.get(i + 1)
                    .unwrap_or_else(|| usage_error(&format!("flag {} needs a value", args[i])))
            };
            let int = |i: usize, what: &str| -> usize {
                need(i)
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("{what} takes an integer")))
            };
            match args[i].as_str() {
                "--scale" => {
                    cfg.scale = int(i, "--scale") as u32;
                    i += 2;
                }
                "--iters" => {
                    cfg.iterations = int(i, "--iters") as u32;
                    i += 2;
                }
                "--seed" => {
                    cfg.seed = int(i, "--seed") as u64;
                    i += 2;
                }
                "--jobs" => {
                    jobs = int(i, "--jobs (0 = all cores)");
                    i += 2;
                }
                "--engine-threads" => {
                    cfg.engine_threads = int(i, "--engine-threads (0 = auto)");
                    i += 2;
                }
                "--no-fast-forward" => {
                    // Plain epoch ticking, for the CI A/B determinism
                    // check against the fast-forwarded default.
                    cfg.fast_forward = false;
                    i += 1;
                }
                "--smoke" => {
                    smoke = true;
                    i += 1;
                }
                "--quiet" => {
                    quiet = true;
                    i += 1;
                }
                "--json-out" => {
                    json_out = Some(need(i).clone());
                    i += 2;
                }
                "--trace-out" => {
                    trace_out = Some(need(i).clone());
                    i += 2;
                }
                "--metrics-out" => {
                    metrics_out = Some(need(i).clone());
                    i += 2;
                }
                "--attrib-out" => {
                    attrib_out = Some(need(i).clone());
                    i += 2;
                }
                "--profile-out" => {
                    profile_out = Some(need(i).clone());
                    i += 2;
                }
                "--audit-out" => {
                    audit_out = Some(need(i).clone());
                    i += 2;
                }
                "--resume" => {
                    resume = true;
                    i += 1;
                }
                "--no-cache" => {
                    no_cache = true;
                    i += 1;
                }
                "--cache-dir" => {
                    cache_dir = Some(need(i).clone());
                    i += 2;
                }
                "--events-out" => {
                    events_out = Some(need(i).clone());
                    i += 2;
                }
                "--stall-factor" => {
                    stall_factor = need(i)
                        .parse()
                        .unwrap_or_else(|_| usage_error("--stall-factor takes a number"));
                    if stall_factor <= 1.0 {
                        usage_error("--stall-factor must be > 1");
                    }
                    i += 2;
                }
                "--fail-cell" => {
                    fail_cell = Some(int(i, "--fail-cell"));
                    i += 2;
                }
                "--slow-cell" => {
                    slow_cell = Some(int(i, "--slow-cell"));
                    i += 2;
                }
                "--help" | "-h" => {
                    println!(
                        "options: --scale N (default 8)  --iters N  --seed N  \
                         --jobs N (0 = all cores)  --engine-threads N (0 = auto)  \
                         --no-fast-forward (plain epoch ticking)  --smoke  \
                         --quiet  --json-out PATH  --trace-out PATH  --metrics-out PATH  \
                         --attrib-out PATH  --profile-out PATH  --audit-out PATH  \
                         --resume  --no-cache  --cache-dir DIR  --events-out PATH  \
                         --stall-factor X (default 8)  --fail-cell N (panic injection)  \
                         --slow-cell N (wall-clock slowdown injection)"
                    );
                    std::process::exit(0);
                }
                other => usage_error(&format!("unknown flag {other}")),
            }
        }
        if smoke {
            // Keep the smoke config derived from tiny() in one place so
            // CI and local `--smoke` runs agree.
            let seed = cfg.seed;
            let engine_threads = cfg.engine_threads;
            let fast_forward = cfg.fast_forward;
            cfg = WorkloadConfig::tiny();
            cfg.seed = seed;
            cfg.engine_threads = engine_threads;
            cfg.fast_forward = fast_forward;
        }
        if resume && no_cache {
            usage_error("--resume and --no-cache are mutually exclusive");
        }
        if profile_out.is_some() {
            // Process-wide: spans record from the first kernel on, and
            // every SimPool worker / engine thread participates.
            gvf_sim::spans::enable();
        }
        if let Some(path) = &events_out {
            let bin = std::env::args()
                .next()
                .as_deref()
                .map(|p| {
                    std::path::Path::new(p)
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| p.to_string())
                })
                .unwrap_or_else(|| "unknown".to_string());
            crate::events::init(
                path,
                &crate::events::RunInfo {
                    bin,
                    fingerprint: crate::cellcache::config_fingerprint(&cfg),
                    jobs,
                    smoke,
                    stall_factor,
                },
            );
        }
        HarnessOpts {
            cfg,
            jobs,
            smoke,
            quiet,
            json_out,
            trace_out,
            metrics_out,
            attrib_out,
            profile_out,
            audit_out,
            resume,
            no_cache,
            cache_dir,
            events_out,
            stall_factor,
            fail_cell,
            slow_cell,
        }
    }

    /// The content-addressed cell cache for this run (see
    /// [`crate::cellcache`]). Enabled whenever a cache directory can be
    /// derived — `--cache-dir`, or `.cellcache/` next to `--json-out` —
    /// and `--no-cache` was not given; reads additionally require
    /// `--resume`. A default run is therefore *write-only*: it warms
    /// the cache so an interrupted sweep can be resumed, but never
    /// trusts stale entries unless asked to.
    pub fn cell_cache(&self, generator: &str) -> crate::cellcache::CellCache {
        if self.no_cache {
            return crate::cellcache::CellCache::disabled(generator);
        }
        let dir = self.cache_dir.clone().or_else(|| {
            self.json_out.as_ref().map(|p| {
                let parent = std::path::Path::new(p)
                    .parent()
                    .filter(|d| !d.as_os_str().is_empty())
                    .unwrap_or_else(|| std::path::Path::new("."));
                parent
                    .join(crate::cellcache::CELLCACHE_DIR)
                    .to_string_lossy()
                    .into_owned()
            })
        });
        crate::cellcache::CellCache::new(dir, self.resume, self.quiet, generator)
    }

    /// The configuration for grid cell `i`. Timeline/metrics recording
    /// is enabled on the **first cell only** — one probed cell keeps
    /// artifact sizes bounded (a full grid's timeline would be tens of
    /// MB) while the manifest still covers every cell. Attribution
    /// (`--attrib-out`) and the cycle audit (`--audit-out`) are enabled
    /// on **every** cell: their reports are bounded histograms and
    /// counters, not event streams, and the REPORT.md cross-checks
    /// reconcile them against [`Stats`] for each cell. Probes never
    /// change timing, so probed and unprobed cells report identical
    /// [`gvf_sim::Stats`].
    pub fn cfg_for_cell(&self, i: usize) -> WorkloadConfig {
        let mut cfg = self.cfg.clone();
        let attribution = self.attrib_out.is_some();
        let cycle_audit = self.audit_out.is_some();
        if i == 0 {
            cfg.probe = ProbeSpec {
                timeline_events_per_sm: if self.trace_out.is_some() {
                    DEFAULT_TRACE_EVENTS_PER_SM
                } else {
                    0
                },
                metrics_bucket_cycles: if self.metrics_out.is_some() {
                    DEFAULT_METRICS_BUCKET_CYCLES
                } else {
                    0
                },
                attribution,
                cycle_audit,
            };
        } else if attribution || cycle_audit {
            cfg.probe = ProbeSpec {
                attribution,
                cycle_audit,
                ..ProbeSpec::OFF
            };
        }
        cfg
    }
}
