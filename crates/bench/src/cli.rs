//! Minimal flag parsing shared by the harness binaries.

use gvf_workloads::WorkloadConfig;

/// Common harness options: `--scale N`, `--iters N`, `--seed N`.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Workload configuration assembled from the flags.
    pub cfg: WorkloadConfig,
}

impl HarnessOpts {
    /// Parses `std::env::args`, starting from the evaluation defaults.
    ///
    /// # Panics
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut cfg = WorkloadConfig::eval();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need = |i: usize| {
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("flag {} needs a value", args[i]))
            };
            match args[i].as_str() {
                "--scale" => {
                    cfg.scale = need(i).parse().expect("--scale takes an integer");
                    i += 2;
                }
                "--iters" => {
                    cfg.iterations = need(i).parse().expect("--iters takes an integer");
                    i += 2;
                }
                "--seed" => {
                    cfg.seed = need(i).parse().expect("--seed takes an integer");
                    i += 2;
                }
                "--help" | "-h" => {
                    println!("options: --scale N (default 8)  --iters N  --seed N");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
        }
        HarnessOpts { cfg }
    }
}
