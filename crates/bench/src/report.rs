//! Tabular report formatting shared by the harness binaries.

/// Geometric mean of strictly positive values; `0` on empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Prints a fixed-width table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
            } else {
                s.push_str(&format!("{:>w$}", c, w = widths[i] + 2));
            }
        }
        s
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }
}
