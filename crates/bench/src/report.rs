//! Tabular report formatting shared by the harness binaries.

/// Geometric mean of strictly positive values; `0` on empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Prints a fixed-width table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
            } else {
                s.push_str(&format!("{:>w$}", c, w = widths[i] + 2));
            }
        }
        s
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Renders a GitHub-flavoured markdown table (first column
/// left-aligned, the rest right-aligned — the numeric convention the
/// `REPORT.md` collator uses throughout).
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push_str("\n|");
    for (i, _) in headers.iter().enumerate() {
        out.push_str(if i == 0 { " :--- |" } else { " ---: |" });
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row.iter().take(headers.len()) {
            out.push_str(&format!(" {cell} |"));
        }
        for _ in row.len()..headers.len() {
            out.push_str("  |");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn markdown_table_shape() {
        let md = markdown_table(
            &["name", "cycles"],
            &[
                vec!["a".into(), "10".into()],
                vec!["b".into()], // short row is padded
            ],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| name | cycles |");
        assert_eq!(lines[1], "| :--- | ---: |");
        assert_eq!(lines[2], "| a | 10 |");
        assert_eq!(lines[3], "| b |  |");
    }
}
