//! Content-addressed cell cache: checkpoint/resume for figure sweeps.
//!
//! Every grid cell of a figure binary is a pure function of its
//! simulation configuration — that is the determinism contract the CI
//! diffs enforce. This module exploits it: a completed cell's
//! [`RunResult`] is persisted under a **cell key**, the FNV-1a hash of
//! (schema versions, generator id, cell index, full simulation config),
//! and a later run with the same key can skip the simulation entirely
//! (`--resume`). The key deliberately excludes everything the
//! determinism view excludes — host-perf, wall-clock, `--jobs`,
//! `--engine-threads` — so a resumed sweep emits **byte-identical**
//! manifests and attribution artifacts; only the `hostPerf` section
//! (already stripped by `validate_json --det-diff`) records how many
//! cells came from the cache.
//!
//! Entries live under `<dir>/.cellcache/<key>.json` (schema
//! `gvf.cellcache` v1) next to the `--json-out` artifact by default.
//! Each entry carries a `contentHash` over its own rendering, so a
//! corrupted or hand-edited entry is detected and re-simulated rather
//! than trusted (`validate_json` enforces the same check in CI — the
//! cache-poisoning gate).
//!
//! What the cache does **not** key on: the simulator's code. Editing
//! the engine and resuming against a stale cache will happily replay
//! old results — `run_all.sh` therefore defaults to *write-only* mode
//! (`--resume` opts into reads), and the cache directory is safe to
//! delete at any time.
//!
//! Cells that record observability artifacts (`--trace-out` /
//! `--metrics-out` probe the first cell) bypass the cache entirely:
//! event streams are large and wall-clock-adjacent, and a resumed run
//! must still produce them fresh. The mechanism-attribution and
//! cycle-audit reports are different: both are bounded, deterministic
//! counters, so they travel *through* the cache (and are keyed, since
//! they change what a [`RunResult`] carries).

use crate::json::Json;
use gvf_alloc::AllocatorKind;
use gvf_alloc::{AllocStats, TypeKey, TypeRegionStats};
use gvf_core::{LookupAttrib, LookupKind, TagAttrib, TagMode};
use gvf_sim::{
    AttribReport, CallSiteStats, CycleAuditReport, LogHist, PcLoadStats, LOG_HIST_BUCKETS,
};
use gvf_workloads::{AllocAttribSnapshot, AttribBundle, RunResult, Table2Row, WorkloadConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cell-cache schema identifier.
pub const CELLCACHE_SCHEMA: &str = crate::schemas::CELLCACHE.id;
/// Cell-cache schema version; bump on breaking changes.
/// v2: entries carry the cycle-audit report and key on `cycle_audit`.
pub const CELLCACHE_SCHEMA_VERSION: u32 = crate::schemas::CELLCACHE.version;

/// Directory name holding cache entries, under the artifact directory.
pub const CELLCACHE_DIR: &str = ".cellcache";

// Process-wide counters surfaced in the manifest's `hostPerf` section
// (which the determinism diff strips, so they never affect a byte diff).
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_WRITES: AtomicU64 = AtomicU64::new(0);

/// 64-bit FNV-1a. The standard library's `DefaultHasher` is not stable
/// across releases; cache keys must be, so the hash is pinned here.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn opt_u64(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::num_u64(n),
        None => Json::Null,
    }
}

/// The deterministic config rendering hashed into a cell key (and
/// recorded verbatim in failure entries as the *config fingerprint*).
/// Every simulation-relevant knob appears; host-side knobs
/// (`engine_threads`, `--jobs`, `fast_forward`) and the observability
/// probes that bypass the cache (timeline, metrics) deliberately do
/// not.
/// Attribution and the cycle audit *are* keyed: they change what a
/// [`RunResult`] carries.
pub fn config_fingerprint_json(cfg: &WorkloadConfig) -> Json {
    let g = &cfg.gpu;
    let gpu = Json::obj()
        .with("num_sms", Json::num_u64(g.num_sms as u64))
        .with("max_warps_per_sm", Json::num_u64(g.max_warps_per_sm as u64))
        .with(
            "schedulers_per_sm",
            Json::num_u64(g.schedulers_per_sm as u64),
        )
        .with("warp_size", Json::num_u64(g.warp_size as u64))
        .with("alu_latency", Json::num_u64(g.alu_latency))
        .with("alu_chain_latency", Json::num_u64(g.alu_chain_latency))
        .with("branch_latency", Json::num_u64(g.branch_latency))
        .with(
            "indirect_call_latency",
            Json::num_u64(g.indirect_call_latency),
        )
        .with("ret_latency", Json::num_u64(g.ret_latency))
        .with("l1_latency", Json::num_u64(g.l1_latency))
        .with("l1_bytes", Json::num_u64(g.l1_bytes))
        .with("l1_ways", Json::num_u64(g.l1_ways as u64))
        .with("l2_latency", Json::num_u64(g.l2_latency))
        .with("l2_bytes", Json::num_u64(g.l2_bytes))
        .with("l2_ways", Json::num_u64(g.l2_ways as u64))
        .with("l2_slices", Json::num_u64(g.l2_slices as u64))
        .with("line_bytes", Json::num_u64(g.line_bytes))
        .with("sector_bytes", Json::num_u64(g.sector_bytes))
        .with("dram_latency", Json::num_u64(g.dram_latency))
        .with("dram_channels", Json::num_u64(g.dram_channels as u64))
        .with("dram_sector_cycles", Json::num_u64(g.dram_sector_cycles))
        .with(
            "max_pending_loads",
            Json::num_u64(g.max_pending_loads as u64),
        )
        .with("mshr_per_sm", Json::num_u64(g.mshr_per_sm as u64))
        .with("l1_queue_cap", Json::num_u64(g.l1_queue_cap))
        .with("const_latency", Json::num_u64(g.const_latency))
        .with("const_miss_latency", Json::num_u64(g.const_miss_latency))
        .with("const_bytes", Json::num_u64(g.const_bytes));
    Json::obj()
        .with("scale", Json::num_u64(cfg.scale as u64))
        .with("iterations", Json::num_u64(cfg.iterations as u64))
        .with("seed", Json::num_u64(cfg.seed))
        .with("initial_chunk_objs", Json::num_u64(cfg.initial_chunk_objs))
        .with(
            "allocator_override",
            match cfg.allocator_override {
                Some(AllocatorKind::Cuda) => Json::str("cuda"),
                Some(AllocatorKind::SharedOa) => Json::str("sharedoa"),
                None => Json::Null,
            },
        )
        .with("tag_mode", Json::str(cfg.tag_mode.label()))
        .with("coal_lookup", Json::str(cfg.coal_lookup.label()))
        .with("tag_budget", opt_u64(cfg.tag_budget))
        .with(
            "device_memory_bytes",
            Json::num_u64(cfg.device_memory_bytes),
        )
        .with("attribution", Json::Bool(cfg.probe.attribution))
        .with("cycle_audit", Json::Bool(cfg.probe.cycle_audit))
        .with("gpu", gpu)
}

/// The short hex fingerprint of a cell's configuration, as recorded in
/// manifest failure entries.
pub fn config_fingerprint(cfg: &WorkloadConfig) -> String {
    format!(
        "{:016x}",
        fnv1a64(config_fingerprint_json(cfg).render().as_bytes())
    )
}

/// The content-addressed key of grid cell `index` of `generator` under
/// `cfg`, as a 16-digit hex string (the cache file's basename).
pub fn cell_key(generator: &str, index: usize, cfg: &WorkloadConfig) -> String {
    let material = format!(
        "cellcache-v{}\nmanifest-v{}\ngenerator={generator}\ncell={index}\n{}",
        CELLCACHE_SCHEMA_VERSION,
        crate::manifest::MANIFEST_SCHEMA_VERSION,
        config_fingerprint_json(cfg).render(),
    );
    format!("{:016x}", fnv1a64(material.as_bytes()))
}

fn u64_arr(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::num_u64(x)).collect())
}

fn parse_u64_arr(j: &Json) -> Option<Vec<u64>> {
    j.as_arr()?
        .iter()
        .map(|x| x.as_num().map(|n| n as u64))
        .collect()
}

fn log_hist_counts(h: &LogHist) -> Json {
    u64_arr(h.counts())
}

fn parse_log_hist(j: &Json) -> Option<LogHist> {
    let v = parse_u64_arr(j)?;
    let counts: [u64; LOG_HIST_BUCKETS] = v.try_into().ok()?;
    Some(LogHist::from_counts(counts))
}

fn attrib_json(b: &AttribBundle) -> Json {
    let p = &b.probe;
    let per_pc: Vec<Json> = p
        .per_pc
        .iter()
        .map(|(&(pc, tag), s)| {
            u64_arr(&[
                pc as u64,
                tag as u64,
                s.instructions,
                s.lanes,
                s.transactions,
                s.l1_hits,
            ])
        })
        .collect();
    let probe = Json::obj()
        .with("per_pc", Json::Arr(per_pc))
        .with("set_accesses", u64_arr(&p.set_accesses))
        .with("set_hits", u64_arr(&p.set_hits))
        .with("final_set_sectors", u64_arr(&p.final_set_sectors))
        .with(
            "reuse",
            Json::Arr(p.reuse.iter().map(log_hist_counts).collect()),
        )
        .with("cold_lines", u64_arr(&p.cold_lines))
        .with("sms", Json::num_u64(p.sms));
    let alloc = match &b.alloc {
        Some(a) => Json::obj()
            .with("merges", Json::num_u64(a.merges))
            .with("initial_chunk_objs", Json::num_u64(a.initial_chunk_objs))
            .with(
                "types",
                Json::Arr(
                    a.types
                        .iter()
                        .map(|t| {
                            u64_arr(&[
                                t.ty.0 as u64,
                                t.obj_size,
                                t.regions,
                                t.capacity_objs,
                                t.used_objs,
                                t.largest_region_objs,
                                t.next_region_objs,
                            ])
                        })
                        .collect(),
                ),
            ),
        None => Json::Null,
    };
    let lookup = match &b.lookup {
        Some(l) => Json::obj()
            .with("kind", Json::str(l.kind.label()))
            .with("num_ranges", Json::num_u64(l.num_ranges))
            .with("tree_depth", Json::num_u64(l.tree_depth as u64))
            .with("dispatches", Json::num_u64(l.dispatches))
            .with("lanes", Json::num_u64(l.lanes))
            .with("walk_depth", log_hist_counts(&l.walk_depth))
            .with("comparisons", log_hist_counts(&l.comparisons)),
        None => Json::Null,
    };
    let tags = match &b.tags {
        Some(t) => Json::obj()
            .with("tag_mode", Json::str(t.tag_mode.label()))
            .with("hardware_mask", Json::Bool(t.hardware_mask))
            .with("decode_dispatches", Json::num_u64(t.decode_dispatches))
            .with("decode_lanes", Json::num_u64(t.decode_lanes))
            .with("fallback_dispatches", Json::num_u64(t.fallback_dispatches))
            .with("fallback_lanes", Json::num_u64(t.fallback_lanes))
            .with("mask_ops", Json::num_u64(t.mask_ops)),
        None => Json::Null,
    };
    Json::obj()
        .with("probe", probe)
        .with("alloc", alloc)
        .with("lookup", lookup)
        .with("tags", tags)
}

fn parse_attrib(j: &Json) -> Option<AttribBundle> {
    let get_u64 = |o: &Json, k: &str| o.get(k).and_then(Json::as_num).map(|n| n as u64);
    let p = j.get("probe")?;
    let mut probe = AttribReport {
        set_accesses: parse_u64_arr(p.get("set_accesses")?)?,
        set_hits: parse_u64_arr(p.get("set_hits")?)?,
        final_set_sectors: parse_u64_arr(p.get("final_set_sectors")?)?,
        sms: get_u64(p, "sms")?,
        ..AttribReport::default()
    };
    for row in p.get("per_pc")?.as_arr()? {
        let v = parse_u64_arr(row)?;
        let [pc, tag, instructions, lanes, transactions, l1_hits] = v.try_into().ok()?;
        probe.per_pc.insert(
            (pc as usize, tag as usize),
            PcLoadStats {
                instructions,
                lanes,
                transactions,
                l1_hits,
            },
        );
    }
    let reuse = p.get("reuse")?.as_arr()?;
    if reuse.len() != probe.reuse.len() {
        return None;
    }
    for (slot, j) in probe.reuse.iter_mut().zip(reuse) {
        *slot = parse_log_hist(j)?;
    }
    probe.cold_lines = parse_u64_arr(p.get("cold_lines")?)?.try_into().ok()?;

    let alloc = match j.get("alloc")? {
        Json::Null => None,
        a => Some(AllocAttribSnapshot {
            merges: get_u64(a, "merges")?,
            initial_chunk_objs: get_u64(a, "initial_chunk_objs")?,
            types: a
                .get("types")?
                .as_arr()?
                .iter()
                .map(|row| {
                    let v = parse_u64_arr(row)?;
                    let [ty, obj_size, regions, capacity_objs, used_objs, largest, next] =
                        v.try_into().ok()?;
                    Some(TypeRegionStats {
                        ty: TypeKey(ty as u32),
                        obj_size,
                        regions,
                        capacity_objs,
                        used_objs,
                        largest_region_objs: largest,
                        next_region_objs: next,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
        }),
    };
    let lookup = match j.get("lookup")? {
        Json::Null => None,
        l => Some(LookupAttrib {
            kind: match l.get("kind")?.as_str()? {
                "segment-tree" => LookupKind::SegmentTree,
                "linear-scan" => LookupKind::LinearScan,
                _ => return None,
            },
            num_ranges: get_u64(l, "num_ranges")?,
            tree_depth: get_u64(l, "tree_depth")? as u32,
            dispatches: get_u64(l, "dispatches")?,
            lanes: get_u64(l, "lanes")?,
            walk_depth: parse_log_hist(l.get("walk_depth")?)?,
            comparisons: parse_log_hist(l.get("comparisons")?)?,
        }),
    };
    let tags = match j.get("tags")? {
        Json::Null => None,
        t => Some(TagAttrib {
            tag_mode: match t.get("tag_mode")?.as_str()? {
                "offset" => TagMode::Offset,
                "index" => TagMode::Index,
                _ => return None,
            },
            hardware_mask: t.get("hardware_mask")?.as_bool()?,
            decode_dispatches: get_u64(t, "decode_dispatches")?,
            decode_lanes: get_u64(t, "decode_lanes")?,
            fallback_dispatches: get_u64(t, "fallback_dispatches")?,
            fallback_lanes: get_u64(t, "fallback_lanes")?,
            mask_ops: get_u64(t, "mask_ops")?,
        }),
    };
    Some(AttribBundle {
        probe,
        alloc,
        lookup,
        tags,
    })
}

fn audit_json(a: &CycleAuditReport) -> Json {
    // One row per indirect-call site: [pc, calls, unknown_calls,
    // overflowed, target, target, ...]. Targets are FuncIds (u32-sized),
    // so the f64 JSON number range is never a concern.
    let sites: Vec<Json> = a
        .call_sites
        .iter()
        .map(|(&pc, s)| {
            let mut row = vec![pc as u64, s.calls, s.unknown_calls, s.overflowed as u64];
            row.extend(s.targets.iter().copied());
            u64_arr(&row)
        })
        .collect();
    Json::obj()
        .with(
            "counters",
            u64_arr(&[
                a.sms,
                a.audited_cycles,
                a.active,
                a.stalled_known,
                a.stalled_other,
                a.drained,
                a.skipped,
                a.tail,
            ]),
        )
        .with("gap_hist", log_hist_counts(&a.gap_hist))
        .with("call_sites", Json::Arr(sites))
}

fn parse_audit(j: &Json) -> Option<CycleAuditReport> {
    let c = parse_u64_arr(j.get("counters")?)?;
    let [sms, audited_cycles, active, stalled_known, stalled_other, drained, skipped, tail] =
        c.try_into().ok()?;
    let mut a = CycleAuditReport {
        sms,
        audited_cycles,
        active,
        stalled_known,
        stalled_other,
        drained,
        skipped,
        tail,
        gap_hist: parse_log_hist(j.get("gap_hist")?)?,
        ..CycleAuditReport::default()
    };
    for row in j.get("call_sites")?.as_arr()? {
        let v = parse_u64_arr(row)?;
        if v.len() < 4 {
            return None;
        }
        a.call_sites.insert(
            v[0] as usize,
            CallSiteStats {
                calls: v[1],
                unknown_calls: v[2],
                overflowed: v[3] != 0,
                targets: v[4..].iter().copied().collect(),
            },
        );
    }
    Some(a)
}

fn result_json(r: &RunResult) -> Json {
    let s = &r.stats;
    let stats = Json::obj()
        .with(
            "scalars",
            u64_arr(&[
                s.cycles,
                s.instrs_mem,
                s.instrs_compute,
                s.instrs_ctrl,
                s.global_load_transactions,
                s.global_store_transactions,
                s.l1_accesses,
                s.l1_hits,
                s.l2_accesses,
                s.l2_hits,
                s.dram_accesses,
                s.const_accesses,
                s.const_hits,
                s.warps,
                s.vfunc_calls,
            ]),
        )
        .with("stall_by_tag", u64_arr(&s.stall_by_tag))
        .with(
            "load_transactions_by_tag",
            u64_arr(&s.load_transactions_by_tag),
        );
    Json::obj()
        // A 64-bit digest routinely exceeds 2^53 — unrepresentable in an
        // f64 JSON number, so it travels as a hex string.
        .with("checksum", Json::str(format!("{:016x}", r.checksum)))
        .with("stats", stats)
        .with("init_cycles", Json::num_u64(r.init_cycles))
        .with(
            "alloc_stats",
            u64_arr(&[
                r.alloc_stats.objects,
                r.alloc_stats.used_bytes,
                r.alloc_stats.reserved_bytes,
                r.alloc_stats.regions,
            ]),
        )
        .with(
            "table2",
            Json::obj()
                .with("objects", Json::num_u64(r.table2.objects))
                .with("types", Json::num_u64(r.table2.types as u64))
                .with(
                    "vfunc_entries",
                    Json::num_u64(r.table2.vfunc_entries as u64),
                )
                .with("vfunc_pki", Json::Num(r.table2.vfunc_pki)),
        )
        .with(
            "metrics",
            Json::Arr(
                r.metrics
                    .iter()
                    .map(|&(k, v)| Json::Arr(vec![Json::str(k), Json::Num(v)]))
                    .collect(),
            ),
        )
        .with(
            "attrib",
            match &r.attrib {
                Some(b) => attrib_json(b),
                None => Json::Null,
            },
        )
        .with(
            "audit",
            match &r.audit {
                Some(a) => audit_json(a),
                None => Json::Null,
            },
        )
}

fn parse_result(j: &Json) -> Option<RunResult> {
    let scalars = parse_u64_arr(j.get("stats")?.get("scalars")?)?;
    let [cycles, instrs_mem, instrs_compute, instrs_ctrl, global_load_transactions, global_store_transactions, l1_accesses, l1_hits, l2_accesses, l2_hits, dram_accesses, const_accesses, const_hits, warps, vfunc_calls] =
        scalars.try_into().ok()?;
    let mut stats = gvf_sim::Stats::new();
    stats.cycles = cycles;
    stats.instrs_mem = instrs_mem;
    stats.instrs_compute = instrs_compute;
    stats.instrs_ctrl = instrs_ctrl;
    stats.global_load_transactions = global_load_transactions;
    stats.global_store_transactions = global_store_transactions;
    stats.l1_accesses = l1_accesses;
    stats.l1_hits = l1_hits;
    stats.l2_accesses = l2_accesses;
    stats.l2_hits = l2_hits;
    stats.dram_accesses = dram_accesses;
    stats.const_accesses = const_accesses;
    stats.const_hits = const_hits;
    stats.warps = warps;
    stats.vfunc_calls = vfunc_calls;
    stats.stall_by_tag = parse_u64_arr(j.get("stats")?.get("stall_by_tag")?)?
        .try_into()
        .ok()?;
    stats.load_transactions_by_tag =
        parse_u64_arr(j.get("stats")?.get("load_transactions_by_tag")?)?
            .try_into()
            .ok()?;

    let a = parse_u64_arr(j.get("alloc_stats")?)?;
    let [objects, used_bytes, reserved_bytes, regions] = a.try_into().ok()?;
    let t2 = j.get("table2")?;
    let num = |o: &Json, k: &str| o.get(k).and_then(Json::as_num);
    let metrics = j
        .get("metrics")?
        .as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            let key = pair.first()?.as_str()?;
            let value = pair.get(1)?.as_num()?;
            // Metric keys are a small closed set per workload; leaking
            // the decoded string restores the `&'static str` the struct
            // carries. Bounded: one leak per distinct key per process.
            Some((&*Box::leak(key.to_string().into_boxed_str()), value))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(RunResult {
        stats,
        checksum: u64::from_str_radix(j.get("checksum")?.as_str()?, 16).ok()?,
        alloc_stats: AllocStats {
            objects,
            used_bytes,
            reserved_bytes,
            regions,
        },
        init_cycles: num(j, "init_cycles")? as u64,
        table2: Table2Row {
            objects: num(t2, "objects")? as u64,
            types: num(t2, "types")? as u32,
            vfunc_entries: num(t2, "vfunc_entries")? as u32,
            vfunc_pki: num(t2, "vfunc_pki")?,
        },
        metrics,
        obs: None,
        attrib: match j.get("attrib")? {
            Json::Null => None,
            b => Some(parse_attrib(b)?),
        },
        audit: match j.get("audit")? {
            Json::Null => None,
            a => Some(parse_audit(a)?),
        },
    })
}

/// Builds the `gvf.cellcache` entry document for one completed cell.
pub fn entry_doc(generator: &str, index: usize, key: &str, r: &RunResult) -> Json {
    let doc = Json::obj()
        .with("schema", Json::str(CELLCACHE_SCHEMA))
        .with("version", Json::num_u64(CELLCACHE_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with("cell", Json::num_u64(index as u64))
        .with("key", Json::str(key))
        .with("contentHash", Json::str(""))
        .with("result", result_json(r));
    let hash = content_hash(&doc);
    Json::Obj(match doc {
        Json::Obj(members) => members
            .into_iter()
            .map(|(k, v)| {
                if k == "contentHash" {
                    (k, Json::str(&hash))
                } else {
                    (k, v)
                }
            })
            .collect(),
        _ => unreachable!(),
    })
}

/// The integrity hash of an entry: FNV-1a over the document's rendering
/// with `contentHash` blanked. Re-derivable by any consumer, so a
/// poisoned entry (edited counters, stale hash) is detectable without
/// re-simulating.
pub fn content_hash(doc: &Json) -> String {
    let blanked = match doc {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .map(|(k, v)| {
                    if k == "contentHash" {
                        (k.clone(), Json::str(""))
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect(),
        ),
        other => other.clone(),
    };
    format!("{:016x}", fnv1a64(blanked.render().as_bytes()))
}

/// Structural + integrity validation of a parsed cache entry. Returns a
/// human-readable reason on rejection (shared by the resume path and
/// `validate_json`).
pub fn verify_entry(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(CELLCACHE_SCHEMA) {
        return Err("schema is not gvf.cellcache".to_string());
    }
    if doc.get("version").and_then(Json::as_num) != Some(CELLCACHE_SCHEMA_VERSION as f64) {
        return Err(format!(
            "unsupported version (want {CELLCACHE_SCHEMA_VERSION})"
        ));
    }
    for field in ["generator", "key", "contentHash"] {
        if doc.get(field).and_then(Json::as_str).is_none() {
            return Err(format!("missing string field {field}"));
        }
    }
    if doc.get("cell").and_then(Json::as_num).is_none() {
        return Err("missing cell index".to_string());
    }
    let recorded = doc.get("contentHash").and_then(Json::as_str).unwrap_or("");
    let actual = content_hash(doc);
    if recorded != actual {
        return Err(format!(
            "content hash mismatch (recorded {recorded}, actual {actual}) — entry is corrupt or poisoned"
        ));
    }
    let result = doc.get("result").ok_or("missing result")?;
    if parse_result(result).is_none() {
        return Err("result section does not decode".to_string());
    }
    Ok(())
}

/// A per-binary handle on the cache directory.
///
/// `read` is `--resume`; writes happen whenever the cache is enabled
/// (so a default run warms the cache for a later `--resume`). A `None`
/// directory disables everything — [`CellCache::run`] degrades to
/// calling the simulation closure directly.
pub struct CellCache {
    dir: Option<String>,
    read: bool,
    quiet: bool,
    generator: String,
}

impl CellCache {
    /// A cache rooted at `dir` (`None` = disabled).
    pub fn new(dir: Option<String>, read: bool, quiet: bool, generator: &str) -> Self {
        CellCache {
            dir,
            read,
            quiet,
            generator: generator.to_string(),
        }
    }

    /// A disabled cache: every cell simulates.
    pub fn disabled(generator: &str) -> Self {
        CellCache::new(None, false, true, generator)
    }

    fn path_for(&self, key: &str) -> Option<std::path::PathBuf> {
        self.dir
            .as_ref()
            .map(|d| std::path::Path::new(d).join(format!("{key}.json")))
    }

    fn try_read(&self, index: usize, key: &str) -> Option<RunResult> {
        let path = self.path_for(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        let doc = Json::parse(&text).ok()?;
        if let Err(reason) = verify_entry(&doc) {
            if !self.quiet {
                eprintln!(
                    "[{}] ignoring cache entry {}: {reason}",
                    self.generator,
                    path.display()
                );
            }
            return None;
        }
        if doc.get("generator").and_then(Json::as_str) != Some(self.generator.as_str())
            || doc.get("cell").and_then(Json::as_num) != Some(index as f64)
            || doc.get("key").and_then(Json::as_str) != Some(key)
        {
            return None;
        }
        parse_result(doc.get("result")?)
    }

    fn write(&self, index: usize, key: &str, r: &RunResult) {
        let Some(path) = self.path_for(key) else {
            return;
        };
        let doc = entry_doc(&self.generator, index, key, r);
        // Atomic publish: a concurrent or killed writer never leaves a
        // torn entry under the final name. I/O errors only cost the
        // cache, never the run.
        let tmp = path.with_extension("json.tmp");
        let ok = (|| -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&tmp, doc.render())?;
            std::fs::rename(&tmp, &path)
        })();
        match ok {
            Ok(()) => {
                CACHE_WRITES.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                if !self.quiet {
                    eprintln!(
                        "[{}] could not write cache entry {}: {e}",
                        self.generator,
                        path.display()
                    );
                }
            }
        }
    }

    /// Produces cell `index`'s result: from the cache when resuming and
    /// a valid entry exists, otherwise by running `f` (and persisting
    /// its result). Cells whose probe spec records timeline or metrics
    /// streams bypass the cache entirely (see the module docs).
    pub fn run(
        &self,
        index: usize,
        cfg: &WorkloadConfig,
        f: impl FnOnce() -> RunResult,
    ) -> RunResult {
        let observed = cfg.probe.timeline_events_per_sm > 0 || cfg.probe.metrics_bucket_cycles > 0;
        if self.dir.is_none() || observed {
            return f();
        }
        let key = cell_key(&self.generator, index, cfg);
        if self.read {
            if let Some(r) = self.try_read(index, &key) {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                // The pool will report this cell finished; the events
                // stream turns that into a cellCacheHit terminal.
                crate::events::note_cache_hit(index, &key);
                return r;
            }
        }
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let r = f();
        self.write(index, &key, &r);
        r
    }
}

/// This process's cache counters for the manifest's `hostPerf` section:
/// `cachedCells` came from the cache, `simulatedCells` ran, and
/// `entriesWritten` were persisted.
pub fn counters_json() -> Json {
    Json::obj()
        .with(
            "cachedCells",
            Json::num_u64(CACHE_HITS.load(Ordering::Relaxed)),
        )
        .with(
            "simulatedCells",
            Json::num_u64(CACHE_MISSES.load(Ordering::Relaxed)),
        )
        .with(
            "entriesWritten",
            Json::num_u64(CACHE_WRITES.load(Ordering::Relaxed)),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvf_workloads::WorkloadConfig;

    fn sample_result() -> RunResult {
        let mut stats = gvf_sim::Stats::new();
        stats.cycles = 12345;
        stats.instrs_mem = 100;
        stats.l1_accesses = 64;
        stats.l1_hits = 32;
        stats.stall_by_tag[0] = 7;
        stats.load_transactions_by_tag[1] = 9;
        let mut walk = LogHist::new();
        walk.record(3);
        walk.record(900);
        let mut probe = AttribReport {
            sms: 2,
            set_accesses: vec![1, 2, 3],
            set_hits: vec![1, 0, 2],
            final_set_sectors: vec![4, 4, 0],
            ..AttribReport::default()
        };
        probe.per_pc.insert(
            (7, 1),
            PcLoadStats {
                instructions: 2,
                lanes: 64,
                transactions: 9,
                l1_hits: 5,
            },
        );
        RunResult {
            stats,
            checksum: u64::MAX - 17, // exercises the > 2^53 hex path
            alloc_stats: AllocStats {
                objects: 10,
                used_bytes: 640,
                reserved_bytes: 1024,
                regions: 2,
            },
            init_cycles: 999,
            table2: Table2Row {
                objects: 10,
                types: 3,
                vfunc_entries: 12,
                vfunc_pki: 1.625,
            },
            metrics: vec![("alive", 42.0), ("level_sum", 7.5)],
            obs: None,
            attrib: Some(AttribBundle {
                probe,
                alloc: Some(AllocAttribSnapshot {
                    merges: 1,
                    initial_chunk_objs: 64,
                    types: vec![TypeRegionStats {
                        ty: TypeKey(3),
                        obj_size: 64,
                        regions: 2,
                        capacity_objs: 128,
                        used_objs: 100,
                        largest_region_objs: 64,
                        next_region_objs: 128,
                    }],
                }),
                lookup: Some(LookupAttrib {
                    kind: LookupKind::SegmentTree,
                    num_ranges: 5,
                    tree_depth: 3,
                    dispatches: 11,
                    lanes: 300,
                    walk_depth: walk,
                    comparisons: walk,
                }),
                tags: Some(TagAttrib {
                    tag_mode: TagMode::Offset,
                    hardware_mask: true,
                    decode_dispatches: 11,
                    decode_lanes: 300,
                    fallback_dispatches: 1,
                    fallback_lanes: 2,
                    mask_ops: 0,
                }),
            }),
            audit: Some({
                let mut a = CycleAuditReport {
                    sms: 2,
                    audited_cycles: 12345,
                    active: 400,
                    stalled_known: 100,
                    stalled_other: 50,
                    drained: 20,
                    skipped: 24000,
                    tail: 120,
                    ..CycleAuditReport::default()
                };
                a.gap_hist.record(7);
                a.gap_hist.record_n(1000, 3);
                a.call_sites.insert(
                    9,
                    CallSiteStats {
                        calls: 12,
                        unknown_calls: 1,
                        targets: [2u64, 5, 6].into_iter().collect(),
                        overflowed: false,
                    },
                );
                a
            }),
        }
    }

    fn results_equal(a: &RunResult, b: &RunResult) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.alloc_stats, b.alloc_stats);
        assert_eq!(a.init_cycles, b.init_cycles);
        assert_eq!(a.table2.objects, b.table2.objects);
        assert_eq!(a.table2.types, b.table2.types);
        assert_eq!(a.table2.vfunc_entries, b.table2.vfunc_entries);
        assert_eq!(a.table2.vfunc_pki, b.table2.vfunc_pki);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.attrib, b.attrib);
        assert_eq!(a.audit, b.audit);
        assert!(b.obs.is_none());
    }

    #[test]
    fn entry_round_trips_losslessly() {
        let r = sample_result();
        let cfg = WorkloadConfig::tiny();
        let key = cell_key("fig6", 3, &cfg);
        let doc = entry_doc("fig6", 3, &key, &r);
        let parsed = Json::parse(&doc.render()).expect("parse");
        verify_entry(&parsed).expect("verifies");
        let decoded = parse_result(parsed.get("result").expect("result")).expect("decode");
        results_equal(&r, &decoded);
    }

    #[test]
    fn tampering_breaks_the_content_hash() {
        let r = sample_result();
        let cfg = WorkloadConfig::tiny();
        let key = cell_key("fig6", 0, &cfg);
        let doc = entry_doc("fig6", 0, &key, &r);
        verify_entry(&doc).expect("fresh entry verifies");
        // Poison a counter without updating the hash.
        let poisoned = Json::parse(&doc.render().replace("12345", "1")).expect("parse");
        let err = verify_entry(&poisoned).expect_err("poisoned entry rejected");
        assert!(err.contains("content hash mismatch"), "{err}");
    }

    #[test]
    fn key_tracks_config_generator_and_index() {
        let cfg = WorkloadConfig::tiny();
        let base = cell_key("fig6", 0, &cfg);
        assert_eq!(base, cell_key("fig6", 0, &cfg), "stable");
        assert_ne!(base, cell_key("fig7", 0, &cfg), "generator keyed");
        assert_ne!(base, cell_key("fig6", 1, &cfg), "index keyed");
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert_ne!(base, cell_key("fig6", 0, &other), "config keyed");
        // Host-side knobs are excluded, like the determinism view.
        let mut threads = cfg.clone();
        threads.engine_threads = 8;
        assert_eq!(
            base,
            cell_key("fig6", 0, &threads),
            "engine_threads excluded"
        );
        let mut no_ff = cfg.clone();
        no_ff.fast_forward = false;
        assert_eq!(base, cell_key("fig6", 0, &no_ff), "fast_forward excluded");
        // The audit changes what a RunResult carries, so it is keyed.
        let mut audited = cfg.clone();
        audited.probe.cycle_audit = true;
        assert_ne!(base, cell_key("fig6", 0, &audited), "cycle_audit keyed");
    }

    #[test]
    fn cache_round_trips_through_disk_and_counts() {
        let dir = std::env::temp_dir().join(format!("gvf-cellcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = WorkloadConfig::tiny();
        let cache = CellCache::new(Some(dir.to_string_lossy().into_owned()), true, true, "t");
        let mut ran = 0;
        let r1 = cache.run(0, &cfg, || {
            ran += 1;
            sample_result()
        });
        let r2 = cache.run(0, &cfg, || {
            ran += 1;
            sample_result()
        });
        assert_eq!(ran, 1, "second run came from the cache");
        results_equal(&r1, &r2);
        // Probed cells bypass the cache.
        let mut probed = cfg.clone();
        probed.probe.timeline_events_per_sm = 16;
        cache.run(0, &probed, || {
            ran += 1;
            sample_result()
        });
        assert_eq!(ran, 2, "observed cell re-simulated");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
