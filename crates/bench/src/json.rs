//! A dependency-free JSON value: deterministic writer plus a strict
//! recursive-descent parser.
//!
//! The workspace builds offline with zero external crates, so the run
//! manifests ([`crate::manifest`]) and their CI validation both go
//! through this module. Design points:
//!
//! - **Deterministic output** — object members keep insertion order,
//!   numbers that are mathematically integral print without a decimal
//!   point, and floats print via Rust's shortest-roundtrip `{}` — so a
//!   manifest diff between a serial and a parallel run is a byte diff.
//! - **Round-trip** — `parse(render(v)) == v` for every value this
//!   module can produce (property-tested in `tests/json_roundtrip.rs`).
//! - The parser accepts any standard JSON document (it exists to
//!   validate our own artifacts in CI, but is not limited to them);
//!   numbers are kept as `f64`, matching how the manifests are written.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers print without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved (and rendered) as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object (panics on non-objects — a
    /// programming error in manifest construction).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`set`](Json::set).
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Member lookup on objects (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a `u64` counter (exact below 2^53, like every
    /// counter we export).
    pub fn num_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Renders with two-space indentation and a trailing newline —
    /// stable, diffable output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Renders on a single line with no indentation or trailing newline
    /// — the JSONL form used by the `gvf.events` stream, where each
    /// event must occupy exactly one line. Same determinism rules as
    /// [`render`](Json::render), and `parse(render_compact(v)) == v`.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (exactly one value plus whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; our counters never produce them, but a
        // derived ratio of a degenerate run could. Null is the honest
        // encoding.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be
                            // followed by a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("utf8"));
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_integers_without_decimal() {
        let v = Json::obj()
            .with("cycles", Json::num_u64(123456))
            .with("rate", Json::Num(0.5));
        let text = v.render();
        assert!(text.contains("\"cycles\": 123456"));
        assert!(text.contains("\"rate\": 0.5"));
        assert!(!text.contains("123456.0"));
    }

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj()
            .with("s", Json::str("he\"llo\\\n\tworld"))
            .with("n", Json::Num(-12.75))
            .with("big", Json::num_u64(1 << 52))
            .with(
                "arr",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Bool(false)]),
            )
            .with("empty_arr", Json::Arr(vec![]))
            .with("empty_obj", Json::obj())
            .with("nested", Json::obj().with("k", Json::str("v")));
        let text = v.render();
        assert_eq!(Json::parse(&text).expect("parse"), v);
    }

    #[test]
    fn parses_standard_json() {
        let v = Json::parse(r#"{"a": [1, 2.5e2, -3], "b": "\u0041\ud83d\ude00", "c": null}"#)
            .expect("parse");
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(250.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("A😀"));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "01a",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn compact_render_is_one_line_and_round_trips() {
        let v = Json::obj()
            .with("ev", Json::str("cellFinished"))
            .with("tMs", Json::num_u64(1234))
            .with("panic", Json::str("line one\nline two"))
            .with("arr", Json::Arr(vec![Json::Null, Json::Num(0.5)]))
            .with("nested", Json::obj().with("k", Json::Bool(true)));
        let line = v.render_compact();
        assert!(!line.contains('\n'), "JSONL events are single lines");
        assert_eq!(Json::parse(&line).expect("parse"), v);
        assert_eq!(
            line,
            r#"{"ev":"cellFinished","tMs":1234,"panic":"line one\nline two","arr":[null,0.5],"nested":{"k":true}}"#
        );
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        let mut out = String::new();
        write_num(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
