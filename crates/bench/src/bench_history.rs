//! `gvf.bench-trajectory` v1 — the repo's performance history.
//!
//! The ROADMAP demands a simulator that runs "as fast as the hardware
//! allows", but until this module the repo had no memory of how fast
//! that ever was: a perf PR could neither prove it helped nor detect
//! that it regressed. `BENCH_gvf.json` at the repo root fixes that —
//! an append-only trajectory of host-throughput samples, one entry per
//! (figure binary × configuration) per recording, written by the
//! `perf_record` binary and checked by `perf_gate`:
//!
//! ```json
//! {
//!   "schema": "gvf.bench-trajectory", "version": 1,
//!   "entries": [{
//!     "bin": "fig6", "rev": "0511809", "date": "2026-08-05",
//!     "samples": 3,
//!     "config": {"smoke": false, "scale": 8, "iterations": 3},
//!     "wall_s": 41.2, "cells": 55, "cells_per_sec": 1.33,
//!     "sim_cycles": 180555444, "sim_cycles_per_sec": 4.4e6,
//!     "total_instrs": 52000000, "mean_ipc": 0.61
//!   }]
//! }
//! ```
//!
//! Design points:
//!
//! - **Samples come from run manifests.** Every figure binary already
//!   embeds a `hostPerf` section; [`sample_from_manifest`] extracts the
//!   throughput sample from it, so recording needs no re-run.
//! - **Median-of-N.** [`record`] groups manifests by (bin, config) and
//!   stores the *median* of each measure — one slow outlier (a noisy
//!   neighbour, a cold cache) cannot poison the trajectory.
//! - **Config-keyed baselines.** Entries carry the simulation config
//!   (smoke/scale/iterations); [`gate`] only compares runs with
//!   matching configs, so a smoke run can never be judged against a
//!   full evaluation.
//! - **Noise-aware gate.** The allowed slowdown is the larger of a
//!   fixed relative floor and a multiple of the baseline's own relative
//!   MAD (median absolute deviation): a naturally noisy baseline
//!   widens its own tolerance instead of crying wolf. A minimum-sample
//!   rule skips (never fails) bins with too little history.
//! - **Timestamps are provenance, not identity.** `rev` and `date`
//!   describe an entry; they take no part in baseline matching or the
//!   gate's arithmetic, and the determinism suite pins that down.
//! - **Benchmark-grade samples only.** Smoke-config runs
//!   (`config.smoke == true`) and sub-second runs measure startup
//!   overhead, not simulation throughput: their wall clock is dominated
//!   by process setup and their relative noise is enormous. Neither
//!   [`record`] nor [`History::baseline`] will touch them, and [`gate`]
//!   skips (never judges) such samples — see
//!   [`sample_is_benchmark_grade`].
//! - **Gate before record.** A sample must be judged against a
//!   baseline that does not contain it: folding the gated run in
//!   first turns a one-entry baseline `[b]` into `[b, x]`, whose
//!   median and MAD shift exactly fast enough that no slowdown can
//!   ever fail — and unconditional appending lets a persistent
//!   regression become the new normal. `run_all.sh` therefore runs
//!   `perf_gate` first and `perf_record` only on a pass.
//!
//! The gate judges **simulated-cycles-per-second**, not wall seconds:
//! it is invariant to how many cells a figure sweeps and degrades
//! gracefully when a config's workload mix changes. What the gate does
//! *not* promise: catching regressions smaller than the noise floor,
//! or comparing across machines — the trajectory is per-checkout
//! history, not a cross-hardware database (DESIGN.md "Host performance
//! & trajectory").

use crate::json::Json;
use crate::manifest::MANIFEST_SCHEMA;
use std::io;

/// Trajectory schema identifier.
pub const TRAJECTORY_SCHEMA: &str = crate::schemas::TRAJECTORY.id;
/// Trajectory schema version; bump on breaking changes.
pub const TRAJECTORY_SCHEMA_VERSION: u32 = crate::schemas::TRAJECTORY.version;
/// Where the trajectory lives, relative to the repo root.
pub const DEFAULT_HISTORY_PATH: &str = "BENCH_gvf.json";
/// Minimum wall seconds for a sample to count as benchmark-grade; runs
/// below it are startup-cost measurements, not throughput measurements.
pub const MIN_BENCH_WALL_S: f64 = 1.0;
/// Samples per (bin, config) group below which the trajectory's
/// MAD-based noise estimate is meaningless — the gate falls back to its
/// fixed threshold. `perf_record` warns when a benchmark-grade entry is
/// folded from fewer manifests; `run_all.sh --samples` (default 3 for
/// full-scale runs) records enough to clear it.
pub const RECOMMENDED_SAMPLES: u64 = 3;

/// Whether a sample is worth folding into (or judging against) the
/// trajectory: a full (non-smoke) configuration that ran for at least
/// [`MIN_BENCH_WALL_S`]. Smoke grids finish in milliseconds and their
/// throughput is all process startup; folding either kind in would
/// poison every baseline statistic they touch.
pub fn sample_is_benchmark_grade(s: &Sample) -> bool {
    !s.config.smoke && s.wall_s >= MIN_BENCH_WALL_S
}

/// The simulation-relevant configuration a sample was measured under.
/// Baselines only form between equal configs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunConfig {
    /// CI smoke mode (tiny grid)?
    pub smoke: bool,
    /// Workload scale multiplier.
    pub scale: u64,
    /// Measured kernel iterations.
    pub iterations: u64,
}

/// One throughput measurement extracted from a run manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Generator (figure binary) name.
    pub bin: String,
    /// Config the run used.
    pub config: RunConfig,
    /// Host wall seconds of the whole run.
    pub wall_s: f64,
    /// Grid cells simulated.
    pub cells: u64,
    /// Cells per host second.
    pub cells_per_sec: f64,
    /// Simulated cycles summed over all cells.
    pub sim_cycles: u64,
    /// Simulated cycles per host second — the gate's metric.
    pub sim_cycles_per_sec: f64,
    /// Dynamic warp instructions summed over all cells.
    pub total_instrs: u64,
    /// Mean per-cell IPC (simulated headline, for the trend plot).
    pub mean_ipc: f64,
}

/// One recorded point of the trajectory: a [`Sample`] (median over
/// `samples` manifests) plus provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryEntry {
    /// Git revision the sample was taken at (provenance only).
    pub rev: String,
    /// UTC date the sample was taken (provenance only).
    pub date: String,
    /// How many manifests the medians were taken over.
    pub samples: u64,
    /// The recorded measurement.
    pub sample: Sample,
}

fn get<'a>(doc: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    doc.get(key)
        .ok_or_else(|| format!("{what}: missing {key:?}"))
}

fn num(doc: &Json, key: &str, what: &str) -> Result<f64, String> {
    get(doc, key, what)?
        .as_num()
        .ok_or_else(|| format!("{what}: {key:?} is not a number"))
}

fn num_u64(doc: &Json, key: &str, what: &str) -> Result<u64, String> {
    Ok(num(doc, key, what)? as u64)
}

fn string(doc: &Json, key: &str, what: &str) -> Result<String, String> {
    Ok(get(doc, key, what)?
        .as_str()
        .ok_or_else(|| format!("{what}: {key:?} is not a string"))?
        .to_string())
}

impl RunConfig {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("smoke", Json::Bool(self.smoke))
            .with("scale", Json::num_u64(self.scale))
            .with("iterations", Json::num_u64(self.iterations))
    }

    fn from_json(doc: &Json) -> Result<RunConfig, String> {
        Ok(RunConfig {
            smoke: get(doc, "smoke", "config")?
                .as_bool()
                .ok_or("config: \"smoke\" is not a bool")?,
            scale: num_u64(doc, "scale", "config")?,
            iterations: num_u64(doc, "iterations", "config")?,
        })
    }
}

impl TrajectoryEntry {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("bin", Json::str(&self.sample.bin))
            .with("rev", Json::str(&self.rev))
            .with("date", Json::str(&self.date))
            .with("samples", Json::num_u64(self.samples))
            .with("config", self.sample.config.to_json())
            .with("wall_s", Json::Num(self.sample.wall_s))
            .with("cells", Json::num_u64(self.sample.cells))
            .with("cells_per_sec", Json::Num(self.sample.cells_per_sec))
            .with("sim_cycles", Json::num_u64(self.sample.sim_cycles))
            .with(
                "sim_cycles_per_sec",
                Json::Num(self.sample.sim_cycles_per_sec),
            )
            .with("total_instrs", Json::num_u64(self.sample.total_instrs))
            .with("mean_ipc", Json::Num(self.sample.mean_ipc))
    }

    fn from_json(doc: &Json) -> Result<TrajectoryEntry, String> {
        Ok(TrajectoryEntry {
            rev: string(doc, "rev", "entry")?,
            date: string(doc, "date", "entry")?,
            samples: num_u64(doc, "samples", "entry")?,
            sample: Sample {
                bin: string(doc, "bin", "entry")?,
                config: RunConfig::from_json(get(doc, "config", "entry")?)?,
                wall_s: num(doc, "wall_s", "entry")?,
                cells: num_u64(doc, "cells", "entry")?,
                cells_per_sec: num(doc, "cells_per_sec", "entry")?,
                sim_cycles: num_u64(doc, "sim_cycles", "entry")?,
                sim_cycles_per_sec: num(doc, "sim_cycles_per_sec", "entry")?,
                total_instrs: num_u64(doc, "total_instrs", "entry")?,
                mean_ipc: num(doc, "mean_ipc", "entry")?,
            },
        })
    }
}

/// The whole trajectory file: an append-only list of entries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct History {
    /// Entries in recording order (oldest first).
    pub entries: Vec<TrajectoryEntry>,
}

impl History {
    /// Serializes to the versioned `gvf.bench-trajectory` document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema", Json::str(TRAJECTORY_SCHEMA))
            .with("version", Json::num_u64(TRAJECTORY_SCHEMA_VERSION as u64))
            .with(
                "entries",
                Json::Arr(self.entries.iter().map(TrajectoryEntry::to_json).collect()),
            )
    }

    /// Parses a `gvf.bench-trajectory` document, checking the header.
    pub fn from_json(doc: &Json) -> Result<History, String> {
        let schema = string(doc, "schema", "trajectory")?;
        if schema != TRAJECTORY_SCHEMA {
            return Err(format!("trajectory: unexpected schema {schema:?}"));
        }
        let version = num_u64(doc, "version", "trajectory")?;
        if version != TRAJECTORY_SCHEMA_VERSION as u64 {
            return Err(format!("trajectory: unsupported version {version}"));
        }
        let entries = get(doc, "entries", "trajectory")?
            .as_arr()
            .ok_or("trajectory: \"entries\" is not an array")?;
        Ok(History {
            entries: entries
                .iter()
                .map(TrajectoryEntry::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Loads a trajectory file; a missing file is an empty history (the
    /// first recording bootstraps it), any other failure is an error.
    pub fn load(path: &str) -> Result<History, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(History::default()),
            Err(e) => return Err(format!("{path}: {e}")),
        };
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        History::from_json(&doc).map_err(|e| format!("{path}: {e}"))
    }

    /// Writes the trajectory back (pretty-rendered, diff-friendly).
    /// Atomic: the document lands in a temp file in the same directory
    /// and is renamed over the target, so an interrupted write can
    /// never leave a truncated file behind — `load` treats anything
    /// unparsable (other than a missing file) as a hard error.
    pub fn save(&self, path: &str) -> io::Result<()> {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, self.to_json().render())?;
        std::fs::rename(&tmp, path)
    }

    /// The baseline for a sample: every recorded **benchmark-grade**
    /// entry of the same bin under the same config, oldest first.
    /// Provenance fields play no part in the match. Smoke or sub-second
    /// entries (from histories written before the grade rule, or edited
    /// by hand) are ignored rather than trusted.
    pub fn baseline(&self, sample: &Sample) -> Vec<&TrajectoryEntry> {
        self.entries
            .iter()
            .filter(|e| {
                e.sample.bin == sample.bin
                    && e.sample.config == sample.config
                    && sample_is_benchmark_grade(&e.sample)
            })
            .collect()
    }
}

/// Whether this manifest's run served any cell from the content-
/// addressed cell cache (`hostPerf.cellCache.cachedCells > 0`). Such a
/// run's wall-clock throughput is inflated — the cached cells cost no
/// simulation time — so `perf_record` and `perf_gate` must skip it:
/// folding it into `BENCH_gvf.json` would poison the baseline and fail
/// honest future runs.
pub fn manifest_used_cell_cache(doc: &Json) -> bool {
    doc.get("hostPerf")
        .and_then(|h| h.get("cellCache"))
        .and_then(|c| c.get("cachedCells"))
        .and_then(Json::as_num)
        .is_some_and(|n| n > 0.0)
}

/// Extracts the throughput [`Sample`] from a `gvf.run-manifest`
/// document (requires the `hostPerf` section every binary now embeds).
pub fn sample_from_manifest(doc: &Json) -> Result<Sample, String> {
    let schema = string(doc, "schema", "manifest")?;
    if schema != MANIFEST_SCHEMA {
        return Err(format!("not a run manifest (schema {schema:?})"));
    }
    let bin = string(doc, "generator", "manifest")?;
    let config = get(doc, "config", "manifest")?;
    let config = RunConfig {
        smoke: get(config, "smoke", "manifest config")?
            .as_bool()
            .ok_or("manifest config: \"smoke\" is not a bool")?,
        scale: num_u64(config, "scale", "manifest config")?,
        iterations: num_u64(config, "iterations", "manifest config")?,
    };
    let host = get(doc, "hostPerf", "manifest")
        .map_err(|_| "manifest has no hostPerf section (pre-telemetry build?)".to_string())?;
    let throughput = get(host, "throughput", "hostPerf")?;
    let cells_records = get(doc, "cells", "manifest")?
        .as_arr()
        .ok_or("manifest: \"cells\" is not an array")?;
    let mut total_instrs = 0u64;
    let mut ipc_sum = 0.0;
    let mut ipc_cells = 0u64;
    for cell in cells_records {
        if let Some(stats) = cell.get("stats") {
            for key in ["instrs_mem", "instrs_compute", "instrs_ctrl"] {
                total_instrs += num_u64(stats, key, "cell stats")?;
            }
        }
        // Average only over cells that actually report an IPC; a cell
        // without one must not drag the mean toward zero.
        if let Some(ipc) = cell
            .get("derived")
            .and_then(|d| d.get("ipc"))
            .and_then(Json::as_num)
        {
            ipc_sum += ipc;
            ipc_cells += 1;
        }
    }
    Ok(Sample {
        bin,
        config,
        wall_s: num(host, "wall_s", "hostPerf")?,
        cells: num_u64(throughput, "cells", "throughput")?,
        cells_per_sec: num(throughput, "cells_per_sec", "throughput")?,
        sim_cycles: num_u64(throughput, "sim_cycles", "throughput")?,
        sim_cycles_per_sec: num(throughput, "sim_cycles_per_sec", "throughput")?,
        total_instrs,
        mean_ipc: if ipc_cells > 0 {
            ipc_sum / ipc_cells as f64
        } else {
            0.0
        },
    })
}

/// Median of `xs`; `0` on empty input. Even-length inputs average the
/// middle pair.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation — the robust spread estimate behind the
/// gate's noise model.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = median(xs);
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// Folds `samples` into `history`: manifests are grouped by
/// (bin, config) in first-seen order, each group becomes one entry
/// holding the **median** of every measure over its N samples. Samples
/// that are not benchmark-grade ([`sample_is_benchmark_grade`]) are
/// silently dropped — a smoke run can never enter the trajectory.
/// Returns the entries appended.
pub fn record(
    history: &mut History,
    samples: &[Sample],
    rev: &str,
    date: &str,
) -> Vec<TrajectoryEntry> {
    let mut groups: Vec<(&Sample, Vec<&Sample>)> = Vec::new();
    for s in samples.iter().filter(|s| sample_is_benchmark_grade(s)) {
        match groups
            .iter_mut()
            .find(|(head, _)| head.bin == s.bin && head.config == s.config)
        {
            Some((_, members)) => members.push(s),
            None => groups.push((s, vec![s])),
        }
    }
    let mut appended = Vec::new();
    for (head, members) in groups {
        let med = |f: fn(&Sample) -> f64| median(&members.iter().map(|s| f(s)).collect::<Vec<_>>());
        let entry = TrajectoryEntry {
            rev: rev.to_string(),
            date: date.to_string(),
            samples: members.len() as u64,
            sample: Sample {
                bin: head.bin.clone(),
                config: head.config.clone(),
                wall_s: med(|s| s.wall_s),
                cells: med(|s| s.cells as f64) as u64,
                cells_per_sec: med(|s| s.cells_per_sec),
                sim_cycles: med(|s| s.sim_cycles as f64) as u64,
                sim_cycles_per_sec: med(|s| s.sim_cycles_per_sec),
                total_instrs: med(|s| s.total_instrs as f64) as u64,
                mean_ipc: med(|s| s.mean_ipc),
            },
        };
        appended.push(entry.clone());
        history.entries.push(entry);
    }
    appended
}

/// Gate thresholds. The allowed relative slowdown is
/// `max(max_regress, noise_mult × MAD/median)` of the baseline.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Fixed relative floor on the allowed slowdown (`0.35` = 35%).
    pub max_regress: f64,
    /// How many baseline-MADs of slowdown to tolerate.
    pub noise_mult: f64,
    /// Baselines backed by fewer underlying samples than this are
    /// skipped, not failed. Counted over [`TrajectoryEntry::samples`]
    /// — a single entry folded from a 3-sample run satisfies a minimum
    /// of 3.
    pub min_samples: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            // Wide floor by default: single-machine wall-clock noise
            // easily reaches tens of percent, and a missed minor
            // regression costs less than a flaky CI gate.
            max_regress: 0.35,
            noise_mult: 4.0,
            // A 1-sample baseline has MAD 0 and all the noise of a
            // single wall-clock measurement; arming against it
            // contradicts the documented skip rule, so demand 3.
            min_samples: 3,
        }
    }
}

/// What the gate concluded for one sample.
#[derive(Clone, Debug, PartialEq)]
pub enum GateVerdict {
    /// Throughput within tolerance of the baseline median.
    Pass {
        /// Current simulated cycles per host second.
        current: f64,
        /// Baseline median of the same measure.
        baseline: f64,
        /// Relative slowdown that would have been tolerated.
        allowed_drop: f64,
    },
    /// Throughput regressed beyond the allowed drop.
    Fail {
        /// Current simulated cycles per host second.
        current: f64,
        /// Baseline median of the same measure.
        baseline: f64,
        /// Relative slowdown that was tolerated.
        allowed_drop: f64,
    },
    /// No comparable baseline (new bin, new config, or below the
    /// minimum-sample rule) — never a failure.
    Skip {
        /// Why the sample was not judged.
        reason: String,
    },
}

/// Judges `sample` against its baseline in `history`. Samples that are
/// not benchmark-grade are skipped, never judged: a smoke run's
/// throughput says nothing about the simulator.
pub fn gate(history: &History, sample: &Sample, cfg: &GateConfig) -> GateVerdict {
    if !sample_is_benchmark_grade(sample) {
        return GateVerdict::Skip {
            reason: format!(
                "{}: not benchmark-grade ({})",
                sample.bin,
                if sample.config.smoke {
                    "smoke config".to_string()
                } else {
                    format!("wall {:.3}s < {MIN_BENCH_WALL_S}s", sample.wall_s)
                }
            ),
        };
    }
    let baseline = history.baseline(sample);
    // Count underlying samples, not entries: `record` folds an N-sample
    // run into ONE entry with `samples: N`.
    let backing: u64 = baseline.iter().map(|e| e.samples.max(1)).sum();
    if backing < cfg.min_samples.max(1) as u64 {
        return GateVerdict::Skip {
            reason: format!(
                "{}: {} baseline sample{} for this config (minimum {})",
                sample.bin,
                backing,
                if backing == 1 { "" } else { "s" },
                cfg.min_samples.max(1)
            ),
        };
    }
    let rates: Vec<f64> = baseline
        .iter()
        .map(|e| e.sample.sim_cycles_per_sec)
        .collect();
    let base_median = median(&rates);
    if base_median <= 0.0 || sample.sim_cycles_per_sec <= 0.0 {
        return GateVerdict::Skip {
            reason: format!("{}: degenerate throughput (zero rate)", sample.bin),
        };
    }
    let noise = mad(&rates) / base_median;
    let allowed_drop = cfg.max_regress.max(cfg.noise_mult * noise);
    let current = sample.sim_cycles_per_sec;
    if current < base_median * (1.0 - allowed_drop) {
        GateVerdict::Fail {
            current,
            baseline: base_median,
            allowed_drop,
        }
    } else {
        GateVerdict::Pass {
            current,
            baseline: base_median,
            allowed_drop,
        }
    }
}

/// `YYYY-MM-DD` (UTC) for an epoch timestamp — Howard Hinnant's
/// civil-from-days, so the workspace stays dependency-free.
pub fn utc_date_from_epoch(epoch_secs: u64) -> String {
    let days = (epoch_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

/// Short git revision of the working tree, `"unknown"` when git is
/// unavailable (provenance only — never load-bearing, see [`gate`]).
pub fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Today's UTC date as `YYYY-MM-DD`.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    utc_date_from_epoch(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bin: &str, rate: f64) -> Sample {
        Sample {
            bin: bin.to_string(),
            config: RunConfig {
                // Benchmark-grade: record/baseline/gate all ignore
                // smoke samples, so the fixtures must be full runs.
                smoke: false,
                scale: 1,
                iterations: 2,
            },
            wall_s: 2.0,
            cells: 10,
            cells_per_sec: 5.0,
            sim_cycles: 1_000_000,
            sim_cycles_per_sec: rate,
            total_instrs: 500_000,
            mean_ipc: 0.5,
        }
    }

    fn entry(bin: &str, rate: f64, rev: &str, date: &str) -> TrajectoryEntry {
        TrajectoryEntry {
            rev: rev.to_string(),
            date: date.to_string(),
            samples: 1,
            sample: sample(bin, rate),
        }
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 9.0]), 5.0);
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(mad(&[1.0, 5.0, 9.0]), 4.0);
    }

    #[test]
    fn record_takes_group_medians() {
        let mut h = History::default();
        let samples = vec![
            sample("fig6", 100.0),
            sample("fig6", 300.0),
            sample("fig6", 200.0),
            sample("fig7", 50.0),
        ];
        let appended = record(&mut h, &samples, "abc", "2026-08-05");
        assert_eq!(appended.len(), 2);
        assert_eq!(appended[0].sample.bin, "fig6");
        assert_eq!(appended[0].samples, 3);
        assert_eq!(appended[0].sample.sim_cycles_per_sec, 200.0);
        assert_eq!(appended[1].sample.bin, "fig7");
        assert_eq!(h.entries.len(), 2);
    }

    /// Smoke-config and sub-second samples never enter the trajectory:
    /// `record` drops them, `baseline` refuses pre-existing ones, and
    /// `gate` skips rather than judges them.
    #[test]
    fn smoke_and_subsecond_samples_are_excluded_everywhere() {
        let mut smoke = sample("fig6", 9e9);
        smoke.config.smoke = true;
        let mut blink = sample("fig6", 9e9);
        blink.wall_s = 0.2;
        assert!(!sample_is_benchmark_grade(&smoke));
        assert!(!sample_is_benchmark_grade(&blink));
        assert!(sample_is_benchmark_grade(&sample("fig6", 1.0)));

        // record(): only the benchmark-grade sample is folded in, and
        // the bogus 9e9 rates leave no trace in the group median.
        let mut h = History::default();
        let appended = record(
            &mut h,
            &[smoke.clone(), sample("fig6", 500.0), blink.clone()],
            "abc",
            "2026-08-08",
        );
        assert_eq!(appended.len(), 1);
        assert_eq!(appended[0].samples, 1);
        assert_eq!(appended[0].sample.sim_cycles_per_sec, 500.0);

        // record() of nothing but dross appends nothing at all.
        assert!(record(&mut h, &[smoke.clone(), blink.clone()], "abc", "2026-08-08").is_empty());

        // baseline(): entries that predate the grade rule (or were
        // edited by hand) are ignored even when the config matches.
        let mut tainted = History::default();
        tainted
            .entries
            .push(entry("fig6", 9e9, "old", "2020-01-01"));
        tainted.entries[0].sample.wall_s = 0.1;
        let probe = sample("fig6", 400.0);
        assert!(tainted.baseline(&probe).is_empty());

        // gate(): a non-grade probe is skipped, never judged — even
        // against a baseline that would otherwise fail it hard.
        let cfg = GateConfig::default();
        let mut strong = History::default();
        record(
            &mut strong,
            &[
                sample("fig6", 1000.0),
                sample("fig6", 1000.0),
                sample("fig6", 1000.0),
            ],
            "abc",
            "2026-08-08",
        );
        let mut slow_smoke = sample("fig6", 1.0);
        slow_smoke.config.smoke = true;
        assert!(matches!(
            gate(&strong, &slow_smoke, &cfg),
            GateVerdict::Skip { .. }
        ));
        let mut slow_blink = sample("fig6", 1.0);
        slow_blink.wall_s = 0.5;
        assert!(matches!(
            gate(&strong, &slow_blink, &cfg),
            GateVerdict::Skip { .. }
        ));
    }

    #[test]
    fn gate_passes_fresh_baseline_and_fails_synthetic_slowdown() {
        let mut h = History::default();
        // Three samples fold into ONE entry with samples=3 — enough
        // backing for the default min_samples of 3.
        record(
            &mut h,
            &[
                sample("fig6", 1000.0),
                sample("fig6", 1000.0),
                sample("fig6", 1000.0),
            ],
            "abc",
            "2026-08-05",
        );
        let cfg = GateConfig::default();
        // The very sample just recorded must pass against itself.
        assert!(matches!(
            gate(&h, &sample("fig6", 1000.0), &cfg),
            GateVerdict::Pass { .. }
        ));
        // A synthetic 10× slowdown must fail.
        assert!(matches!(
            gate(&h, &sample("fig6", 100.0), &cfg),
            GateVerdict::Fail { .. }
        ));
        // Slightly slower than the floor allows: still a pass.
        assert!(matches!(
            gate(&h, &sample("fig6", 700.0), &cfg),
            GateVerdict::Pass { .. }
        ));
    }

    #[test]
    fn gate_skips_missing_or_mismatched_baselines() {
        let h = History::default();
        let cfg = GateConfig::default();
        assert!(matches!(
            gate(&h, &sample("fig6", 1000.0), &cfg),
            GateVerdict::Skip { .. }
        ));
        // Same bin, different config → no baseline.
        let mut h = History::default();
        record(&mut h, &[sample("fig6", 1000.0)], "abc", "2026-08-05");
        let mut full = sample("fig6", 100.0);
        full.config.smoke = false;
        assert!(matches!(gate(&h, &full, &cfg), GateVerdict::Skip { .. }));
        // Minimum-sample rule at the default of 3: a 1-sample baseline
        // (MAD 0) must be skipped, not armed against…
        assert!(matches!(
            gate(&h, &sample("fig6", 100.0), &cfg),
            GateVerdict::Skip { .. }
        ));
        // …and a 2-sample baseline as well, whether the samples arrive
        // as two entries or would fold into one.
        record(&mut h, &[sample("fig6", 990.0)], "def", "2026-08-05");
        assert!(matches!(
            gate(&h, &sample("fig6", 100.0), &cfg),
            GateVerdict::Skip { .. }
        ));
        // The third sample arms the gate: the slowdown now fails.
        record(&mut h, &[sample("fig6", 1010.0)], "ghi", "2026-08-05");
        assert!(matches!(
            gate(&h, &sample("fig6", 100.0), &cfg),
            GateVerdict::Fail { .. }
        ));
        // A single entry whose `samples` field records a folded
        // 3-sample run satisfies the minimum on its own.
        let mut folded = History::default();
        let mut e = entry("fig6", 1000.0, "abc", "2026-08-05");
        e.samples = 3;
        folded.entries.push(e);
        assert!(matches!(
            gate(&folded, &sample("fig6", 100.0), &cfg),
            GateVerdict::Fail { .. }
        ));
    }

    #[test]
    fn noisy_baseline_widens_its_own_tolerance() {
        let mut h = History::default();
        // Relative MAD = 0.2; with noise_mult 4 the allowed drop is 80%.
        for rate in [800.0, 1000.0, 1200.0] {
            h.entries.push(entry("fig6", rate, "r", "d"));
        }
        let cfg = GateConfig {
            max_regress: 0.1,
            noise_mult: 4.0,
            min_samples: 1,
        };
        match gate(&h, &sample("fig6", 500.0), &cfg) {
            GateVerdict::Pass { allowed_drop, .. } => {
                assert!((allowed_drop - 0.8).abs() < 1e-9);
            }
            v => panic!("expected pass, got {v:?}"),
        }
        assert!(matches!(
            gate(&h, &sample("fig6", 100.0), &cfg),
            GateVerdict::Fail { .. }
        ));
    }

    #[test]
    fn gate_must_run_before_record_to_catch_regressions() {
        // The pipeline contract run_all.sh relies on: judged against a
        // pristine baseline, a 10× slowdown fails…
        let cfg = GateConfig::default();
        let mut h = History::default();
        record(
            &mut h,
            &[
                sample("fig6", 1000.0),
                sample("fig6", 1000.0),
                sample("fig6", 1000.0),
            ],
            "base",
            "2026-08-01",
        );
        let slow = sample("fig6", 100.0);
        assert!(matches!(gate(&h, &slow, &cfg), GateVerdict::Fail { .. }));
        // …but once the regressed run is folded into its own baseline
        // the group [1000, 100] has median 550 and MAD 450, the
        // noise-widened tolerance exceeds 100%, and the identical
        // slowdown sails through. This is why recording happens only
        // after a pass — pin the failure mode so nobody "simplifies"
        // the ordering back.
        record(&mut h, std::slice::from_ref(&slow), "regr", "2026-08-02");
        assert!(matches!(gate(&h, &slow, &cfg), GateVerdict::Pass { .. }));
    }

    #[test]
    fn save_is_atomic_and_round_trips() {
        let path = std::env::temp_dir().join(format!(
            "gvf_bench_trajectory_test_{}.json",
            std::process::id()
        ));
        let path = path.to_str().expect("utf-8 temp path").to_string();
        let mut h = History::default();
        h.entries.push(entry("fig6", 42.5, "abc1234", "2026-08-05"));
        h.save(&path).expect("save");
        // The temp file must not survive a successful save.
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        assert_eq!(History::load(&path).expect("load"), h);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn provenance_fields_do_not_affect_the_gate() {
        let cfg = GateConfig::default();
        let mut a = History::default();
        let mut b = History::default();
        a.entries.push(entry("fig6", 1000.0, "aaaa", "2020-01-01"));
        b.entries.push(entry("fig6", 1000.0, "bbbb", "2026-08-05"));
        let probe = sample("fig6", 900.0);
        assert_eq!(gate(&a, &probe, &cfg), gate(&b, &probe, &cfg));
    }

    #[test]
    fn history_round_trips_through_json() {
        let mut h = History::default();
        h.entries
            .push(entry("fig6", 123.25, "abc1234", "2026-08-05"));
        h.entries
            .push(entry("table1", 7.5, "abc1234", "2026-08-05"));
        let doc = h.to_json();
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(History::from_json(&parsed).expect("decode"), h);
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(utc_date_from_epoch(0), "1970-01-01");
        assert_eq!(utc_date_from_epoch(86_400), "1970-01-02");
        // 2000-02-29 (leap day): 951782400.
        assert_eq!(utc_date_from_epoch(951_782_400), "2000-02-29");
        // 2026-08-05: 1785888000.
        assert_eq!(utc_date_from_epoch(1_785_888_000), "2026-08-05");
    }
}
