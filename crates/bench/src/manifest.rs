//! Versioned, machine-readable run manifests for the figure binaries.
//!
//! Every grid binary can emit three artifacts next to its stdout table
//! (see [`crate::cli::HarnessOpts`]):
//!
//! - `--json-out` — the **run manifest** (`gvf.run-manifest` v1):
//!   generator name, the simulation-relevant config, and one record per
//!   grid cell with its raw [`Stats`] counters plus derived metrics.
//!   The config section deliberately excludes host-side knobs
//!   (`--jobs`, `--engine-threads`), and the only wall-clock data is
//!   the `hostPerf` section ([`crate::hostperf`], schema
//!   `gvf.hostperf` v1) — which the determinism diff **strips** via
//!   [`strip_host_perf`], so a serial and a parallel run of the same
//!   grid still compare byte-identical (`validate_json --det-diff`,
//!   the CI gate).
//! - `--trace-out` — a Chrome trace-event / Perfetto timeline
//!   ([`gvf_sim::timeline`]) recorded from the grid's first cell.
//! - `--metrics-out` — the per-epoch metrics time series
//!   (`gvf.metrics` v1) from the first cell: per-bucket IPC, hit rates
//!   and stall mix.
//!
//! Schema versioning: the `schema`/`version` header is bumped on any
//! breaking field change; consumers must check it (DESIGN.md
//! "Observability").

use crate::cli::HarnessOpts;
use crate::json::Json;
use gvf_sim::{write_chrome_trace, EpochSeries, ObsReport, StallCause, Stats};
use std::io::{self, Write};

/// Manifest schema identifier.
pub const MANIFEST_SCHEMA: &str = "gvf.run-manifest";
/// Manifest schema version; bump on breaking changes.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;
/// Metrics-series schema identifier.
pub const METRICS_SCHEMA: &str = "gvf.metrics";
/// Metrics-series schema version; bump on breaking changes.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// One grid cell of a figure run: identifying coordinates (workload,
/// strategy, knob values...) plus the measured counters.
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// Cell coordinates and per-cell extras, in display order.
    pub meta: Vec<(String, Json)>,
    /// The cell's raw counters.
    pub stats: Stats,
}

impl CellRecord {
    /// A record with the two coordinates every figure grid has.
    pub fn new(workload: &str, strategy: &str, stats: &Stats) -> Self {
        CellRecord {
            meta: vec![
                ("workload".to_string(), Json::str(workload)),
                ("strategy".to_string(), Json::str(strategy)),
            ],
            stats: stats.clone(),
        }
    }

    /// Appends an extra coordinate / measurement (builder style).
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.meta.push((key.to_string(), value));
        self
    }
}

/// Serializes every raw counter of [`Stats`]. Tagged arrays become
/// objects keyed by cause label, so the manifest stays readable without
/// the enum definition.
pub fn stats_json(s: &Stats) -> Json {
    let mut stalls = Json::obj();
    let mut loads = Json::obj();
    for cause in StallCause::all() {
        stalls.set(cause.label(), Json::num_u64(s.stall_by_tag[cause.index()]));
        if let StallCause::Access(tag) = cause {
            loads.set(cause.label(), Json::num_u64(s.load_transactions(tag)));
        }
    }
    Json::obj()
        .with("cycles", Json::num_u64(s.cycles))
        .with("instrs_mem", Json::num_u64(s.instrs_mem))
        .with("instrs_compute", Json::num_u64(s.instrs_compute))
        .with("instrs_ctrl", Json::num_u64(s.instrs_ctrl))
        .with(
            "global_load_transactions",
            Json::num_u64(s.global_load_transactions),
        )
        .with(
            "global_store_transactions",
            Json::num_u64(s.global_store_transactions),
        )
        .with("l1_accesses", Json::num_u64(s.l1_accesses))
        .with("l1_hits", Json::num_u64(s.l1_hits))
        .with("l2_accesses", Json::num_u64(s.l2_accesses))
        .with("l2_hits", Json::num_u64(s.l2_hits))
        .with("dram_accesses", Json::num_u64(s.dram_accesses))
        .with("const_accesses", Json::num_u64(s.const_accesses))
        .with("const_hits", Json::num_u64(s.const_hits))
        .with("warps", Json::num_u64(s.warps))
        .with("vfunc_calls", Json::num_u64(s.vfunc_calls))
        .with("stall_by_cause", stalls)
        .with("load_transactions_by_tag", loads)
}

/// The derived metrics the paper's figures plot, computed through the
/// canonical [`Stats`] helpers so manifest and stdout can never
/// disagree.
pub fn derived_json(s: &Stats) -> Json {
    let (a, b, c) = s.dispatch_latency_breakdown();
    Json::obj()
        .with("ipc", Json::Num(s.ipc()))
        .with("l1_hit_rate", Json::Num(s.l1_hit_rate()))
        .with("l2_hit_rate", Json::Num(s.l2_hit_rate()))
        .with("vfunc_pki", Json::Num(s.vfunc_pki()))
        .with(
            "dispatch_latency_breakdown",
            Json::obj()
                .with("vtable_load", Json::Num(a))
                .with("vfunc_load", Json::Num(b))
                .with("indirect_call", Json::Num(c)),
        )
}

/// Removes the wall-clock-dependent `hostPerf` section, producing the
/// canonical **determinism view** of a manifest: two runs of the same
/// grid — serial or parallel, fast machine or slow — must render this
/// view byte-identically. Everything else is untouched.
pub fn strip_host_perf(doc: &Json) -> Json {
    match doc {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "hostPerf")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Builds the `gvf.run-manifest` document. The config section contains
/// only simulation-relevant knobs (see the module docs for why);
/// [`emit`] appends the stripped-by-diff `hostPerf` section on top of
/// this deterministic core.
pub fn manifest(generator: &str, opts: &HarnessOpts, cells: &[CellRecord]) -> Json {
    let config = Json::obj()
        .with("scale", Json::num_u64(opts.cfg.scale as u64))
        .with("iterations", Json::num_u64(opts.cfg.iterations as u64))
        .with("seed", Json::num_u64(opts.cfg.seed))
        .with("smoke", Json::Bool(opts.smoke));
    let records: Vec<Json> = cells
        .iter()
        .map(|cell| {
            let mut rec = Json::obj();
            for (k, v) in &cell.meta {
                rec.set(k, v.clone());
            }
            rec.with("stats", stats_json(&cell.stats))
                .with("derived", derived_json(&cell.stats))
        })
        .collect();
    Json::obj()
        .with("schema", Json::str(MANIFEST_SCHEMA))
        .with("version", Json::num_u64(MANIFEST_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with("config", config)
        .with("cells", Json::Arr(records))
}

fn series_json(series: &EpochSeries) -> Json {
    let buckets: Vec<Json> = series
        .buckets()
        .iter()
        .map(|b| {
            let width = series.bucket_cycles();
            let mut stalls = Json::obj();
            for cause in StallCause::all() {
                stalls.set(
                    cause.label(),
                    Json::num_u64(b.stall_by_cause[cause.index()]),
                );
            }
            Json::obj()
                .with("instrs", Json::num_u64(b.instrs))
                .with("ipc", Json::Num(b.instrs as f64 / width as f64))
                .with("l1_accesses", Json::num_u64(b.l1_accesses))
                .with("l1_hits", Json::num_u64(b.l1_hits))
                .with("l2_accesses", Json::num_u64(b.l2_accesses))
                .with("l2_hits", Json::num_u64(b.l2_hits))
                .with("dram_accesses", Json::num_u64(b.dram_accesses))
                .with("stall_by_cause", stalls)
        })
        .collect();
    Json::obj()
        .with("bucket_cycles", Json::num_u64(series.bucket_cycles()))
        .with("buckets", Json::Arr(buckets))
}

/// Builds the `gvf.metrics` document from a recorded [`ObsReport`].
pub fn metrics_doc(generator: &str, obs: &ObsReport) -> Json {
    Json::obj()
        .with("schema", Json::str(METRICS_SCHEMA))
        .with("version", Json::num_u64(METRICS_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with(
            "kernels",
            Json::Arr(obs.kernel_series.iter().map(series_json).collect()),
        )
}

fn write_file(path: &str, contents: &[u8]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(contents)?;
    eprintln!("wrote {path}");
    Ok(())
}

/// Emits whatever artifacts the flags asked for: the manifest to
/// `--json-out`, the first probed cell's timeline to `--trace-out`, and
/// its metrics series to `--metrics-out`. `obs` is the report taken
/// from the probed cell (`None` when recording was off or nothing
/// fired — the timeline/metrics files are still written, empty, so a
/// pipeline consuming them never sees a missing file). Exits the
/// process with an error on I/O failure: an unwritable artifact path is
/// a fatal misuse, not a degraded run.
pub fn emit(opts: &HarnessOpts, generator: &str, cells: &[CellRecord], obs: Option<&ObsReport>) {
    let run = || -> io::Result<()> {
        if let Some(path) = &opts.json_out {
            let total_sim_cycles: u64 = cells.iter().map(|c| c.stats.cycles).sum();
            let doc = manifest(generator, opts, cells).with(
                "hostPerf",
                crate::hostperf::host_perf_json(total_sim_cycles),
            );
            write_file(path, doc.render().as_bytes())?;
        }
        let empty = ObsReport::default();
        let obs = obs.unwrap_or(&empty);
        if let Some(path) = &opts.trace_out {
            let mut buf = Vec::new();
            write_chrome_trace(&mut buf, &obs.events, obs.events_dropped)?;
            write_file(path, &buf)?;
        }
        if let Some(path) = &opts.metrics_out {
            write_file(path, metrics_doc(generator, obs).render().as_bytes())?;
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("error: failed to write artifact: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> Stats {
        let mut s = Stats::new();
        s.cycles = 1000;
        s.instrs_mem = 100;
        s.instrs_compute = 400;
        s.l1_accesses = 64;
        s.l1_hits = 32;
        s.vfunc_calls = 10;
        s.stall_by_tag[0] = 77;
        s.load_transactions_by_tag[0] = 12;
        s
    }

    #[test]
    fn stats_round_trip_through_parser() {
        let doc = stats_json(&sample_stats());
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed
                .get("stall_by_cause")
                .and_then(|s| s.get("vtable-ptr"))
                .and_then(Json::as_num),
            Some(77.0)
        );
    }

    #[test]
    fn derived_uses_canonical_helpers() {
        let s = sample_stats();
        let doc = derived_json(&s);
        assert_eq!(doc.get("ipc").and_then(Json::as_num), Some(s.ipc()));
        assert_eq!(
            doc.get("l1_hit_rate").and_then(Json::as_num),
            Some(s.l1_hit_rate())
        );
    }

    #[test]
    fn strip_host_perf_removes_only_that_section() {
        let core = Json::obj()
            .with("schema", Json::str(MANIFEST_SCHEMA))
            .with("cells", Json::Arr(vec![Json::obj()]));
        let with_perf = core
            .clone()
            .with("hostPerf", Json::obj().with("wall_s", Json::Num(1.25)));
        assert_eq!(strip_host_perf(&with_perf), core);
        assert_eq!(strip_host_perf(&core), core);
        // Non-objects pass through untouched.
        assert_eq!(strip_host_perf(&Json::Null), Json::Null);
    }

    #[test]
    fn metrics_doc_has_schema_header() {
        let doc = metrics_doc("test", &ObsReport::default());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(METRICS_SCHEMA)
        );
        assert_eq!(
            doc.get("kernels").and_then(Json::as_arr).map(<[_]>::len),
            Some(0)
        );
    }
}
