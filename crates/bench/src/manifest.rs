//! Versioned, machine-readable run manifests for the figure binaries.
//!
//! Every grid binary can emit three artifacts next to its stdout table
//! (see [`crate::cli::HarnessOpts`]):
//!
//! - `--json-out` — the **run manifest** (`gvf.run-manifest` v2):
//!   generator name, the simulation-relevant config, and one record per
//!   grid cell with its raw [`Stats`] counters plus derived metrics;
//!   sweeps with dead cells instead record `"status": "failed"` entries
//!   per cell (see [`emit_failures`]).
//!   The config section deliberately excludes host-side knobs
//!   (`--jobs`, `--engine-threads`), and the only wall-clock data is
//!   the `hostPerf` section ([`crate::hostperf`], schema
//!   `gvf.hostperf` v1) — which the determinism diff **strips** via
//!   [`strip_host_perf`], so a serial and a parallel run of the same
//!   grid still compare byte-identical (`validate_json --det-diff`,
//!   the CI gate).
//! - `--trace-out` — a Chrome trace-event / Perfetto timeline
//!   ([`gvf_sim::timeline`]) recorded from the grid's first cell.
//! - `--metrics-out` — the per-epoch metrics time series
//!   (`gvf.metrics` v1) from the first cell: per-bucket IPC, hit rates
//!   and stall mix.
//! - `--attrib-out` — the **mechanism attribution** report
//!   (`gvf.attribution` v1): per-PC load/coalescing/L1 evidence from
//!   the [`gvf_sim::AttributionProbe`], per-set cache contention,
//!   reuse-distance histograms, and the allocator / lookup / tag
//!   introspection snapshots, one entry per grid cell. Each cell also
//!   carries a copy of its [`Stats`] load-transaction counters, so the
//!   document is *self-checking*: summed per-PC transactions must equal
//!   the counter for every tag (`validate_json` and `report` both
//!   enforce this). The document contains no wall-clock data, so serial
//!   and parallel runs emit byte-identical files.
//! - `--audit-out` — the **cycle audit** (`gvf.cycleaudit` v1): per
//!   cell, every simulated epoch-cycle classified as active /
//!   stalled-known / stalled-other / drained / skipped / tail, the
//!   fast-forwardable-gap histogram with an upper-bound speedup
//!   estimate, and per-call-site observed-type-set summaries. Like
//!   attribution it is self-checking — the six classes must sum to
//!   `sms × auditedCycles`, and `auditedCycles` must equal the cell's
//!   [`Stats`] cycle counter — and wall-clock-free: serial and parallel
//!   runs emit byte-identical documents.
//! - `--profile-out` — the **host span profile** (`gvf.hostprofile`
//!   v1): the [`gvf_sim::spans`] hierarchical wall-time breakdown of
//!   this process (inclusive/exclusive ns per span path, plus a
//!   collapsed-stack rendering for flamegraph tools). Wall-clock data
//!   through and through — excluded from determinism diffs exactly
//!   like `hostPerf`.
//!
//! Schema versioning: the `schema`/`version` header is bumped on any
//! breaking field change; consumers must check it (DESIGN.md
//! "Observability").

use crate::cli::HarnessOpts;
use crate::json::Json;
use gvf_core::{LookupAttrib, TagAttrib};
use gvf_sim::{
    write_chrome_trace, AccessTag, AttribReport, CycleAuditReport, EpochSeries, LineClass, LogHist,
    ObsReport, PcLoadStats, StallCause, Stats,
};
use gvf_workloads::{AllocAttribSnapshot, AttribBundle, RunResult};
use std::io::{self, Write};

/// Manifest schema identifier (see [`crate::schemas::RUN_MANIFEST`]).
pub const MANIFEST_SCHEMA: &str = crate::schemas::RUN_MANIFEST.id;
/// Manifest schema version; bump on breaking changes.
///
/// v2 adds per-cell fault isolation: a sweep with dead cells records
/// them as `"status": "failed"` entries (index, panic payload, config
/// fingerprint) alongside the surviving cells' full records. A run with
/// no failures emits exactly the v1 body — a lossless v1 view — with
/// only this version number bumped.
pub const MANIFEST_SCHEMA_VERSION: u32 = crate::schemas::RUN_MANIFEST.version;
/// Metrics-series schema identifier.
pub const METRICS_SCHEMA: &str = crate::schemas::METRICS.id;
/// Metrics-series schema version; bump on breaking changes.
pub const METRICS_SCHEMA_VERSION: u32 = crate::schemas::METRICS.version;
/// Attribution-report schema identifier.
pub const ATTRIB_SCHEMA: &str = crate::schemas::ATTRIBUTION.id;
/// Attribution-report schema version; bump on breaking changes.
pub const ATTRIB_SCHEMA_VERSION: u32 = crate::schemas::ATTRIBUTION.version;
/// Host-span-profile schema identifier.
pub const HOSTPROFILE_SCHEMA: &str = crate::schemas::HOSTPROFILE.id;
/// Host-span-profile schema version; bump on breaking changes.
pub const HOSTPROFILE_SCHEMA_VERSION: u32 = crate::schemas::HOSTPROFILE.version;
/// Cycle-audit schema identifier.
pub const CYCLEAUDIT_SCHEMA: &str = crate::schemas::CYCLEAUDIT.id;
/// Cycle-audit schema version; bump on breaking changes.
pub const CYCLEAUDIT_SCHEMA_VERSION: u32 = crate::schemas::CYCLEAUDIT.version;

/// Call sites listed individually in a cycle-audit cell, by descending
/// call count; the rest are summarized in the class counters.
pub const CYCLEAUDIT_TOP_SITES: usize = 16;

/// One grid cell of a figure run: identifying coordinates (workload,
/// strategy, knob values...) plus the measured counters.
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// Cell coordinates and per-cell extras, in display order.
    pub meta: Vec<(String, Json)>,
    /// The cell's raw counters.
    pub stats: Stats,
    /// The cell's mechanism-attribution bundle, when the run recorded
    /// one (`--attrib-out`). Travels with the record so the attribution
    /// document's cells mirror the manifest's cells one-for-one.
    pub attrib: Option<AttribBundle>,
    /// The cell's cycle-audit report, when the run recorded one
    /// (`--audit-out`). Travels with the record for the same reason.
    pub audit: Option<CycleAuditReport>,
}

impl CellRecord {
    /// A record with the two coordinates every figure grid has.
    pub fn new(workload: &str, strategy: &str, stats: &Stats) -> Self {
        CellRecord {
            meta: vec![
                ("workload".to_string(), Json::str(workload)),
                ("strategy".to_string(), Json::str(strategy)),
            ],
            stats: stats.clone(),
            attrib: None,
            audit: None,
        }
    }

    /// A record carrying a run's full evidence: its [`Stats`] plus the
    /// attribution bundle and cycle audit when the run recorded them.
    pub fn of(workload: &str, strategy: &str, r: &RunResult) -> Self {
        let mut rec = CellRecord::new(workload, strategy, &r.stats);
        rec.attrib = r.attrib.clone();
        rec.audit = r.audit.clone();
        rec
    }

    /// Appends an extra coordinate / measurement (builder style).
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.meta.push((key.to_string(), value));
        self
    }
}

/// Serializes every raw counter of [`Stats`]. Tagged arrays become
/// objects keyed by cause label, so the manifest stays readable without
/// the enum definition.
pub fn stats_json(s: &Stats) -> Json {
    let mut stalls = Json::obj();
    let mut loads = Json::obj();
    for cause in StallCause::all() {
        stalls.set(cause.label(), Json::num_u64(s.stall_by_tag[cause.index()]));
        if let StallCause::Access(tag) = cause {
            loads.set(cause.label(), Json::num_u64(s.load_transactions(tag)));
        }
    }
    Json::obj()
        .with("cycles", Json::num_u64(s.cycles))
        .with("instrs_mem", Json::num_u64(s.instrs_mem))
        .with("instrs_compute", Json::num_u64(s.instrs_compute))
        .with("instrs_ctrl", Json::num_u64(s.instrs_ctrl))
        .with(
            "global_load_transactions",
            Json::num_u64(s.global_load_transactions),
        )
        .with(
            "global_store_transactions",
            Json::num_u64(s.global_store_transactions),
        )
        .with("l1_accesses", Json::num_u64(s.l1_accesses))
        .with("l1_hits", Json::num_u64(s.l1_hits))
        .with("l2_accesses", Json::num_u64(s.l2_accesses))
        .with("l2_hits", Json::num_u64(s.l2_hits))
        .with("dram_accesses", Json::num_u64(s.dram_accesses))
        .with("const_accesses", Json::num_u64(s.const_accesses))
        .with("const_hits", Json::num_u64(s.const_hits))
        .with("warps", Json::num_u64(s.warps))
        .with("vfunc_calls", Json::num_u64(s.vfunc_calls))
        .with("stall_by_cause", stalls)
        .with("load_transactions_by_tag", loads)
}

/// The derived metrics the paper's figures plot, computed through the
/// canonical [`Stats`] helpers so manifest and stdout can never
/// disagree.
pub fn derived_json(s: &Stats) -> Json {
    let (a, b, c) = s.dispatch_latency_breakdown();
    Json::obj()
        .with("ipc", Json::Num(s.ipc()))
        .with("l1_hit_rate", Json::Num(s.l1_hit_rate()))
        .with("l2_hit_rate", Json::Num(s.l2_hit_rate()))
        .with("vfunc_pki", Json::Num(s.vfunc_pki()))
        .with(
            "dispatch_latency_breakdown",
            Json::obj()
                .with("vtable_load", Json::Num(a))
                .with("vfunc_load", Json::Num(b))
                .with("indirect_call", Json::Num(c)),
        )
}

/// Removes the wall-clock-dependent `hostPerf` section, producing the
/// canonical **determinism view** of a manifest: two runs of the same
/// grid — serial or parallel, fast machine or slow — must render this
/// view byte-identically. Everything else is untouched.
pub fn strip_host_perf(doc: &Json) -> Json {
    match doc {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "hostPerf")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Builds the `gvf.run-manifest` document. The config section contains
/// only simulation-relevant knobs (see the module docs for why);
/// [`emit`] appends the stripped-by-diff `hostPerf` section on top of
/// this deterministic core.
pub fn manifest(generator: &str, opts: &HarnessOpts, cells: &[CellRecord]) -> Json {
    let records: Vec<Json> = cells
        .iter()
        .map(|cell| {
            let mut rec = Json::obj();
            for (k, v) in &cell.meta {
                rec.set(k, v.clone());
            }
            rec.with("stats", stats_json(&cell.stats))
                .with("derived", derived_json(&cell.stats))
        })
        .collect();
    Json::obj()
        .with("schema", Json::str(MANIFEST_SCHEMA))
        .with("version", Json::num_u64(MANIFEST_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with("config", config_json(opts))
        .with("cells", Json::Arr(records))
}

/// The simulation-relevant config section shared by the manifest and
/// the attribution document (host-side knobs deliberately excluded).
///
/// `configFingerprint` is the run-level config-grid fingerprint, taken
/// with probes forced OFF so it matches the `gvf.events` `runStart`
/// fingerprint (probes are applied per-cell and never change results) —
/// a probed and an unprobed run of the same grid fingerprint alike.
/// `rundiff` pairs runs on it.
fn config_json(opts: &HarnessOpts) -> Json {
    let mut base = opts.cfg.clone();
    base.probe = gvf_sim::ProbeSpec::OFF;
    Json::obj()
        .with("scale", Json::num_u64(opts.cfg.scale as u64))
        .with("iterations", Json::num_u64(opts.cfg.iterations as u64))
        .with("seed", Json::num_u64(opts.cfg.seed))
        .with("smoke", Json::Bool(opts.smoke))
        .with(
            "configFingerprint",
            Json::str(crate::cellcache::config_fingerprint(&base)),
        )
}

fn series_json(series: &EpochSeries) -> Json {
    let buckets: Vec<Json> = series
        .buckets()
        .iter()
        .map(|b| {
            let width = series.bucket_cycles();
            let mut stalls = Json::obj();
            for cause in StallCause::all() {
                stalls.set(
                    cause.label(),
                    Json::num_u64(b.stall_by_cause[cause.index()]),
                );
            }
            Json::obj()
                .with("instrs", Json::num_u64(b.instrs))
                .with("ipc", Json::Num(b.instrs as f64 / width as f64))
                .with("l1_accesses", Json::num_u64(b.l1_accesses))
                .with("l1_hits", Json::num_u64(b.l1_hits))
                .with("l2_accesses", Json::num_u64(b.l2_accesses))
                .with("l2_hits", Json::num_u64(b.l2_hits))
                .with("dram_accesses", Json::num_u64(b.dram_accesses))
                .with("stall_by_cause", stalls)
        })
        .collect();
    Json::obj()
        .with("bucket_cycles", Json::num_u64(series.bucket_cycles()))
        .with("buckets", Json::Arr(buckets))
}

/// Builds the `gvf.metrics` document from a recorded [`ObsReport`].
pub fn metrics_doc(generator: &str, obs: &ObsReport) -> Json {
    Json::obj()
        .with("schema", Json::str(METRICS_SCHEMA))
        .with("version", Json::num_u64(METRICS_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with(
            "kernels",
            Json::Arr(obs.kernel_series.iter().map(series_json).collect()),
        )
}

/// Sparse rendering of a [`LogHist`]: only populated buckets, each with
/// its index, inclusive lower bound, and count.
fn log_hist_json(h: &LogHist) -> Json {
    Json::Arr(
        h.counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| {
                Json::obj()
                    .with("bucket", Json::num_u64(i as u64))
                    .with("lo", Json::num_u64(LogHist::bucket_lo(i)))
                    .with("count", Json::num_u64(c))
            })
            .collect(),
    )
}

fn u64_array(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::num_u64(x)).collect())
}

/// The stable schema label of an access tag (shared with the manifest's
/// `load_transactions_by_tag` keys, so consumers join on one namespace).
fn tag_label(tag: AccessTag) -> &'static str {
    StallCause::Access(tag).label()
}

fn pc_load_fields(mut obj: Json, s: &PcLoadStats) -> Json {
    obj.set("instructions", Json::num_u64(s.instructions));
    obj.set("lanes", Json::num_u64(s.lanes));
    obj.set("transactions", Json::num_u64(s.transactions));
    obj.set("l1_hits", Json::num_u64(s.l1_hits));
    obj
}

/// The probe half of a cell's attribution: per-PC loads, per-tag totals
/// with coalescing ratios, per-set L1 contention, and reuse histograms.
fn attrib_probe_json(r: &AttribReport) -> Json {
    let per_pc: Vec<Json> = r
        .per_pc
        .iter()
        .map(|(&(pc, tag_idx), s)| {
            let head = Json::obj()
                .with("pc", Json::num_u64(pc as u64))
                .with("tag", Json::str(tag_label(AccessTag::ALL[tag_idx])));
            pc_load_fields(head, s)
        })
        .collect();
    let mut by_tag = Json::obj();
    for tag in AccessTag::ALL {
        let t = r.totals_by_tag(tag);
        if t == PcLoadStats::default() {
            continue;
        }
        let mut entry = pc_load_fields(Json::obj(), &t);
        // Coalescing evidence: lanes per transaction (32 = perfectly
        // converged) and transactions per load instruction.
        entry.set(
            "lanes_per_transaction",
            if t.transactions > 0 {
                Json::Num(t.lanes as f64 / t.transactions as f64)
            } else {
                Json::Null
            },
        );
        entry.set(
            "transactions_per_instruction",
            if t.instructions > 0 {
                Json::Num(t.transactions as f64 / t.instructions as f64)
            } else {
                Json::Null
            },
        );
        by_tag.set(tag_label(tag), entry);
    }
    let mut reuse = Json::obj();
    for class in LineClass::ALL {
        reuse.set(
            class.label(),
            Json::obj()
                .with("cold_lines", Json::num_u64(r.cold_lines[class.index()]))
                .with("intervals", log_hist_json(&r.reuse[class.index()])),
        );
    }
    Json::obj()
        .with("sms", Json::num_u64(r.sms))
        .with(
            "loads",
            Json::obj()
                .with("per_pc", Json::Arr(per_pc))
                .with("by_tag", by_tag),
        )
        .with(
            "l1_sets",
            Json::obj()
                .with("accesses", u64_array(&r.set_accesses))
                .with("hits", u64_array(&r.set_hits))
                .with("final_valid_sectors", u64_array(&r.final_set_sectors)),
        )
        .with("reuse", reuse)
}

fn alloc_attrib_json(a: &AllocAttribSnapshot) -> Json {
    let types: Vec<Json> = a
        .types
        .iter()
        .map(|t| {
            Json::obj()
                .with("type", Json::num_u64(t.ty.0 as u64))
                .with("obj_size", Json::num_u64(t.obj_size))
                .with("regions", Json::num_u64(t.regions))
                .with("capacity_objs", Json::num_u64(t.capacity_objs))
                .with("used_objs", Json::num_u64(t.used_objs))
                .with("largest_region_objs", Json::num_u64(t.largest_region_objs))
                .with("next_region_objs", Json::num_u64(t.next_region_objs))
        })
        .collect();
    Json::obj()
        .with("merges", Json::num_u64(a.merges))
        .with("initial_chunk_objs", Json::num_u64(a.initial_chunk_objs))
        .with("types", Json::Arr(types))
}

fn lookup_attrib_json(l: &LookupAttrib) -> Json {
    Json::obj()
        .with("kind", Json::str(l.kind.label()))
        .with("num_ranges", Json::num_u64(l.num_ranges))
        .with("tree_depth", Json::num_u64(l.tree_depth as u64))
        .with("dispatches", Json::num_u64(l.dispatches))
        .with("lanes", Json::num_u64(l.lanes))
        .with("walk_depth", log_hist_json(&l.walk_depth))
        .with("comparisons", log_hist_json(&l.comparisons))
}

fn tag_attrib_json(t: &TagAttrib) -> Json {
    Json::obj()
        .with("tag_mode", Json::str(t.tag_mode.label()))
        .with("hardware_mask", Json::Bool(t.hardware_mask))
        .with("decode_dispatches", Json::num_u64(t.decode_dispatches))
        .with("decode_lanes", Json::num_u64(t.decode_lanes))
        .with("fallback_dispatches", Json::num_u64(t.fallback_dispatches))
        .with("fallback_lanes", Json::num_u64(t.fallback_lanes))
        .with("mask_ops", Json::num_u64(t.mask_ops))
}

fn attrib_bundle_json(b: &AttribBundle) -> Json {
    let opt = |j: Option<Json>| j.unwrap_or(Json::Null);
    Json::obj()
        .with("probe", attrib_probe_json(&b.probe))
        .with("allocator", opt(b.alloc.as_ref().map(alloc_attrib_json)))
        .with("lookup", opt(b.lookup.as_ref().map(lookup_attrib_json)))
        .with("tags", opt(b.tags.as_ref().map(tag_attrib_json)))
}

/// Builds the `gvf.attribution` document. Cells mirror the manifest's
/// cells one-for-one (same coordinates, same order); each carries a
/// copy of its [`Stats`] per-tag load-transaction counters next to the
/// attribution evidence, making the hard cross-check (summed per-PC
/// transactions == counter, per tag) verifiable from this file alone.
/// Deliberately contains no wall-clock data: serial and parallel runs
/// of the same grid emit byte-identical documents.
pub fn attribution_doc(generator: &str, opts: &HarnessOpts, cells: &[CellRecord]) -> Json {
    let records: Vec<Json> = cells
        .iter()
        .map(|cell| {
            let mut rec = Json::obj();
            for (k, v) in &cell.meta {
                rec.set(k, v.clone());
            }
            let mut loads = Json::obj();
            for tag in AccessTag::ALL {
                loads.set(
                    tag_label(tag),
                    Json::num_u64(cell.stats.load_transactions(tag)),
                );
            }
            rec.with("stats_load_transactions", loads).with(
                "attribution",
                match &cell.attrib {
                    Some(b) => attrib_bundle_json(b),
                    None => Json::Null,
                },
            )
        })
        .collect();
    Json::obj()
        .with("schema", Json::str(ATTRIB_SCHEMA))
        .with("version", Json::num_u64(ATTRIB_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with("config", config_json(opts))
        .with("cells", Json::Arr(records))
}

fn audit_cell_json(a: &CycleAuditReport) -> Json {
    let mut classes = Json::obj();
    for (label, count) in a.class_counts() {
        classes.set(label, Json::num_u64(count));
    }
    let fast_forward = Json::obj()
        .with("skippableCycles", Json::num_u64(a.skippable_cycles()))
        .with("fraction", Json::Num(a.skippable_fraction()))
        .with("upperBoundSpeedup", Json::Num(a.upper_bound_speedup()));
    // Individual sites, hottest first; ties broken by trace position so
    // the rendering stays deterministic.
    let mut hot: Vec<_> = a.call_sites.iter().collect();
    hot.sort_by_key(|(&pc, s)| (std::cmp::Reverse(s.calls), pc));
    let top: Vec<Json> = hot
        .iter()
        .take(CYCLEAUDIT_TOP_SITES)
        .map(|(&pc, s)| {
            Json::obj()
                .with("pc", Json::num_u64(pc as u64))
                .with("calls", Json::num_u64(s.calls))
                .with("unknownCalls", Json::num_u64(s.unknown_calls))
                .with("targets", Json::num_u64(s.targets.len() as u64))
                .with("overflowed", Json::Bool(s.overflowed))
                .with("class", Json::str(s.class().label()))
        })
        .collect();
    let (unknown, mono, few, mega) = a.site_class_counts();
    let call_sites = Json::obj()
        .with("sites", Json::num_u64(a.call_sites.len() as u64))
        .with("unknown", Json::num_u64(unknown))
        .with("monomorphic", Json::num_u64(mono))
        .with("fewTyped", Json::num_u64(few))
        .with("megamorphic", Json::num_u64(mega))
        .with("top", Json::Arr(top));
    Json::obj()
        .with("sms", Json::num_u64(a.sms))
        .with("auditedCycles", Json::num_u64(a.audited_cycles))
        .with("classes", classes)
        .with("gapHist", log_hist_json(&a.gap_hist))
        .with("fastForward", fast_forward)
        .with("callSites", call_sites)
}

/// Builds the `gvf.cycleaudit` document. Cells mirror the manifest's
/// cells one-for-one; each carries a copy of its [`Stats`] cycle
/// counter, making the hard cross-check (six classes sum to
/// `sms × auditedCycles`, and `auditedCycles == statsCycles`)
/// verifiable from this file alone. Contains no wall-clock data:
/// serial and parallel runs emit byte-identical documents.
pub fn cycleaudit_doc(generator: &str, opts: &HarnessOpts, cells: &[CellRecord]) -> Json {
    let records: Vec<Json> = cells
        .iter()
        .map(|cell| {
            let mut rec = Json::obj();
            for (k, v) in &cell.meta {
                rec.set(k, v.clone());
            }
            rec.with("statsCycles", Json::num_u64(cell.stats.cycles))
                .with(
                    "audit",
                    match &cell.audit {
                        Some(a) => audit_cell_json(a),
                        None => Json::Null,
                    },
                )
        })
        .collect();
    Json::obj()
        .with("schema", Json::str(CYCLEAUDIT_SCHEMA))
        .with("version", Json::num_u64(CYCLEAUDIT_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with("config", config_json(opts))
        .with("cells", Json::Arr(records))
}

/// Builds the `gvf.hostprofile` document from the process's
/// [`gvf_sim::spans`] state: one entry per span path with call count
/// and inclusive/exclusive wall nanoseconds, plus the collapsed-stack
/// text flamegraph tools consume directly. Wall-clock data: never part
/// of a determinism diff (the artifact exists so "where did the host
/// time go" has a measured answer, not a deterministic one).
pub fn hostprofile_doc(generator: &str) -> Json {
    let spans = gvf_sim::spans::snapshot();
    let rows: Vec<Json> = spans
        .iter()
        .map(|s| {
            Json::obj()
                .with("path", Json::str(&s.path))
                .with("count", Json::num_u64(s.count))
                .with("totalNs", Json::num_u64(s.total_ns))
                .with("exclusiveNs", Json::num_u64(s.exclusive_ns))
        })
        .collect();
    Json::obj()
        .with("schema", Json::str(HOSTPROFILE_SCHEMA))
        .with("version", Json::num_u64(HOSTPROFILE_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with("enabled", Json::Bool(gvf_sim::spans::enabled()))
        .with("spans", Json::Arr(rows))
        .with(
            "collapsedStacks",
            Json::str(gvf_sim::collapsed_stacks(&spans)),
        )
}

fn write_file(path: &str, contents: &[u8]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(contents)?;
    eprintln!("wrote {path}");
    Ok(())
}

/// Emits whatever artifacts the flags asked for: the manifest to
/// `--json-out`, the first probed cell's timeline to `--trace-out`, and
/// its metrics series to `--metrics-out`. `obs` is the report taken
/// from the probed cell (`None` when recording was off or nothing
/// fired — the timeline/metrics files are still written, empty, so a
/// pipeline consuming them never sees a missing file). Exits the
/// process with an error on I/O failure: an unwritable artifact path is
/// a fatal misuse, not a degraded run.
pub fn emit(opts: &HarnessOpts, generator: &str, cells: &[CellRecord], obs: Option<&ObsReport>) {
    let run = || -> io::Result<()> {
        if let Some(path) = &opts.json_out {
            let total_sim_cycles: u64 = cells.iter().map(|c| c.stats.cycles).sum();
            let doc = manifest(generator, opts, cells).with(
                "hostPerf",
                crate::hostperf::host_perf_json(total_sim_cycles),
            );
            write_file(path, doc.render().as_bytes())?;
        }
        let empty = ObsReport::default();
        let obs = obs.unwrap_or(&empty);
        if let Some(path) = &opts.trace_out {
            let mut buf = Vec::new();
            write_chrome_trace(&mut buf, &obs.events, obs.events_dropped)?;
            write_file(path, &buf)?;
        }
        if let Some(path) = &opts.metrics_out {
            write_file(path, metrics_doc(generator, obs).render().as_bytes())?;
        }
        if let Some(path) = &opts.attrib_out {
            write_file(
                path,
                attribution_doc(generator, opts, cells).render().as_bytes(),
            )?;
        }
        if let Some(path) = &opts.audit_out {
            write_file(
                path,
                cycleaudit_doc(generator, opts, cells).render().as_bytes(),
            )?;
        }
        // Last, so the profile covers the emission of everything above.
        if let Some(path) = &opts.profile_out {
            write_file(path, hostprofile_doc(generator).render().as_bytes())?;
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("error: failed to write artifact: {e}");
        std::process::exit(1);
    }
    // All artifacts landed: close the events stream. (The failure path
    // closes it with "failed" before its non-zero exit instead.)
    crate::events::run_end("ok");
}

/// Writes the **failure manifest** of a sweep with dead cells: a v2
/// manifest whose `cells` array records every grid index — surviving
/// cells keep their full stats/derived records (their simulation work
/// is not lost), dead cells become first-class `"status": "failed"`
/// entries carrying the panic payload and config fingerprint. No-op
/// without `--json-out`. The caller ([`crate::sweep::SweepRun`]) exits
/// non-zero afterwards; partial artifacts other than the manifest
/// (attribution, traces) are deliberately not written — their schemas
/// promise cells that mirror a complete grid.
pub fn emit_failures(
    opts: &HarnessOpts,
    generator: &str,
    cells: &[Result<RunResult, crate::sweep::SweepFailure>],
) {
    let Some(path) = &opts.json_out else {
        return;
    };
    let total_sim_cycles: u64 = cells
        .iter()
        .filter_map(|c| c.as_ref().ok())
        .map(|r| r.stats.cycles)
        .sum();
    let doc = failure_manifest(generator, opts, cells).with(
        "hostPerf",
        crate::hostperf::host_perf_json(total_sim_cycles),
    );
    if let Err(e) = write_file(path, doc.render().as_bytes()) {
        eprintln!("error: failed to write failure manifest: {e}");
    }
}

/// The body of a failure manifest: one entry per grid index, `"ok"`
/// cells with full stats/derived records, `"failed"` cells with panic
/// payload, config fingerprint, the worker id and queue wait the pool
/// observed, and the flight-recorder snapshot — the last
/// [`crate::events::FLIGHT_RECORDER_EVENTS`] telemetry events up to and
/// including the cell's `cellFailed` (`null` when the cell did not die
/// under an event-tracked sweep). The per-cell runtime context and the
/// flight recorder are wall-clock data; failure manifests abort the run
/// and never enter a determinism diff, so that is fine.
pub fn failure_manifest(
    generator: &str,
    opts: &HarnessOpts,
    cells: &[Result<RunResult, crate::sweep::SweepFailure>],
) -> Json {
    let records: Vec<Json> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| match cell {
            Ok(r) => Json::obj()
                .with("index", Json::num_u64(i as u64))
                .with("status", Json::str("ok"))
                .with("stats", stats_json(&r.stats))
                .with("derived", derived_json(&r.stats)),
            Err(f) => {
                let flight = crate::events::flight_recorder(generator, i)
                    .map(Json::Arr)
                    .unwrap_or(Json::Null);
                Json::obj()
                    .with("index", Json::num_u64(i as u64))
                    .with("status", Json::str("failed"))
                    .with("panic", Json::str(&f.payload))
                    .with("configFingerprint", Json::str(&f.fingerprint))
                    .with("worker", Json::num_u64(f.worker as u64))
                    .with("queueWaitMs", Json::num_u64(f.queue_wait_ns / 1_000_000))
                    .with("flightRecorder", flight)
            }
        })
        .collect();
    Json::obj()
        .with("schema", Json::str(MANIFEST_SCHEMA))
        .with("version", Json::num_u64(MANIFEST_SCHEMA_VERSION as u64))
        .with("generator", Json::str(generator))
        .with("config", config_json(opts))
        .with("cells", Json::Arr(records))
}

/// One-call artifact emission for a figure binary: takes the
/// observability report from the grid's first (probed) cell and hands
/// everything to [`emit`]. Replaces the `obs`-take + `emit` pair every
/// binary used to repeat.
pub fn emit_grid(
    opts: &HarnessOpts,
    generator: &str,
    cells: &[CellRecord],
    results: &mut [RunResult],
) {
    let obs = results.first_mut().and_then(|r| r.obs.take());
    emit(opts, generator, cells, obs.as_ref());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> Stats {
        let mut s = Stats::new();
        s.cycles = 1000;
        s.instrs_mem = 100;
        s.instrs_compute = 400;
        s.l1_accesses = 64;
        s.l1_hits = 32;
        s.vfunc_calls = 10;
        s.stall_by_tag[0] = 77;
        s.load_transactions_by_tag[0] = 12;
        s
    }

    #[test]
    fn stats_round_trip_through_parser() {
        let doc = stats_json(&sample_stats());
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed
                .get("stall_by_cause")
                .and_then(|s| s.get("vtable-ptr"))
                .and_then(Json::as_num),
            Some(77.0)
        );
    }

    #[test]
    fn derived_uses_canonical_helpers() {
        let s = sample_stats();
        let doc = derived_json(&s);
        assert_eq!(doc.get("ipc").and_then(Json::as_num), Some(s.ipc()));
        assert_eq!(
            doc.get("l1_hit_rate").and_then(Json::as_num),
            Some(s.l1_hit_rate())
        );
    }

    #[test]
    fn strip_host_perf_removes_only_that_section() {
        let core = Json::obj()
            .with("schema", Json::str(MANIFEST_SCHEMA))
            .with("cells", Json::Arr(vec![Json::obj()]));
        let with_perf = core
            .clone()
            .with("hostPerf", Json::obj().with("wall_s", Json::Num(1.25)));
        assert_eq!(strip_host_perf(&with_perf), core);
        assert_eq!(strip_host_perf(&core), core);
        // Non-objects pass through untouched.
        assert_eq!(strip_host_perf(&Json::Null), Json::Null);
    }

    fn test_opts() -> HarnessOpts {
        HarnessOpts {
            cfg: gvf_workloads::WorkloadConfig::tiny(),
            jobs: 1,
            smoke: true,
            quiet: true,
            json_out: None,
            trace_out: None,
            metrics_out: None,
            attrib_out: None,
            profile_out: None,
            audit_out: None,
            resume: false,
            no_cache: false,
            cache_dir: None,
            events_out: None,
            stall_factor: crate::events::DEFAULT_STALL_FACTOR,
            fail_cell: None,
            slow_cell: None,
        }
    }

    #[test]
    fn attribution_doc_mirrors_cells_and_self_checks() {
        let mut report = AttribReport {
            sms: 1,
            ..AttribReport::default()
        };
        report.per_pc.insert(
            (7, AccessTag::VtablePtr.index()),
            PcLoadStats {
                instructions: 2,
                lanes: 64,
                transactions: 12,
                l1_hits: 5,
            },
        );
        let mut cell = CellRecord::new("GOL", "cuda", &sample_stats());
        cell.attrib = Some(AttribBundle {
            probe: report,
            alloc: None,
            lookup: None,
            tags: None,
        });
        let doc = attribution_doc("test", &test_opts(), &[cell]);
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(ATTRIB_SCHEMA)
        );
        let cell0 = &doc.get("cells").and_then(Json::as_arr).expect("cells")[0];
        assert_eq!(cell0.get("workload").and_then(Json::as_str), Some("GOL"));
        // The self-check join: attributed transactions for a tag equal
        // the copied Stats counter (sample_stats sets slot 0 to 12).
        let attributed = cell0
            .get("attribution")
            .and_then(|a| a.get("probe"))
            .and_then(|p| p.get("loads"))
            .and_then(|l| l.get("by_tag"))
            .and_then(|t| t.get("vtable-ptr"))
            .and_then(|e| e.get("transactions"))
            .and_then(Json::as_num);
        let counted = cell0
            .get("stats_load_transactions")
            .and_then(|l| l.get("vtable-ptr"))
            .and_then(Json::as_num);
        assert_eq!(attributed, Some(12.0));
        assert_eq!(attributed, counted);
        // Attribution-less cells serialize as an explicit null.
        let bare = CellRecord::new("GOL", "coal", &sample_stats());
        let doc = attribution_doc("test", &test_opts(), &[bare]);
        let cell0 = &doc.get("cells").and_then(Json::as_arr).expect("cells")[0];
        assert_eq!(cell0.get("attribution"), Some(&Json::Null));
    }

    #[test]
    fn failure_manifest_records_dead_and_surviving_cells() {
        let ok = RunResult {
            stats: sample_stats(),
            checksum: 0,
            alloc_stats: Default::default(),
            init_cycles: 0,
            table2: Default::default(),
            metrics: Vec::new(),
            obs: None,
            attrib: None,
            audit: None,
        };
        let cells = vec![
            Ok(ok),
            Err(crate::sweep::SweepFailure {
                cell: 1,
                payload: "boom".into(),
                fingerprint: "deadbeef".into(),
                worker: 3,
                queue_wait_ns: 2_500_000,
            }),
        ];
        let doc = failure_manifest("fig6", &test_opts(), &cells);
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(
            doc.get("version").and_then(Json::as_num),
            Some(MANIFEST_SCHEMA_VERSION as f64)
        );
        let entries = doc.get("cells").and_then(Json::as_arr).expect("cells");
        assert_eq!(entries[0].get("status").and_then(Json::as_str), Some("ok"));
        assert!(entries[0].get("stats").is_some());
        assert_eq!(
            entries[1].get("status").and_then(Json::as_str),
            Some("failed")
        );
        assert_eq!(entries[1].get("panic").and_then(Json::as_str), Some("boom"));
        assert_eq!(
            entries[1].get("configFingerprint").and_then(Json::as_str),
            Some("deadbeef")
        );
        assert_eq!(entries[1].get("stats"), None, "dead cells carry no stats");
        // The pool's runtime observation rides along on failed entries.
        assert_eq!(entries[1].get("worker").and_then(Json::as_num), Some(3.0));
        assert_eq!(
            entries[1].get("queueWaitMs").and_then(Json::as_num),
            Some(2.0)
        );
        // No event-tracked sweep ran this cell, so no flight recorder.
        assert_eq!(entries[1].get("flightRecorder"), Some(&Json::Null));
    }

    #[test]
    fn cycleaudit_doc_mirrors_cells_and_self_checks() {
        let mut audit = CycleAuditReport {
            sms: 1,
            audited_cycles: 1000,
            active: 300,
            stalled_known: 100,
            stalled_other: 50,
            drained: 50,
            skipped: 400,
            tail: 100,
            ..CycleAuditReport::default()
        };
        audit.gap_hist.record(64);
        audit.call_sites.insert(
            5,
            gvf_sim::CallSiteStats {
                calls: 7,
                unknown_calls: 0,
                targets: [1u64, 2].into_iter().collect(),
                overflowed: false,
            },
        );
        assert!(audit.reconciles());
        let mut cell = CellRecord::new("GOL", "typepointer", &sample_stats());
        cell.audit = Some(audit);
        let doc = cycleaudit_doc("test", &test_opts(), &[cell]);
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(CYCLEAUDIT_SCHEMA)
        );
        let cell0 = &doc.get("cells").and_then(Json::as_arr).expect("cells")[0];
        assert_eq!(cell0.get("workload").and_then(Json::as_str), Some("GOL"));
        // The self-check joins, verifiable from the document alone: the
        // six classes sum to sms × auditedCycles, which equals the
        // copied Stats counter (sample_stats sets cycles = 1000).
        let a = cell0.get("audit").expect("audit");
        let classes = a.get("classes").expect("classes");
        let sum: f64 = [
            "active",
            "stalledKnown",
            "stalledOther",
            "drained",
            "skipped",
            "tail",
        ]
        .iter()
        .map(|k| classes.get(k).and_then(Json::as_num).expect("class"))
        .sum();
        assert_eq!(sum, 1000.0);
        assert_eq!(a.get("auditedCycles").and_then(Json::as_num), Some(1000.0));
        assert_eq!(
            cell0.get("statsCycles").and_then(Json::as_num),
            Some(1000.0)
        );
        let ff = a.get("fastForward").expect("fastForward");
        assert_eq!(
            ff.get("skippableCycles").and_then(Json::as_num),
            Some(150.0)
        );
        let site0 = &a
            .get("callSites")
            .and_then(|c| c.get("top"))
            .and_then(Json::as_arr)
            .expect("top")[0];
        assert_eq!(site0.get("class").and_then(Json::as_str), Some("fewTyped"));
        // Audit-less cells serialize as an explicit null.
        let bare = CellRecord::new("GOL", "coal", &sample_stats());
        let doc = cycleaudit_doc("test", &test_opts(), &[bare]);
        let cell0 = &doc.get("cells").and_then(Json::as_arr).expect("cells")[0];
        assert_eq!(cell0.get("audit"), Some(&Json::Null));
    }

    #[test]
    fn hostprofile_doc_has_schema_header_and_span_fields() {
        let doc = hostprofile_doc("test");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(HOSTPROFILE_SCHEMA)
        );
        assert!(doc.get("spans").and_then(Json::as_arr).is_some());
        assert!(doc.get("collapsedStacks").and_then(Json::as_str).is_some());
        let parsed = Json::parse(&doc.render()).expect("parse");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn metrics_doc_has_schema_header() {
        let doc = metrics_doc("test", &ObsReport::default());
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(METRICS_SCHEMA)
        );
        assert_eq!(
            doc.get("kernels").and_then(Json::as_arr).map(<[_]>::len),
            Some(0)
        );
    }
}
