//! # gvf-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation; see
//! `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results. The library part hosts shared report
//! formatting used by the binaries and the Criterion benches.

pub mod cli;
pub mod report;
