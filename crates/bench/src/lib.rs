//! # gvf-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation; see
//! `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results. The library part hosts shared report
//! formatting used by the binaries plus [`harness`], the in-repo
//! micro-benchmark driver the `benches/` targets run on (the workspace
//! builds offline, so Criterion is not a dependency).

pub mod bench_history;
pub mod cellcache;
pub mod cli;
pub mod events;
pub mod harness;
pub mod hostperf;
pub mod json;
pub mod manifest;
pub mod report;
pub mod rundiff;
pub mod schemas;
pub mod sweep;
