//! Figure 8: global load transactions, normalized to SharedOA.
//!
//! Paper geomeans: CUDA 1.00, Concord 0.82, COAL 0.86, TypePointer 0.81.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::{geomean, print_table};
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let strategies = Strategy::EVALUATED;
    let base_idx = strategies
        .iter()
        .position(|&s| s == Strategy::SharedOa)
        .expect("SharedOA is evaluated");

    let cells: Vec<(WorkloadKind, Strategy)> = WorkloadKind::EVALUATED
        .into_iter()
        .flat_map(|k| strategies.into_iter().map(move |s| (k, s)))
        .collect();
    let cache = opts.cell_cache("fig8");
    let mut results = run_cells("fig8", &opts, &cells, |i, &(k, s)| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    for (ki, kind) in WorkloadKind::EVALUATED.into_iter().enumerate() {
        let base = &results[ki * strategies.len() + base_idx];
        let mut row = vec![kind.label().to_string()];
        for (si, s) in strategies.into_iter().enumerate() {
            let r = &results[ki * strategies.len() + si];
            let norm = r.stats.load_transactions_vs(&base.stats);
            per_strategy[si].push(norm);
            row.push(format!("{norm:.2}"));
            records.push(
                CellRecord::of(kind.label(), s.label(), r)
                    .with("load_tx_vs_sharedoa", Json::Num(norm)),
            );
        }
        rows.push(row);
    }
    let mut gm = vec!["GM".to_string()];
    for v in &per_strategy {
        gm.push(format!("{:.2}", geomean(v)));
    }
    rows.push(gm);

    println!("\nFig. 8 — Global load transactions normalized to SharedOA (lower is better)");
    println!("paper GM: CUDA 1.00, Concord 0.82, SharedOA 1.00, COAL 0.86, TypePointer 0.81\n");
    let headers: Vec<&str> = std::iter::once("Workload")
        .chain(strategies.iter().map(|s| s.label()))
        .collect();
    print_table(&headers, &rows);

    manifest::emit_grid(&opts, "fig8", &records, &mut results);
}
