//! Figure 8: global load transactions, normalized to SharedOA.
//!
//! Paper geomeans: CUDA 1.00, Concord 0.82, COAL 0.86, TypePointer 0.81.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::report::{geomean, print_table};
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let strategies = Strategy::EVALUATED;
    let mut rows = Vec::new();
    let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];

    for kind in WorkloadKind::EVALUATED {
        let base = run_workload(kind, Strategy::SharedOa, &opts.cfg);
        let mut row = vec![kind.label().to_string()];
        for (si, s) in strategies.into_iter().enumerate() {
            let r = if s == Strategy::SharedOa {
                base.clone()
            } else {
                run_workload(kind, s, &opts.cfg)
            };
            let norm = r.stats.global_load_transactions as f64
                / base.stats.global_load_transactions.max(1) as f64;
            per_strategy[si].push(norm);
            row.push(format!("{norm:.2}"));
        }
        rows.push(row);
    }
    let mut gm = vec!["GM".to_string()];
    for v in &per_strategy {
        gm.push(format!("{:.2}", geomean(v)));
    }
    rows.push(gm);

    println!("\nFig. 8 — Global load transactions normalized to SharedOA (lower is better)");
    println!("paper GM: CUDA 1.00, Concord 0.82, SharedOA 1.00, COAL 0.86, TypePointer 0.81\n");
    let headers: Vec<&str> =
        std::iter::once("Workload").chain(strategies.iter().map(|s| s.label())).collect();
    print_table(&headers, &rows);
}
