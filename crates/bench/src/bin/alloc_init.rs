//! §8.2 object-initialization comparison: SharedOA's host-side
//! allocation vs device-side CUDA `new`.
//!
//! Paper: SharedOA outperforms the default CUDA allocator by a geomean
//! of **80×** on the initialization phase, because host-side bump
//! allocation avoids the device-side heap-lock serialization. Our
//! allocators model that per-object cost (`AllocatorKind::
//! init_cycles_per_object`); this harness reports the resulting modeled
//! speedups plus the measured packing statistics.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::{geomean, print_table};
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let cells: Vec<(WorkloadKind, Strategy)> = WorkloadKind::EVALUATED
        .into_iter()
        .flat_map(|k| [(k, Strategy::Cuda), (k, Strategy::SharedOa)])
        .collect();
    let cache = opts.cell_cache("alloc_init");
    let mut results = run_cells("alloc_init", &opts, &cells, |i, &(k, s)| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut speedups = Vec::new();
    for (ki, kind) in WorkloadKind::EVALUATED.into_iter().enumerate() {
        let cuda = &results[ki * 2];
        let soa = &results[ki * 2 + 1];
        let speedup = cuda.init_cycles as f64 / soa.init_cycles.max(1) as f64;
        speedups.push(speedup);
        rows.push(vec![
            kind.label().to_string(),
            format!("{}", cuda.table2.objects),
            format!("{}", cuda.init_cycles),
            format!("{}", soa.init_cycles),
            format!("{speedup:.0}x"),
            format!("{:.0}%", cuda.alloc_stats.external_fragmentation() * 100.0),
            format!("{:.0}%", soa.alloc_stats.external_fragmentation() * 100.0),
        ]);
        for (s, r) in [(Strategy::Cuda, cuda), (Strategy::SharedOa, soa)] {
            records.push(
                CellRecord::of(kind.label(), s.label(), r)
                    .with("init_cycles", Json::num_u64(r.init_cycles))
                    .with(
                        "external_fragmentation",
                        Json::Num(r.alloc_stats.external_fragmentation()),
                    ),
            );
        }
    }
    rows.push(vec![
        "GM".to_string(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.0}x", geomean(&speedups)),
        String::new(),
        String::new(),
    ]);

    println!("\n§8.2 — Object initialization: SharedOA vs device-side CUDA new");
    println!("paper: 80x geomean speedup\n");
    print_table(
        &[
            "Workload",
            "# Objects",
            "CUDA init cyc",
            "SharedOA init cyc",
            "Speedup",
            "CUDA frag",
            "SharedOA frag",
        ],
        &rows,
    );

    manifest::emit_grid(&opts, "alloc_init", &records, &mut results);
}
