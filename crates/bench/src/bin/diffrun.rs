//! Run-comparison front end: diffs two result trees and explains what
//! changed (see [`gvf_bench::rundiff`] for the engine and the artifact
//! shape).
//!
//! Usage:
//!
//! ```text
//! diffrun [--out PATH] [--require-clean] [--quiet] BASELINE CURRENT
//! ```
//!
//! `BASELINE` and `CURRENT` are each either a directory of harness
//! artifacts (manifests plus their sibling attribution / cycle-audit /
//! host-profile documents and `.events.jsonl` streams, as produced by
//! `run_all.sh`) or a single run-manifest file (siblings are picked up
//! by naming convention). The `gvf.rundiff` v1 artifact goes to `--out`
//! (or stdout); a human-readable per-run summary goes to stderr unless
//! `--quiet`.
//!
//! Exit status: `0` on a successful diff, `1` on unreadable inputs or —
//! with `--require-clean` — when the diff finds semantic or coverage
//! drift (the A/A CI gate: two runs of the same rev must produce
//! byte-identical simulated results and the same cell coverage).
//! Usage errors exit `2`.

use gvf_bench::json::Json;
use gvf_bench::rundiff;

fn usage() -> ! {
    eprintln!("usage: diffrun [--out PATH] [--require-clean] [--quiet] BASELINE CURRENT");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut require_clean = false;
    let mut quiet = false;
    let mut trees: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => usage(),
            },
            "--require-clean" => require_clean = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            s if s.starts_with("--") => usage(),
            _ => trees.push(arg),
        }
    }
    let [baseline, current] = trees.as_slice() else {
        usage();
    };

    let load = |path: &str| -> rundiff::RunTree {
        match rundiff::load_tree(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("diffrun: {e}");
                std::process::exit(1);
            }
        }
    };
    let doc = rundiff::diff_trees(&load(baseline), &load(current));

    let rendered = doc.render();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("diffrun: {path}: {e}");
                std::process::exit(1);
            }
        }
        None => print!("{rendered}"),
    }

    if !quiet {
        eprintln!("diffrun: {baseline} -> {current}");
        for line in rundiff::human_summary(&doc).lines() {
            eprintln!("  {line}");
        }
    }

    let summary_flag = |key: &str| {
        doc.get("summary")
            .and_then(|s| s.get(key))
            .and_then(Json::as_bool)
            .unwrap_or(false)
    };
    let semantic_clean = summary_flag("semanticClean");
    let coverage_clean = summary_flag("coverageClean");
    if require_clean && !(semantic_clean && coverage_clean) {
        eprintln!(
            "diffrun: NOT CLEAN (semantic: {}, coverage: {})",
            if semantic_clean { "clean" } else { "drift" },
            if coverage_clean { "clean" } else { "drift" },
        );
        std::process::exit(1);
    }
}
