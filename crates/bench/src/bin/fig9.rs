//! Figure 9: L1 data-cache hit rate per strategy.
//!
//! Paper averages: CUDA 31%, Concord 31%, SharedOA 44%, COAL 47%,
//! TypePointer 45% — COAL's range-walk loads all hit in L1, which is the
//! crux of why its extra loads are cheap.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let strategies = Strategy::EVALUATED;

    let cells: Vec<(WorkloadKind, Strategy)> = WorkloadKind::EVALUATED
        .into_iter()
        .flat_map(|k| strategies.into_iter().map(move |s| (k, s)))
        .collect();
    let cache = opts.cell_cache("fig9");
    let mut results = run_cells("fig9", &opts, &cells, |i, &(k, s)| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut sums = vec![0.0f64; strategies.len()];
    for (ki, kind) in WorkloadKind::EVALUATED.into_iter().enumerate() {
        let mut row = vec![kind.label().to_string()];
        for (si, s) in strategies.into_iter().enumerate() {
            let r = &results[ki * strategies.len() + si];
            let hr = r.stats.l1_hit_rate();
            sums[si] += hr;
            row.push(format!("{:.1}%", hr * 100.0));
            records.push(CellRecord::of(kind.label(), s.label(), r));
        }
        rows.push(row);
    }
    let n = WorkloadKind::EVALUATED.len() as f64;
    let mut avg = vec!["AVG".to_string()];
    for s in &sums {
        avg.push(format!("{:.1}%", s / n * 100.0));
    }
    rows.push(avg);

    println!("\nFig. 9 — L1 hit rate per strategy");
    println!("paper AVG: CUDA 31%, Concord 31%, SharedOA 44%, COAL 47%, TypePointer 45%\n");
    let headers: Vec<&str> = std::iter::once("Workload")
        .chain(strategies.iter().map(|s| s.label()))
        .collect();
    print_table(&headers, &rows);

    manifest::emit_grid(&opts, "fig9", &records, &mut results);
}
