//! Table 1: global memory accesses per dispatch operation, measured.
//!
//! The paper's claim, per virtual call:
//!
//! | op | CUDA | COAL | TypePointer |
//! |---|---|---|---|
//! | A (get vTable*) | Acc ∝ #objects | Acc ∝ #types (converged walk) | **0** |
//! | B (get vFunc*)  | Acc ∝ #types | Acc ∝ #types | Acc ∝ #types |
//! | C (call)        | indirect | indirect | indirect |
//!
//! This harness measures actual 32-byte transactions per call on the
//! microbenchmark while sweeping objects and types: A's traffic scales
//! with distinct objects per warp under CUDA, stays near the (tiny) walk
//! cost under COAL, and is exactly zero under TypePointer.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_sim::AccessTag;
use gvf_workloads::{micro, MicroParams};

const STRATEGIES: [Strategy; 3] = [Strategy::SharedOa, Strategy::Coal, Strategy::TypePointerHw];

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cfg = opts.cfg;
    cfg.iterations = 1;

    let cells: Vec<(MicroParams, Strategy)> =
        [(16384usize, 2usize), (16384, 8), (65536, 2), (65536, 8)]
            .into_iter()
            .flat_map(|(n_objects, n_types)| {
                STRATEGIES.map(|s| (MicroParams { n_objects, n_types }, s))
            })
            .collect();
    let results = run_cells("table1", opts.jobs, &cells, |&(p, s)| {
        micro::run(s, p, &cfg)
    });

    let mut rows = Vec::new();
    for (&(params, s), r) in cells.iter().zip(&results) {
        let calls = r.stats.vfunc_calls.max(1) as f64;
        let a = r.stats.load_transactions(AccessTag::VtablePtr) as f64 / calls;
        let walk = r.stats.load_transactions(AccessTag::RangeWalk) as f64 / calls;
        let b = r.stats.load_transactions(AccessTag::VfuncPtr) as f64 / calls;
        rows.push(vec![
            format!(
                "{}k objs, {} types",
                params.n_objects / 1024,
                params.n_types
            ),
            s.label().to_string(),
            format!("{a:.1}"),
            format!("{walk:.1}"),
            format!("{b:.1}"),
        ]);
    }

    println!("\nTable 1 — measured 32B transactions per virtual call");
    println!("CUDA-style A grows with objects-per-warp; COAL replaces it with a");
    println!("small converged walk; TypePointer eliminates it entirely.\n");
    print_table(
        &[
            "Configuration",
            "Strategy",
            "A: vTable* tx",
            "walk tx",
            "B: vFunc* tx",
        ],
        &rows,
    );
}
