//! Table 1: global memory accesses per dispatch operation, measured.
//!
//! The paper's claim, per virtual call:
//!
//! | op | CUDA | COAL | TypePointer |
//! |---|---|---|---|
//! | A (get vTable*) | Acc ∝ #objects | Acc ∝ #types (converged walk) | **0** |
//! | B (get vFunc*)  | Acc ∝ #types | Acc ∝ #types | Acc ∝ #types |
//! | C (call)        | indirect | indirect | indirect |
//!
//! This harness measures actual 32-byte transactions per call on the
//! microbenchmark while sweeping objects and types: A's traffic scales
//! with distinct objects per warp under CUDA, stays near the (tiny) walk
//! cost under COAL, and is exactly zero under TypePointer.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_sim::AccessTag;
use gvf_workloads::{micro, MicroParams};

const STRATEGIES: [Strategy; 3] = [Strategy::SharedOa, Strategy::Coal, Strategy::TypePointerHw];

fn main() {
    let mut opts = HarnessOpts::from_args();
    opts.cfg.iterations = 1;

    let cells: Vec<(MicroParams, Strategy)> =
        [(16384usize, 2usize), (16384, 8), (65536, 2), (65536, 8)]
            .into_iter()
            .flat_map(|(n_objects, n_types)| {
                STRATEGIES.map(|s| (MicroParams { n_objects, n_types }, s))
            })
            .collect();
    let cache = opts.cell_cache("table1");
    let mut results = run_cells("table1", &opts, &cells, |i, &(p, s)| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || micro::run(s, p, &cfg))
    })
    .into_results(&opts);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (&(params, s), r) in cells.iter().zip(&results) {
        let a = r.stats.load_transactions_per_call(AccessTag::VtablePtr);
        let walk = r.stats.load_transactions_per_call(AccessTag::RangeWalk);
        let b = r.stats.load_transactions_per_call(AccessTag::VfuncPtr);
        rows.push(vec![
            format!(
                "{}k objs, {} types",
                params.n_objects / 1024,
                params.n_types
            ),
            s.label().to_string(),
            format!("{a:.1}"),
            format!("{walk:.1}"),
            format!("{b:.1}"),
        ]);
        records.push(
            CellRecord::of("micro", s.label(), r)
                .with("n_objects", Json::num_u64(params.n_objects as u64))
                .with("n_types", Json::num_u64(params.n_types as u64))
                .with("vtable_tx_per_call", Json::Num(a))
                .with("walk_tx_per_call", Json::Num(walk))
                .with("vfunc_tx_per_call", Json::Num(b)),
        );
    }

    println!("\nTable 1 — measured 32B transactions per virtual call");
    println!("CUDA-style A grows with objects-per-warp; COAL replaces it with a");
    println!("small converged walk; TypePointer eliminates it entirely.\n");
    print_table(
        &[
            "Configuration",
            "Strategy",
            "A: vTable* tx",
            "walk tx",
            "B: vFunc* tx",
        ],
        &rows,
    );

    manifest::emit_grid(&opts, "table1", &records, &mut results);
}
