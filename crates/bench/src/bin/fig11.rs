//! Figure 11: TypePointer applied to the **default CUDA allocator**
//! (the paper's simulation-only experiment), normalized to CUDA.
//!
//! Paper geomean: 1.18 — TypePointer helps even without SharedOA,
//! demonstrating allocator independence (§6.1).

use gvf_bench::cli::HarnessOpts;
use gvf_bench::report::{geomean, print_table};
use gvf_alloc::AllocatorKind;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows = Vec::new();
    let mut norms = Vec::new();

    for kind in WorkloadKind::EVALUATED {
        let cuda = run_workload(kind, Strategy::Cuda, &opts.cfg);
        let mut cfg = opts.cfg.clone();
        cfg.allocator_override = Some(AllocatorKind::Cuda);
        // The hardware variant: Fig. 11 is an Accel-Sim experiment with
        // the MMU change, so no software masking overhead.
        let tp = run_workload(kind, Strategy::TypePointerHw, &cfg);
        assert_eq!(tp.checksum, cuda.checksum, "{kind}: functional mismatch");
        let norm = cuda.stats.cycles as f64 / tp.stats.cycles as f64;
        norms.push(norm);
        rows.push(vec![kind.label().to_string(), "1.00".to_string(), format!("{norm:.2}")]);
    }
    rows.push(vec!["GM".to_string(), "1.00".to_string(), format!("{:.2}", geomean(&norms))]);

    println!("\nFig. 11 — TypePointer on the CUDA allocator (simulation), normalized to CUDA");
    println!("paper GM: 1.18\n");
    print_table(&["Workload", "CUDA", "TypePointer on CUDA"], &rows);
}
