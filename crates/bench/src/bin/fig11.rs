//! Figure 11: TypePointer applied to the **default CUDA allocator**
//! (the paper's simulation-only experiment), normalized to CUDA.
//!
//! Paper geomean: 1.18 — TypePointer helps even without SharedOA,
//! demonstrating allocator independence (§6.1).

use gvf_alloc::AllocatorKind;
use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::{geomean, print_table};
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();

    // The hardware variant: Fig. 11 is an Accel-Sim experiment with the
    // MMU change, so no software masking overhead; both cells pin the
    // CUDA heap allocator via the override.
    let cells: Vec<(WorkloadKind, Strategy)> = WorkloadKind::EVALUATED
        .into_iter()
        .flat_map(|k| [(k, Strategy::Cuda), (k, Strategy::TypePointerHw)])
        .collect();
    let cache = opts.cell_cache("fig11");
    let mut results = run_cells("fig11", &opts, &cells, |i, &(k, s)| {
        let mut cfg = opts.cfg_for_cell(i);
        if s == Strategy::TypePointerHw {
            cfg.allocator_override = Some(AllocatorKind::Cuda);
        }
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut norms = Vec::new();
    for (ki, kind) in WorkloadKind::EVALUATED.into_iter().enumerate() {
        let cuda = &results[ki * 2];
        let tp = &results[ki * 2 + 1];
        assert_eq!(tp.checksum, cuda.checksum, "{kind}: functional mismatch");
        let norm = tp.stats.speedup_vs(&cuda.stats);
        norms.push(norm);
        rows.push(vec![
            kind.label().to_string(),
            "1.00".to_string(),
            format!("{norm:.2}"),
        ]);
        records.push(CellRecord::of(kind.label(), Strategy::Cuda.label(), cuda));
        records.push(
            CellRecord::of(kind.label(), Strategy::TypePointerHw.label(), tp)
                .with("norm_vs_cuda", Json::Num(norm)),
        );
    }
    rows.push(vec![
        "GM".to_string(),
        "1.00".to_string(),
        format!("{:.2}", geomean(&norms)),
    ]);

    println!("\nFig. 11 — TypePointer on the CUDA allocator (simulation), normalized to CUDA");
    println!("paper GM: 1.18\n");
    print_table(&["Workload", "CUDA", "TypePointer on CUDA"], &rows);

    manifest::emit_grid(&opts, "fig11", &records, &mut results);
}
