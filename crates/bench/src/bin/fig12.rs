//! Figure 12: scalability microbenchmarks (§8.3).
//!
//! (a) Execution time vs object count at 4 types, normalized to BRANCH
//!     with the smallest count. Paper @32M objects: CUDA 5.6× slower
//!     than BRANCH, COAL 3.3×, TypePointer 2.0×.
//! (b) Execution time vs types-per-warp at a fixed object count,
//!     normalized to BRANCH with 1 type. Paper: all converge as
//!     divergence dominates at 32 types.
//!
//! Counts scale with `--scale` (paper's 1M–32M at scale 128).

use gvf_bench::cli::HarnessOpts;
use gvf_bench::report::print_table;
use gvf_core::Strategy;
use gvf_workloads::{micro, MicroParams};

const STRATEGIES: [Strategy; 4] =
    [Strategy::Branch, Strategy::Cuda, Strategy::Coal, Strategy::TypePointerProto];

fn main() {
    let opts = HarnessOpts::from_args();
    let unit = 8192 * opts.cfg.scale as usize; // "1M" at paper scale 128

    // (a) objects sweep at 4 types.
    let mut rows = Vec::new();
    let mut baseline = None;
    for step in [1usize, 2, 4, 8, 16, 32] {
        let params = MicroParams { n_objects: unit * step, n_types: 4 };
        let mut row = vec![format!("{}x", step)];
        for s in STRATEGIES {
            let r = micro::run(s, params, &opts.cfg);
            if s == Strategy::Branch && baseline.is_none() {
                baseline = Some(r.stats.cycles as f64);
            }
            row.push(format!("{:.1}", r.stats.cycles as f64 / baseline.unwrap()));
        }
        rows.push(row);
    }
    println!("\nFig. 12a — Execution time vs object count (4 types), normalized to");
    println!("BRANCH at 1x. paper @32x: CUDA 5.6x, COAL 3.3x, TypePointer 2.0x of BRANCH\n");
    let headers: Vec<&str> =
        std::iter::once("objects").chain(STRATEGIES.iter().map(|s| s.label())).collect();
    print_table(&headers, &rows);

    // (b) types sweep at 16x objects.
    let mut rows = Vec::new();
    let mut baseline = None;
    for types in [1usize, 2, 4, 8, 16, 32] {
        let params = MicroParams { n_objects: unit * 16, n_types: types };
        let mut row = vec![format!("{types}")];
        for s in STRATEGIES {
            let r = micro::run(s, params, &opts.cfg);
            if s == Strategy::Branch && baseline.is_none() {
                baseline = Some(r.stats.cycles as f64);
            }
            row.push(format!("{:.1}", r.stats.cycles as f64 / baseline.unwrap()));
        }
        rows.push(row);
    }
    println!("\nFig. 12b — Execution time vs types-per-warp (16x objects), normalized");
    println!("to BRANCH at 1 type. paper: gaps shrink as divergence dominates\n");
    let headers: Vec<&str> =
        std::iter::once("types").chain(STRATEGIES.iter().map(|s| s.label())).collect();
    print_table(&headers, &rows);
}
