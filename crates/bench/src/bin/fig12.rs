//! Figure 12: scalability microbenchmarks (§8.3).
//!
//! (a) Execution time vs object count at 4 types, normalized to BRANCH
//!     with the smallest count. Paper @32M objects: CUDA 5.6× slower
//!     than BRANCH, COAL 3.3×, TypePointer 2.0×.
//! (b) Execution time vs types-per-warp at a fixed object count,
//!     normalized to BRANCH with 1 type. Paper: all converge as
//!     divergence dominates at 32 types.
//!
//! Counts scale with `--scale` (paper's 1M–32M at scale 128).

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{micro, MicroParams};

const STRATEGIES: [Strategy; 4] = [
    Strategy::Branch,
    Strategy::Cuda,
    Strategy::Coal,
    Strategy::TypePointerProto,
];

const STEPS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let opts = HarnessOpts::from_args();
    let unit = 8192 * opts.cfg.scale as usize; // "1M" at paper scale 128

    // Both sweeps form one flat grid so a single pool keeps every core
    // busy across the (a)/(b) boundary.
    let mut cells: Vec<(MicroParams, Strategy)> = Vec::new();
    for step in STEPS {
        let params = MicroParams {
            n_objects: unit * step,
            n_types: 4,
        };
        cells.extend(STRATEGIES.map(|s| (params, s)));
    }
    for types in STEPS {
        let params = MicroParams {
            n_objects: unit * 16,
            n_types: types,
        };
        cells.extend(STRATEGIES.map(|s| (params, s)));
    }
    let cache = opts.cell_cache("fig12");
    let mut results = run_cells("fig12", &opts, &cells, |i, &(p, s)| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || micro::run(s, p, &cfg))
    })
    .into_results(&opts);

    let records: Vec<CellRecord> = cells
        .iter()
        .zip(&results)
        .map(|(&(p, s), r)| {
            CellRecord::of("micro", s.label(), r)
                .with("n_objects", Json::num_u64(p.n_objects as u64))
                .with("n_types", Json::num_u64(p.n_types as u64))
        })
        .collect();

    let stride = STRATEGIES.len();
    let report = |title: &str, note: &str, col: &str, offset: usize| {
        // Normalize to BRANCH in the sweep's first row.
        let baseline = results[offset * stride].stats.cycles as f64;
        let mut rows = Vec::new();
        for (row_i, &step) in STEPS.iter().enumerate() {
            let mut row = vec![format!("{step}{}", if col == "objects" { "x" } else { "" })];
            for si in 0..stride {
                let r = &results[(offset + row_i) * stride + si];
                row.push(format!("{:.1}", r.stats.cycles as f64 / baseline));
            }
            rows.push(row);
        }
        println!("\n{title}");
        println!("{note}\n");
        let headers: Vec<&str> = std::iter::once(col)
            .chain(STRATEGIES.iter().map(|s| s.label()))
            .collect();
        print_table(&headers, &rows);
    };

    report(
        "Fig. 12a — Execution time vs object count (4 types), normalized to BRANCH at 1x.",
        "paper @32x: CUDA 5.6x, COAL 3.3x, TypePointer 2.0x of BRANCH",
        "objects",
        0,
    );
    report(
        "Fig. 12b — Execution time vs types-per-warp (16x objects), normalized to BRANCH at 1 type.",
        "paper: gaps shrink as divergence dominates",
        "types",
        STEPS.len(),
    );

    manifest::emit_grid(&opts, "fig12", &records, &mut results);
}
