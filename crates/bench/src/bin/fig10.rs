//! Figure 10: effect of SharedOA's initial region size.
//!
//! (a) COAL performance normalized to CUDA as the initial chunk sweeps
//!     4 K → 4 M objects (paper: stable, one outlier at 2 M);
//! (b) SharedOA external fragmentation over the same sweep (paper:
//!     17% → 27%).
//!
//! The sweep is scaled with `--scale` relative to the paper's absolute
//! chunk sizes, since default workload populations are ~16× smaller.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    // Paper sweep: 4k, 16k, 64k, 256k, 1M, 4M objects at full scale
    // (scale ≈ 128 for paper-sized populations). Scale proportionally.
    let chunk_sizes: Vec<u64> = (0..6)
        .map(|i| (4096u64 << (2 * i)) * opts.cfg.scale as u64 / 128)
        .map(|c| c.max(64))
        .collect();

    // Grid per workload: one CUDA baseline, then COAL per chunk size.
    let mut cells: Vec<(WorkloadKind, Strategy, u64)> = Vec::new();
    for kind in WorkloadKind::EVALUATED {
        cells.push((kind, Strategy::Cuda, opts.cfg.initial_chunk_objs));
        for &chunk in &chunk_sizes {
            cells.push((kind, Strategy::Coal, chunk));
        }
    }
    let cache = opts.cell_cache("fig10");
    let mut results = run_cells("fig10", &opts, &cells, |i, &(k, s, chunk)| {
        let mut cfg = opts.cfg_for_cell(i);
        cfg.initial_chunk_objs = chunk;
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let stride = 1 + chunk_sizes.len();
    let mut records = Vec::new();
    let mut perf_rows = Vec::new();
    let mut frag_rows = Vec::new();
    let mut frag_sums = vec![0.0f64; chunk_sizes.len()];
    for (ki, kind) in WorkloadKind::EVALUATED.into_iter().enumerate() {
        let cuda = &results[ki * stride];
        records.push(
            CellRecord::of(kind.label(), Strategy::Cuda.label(), cuda)
                .with("chunk_objs", Json::num_u64(opts.cfg.initial_chunk_objs)),
        );
        let mut prow = vec![kind.label().to_string()];
        let mut frow = vec![kind.label().to_string()];
        for ci in 0..chunk_sizes.len() {
            let r = &results[ki * stride + 1 + ci];
            prow.push(format!("{:.2}", r.stats.speedup_vs(&cuda.stats)));
            let frag = r.alloc_stats.external_fragmentation();
            frag_sums[ci] += frag;
            frow.push(format!("{:.0}%", frag * 100.0));
            records.push(
                CellRecord::of(kind.label(), Strategy::Coal.label(), r)
                    .with("chunk_objs", Json::num_u64(chunk_sizes[ci]))
                    .with("external_fragmentation", Json::Num(frag)),
            );
        }
        perf_rows.push(prow);
        frag_rows.push(frow);
    }
    let n = WorkloadKind::EVALUATED.len() as f64;
    let mut avg = vec!["AVG".to_string()];
    for s in &frag_sums {
        avg.push(format!("{:.0}%", s / n * 100.0));
    }
    frag_rows.push(avg);

    let headers: Vec<String> = std::iter::once("Workload".to_string())
        .chain(chunk_sizes.iter().map(|c| format!("{c}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();

    println!("\nFig. 10a — COAL performance vs initial chunk size, normalized to CUDA");
    println!("paper: stable across sizes, always well above CUDA (1.0)\n");
    print_table(&headers_ref, &perf_rows);

    println!("\nFig. 10b — SharedOA external fragmentation vs initial chunk size");
    println!("paper AVG: 17% (small chunks) -> 27% (4M-object chunks)\n");
    print_table(&headers_ref, &frag_rows);

    manifest::emit_grid(&opts, "fig10", &records, &mut results);
}
