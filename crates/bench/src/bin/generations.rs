//! Robustness check across GPU generations (§2: the paper "examined
//! code from several different GPU generations and observe[d] similar
//! behavior"): the strategy ordering of Fig. 6 must hold on P100-,
//! V100- and A100-like machines, each scaled to the workload size.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_sim::GpuConfig;
use gvf_workloads::{run_workload, WorkloadKind};

const STRATEGIES: [Strategy; 4] = [
    Strategy::SharedOa,
    Strategy::Cuda,
    Strategy::Coal,
    Strategy::TypePointerProto,
];

fn main() {
    let opts = HarnessOpts::from_args();
    let machines: [(&str, GpuConfig); 3] = [
        ("P100", GpuConfig::p100().scaled_to(8)),
        ("V100", GpuConfig::v100().scaled_to(8)),
        ("A100", GpuConfig::a100().scaled_to(8)),
    ];

    // Grid: workload × machine × strategy, SharedOA first as baseline.
    let mut cells: Vec<(WorkloadKind, usize, Strategy)> = Vec::new();
    for kind in [WorkloadKind::GameOfLife, WorkloadKind::VeBfs] {
        for mi in 0..machines.len() {
            for s in STRATEGIES {
                cells.push((kind, mi, s));
            }
        }
    }
    let cache = opts.cell_cache("generations");
    let mut results = run_cells("generations", &opts, &cells, |i, &(k, mi, s)| {
        let mut cfg = opts.cfg_for_cell(i);
        cfg.gpu = machines[mi].1.clone();
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let stride = STRATEGIES.len();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (gi, &(kind, mi, _)) in cells.iter().enumerate().step_by(stride) {
        let name = machines[mi].0;
        let base = &results[gi];
        records.push(
            CellRecord::of(kind.label(), Strategy::SharedOa.label(), base)
                .with("gpu", Json::str(name)),
        );
        let mut row = vec![format!("{} {}", kind.label(), name)];
        for si in 1..stride {
            let r = &results[gi + si];
            let norm = r.stats.speedup_vs(&base.stats);
            row.push(format!("{norm:.2}"));
            records.push(
                CellRecord::of(kind.label(), STRATEGIES[si].label(), r)
                    .with("gpu", Json::str(name))
                    .with("norm_vs_sharedoa", Json::Num(norm)),
            );
        }
        rows.push(row);
    }
    println!("\nRobustness — Fig. 6 ordering across GPU generations");
    println!("(normalized to SharedOA on each machine; expect CUDA < 1 < COAL ≤ TP everywhere)\n");
    print_table(&["Workload/GPU", "CUDA", "COAL", "TypePointer"], &rows);

    manifest::emit_grid(&opts, "generations", &records, &mut results);
}
