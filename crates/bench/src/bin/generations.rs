//! Robustness check across GPU generations (§2: the paper "examined
//! code from several different GPU generations and observe[d] similar
//! behavior"): the strategy ordering of Fig. 6 must hold on P100-,
//! V100- and A100-like machines, each scaled to the workload size.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::report::print_table;
use gvf_core::Strategy;
use gvf_sim::GpuConfig;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let machines: [(&str, GpuConfig); 3] = [
        ("P100", GpuConfig::p100().scaled_to(8)),
        ("V100", GpuConfig::v100().scaled_to(8)),
        ("A100", GpuConfig::a100().scaled_to(8)),
    ];
    let mut rows = Vec::new();
    for kind in [WorkloadKind::GameOfLife, WorkloadKind::VeBfs] {
        for (name, gpu) in &machines {
            let mut cfg = opts.cfg.clone();
            cfg.gpu = gpu.clone();
            let base = run_workload(kind, Strategy::SharedOa, &cfg);
            let mut row = vec![format!("{} {}", kind.label(), name)];
            for s in [Strategy::Cuda, Strategy::Coal, Strategy::TypePointerProto] {
                let r = run_workload(kind, s, &cfg);
                row.push(format!(
                    "{:.2}",
                    base.stats.cycles as f64 / r.stats.cycles as f64
                ));
            }
            rows.push(row);
        }
    }
    println!("\nRobustness — Fig. 6 ordering across GPU generations");
    println!("(normalized to SharedOA on each machine; expect CUDA < 1 < COAL ≤ TP everywhere)\n");
    print_table(&["Workload/GPU", "CUDA", "COAL", "TypePointer"], &rows);
}
