//! Diagnostic: raw hardware-counter dump for one workload across all
//! strategies (cycles, instruction mix, transactions, cache rates,
//! per-tag latency attribution). Useful when calibrating the timing
//! model; not itself a paper figure.

use gvf_bench::cli::HarnessOpts;
use gvf_core::Strategy;
use gvf_sim::AccessTag;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    for kind in [WorkloadKind::VeBfs, WorkloadKind::GameOfLife] {
        println!("\n== {kind} ==");
        for s in Strategy::EVALUATED {
            let r = run_workload(kind, s, &opts.cfg);
            println!(
                "{:>12}: cyc={:>9} M/C/X={}/{}/{} ldtx={} l1={:.2} l2={:.2} dram={} A={} B={} walk={}",
                s.label(),
                r.stats.cycles,
                r.stats.instrs_mem,
                r.stats.instrs_compute,
                r.stats.instrs_ctrl,
                r.stats.global_load_transactions,
                r.stats.l1_hit_rate(),
                r.stats.l2_hit_rate(),
                r.stats.dram_accesses,
                r.stats.stall(AccessTag::VtablePtr),
                r.stats.stall(AccessTag::VfuncPtr),
                r.stats.stall(AccessTag::RangeWalk),
            );
        }
    }
}
