//! Diagnostic: raw hardware-counter dump for one workload across all
//! strategies (cycles, instruction mix, transactions, cache rates,
//! per-tag latency attribution). Useful when calibrating the timing
//! model; not itself a paper figure.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_sim::AccessTag;
use gvf_workloads::{run_workload, WorkloadKind};

const KINDS: [WorkloadKind; 2] = [WorkloadKind::VeBfs, WorkloadKind::GameOfLife];

fn main() {
    let opts = HarnessOpts::from_args();
    let cells: Vec<(WorkloadKind, Strategy)> = KINDS
        .into_iter()
        .flat_map(|k| Strategy::EVALUATED.into_iter().map(move |s| (k, s)))
        .collect();
    let cache = opts.cell_cache("counters");
    let mut results = run_cells("counters", &opts, &cells, |i, &(k, s)| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let stride = Strategy::EVALUATED.len();
    let mut records = Vec::new();
    for (ki, kind) in KINDS.into_iter().enumerate() {
        println!("\n== {kind} ==");
        for (si, s) in Strategy::EVALUATED.into_iter().enumerate() {
            let r = &results[ki * stride + si];
            println!(
                "{:>12}: cyc={:>9} M/C/X={}/{}/{} ldtx={} l1={:.2} l2={:.2} dram={} A={} B={} walk={}",
                s.label(),
                r.stats.cycles,
                r.stats.instrs_mem,
                r.stats.instrs_compute,
                r.stats.instrs_ctrl,
                r.stats.global_load_transactions,
                r.stats.l1_hit_rate(),
                r.stats.l2_hit_rate(),
                r.stats.dram_accesses,
                r.stats.stall(AccessTag::VtablePtr),
                r.stats.stall(AccessTag::VfuncPtr),
                r.stats.stall(AccessTag::RangeWalk),
            );
            records.push(CellRecord::of(kind.label(), s.label(), r));
        }
    }

    manifest::emit_grid(&opts, "counters", &records, &mut results);
}
