//! Unified reproduction report: collates every artifact under the
//! results directory into one human-readable `REPORT.md`.
//!
//! Usage: `report [--results DIR] [--history PATH] [--out PATH]`
//!
//! The collator reads only emitted artifacts — run manifests
//! (`gvf.run-manifest`), Chrome traces (`gvf.timeline`), and the
//! benchmark trajectory (`gvf.bench-trajectory`) — never the simulator
//! itself, so the report is a pure function of `results/` and can be
//! regenerated at any time. Sections:
//!
//! 1. per-figure cell tables (canonical paper order: tables first, then
//!    Figures 6–12, then the repo's own ablations);
//! 2. a host-performance summary per run (wall time, throughput, peak
//!    RSS) from each manifest's `hostPerf` section;
//! 3. a top-K stall-hotspot table aggregated from the probe traces'
//!    `"cat": "stall"` events, keyed by (PC, cause) — the closest thing
//!    the simulated GPU has to a profiler's hot-PC view;
//! 4. the recent benchmark trajectory from `BENCH_gvf.json`.
//!
//! Unreadable or unrecognized files are reported and skipped — a
//! partial `run_all.sh --keep-going` run still gets a report of
//! whatever succeeded. Progress goes to stderr; the report goes to the
//! `--out` file only.

use gvf_bench::bench_history::{History, DEFAULT_HISTORY_PATH};
use gvf_bench::json::Json;
use gvf_bench::manifest::MANIFEST_SCHEMA;
use gvf_bench::report::markdown_table;
use gvf_sim::TIMELINE_SCHEMA;

/// Canonical presentation order; anything else sorts after, by name.
const ORDER: &[(&str, &str)] = &[
    ("fig1b", "Figure 1b — motivating dispatch overhead"),
    ("table1", "Table 1 — workload characterization"),
    ("table2", "Table 2 — allocator comparison"),
    ("fig6", "Figure 6 — speedup over CUDA vfuncs"),
    ("fig7", "Figure 7 — dispatch latency breakdown"),
    ("fig8", "Figure 8 — memory-traffic reduction"),
    ("fig9", "Figure 9 — cache behaviour"),
    ("fig10", "Figure 10 — chunk-size sensitivity"),
    ("fig11", "Figure 11 — type-count scaling"),
    ("fig12", "Figure 12 — object-count scaling"),
    ("alloc_init", "Allocator initialization cost"),
    ("ablation_lookup", "Ablation — range-lookup strategies"),
    ("generations", "Ablation — generational recycling"),
    ("counters", "Hardware-counter cross-check"),
];

fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return "-".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 1e6 || (x != 0.0 && x.abs() < 1e-3) {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

fn scalar(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(n) => fmt_num(*n),
        Json::Bool(b) => b.to_string(),
        Json::Null => "-".to_string(),
        other => other.render(),
    }
}

/// Markdown table of a manifest's cells: the cell coordinates (every
/// non-stats member, in first-seen order) plus the headline measures.
fn cells_section(doc: &Json) -> String {
    let Some(cells) = doc.get("cells").and_then(Json::as_arr) else {
        return String::new();
    };
    let mut coord_keys: Vec<String> = Vec::new();
    for cell in cells {
        if let Json::Obj(members) = cell {
            for (k, v) in members {
                if matches!(v, Json::Obj(_) | Json::Arr(_)) {
                    continue; // stats / derived, handled below
                }
                if !coord_keys.contains(k) {
                    coord_keys.push(k.clone());
                }
            }
        }
    }
    let mut headers: Vec<&str> = coord_keys.iter().map(String::as_str).collect();
    headers.extend(["cycles", "IPC", "L1 hit", "vfunc PKI"]);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            let mut row: Vec<String> = coord_keys
                .iter()
                .map(|k| cell.get(k).map(scalar).unwrap_or_else(|| "-".into()))
                .collect();
            let stat = |k: &str| {
                cell.get("stats")
                    .and_then(|s| s.get(k))
                    .and_then(Json::as_num)
            };
            let derived = |k: &str| {
                cell.get("derived")
                    .and_then(|d| d.get(k))
                    .and_then(Json::as_num)
            };
            row.push(stat("cycles").map(fmt_num).unwrap_or_else(|| "-".into()));
            row.push(derived("ipc").map(fmt_num).unwrap_or_else(|| "-".into()));
            row.push(
                derived("l1_hit_rate")
                    .map(|r| format!("{:.1}%", r * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
            row.push(
                derived("vfunc_pki")
                    .map(fmt_num)
                    .unwrap_or_else(|| "-".into()),
            );
            row
        })
        .collect();
    markdown_table(&headers, &rows)
}

/// One row of the host-performance summary, from a manifest.
fn host_perf_row(bin: &str, doc: &Json) -> Option<Vec<String>> {
    let host = doc.get("hostPerf")?;
    let throughput = host.get("throughput")?;
    let num = |d: &Json, k: &str| d.get(k).and_then(Json::as_num);
    let rss = match host.get("peak_rss_bytes") {
        Some(Json::Num(b)) => format!("{:.1} MiB", b / (1024.0 * 1024.0)),
        _ => "-".to_string(),
    };
    Some(vec![
        bin.to_string(),
        num(host, "wall_s")
            .map(|s| format!("{s:.2} s"))
            .unwrap_or_else(|| "-".into()),
        num(throughput, "cells").map(fmt_num).unwrap_or_default(),
        num(throughput, "cells_per_sec")
            .map(fmt_num)
            .unwrap_or_default(),
        num(throughput, "sim_cycles_per_sec")
            .map(fmt_num)
            .unwrap_or_default(),
        rss,
    ])
}

/// Hotspot accumulator entry: (pc, cause) → (stall count, total cycles).
type Hotspot = ((u64, String), (u64, u64));

/// Aggregates a trace's `"cat": "stall"` slices by (pc, cause).
fn accumulate_hotspots(doc: &Json, agg: &mut Vec<Hotspot>) {
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return;
    };
    for ev in events {
        if ev.get("cat").and_then(Json::as_str) != Some("stall") {
            continue;
        }
        let dur = ev.get("dur").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let args = ev.get("args");
        let pc = args
            .and_then(|a| a.get("pc"))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64;
        let cause = args
            .and_then(|a| a.get("cause"))
            .and_then(Json::as_str)
            .or_else(|| ev.get("name").and_then(Json::as_str))
            .unwrap_or("other")
            .to_string();
        let key = (pc, cause);
        match agg.iter_mut().find(|(k, _)| *k == key) {
            Some((_, (count, total))) => {
                *count += 1;
                *total += dur;
            }
            None => agg.push((key, (1, dur))),
        }
    }
}

fn main() {
    let mut results_dir = "results".to_string();
    let mut history_path = DEFAULT_HISTORY_PATH.to_string();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("report: {name} needs a value");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--results" => results_dir = value("--results"),
            "--history" => history_path = value("--history"),
            "--out" => out_path = Some(value("--out")),
            other => {
                eprintln!("report: unknown argument {other:?}");
                eprintln!("usage: report [--results DIR] [--history PATH] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| format!("{results_dir}/REPORT.md"));

    // Deterministic scan: sorted *.json paths under the results dir.
    let mut paths: Vec<String> = match std::fs::read_dir(&results_dir) {
        Ok(iter) => iter
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .map(|p| p.to_string_lossy().into_owned())
            .collect(),
        Err(e) => {
            eprintln!("report: {results_dir}: {e}");
            std::process::exit(1);
        }
    };
    paths.sort();

    let mut manifests: Vec<(String, Json)> = Vec::new(); // (generator, doc)
    let mut hotspots: Vec<Hotspot> = Vec::new();
    let mut skipped = 0usize;
    for path in &paths {
        let doc = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
        {
            Ok(d) => d,
            Err(e) => {
                eprintln!("report: skipping {path}: {e}");
                skipped += 1;
                continue;
            }
        };
        let schema = doc
            .get("schema")
            .or_else(|| doc.get("otherData").and_then(|o| o.get("schema")))
            .and_then(Json::as_str)
            .unwrap_or("");
        if schema == MANIFEST_SCHEMA {
            let generator = doc
                .get("generator")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string();
            manifests.push((generator, doc));
        } else if schema == TIMELINE_SCHEMA {
            accumulate_hotspots(&doc, &mut hotspots);
        }
        // Metrics series feed Figure 13-style plots, not this report.
    }
    // Canonical order, then alphabetical for strangers.
    manifests.sort_by_key(|(generator, _)| {
        let rank = ORDER
            .iter()
            .position(|(name, _)| name == generator)
            .unwrap_or(ORDER.len());
        (rank, generator.clone())
    });

    let mut md = String::new();
    md.push_str("# gvf reproduction report\n\n");
    md.push_str(
        "Collated by the `report` binary from the run manifests, probe traces, \
         and benchmark trajectory under `results/`. Regenerate with \
         `./run_all.sh` or `cargo run --release --bin report`.\n\n",
    );
    md.push_str(&format!(
        "- manifests: {} ({} file{} skipped)\n",
        manifests.len(),
        skipped,
        if skipped == 1 { "" } else { "s" }
    ));
    let total_cells: usize = manifests
        .iter()
        .filter_map(|(_, d)| d.get("cells").and_then(Json::as_arr).map(<[_]>::len))
        .sum();
    md.push_str(&format!("- grid cells: {total_cells}\n\n"));

    md.push_str("## Results\n\n");
    for (generator, doc) in &manifests {
        let title = ORDER
            .iter()
            .find(|(name, _)| name == generator)
            .map(|(_, t)| *t)
            .unwrap_or(generator.as_str());
        md.push_str(&format!("### {title}\n\n"));
        if let Some(config) = doc.get("config") {
            md.push_str(&format!(
                "Config: scale {}, iterations {}, seed {}, smoke {}.\n\n",
                config.get("scale").map(scalar).unwrap_or_default(),
                config.get("iterations").map(scalar).unwrap_or_default(),
                config.get("seed").map(scalar).unwrap_or_default(),
                config.get("smoke").map(scalar).unwrap_or_default(),
            ));
        }
        md.push_str(&cells_section(doc));
        md.push('\n');
    }

    md.push_str("## Host performance\n\n");
    md.push_str(
        "Wall-clock data from each manifest's `hostPerf` section — host-side \
         only, excluded from the determinism diff.\n\n",
    );
    let host_rows: Vec<Vec<String>> = manifests
        .iter()
        .filter_map(|(generator, doc)| host_perf_row(generator, doc))
        .collect();
    md.push_str(&markdown_table(
        &[
            "bin",
            "wall",
            "cells",
            "cells/s",
            "sim cycles/s",
            "peak RSS",
        ],
        &host_rows,
    ));
    md.push('\n');

    md.push_str("## Stall hotspots\n\n");
    if hotspots.is_empty() {
        md.push_str("No probe traces found (run with `--trace-out` to record).\n\n");
    } else {
        md.push_str(
            "Top program counters by total stall cycles, aggregated from the \
             probe timelines' `stall` slices.\n\n",
        );
        hotspots.sort_by(|(ka, (_, da)), (kb, (_, db))| db.cmp(da).then(ka.cmp(kb)));
        let rows: Vec<Vec<String>> = hotspots
            .iter()
            .take(10)
            .map(|((pc, cause), (count, total))| {
                vec![
                    format!("0x{pc:04x}"),
                    cause.clone(),
                    count.to_string(),
                    total.to_string(),
                ]
            })
            .collect();
        md.push_str(&markdown_table(
            &["PC", "cause", "stalls", "total cycles"],
            &rows,
        ));
        md.push('\n');
    }

    md.push_str("## Benchmark trajectory\n\n");
    match History::load(&history_path) {
        Ok(history) if !history.entries.is_empty() => {
            md.push_str(&format!(
                "Last {} of {} entries in `{}` (gate metric: simulated \
                 cycles per host second).\n\n",
                history.entries.len().min(20),
                history.entries.len(),
                history_path
            ));
            let tail = &history.entries[history.entries.len().saturating_sub(20)..];
            let rows: Vec<Vec<String>> = tail
                .iter()
                .map(|e| {
                    vec![
                        e.date.clone(),
                        e.rev.clone(),
                        e.sample.bin.clone(),
                        fmt_num(e.sample.sim_cycles_per_sec),
                        e.samples.to_string(),
                    ]
                })
                .collect();
            md.push_str(&markdown_table(
                &["date", "rev", "bin", "sim cycles/s", "samples"],
                &rows,
            ));
            md.push('\n');
        }
        Ok(_) => {
            md.push_str(&format!(
                "No trajectory yet — `perf_record` appends to `{history_path}`.\n\n"
            ));
        }
        Err(e) => {
            eprintln!("report: trajectory unreadable: {e}");
            md.push_str(&format!("Trajectory unreadable: {e}\n\n"));
        }
    }

    if let Err(e) = std::fs::write(&out_path, md.as_bytes()) {
        eprintln!("report: {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "report: wrote {out_path} ({} manifests, {} hotspot keys)",
        manifests.len(),
        hotspots.len()
    );
}
