//! Unified reproduction report: collates every artifact under the
//! results directory into one human-readable `REPORT.md`.
//!
//! Usage: `report [--results DIR] [--history PATH] [--out PATH] [--quiet]`
//!
//! The collator reads only emitted artifacts — run manifests
//! (`gvf.run-manifest`), Chrome traces (`gvf.timeline`), and the
//! benchmark trajectory (`gvf.bench-trajectory`) — never the simulator
//! itself, so the report is a pure function of `results/` and can be
//! regenerated at any time. Sections:
//!
//! 1. per-figure cell tables (canonical paper order: tables first, then
//!    Figures 6–12, then the repo's own ablations);
//! 2. an attribution section from the `gvf.attribution` documents:
//!    per-strategy coalescing and lookup walk-depth tables, plus the
//!    hard cross-check that every cell's attributed transactions equal
//!    its manifest `Stats` counters (a mismatch exits non-zero);
//! 3. a host-performance summary per run (wall time, throughput, peak
//!    RSS) from each manifest's `hostPerf` section;
//! 4. "Where the host time goes": top exclusive-time spans from the
//!    `gvf.hostprofile` documents — the engine's own flamegraph view;
//! 5. "Fast-forward opportunity" from the `gvf.cycleaudit` documents:
//!    how much simulated time was skippable per cell, with the hard
//!    cross-check that every audit's epoch classes sum to
//!    `sms × auditedCycles` and reconcile against the manifest's
//!    `Stats` cycle counters (a mismatch exits non-zero);
//! 6. a top-K stall-hotspot table aggregated from the probe traces'
//!    `"cat": "stall"` events, keyed by (PC, cause) — the closest thing
//!    the simulated GPU has to a profiler's hot-PC view;
//! 7. a "Run timeline" section from the `gvf.events` telemetry streams
//!    (`*.events.jsonl`): per-sweep cell outcomes, wall time, worker
//!    occupancy and stall warnings — how each run actually unfolded;
//! 8. "What changed since the baseline": every `gvf.rundiff`
//!    run-comparison artifact found in the results dir (see
//!    [`gvf_bench::rundiff`]) rendered as per-run verdicts plus top
//!    attributed causes, and the latest-vs-previous trajectory movement
//!    per binary;
//! 9. the recent benchmark trajectory from `BENCH_gvf.json`.
//!
//! Unreadable or unrecognized files are reported and skipped — a
//! partial `run_all.sh --keep-going` run still gets a report of
//! whatever succeeded, and each section lists its own absent (missing,
//! empty, or torn) artifacts explicitly rather than silently dropping
//! them. Progress goes to stderr; the report goes to the `--out` file
//! only.

use gvf_bench::bench_history::{History, DEFAULT_HISTORY_PATH};
use gvf_bench::events;
use gvf_bench::json::Json;
use gvf_bench::manifest::{ATTRIB_SCHEMA, CYCLEAUDIT_SCHEMA, HOSTPROFILE_SCHEMA, MANIFEST_SCHEMA};
use gvf_bench::report::markdown_table;
use gvf_sim::TIMELINE_SCHEMA;

/// Canonical presentation order; anything else sorts after, by name.
const ORDER: &[(&str, &str)] = &[
    ("fig1b", "Figure 1b — motivating dispatch overhead"),
    ("table1", "Table 1 — workload characterization"),
    ("table2", "Table 2 — allocator comparison"),
    ("fig6", "Figure 6 — speedup over CUDA vfuncs"),
    ("fig7", "Figure 7 — dispatch latency breakdown"),
    ("fig8", "Figure 8 — memory-traffic reduction"),
    ("fig9", "Figure 9 — cache behaviour"),
    ("fig10", "Figure 10 — chunk-size sensitivity"),
    ("fig11", "Figure 11 — type-count scaling"),
    ("fig12", "Figure 12 — object-count scaling"),
    ("alloc_init", "Allocator initialization cost"),
    ("ablation_lookup", "Ablation — range-lookup strategies"),
    ("generations", "Ablation — generational recycling"),
    ("counters", "Hardware-counter cross-check"),
];

fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return "-".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 1e6 || (x != 0.0 && x.abs() < 1e-3) {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

fn scalar(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(n) => fmt_num(*n),
        Json::Bool(b) => b.to_string(),
        Json::Null => "-".to_string(),
        other => other.render(),
    }
}

/// Markdown table of a manifest's cells: the cell coordinates (every
/// non-stats member, in first-seen order) plus the headline measures.
fn cells_section(doc: &Json) -> String {
    let Some(cells) = doc.get("cells").and_then(Json::as_arr) else {
        return String::new();
    };
    let mut coord_keys: Vec<String> = Vec::new();
    for cell in cells {
        if let Json::Obj(members) = cell {
            for (k, v) in members {
                if matches!(v, Json::Obj(_) | Json::Arr(_)) {
                    continue; // stats / derived, handled below
                }
                if !coord_keys.contains(k) {
                    coord_keys.push(k.clone());
                }
            }
        }
    }
    let mut headers: Vec<&str> = coord_keys.iter().map(String::as_str).collect();
    headers.extend(["cycles", "IPC", "L1 hit", "vfunc PKI"]);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            let mut row: Vec<String> = coord_keys
                .iter()
                .map(|k| cell.get(k).map(scalar).unwrap_or_else(|| "-".into()))
                .collect();
            let stat = |k: &str| {
                cell.get("stats")
                    .and_then(|s| s.get(k))
                    .and_then(Json::as_num)
            };
            let derived = |k: &str| {
                cell.get("derived")
                    .and_then(|d| d.get(k))
                    .and_then(Json::as_num)
            };
            row.push(stat("cycles").map(fmt_num).unwrap_or_else(|| "-".into()));
            row.push(derived("ipc").map(fmt_num).unwrap_or_else(|| "-".into()));
            row.push(
                derived("l1_hit_rate")
                    .map(|r| format!("{:.1}%", r * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
            row.push(
                derived("vfunc_pki")
                    .map(fmt_num)
                    .unwrap_or_else(|| "-".into()),
            );
            row
        })
        .collect();
    // A v2 failure manifest records dead cells alongside the survivors;
    // flag them ahead of the table (their measure columns are "-").
    let failed = cells
        .iter()
        .filter(|c| c.get("status").and_then(Json::as_str) == Some("failed"))
        .count();
    let mut out = String::new();
    if failed > 0 {
        out.push_str(&format!(
            "**{failed} of {} cells FAILED** — see the `status`/`panic` columns below.\n\n",
            cells.len()
        ));
    }
    out.push_str(&markdown_table(&headers, &rows));
    out
}

/// One row of the host-performance summary, from a manifest.
fn host_perf_row(bin: &str, doc: &Json) -> Option<Vec<String>> {
    let host = doc.get("hostPerf")?;
    let throughput = host.get("throughput")?;
    let num = |d: &Json, k: &str| d.get(k).and_then(Json::as_num);
    let rss = match host.get("peak_rss_bytes") {
        Some(Json::Num(b)) => format!("{:.1} MiB", b / (1024.0 * 1024.0)),
        _ => "-".to_string(),
    };
    Some(vec![
        bin.to_string(),
        num(host, "wall_s")
            .map(|s| format!("{s:.2} s"))
            .unwrap_or_else(|| "-".into()),
        num(throughput, "cells").map(fmt_num).unwrap_or_default(),
        num(throughput, "cells_per_sec")
            .map(fmt_num)
            .unwrap_or_default(),
        num(throughput, "sim_cycles_per_sec")
            .map(fmt_num)
            .unwrap_or_default(),
        rss,
    ])
}

/// Pretty-prints a sparse log2 histogram (`[{lo, count}, ...]`) as
/// compact `lo×count` pairs.
fn hist_compact(h: Option<&Json>) -> String {
    let Some(buckets) = h.and_then(Json::as_arr) else {
        return "-".to_string();
    };
    if buckets.is_empty() {
        return "-".to_string();
    }
    buckets
        .iter()
        .map(|b| {
            format!(
                "{}×{}",
                b.get("lo").map(scalar).unwrap_or_default(),
                b.get("count").map(scalar).unwrap_or_default()
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Cross-checks one attribution document against its manifest: cell
/// coordinates must line up, and for every tag, the attributed
/// transaction total must equal the manifest's `Stats` counter —
/// including tags the attribution omitted (counter must then be zero).
/// Appends one line per violation to `failures`.
fn cross_check_attribution(
    generator: &str,
    adoc: &Json,
    manifest: &Json,
    failures: &mut Vec<String>,
) {
    let acells = adoc.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let mcells = manifest.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    if acells.len() != mcells.len() {
        failures.push(format!(
            "{generator}: attribution has {} cells, manifest has {}",
            acells.len(),
            mcells.len()
        ));
        return;
    }
    for (i, (ac, mc)) in acells.iter().zip(mcells.iter()).enumerate() {
        for key in ["workload", "strategy"] {
            if ac.get(key).and_then(Json::as_str) != mc.get(key).and_then(Json::as_str) {
                failures.push(format!("{generator} cell {i}: {key} coordinate mismatch"));
            }
        }
        let Some(attrib) = ac.get("attribution").filter(|a| **a != Json::Null) else {
            continue;
        };
        let by_tag = attrib
            .get("probe")
            .and_then(|p| p.get("loads"))
            .and_then(|l| l.get("by_tag"));
        let counters = mc
            .get("stats")
            .and_then(|s| s.get("load_transactions_by_tag"));
        let Some(Json::Obj(counters)) = counters else {
            failures.push(format!(
                "{generator} cell {i}: manifest cell lacks load counters"
            ));
            continue;
        };
        for (tag, counted) in counters {
            let counted = counted.as_num().unwrap_or(0.0) as u64;
            let attributed = by_tag
                .and_then(|t| t.get(tag))
                .and_then(|e| e.get("transactions"))
                .and_then(Json::as_num)
                .unwrap_or(0.0) as u64;
            if attributed != counted {
                failures.push(format!(
                    "{generator} cell {i} tag {tag}: attributed {attributed} != counted {counted}"
                ));
            }
        }
    }
}

/// The per-document attribution tables: per-strategy coalescing
/// evidence and per-cell lookup walk depth.
fn attribution_section(adoc: &Json) -> String {
    let cells = adoc.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let mut md = String::new();

    // Coalescing, aggregated over workloads: (strategy, tag) →
    // [instructions, lanes, transactions, l1_hits].
    let mut agg: Vec<((String, String), [u64; 4])> = Vec::new();
    for cell in cells {
        let strategy = cell
            .get("strategy")
            .and_then(Json::as_str)
            .unwrap_or("-")
            .to_string();
        let by_tag = cell
            .get("attribution")
            .and_then(|a| a.get("probe"))
            .and_then(|p| p.get("loads"))
            .and_then(|l| l.get("by_tag"));
        let Some(Json::Obj(by_tag)) = by_tag else {
            continue;
        };
        for (tag, e) in by_tag {
            let key = (strategy.clone(), tag.clone());
            let vals = [
                e.get("instructions"),
                e.get("lanes"),
                e.get("transactions"),
                e.get("l1_hits"),
            ]
            .map(|v| v.and_then(Json::as_num).unwrap_or(0.0) as u64);
            match agg.iter_mut().find(|(k, _)| *k == key) {
                Some((_, acc)) => {
                    for (a, v) in acc.iter_mut().zip(vals) {
                        *a += v;
                    }
                }
                None => agg.push((key, vals)),
            }
        }
    }
    if !agg.is_empty() {
        md.push_str("Coalescing by strategy and access tag (summed over cells):\n\n");
        let rows: Vec<Vec<String>> = agg
            .iter()
            .map(|((strategy, tag), [instrs, lanes, txns, hits])| {
                vec![
                    strategy.clone(),
                    tag.clone(),
                    instrs.to_string(),
                    txns.to_string(),
                    if *txns > 0 {
                        format!("{:.2}", *lanes as f64 / *txns as f64)
                    } else {
                        "-".into()
                    },
                    if *instrs > 0 {
                        format!("{:.2}", *txns as f64 / *instrs as f64)
                    } else {
                        "-".into()
                    },
                    if *txns > 0 {
                        format!("{:.1}%", *hits as f64 / *txns as f64 * 100.0)
                    } else {
                        "-".into()
                    },
                ]
            })
            .collect();
        md.push_str(&markdown_table(
            &[
                "strategy",
                "tag",
                "load instrs",
                "transactions",
                "lanes/txn",
                "txn/instr",
                "L1 hit",
            ],
            &rows,
        ));
        md.push('\n');
    }

    // Lookup walk depth, one row per cell that walked a range structure.
    let lookup_rows: Vec<Vec<String>> = cells
        .iter()
        .filter_map(|cell| {
            let l = cell
                .get("attribution")
                .and_then(|a| a.get("lookup"))
                .filter(|l| **l != Json::Null)?;
            Some(vec![
                cell.get("workload").map(scalar).unwrap_or_default(),
                cell.get("strategy").map(scalar).unwrap_or_default(),
                l.get("kind").map(scalar).unwrap_or_default(),
                l.get("num_ranges").map(scalar).unwrap_or_default(),
                l.get("dispatches").map(scalar).unwrap_or_default(),
                hist_compact(l.get("walk_depth")),
                hist_compact(l.get("comparisons")),
            ])
        })
        .collect();
    if !lookup_rows.is_empty() {
        md.push_str(
            "Range-lookup walks (per-dispatch depth and comparison histograms, `value×count`):\n\n",
        );
        md.push_str(&markdown_table(
            &[
                "workload",
                "strategy",
                "lookup",
                "ranges",
                "dispatches",
                "walk depth",
                "comparisons",
            ],
            &lookup_rows,
        ));
        md.push('\n');
    }
    md
}

/// Cross-checks one cycle-audit document against its manifest: cell
/// coordinates must line up, every audit's six epoch classes must sum
/// to `sms × auditedCycles` exactly, and `auditedCycles` must equal
/// the manifest cell's `Stats` cycle counter. Appends one line per
/// violation to `failures`.
fn cross_check_audit(generator: &str, adoc: &Json, manifest: &Json, failures: &mut Vec<String>) {
    let acells = adoc.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let mcells = manifest.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    if acells.len() != mcells.len() {
        failures.push(format!(
            "{generator}: cycle audit has {} cells, manifest has {}",
            acells.len(),
            mcells.len()
        ));
        return;
    }
    for (i, (ac, mc)) in acells.iter().zip(mcells.iter()).enumerate() {
        for key in ["workload", "strategy"] {
            if ac.get(key).and_then(Json::as_str) != mc.get(key).and_then(Json::as_str) {
                failures.push(format!(
                    "{generator} cell {i}: {key} coordinate mismatch (audit)"
                ));
            }
        }
        let Some(audit) = ac.get("audit").filter(|a| **a != Json::Null) else {
            continue;
        };
        let num = |v: &Json, k: &str| v.get(k).and_then(Json::as_num).unwrap_or(0.0) as u64;
        let sms = num(audit, "sms");
        let audited = num(audit, "auditedCycles");
        let classes = audit.get("classes");
        let sum: u64 = gvf_sim::CYCLE_CLASS_LABELS
            .iter()
            .map(|k| classes.map(|c| num(c, k)).unwrap_or(0))
            .sum();
        if sum != sms * audited {
            failures.push(format!(
                "{generator} cell {i}: audit classes sum {sum} != sms {sms} × \
                 auditedCycles {audited}"
            ));
        }
        let counted = mc
            .get("stats")
            .and_then(|s| s.get("cycles"))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64;
        if audited != counted {
            failures.push(format!(
                "{generator} cell {i}: auditedCycles {audited} != manifest cycles {counted}"
            ));
        }
    }
}

/// The per-document fast-forward table: one row per audited cell with
/// its epoch-class mix and the skippable-time upper bound.
fn audit_section(adoc: &Json) -> String {
    let cells = adoc.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .filter_map(|cell| {
            let a = cell.get("audit").filter(|a| **a != Json::Null)?;
            let classes = a.get("classes")?;
            let ff = a.get("fastForward")?;
            let sites = a.get("callSites");
            let class = |k: &str| classes.get(k).map(scalar).unwrap_or_default();
            Some(vec![
                cell.get("workload").map(scalar).unwrap_or_default(),
                cell.get("strategy").map(scalar).unwrap_or_default(),
                a.get("auditedCycles").map(scalar).unwrap_or_default(),
                class("active"),
                class("stalledKnown"),
                class("drained"),
                class("skipped"),
                ff.get("fraction")
                    .and_then(Json::as_num)
                    .map(|f| format!("{:.1}%", f * 100.0))
                    .unwrap_or_else(|| "-".into()),
                ff.get("upperBoundSpeedup")
                    .and_then(Json::as_num)
                    .map(|s| format!("{s:.2}×"))
                    .unwrap_or_else(|| "-".into()),
                sites
                    .map(|s| {
                        format!(
                            "{}m/{}f/{}M",
                            s.get("monomorphic").map(scalar).unwrap_or_default(),
                            s.get("fewTyped").map(scalar).unwrap_or_default(),
                            s.get("megamorphic").map(scalar).unwrap_or_default(),
                        )
                    })
                    .unwrap_or_else(|| "-".into()),
            ])
        })
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    let mut md = String::new();
    md.push_str(&markdown_table(
        &[
            "workload",
            "strategy",
            "cycles",
            "active",
            "stalled-known",
            "drained",
            "skipped",
            "skippable",
            "upper-bound speedup",
            "sites (mono/few/mega)",
        ],
        &rows,
    ));
    md.push('\n');
    md
}

/// The host-profile table: top spans by exclusive time, one table per
/// profiled binary.
fn hostprofile_section(generator: &str, pdoc: &Json) -> String {
    let Some(spans) = pdoc.get("spans").and_then(Json::as_arr) else {
        return String::new();
    };
    if spans.is_empty() {
        return format!("`{generator}`: profile recorded no spans.\n\n");
    }
    let mut ranked: Vec<(&Json, f64)> = spans
        .iter()
        .map(|s| {
            (
                s,
                s.get("exclusiveNs").and_then(Json::as_num).unwrap_or(0.0),
            )
        })
        .collect();
    ranked.sort_by(|(sa, a), (sb, b)| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal).then(
            sa.get("path")
                .and_then(Json::as_str)
                .cmp(&sb.get("path").and_then(Json::as_str)),
        )
    });
    let total_excl: f64 = ranked.iter().map(|(_, e)| e).sum();
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .take(10)
        .map(|(s, excl)| {
            vec![
                s.get("path").map(scalar).unwrap_or_default(),
                s.get("count").map(scalar).unwrap_or_default(),
                format!(
                    "{:.1} ms",
                    s.get("totalNs").and_then(Json::as_num).unwrap_or(0.0) / 1e6
                ),
                format!("{:.1} ms", excl / 1e6),
                if total_excl > 0.0 {
                    format!("{:.1}%", excl / total_excl * 100.0)
                } else {
                    "-".into()
                },
            ]
        })
        .collect();
    let mut md = format!("### {generator}\n\n");
    md.push_str(&markdown_table(
        &["span", "count", "inclusive", "exclusive", "excl %"],
        &rows,
    ));
    md.push('\n');
    md
}

/// Hotspot accumulator entry: (pc, cause) → (stall count, total cycles).
type Hotspot = ((u64, String), (u64, u64));

/// Which report section a results-dir file feeds, by naming
/// convention (`run_all.sh` suffixes). Used to report unreadable or
/// torn artifacts in the section that would have rendered them,
/// instead of only a stderr note.
fn artifact_family(path: &str) -> &'static str {
    if path.ends_with(".attrib.json") {
        "attribution"
    } else if path.ends_with(".audit.json") {
        "cycle-audit"
    } else if path.ends_with(".profile.json") {
        "host-profile"
    } else if path.ends_with(".trace.json") {
        "trace"
    } else if path.ends_with(".metrics.json") {
        "metrics"
    } else if path.ends_with(".events.jsonl") {
        "events"
    } else {
        "manifest"
    }
}

/// The explicit "artifact absent" note for one family: every file of
/// that family that failed to read or parse, so a torn or truncated
/// artifact degrades to a visible note in its own section rather than
/// silently vanishing from the report.
fn absent_notes(unreadable: &[(String, String)], family: &str) -> String {
    let hits: Vec<&(String, String)> = unreadable
        .iter()
        .filter(|(p, _)| artifact_family(p) == family)
        .collect();
    if hits.is_empty() {
        return String::new();
    }
    let mut md = format!(
        "**{} {family} artifact{} absent from this report** (unreadable or torn):\n\n",
        hits.len(),
        if hits.len() == 1 { "" } else { "s" }
    );
    for (path, err) in hits {
        md.push_str(&format!("- `{path}` — {err}\n"));
    }
    md.push('\n');
    md
}

/// The "What changed since the baseline" section: every `gvf.rundiff`
/// artifact found in the results dir (e.g. `rundiff.json` from
/// `run_all.sh --baseline`), rendered as its per-run verdicts plus the
/// top attributed causes, followed by the latest-vs-previous trajectory
/// movement per benchmarked binary.
fn baseline_section(rundiffs: &[(String, Json)], history: Option<&History>) -> String {
    let mut md = String::new();
    if rundiffs.is_empty() {
        md.push_str(
            "No run-comparison artifacts found — produce one with \
             `run_all.sh --baseline DIR` or `diffrun BASELINE CURRENT` \
             to get every regression explained here.\n\n",
        );
    }
    for (path, doc) in rundiffs {
        md.push_str(&format!("### `{path}`\n\n"));
        for line in gvf_bench::rundiff::human_summary(doc).lines() {
            md.push_str(&format!("- {line}\n"));
        }
        let causes = doc
            .get("summary")
            .and_then(|s| s.get("topCauses"))
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        if !causes.is_empty() {
            md.push_str("\nTop attributed causes:\n");
            for c in causes {
                md.push_str(&format!("- {}\n", scalar(c)));
            }
        }
        md.push('\n');
    }
    // Trajectory movement: latest vs previous entry per binary.
    let mut rows: Vec<Vec<String>> = Vec::new();
    if let Some(history) = history {
        let mut bins: Vec<&str> = history
            .entries
            .iter()
            .map(|e| e.sample.bin.as_str())
            .collect();
        bins.sort_unstable();
        bins.dedup();
        for bin in bins {
            let of_bin: Vec<_> = history
                .entries
                .iter()
                .filter(|e| e.sample.bin == bin)
                .collect();
            let [.., prev, last] = of_bin.as_slice() else {
                continue;
            };
            rows.push(vec![
                bin.to_string(),
                format!("{} ({})", fmt_num(prev.sample.sim_cycles_per_sec), prev.rev),
                format!("{} ({})", fmt_num(last.sample.sim_cycles_per_sec), last.rev),
                if prev.sample.sim_cycles_per_sec > 0.0 {
                    format!(
                        "x{:.2}",
                        last.sample.sim_cycles_per_sec / prev.sample.sim_cycles_per_sec
                    )
                } else {
                    "-".into()
                },
            ]);
        }
    }
    if !rows.is_empty() {
        md.push_str(
            "Trajectory movement (latest vs previous recorded benchmark per \
             binary; gate metric: simulated cycles per host second):\n\n",
        );
        md.push_str(&markdown_table(
            &["bin", "previous", "latest", "ratio"],
            &rows,
        ));
        md.push('\n');
    }
    md
}

/// Aggregates a trace's `"cat": "stall"` slices by (pc, cause).
fn accumulate_hotspots(doc: &Json, agg: &mut Vec<Hotspot>) {
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return;
    };
    for ev in events {
        if ev.get("cat").and_then(Json::as_str) != Some("stall") {
            continue;
        }
        let dur = ev.get("dur").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let args = ev.get("args");
        let pc = args
            .and_then(|a| a.get("pc"))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64;
        let cause = args
            .and_then(|a| a.get("cause"))
            .and_then(Json::as_str)
            .or_else(|| ev.get("name").and_then(Json::as_str))
            .unwrap_or("other")
            .to_string();
        let key = (pc, cause);
        match agg.iter_mut().find(|(k, _)| *k == key) {
            Some((_, (count, total))) => {
                *count += 1;
                *total += dur;
            }
            None => agg.push((key, (1, dur))),
        }
    }
}

fn main() {
    let mut results_dir = "results".to_string();
    let mut history_path = DEFAULT_HISTORY_PATH.to_string();
    let mut out_path: Option<String> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("report: {name} needs a value");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--results" => results_dir = value("--results"),
            "--history" => history_path = value("--history"),
            "--out" => out_path = Some(value("--out")),
            "--quiet" => quiet = true,
            other => {
                eprintln!("report: unknown argument {other:?}");
                eprintln!("usage: report [--results DIR] [--history PATH] [--out PATH] [--quiet]");
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| format!("{results_dir}/REPORT.md"));

    // Deterministic scan: sorted *.json paths under the results dir.
    let mut paths: Vec<String> = match std::fs::read_dir(&results_dir) {
        Ok(iter) => iter
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .map(|p| p.to_string_lossy().into_owned())
            .collect(),
        Err(e) => {
            eprintln!("report: {results_dir}: {e}");
            std::process::exit(1);
        }
    };
    paths.sort();

    let mut manifests: Vec<(String, Json)> = Vec::new(); // (generator, doc)
    let mut attributions: Vec<(String, Json)> = Vec::new(); // (generator, doc)
    let mut audits: Vec<(String, Json)> = Vec::new(); // (generator, doc)
    let mut profiles: Vec<(String, Json)> = Vec::new(); // (generator, doc)
    let mut rundiffs: Vec<(String, Json)> = Vec::new(); // (path, doc)
    let mut hotspots: Vec<Hotspot> = Vec::new();
    let mut unreadable: Vec<(String, String)> = Vec::new(); // (path, error)
    let mut skipped = 0usize;
    for path in &paths {
        let doc = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| {
                if t.trim().is_empty() {
                    Err("empty file".to_string())
                } else {
                    Json::parse(&t).map_err(|e| e.to_string())
                }
            }) {
            Ok(d) => d,
            Err(e) => {
                if !quiet {
                    eprintln!("report: skipping {path}: {e}");
                }
                unreadable.push((path.clone(), e));
                skipped += 1;
                continue;
            }
        };
        let schema = doc
            .get("schema")
            .or_else(|| doc.get("otherData").and_then(|o| o.get("schema")))
            .and_then(Json::as_str)
            .unwrap_or("");
        let generator = doc
            .get("generator")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        if schema == MANIFEST_SCHEMA {
            manifests.push((generator, doc));
        } else if schema == ATTRIB_SCHEMA {
            attributions.push((generator, doc));
        } else if schema == CYCLEAUDIT_SCHEMA {
            audits.push((generator, doc));
        } else if schema == HOSTPROFILE_SCHEMA {
            profiles.push((generator, doc));
        } else if schema == TIMELINE_SCHEMA {
            accumulate_hotspots(&doc, &mut hotspots);
        } else if schema == gvf_bench::schemas::RUNDIFF.id {
            rundiffs.push((path.clone(), doc));
        }
        // Metrics series feed Figure 13-style plots, not this report.
    }
    // Events streams live in their own scan: they are JSONL, not JSON,
    // and run_all names them *.events.jsonl so the `.json` glob above
    // never sees them.
    let mut event_paths: Vec<String> = std::fs::read_dir(&results_dir)
        .map(|iter| {
            iter.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.to_string_lossy().ends_with(".events.jsonl"))
                .map(|p| p.to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    event_paths.sort();
    let mut timelines: Vec<events::StreamSummary> = Vec::new();
    for path in &event_paths {
        let summary = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| events::parse_stream(&t))
            .and_then(|stream| events::validate_stream(&stream));
        match summary {
            Ok(s) => timelines.push(s),
            Err(e) => {
                if !quiet {
                    eprintln!("report: skipping {path}: {e}");
                }
                unreadable.push((path.clone(), e));
                skipped += 1;
            }
        }
    }
    // Canonical order, then alphabetical for strangers.
    manifests.sort_by_key(|(generator, _)| {
        let rank = ORDER
            .iter()
            .position(|(name, _)| name == generator)
            .unwrap_or(ORDER.len());
        (rank, generator.clone())
    });

    let mut md = String::new();
    md.push_str("# gvf reproduction report\n\n");
    md.push_str(
        "Collated by the `report` binary from the run manifests, probe traces, \
         and benchmark trajectory under `results/`. Regenerate with \
         `./run_all.sh` or `cargo run --release --bin report`.\n\n",
    );
    md.push_str(&format!(
        "- manifests: {} ({} file{} skipped)\n",
        manifests.len(),
        skipped,
        if skipped == 1 { "" } else { "s" }
    ));
    let total_cells: usize = manifests
        .iter()
        .filter_map(|(_, d)| d.get("cells").and_then(Json::as_arr).map(<[_]>::len))
        .sum();
    md.push_str(&format!("- grid cells: {total_cells}\n\n"));
    md.push_str(&absent_notes(&unreadable, "metrics"));
    md.push_str(&absent_notes(&unreadable, "trace"));

    md.push_str("## Results\n\n");
    md.push_str(&absent_notes(&unreadable, "manifest"));
    for (generator, doc) in &manifests {
        let title = ORDER
            .iter()
            .find(|(name, _)| name == generator)
            .map(|(_, t)| *t)
            .unwrap_or(generator.as_str());
        md.push_str(&format!("### {title}\n\n"));
        if let Some(config) = doc.get("config") {
            md.push_str(&format!(
                "Config: scale {}, iterations {}, seed {}, smoke {}.\n\n",
                config.get("scale").map(scalar).unwrap_or_default(),
                config.get("iterations").map(scalar).unwrap_or_default(),
                config.get("seed").map(scalar).unwrap_or_default(),
                config.get("smoke").map(scalar).unwrap_or_default(),
            ));
        }
        md.push_str(&cells_section(doc));
        md.push('\n');
    }

    md.push_str("## Attribution\n\n");
    md.push_str(&absent_notes(&unreadable, "attribution"));
    let mut cross_check_failures: Vec<String> = Vec::new();
    if attributions.is_empty() {
        md.push_str("No attribution documents found (run with `--attrib-out` to record).\n\n");
    } else {
        md.push_str(
            "Mechanism evidence from the `gvf.attribution` documents: the \
             allocator, lookup-walk and cache-line behaviour behind each \
             figure. Every cell's attributed per-PC transactions are \
             reconciled exactly against its manifest `Stats` counters; a \
             mismatch fails this report.\n\n",
        );
        attributions.sort_by_key(|(generator, _)| {
            let rank = ORDER
                .iter()
                .position(|(name, _)| name == generator)
                .unwrap_or(ORDER.len());
            (rank, generator.clone())
        });
        for (generator, adoc) in &attributions {
            md.push_str(&format!("### {generator}\n\n"));
            match manifests.iter().find(|(g, _)| g == generator) {
                Some((_, mdoc)) => {
                    let before = cross_check_failures.len();
                    cross_check_attribution(generator, adoc, mdoc, &mut cross_check_failures);
                    let new = &cross_check_failures[before..];
                    if new.is_empty() {
                        md.push_str(
                            "Cross-check: attributed transactions == Stats counters \
                             for every cell and tag. ✓\n\n",
                        );
                    } else {
                        md.push_str(&format!(
                            "**Cross-check FAILED** ({} mismatch{}):\n\n",
                            new.len(),
                            if new.len() == 1 { "" } else { "es" }
                        ));
                        for f in new {
                            md.push_str(&format!("- {f}\n"));
                        }
                        md.push('\n');
                    }
                }
                None => md.push_str("No matching manifest — cross-check skipped.\n\n"),
            }
            md.push_str(&attribution_section(adoc));
        }
    }

    md.push_str("## Host performance\n\n");
    md.push_str(
        "Wall-clock data from each manifest's `hostPerf` section — host-side \
         only, excluded from the determinism diff.\n\n",
    );
    let host_rows: Vec<Vec<String>> = manifests
        .iter()
        .filter_map(|(generator, doc)| host_perf_row(generator, doc))
        .collect();
    md.push_str(&markdown_table(
        &[
            "bin",
            "wall",
            "cells",
            "cells/s",
            "sim cycles/s",
            "peak RSS",
        ],
        &host_rows,
    ));
    md.push('\n');

    md.push_str("## Where the host time goes\n\n");
    md.push_str(&absent_notes(&unreadable, "host-profile"));
    if profiles.is_empty() {
        md.push_str("No host profiles found (run with `--profile-out` to record).\n\n");
    } else {
        md.push_str(
            "Top spans by exclusive wall time from each binary's \
             `gvf.hostprofile` document — the engine's self-measured answer \
             to \"which internal region is the bottleneck\". Paths are \
             `;`-joined span stacks; the `collapsedStacks` member of each \
             profile feeds flamegraph tools directly.\n\n",
        );
        profiles.sort_by_key(|(generator, _)| {
            let rank = ORDER
                .iter()
                .position(|(name, _)| name == generator)
                .unwrap_or(ORDER.len());
            (rank, generator.clone())
        });
        for (generator, pdoc) in &profiles {
            md.push_str(&hostprofile_section(generator, pdoc));
        }
    }

    md.push_str("## Fast-forward opportunity\n\n");
    md.push_str(&absent_notes(&unreadable, "cycle-audit"));
    if audits.is_empty() {
        md.push_str("No cycle audits found (run with `--audit-out` to record).\n\n");
    } else {
        md.push_str(
            "From the `gvf.cycleaudit` documents: every simulated epoch-cycle \
             classified, per cell. `skippable` counts stalled-known plus \
             drained cycles — epochs the engine simulated but whose next \
             event was already known, so a per-SM fast-forward could skip \
             them; the speedup column is the resulting upper bound \
             (1 / (1 − fraction)). Each audit is reconciled exactly against \
             its manifest: classes must sum to sms × auditedCycles and \
             auditedCycles must equal the cell's Stats cycles; a mismatch \
             fails this report.\n\n",
        );
        audits.sort_by_key(|(generator, _)| {
            let rank = ORDER
                .iter()
                .position(|(name, _)| name == generator)
                .unwrap_or(ORDER.len());
            (rank, generator.clone())
        });
        for (generator, adoc) in &audits {
            md.push_str(&format!("### {generator}\n\n"));
            match manifests.iter().find(|(g, _)| g == generator) {
                Some((_, mdoc)) => {
                    let before = cross_check_failures.len();
                    cross_check_audit(generator, adoc, mdoc, &mut cross_check_failures);
                    let new = &cross_check_failures[before..];
                    if new.is_empty() {
                        md.push_str(
                            "Cross-check: classes sum to sms × auditedCycles == Stats \
                             cycles for every cell. ✓\n\n",
                        );
                    } else {
                        md.push_str(&format!(
                            "**Cross-check FAILED** ({} mismatch{}):\n\n",
                            new.len(),
                            if new.len() == 1 { "" } else { "es" }
                        ));
                        for f in new {
                            md.push_str(&format!("- {f}\n"));
                        }
                        md.push('\n');
                    }
                }
                None => md.push_str("No matching manifest — cross-check skipped.\n\n"),
            }
            md.push_str(&audit_section(adoc));
        }
    }

    md.push_str("## Stall hotspots\n\n");
    if hotspots.is_empty() {
        md.push_str("No probe traces found (run with `--trace-out` to record).\n\n");
    } else {
        md.push_str(
            "Top program counters by total stall cycles, aggregated from the \
             probe timelines' `stall` slices.\n\n",
        );
        hotspots.sort_by(|(ka, (_, da)), (kb, (_, db))| db.cmp(da).then(ka.cmp(kb)));
        let rows: Vec<Vec<String>> = hotspots
            .iter()
            .take(10)
            .map(|((pc, cause), (count, total))| {
                vec![
                    format!("0x{pc:04x}"),
                    cause.clone(),
                    count.to_string(),
                    total.to_string(),
                ]
            })
            .collect();
        md.push_str(&markdown_table(
            &["PC", "cause", "stalls", "total cycles"],
            &rows,
        ));
        md.push('\n');
    }

    md.push_str("## Run timeline\n\n");
    md.push_str(&absent_notes(&unreadable, "events"));
    if timelines.is_empty() {
        md.push_str("No telemetry streams found (run with `--events-out` to record).\n\n");
    } else {
        md.push_str(
            "From the `gvf.events` telemetry streams: how each run actually \
             unfolded — per-sweep cell outcomes, wall time, and worker \
             occupancy (each worker's busy time over the sweep's wall time). \
             Wall-clock data, excluded from the determinism diff.\n\n",
        );
        timelines.sort_by_key(|s| {
            let rank = ORDER
                .iter()
                .position(|(name, _)| *name == s.bin)
                .unwrap_or(ORDER.len());
            (rank, s.bin.clone())
        });
        let mut rows: Vec<Vec<String>> = Vec::new();
        for run in &timelines {
            for sweep in &run.sweeps {
                let occupancy = match sweep.wall_ms.filter(|w| *w > 0) {
                    Some(wall) => sweep
                        .worker_busy_ms
                        .values()
                        .map(|busy| format!("{:.0}%", (*busy as f64 / wall as f64) * 100.0))
                        .collect::<Vec<_>>()
                        .join(" "),
                    None => "-".into(),
                };
                rows.push(vec![
                    run.bin.clone(),
                    sweep.label.clone(),
                    sweep.total.to_string(),
                    sweep.finished.len().to_string(),
                    sweep.cached.len().to_string(),
                    sweep.failed.len().to_string(),
                    sweep
                        .wall_ms
                        .map(|w| format!("{:.2} s", w as f64 / 1000.0))
                        .unwrap_or_else(|| "interrupted".into()),
                    occupancy,
                    sweep.stalls.to_string(),
                ]);
            }
        }
        md.push_str(&markdown_table(
            &[
                "bin",
                "sweep",
                "cells",
                "simulated",
                "cached",
                "failed",
                "wall",
                "worker occupancy",
                "stalls",
            ],
            &rows,
        ));
        md.push('\n');
    }

    let history = History::load(&history_path);

    md.push_str("## What changed since the baseline\n\n");
    md.push_str(
        "Differential observability: every `gvf.rundiff` run-comparison \
         artifact under the results dir (produced by `run_all.sh \
         --baseline DIR` or `diffrun`), plus the latest movement in the \
         benchmark trajectory.\n\n",
    );
    md.push_str(&baseline_section(
        &rundiffs,
        history.as_ref().ok().filter(|h| !h.entries.is_empty()),
    ));

    md.push_str("## Benchmark trajectory\n\n");
    match &history {
        Ok(history) if !history.entries.is_empty() => {
            md.push_str(&format!(
                "Last {} of {} entries in `{}` (gate metric: simulated \
                 cycles per host second).\n\n",
                history.entries.len().min(20),
                history.entries.len(),
                history_path
            ));
            let tail = &history.entries[history.entries.len().saturating_sub(20)..];
            let rows: Vec<Vec<String>> = tail
                .iter()
                .map(|e| {
                    vec![
                        e.date.clone(),
                        e.rev.clone(),
                        e.sample.bin.clone(),
                        fmt_num(e.sample.sim_cycles_per_sec),
                        e.samples.to_string(),
                    ]
                })
                .collect();
            md.push_str(&markdown_table(
                &["date", "rev", "bin", "sim cycles/s", "samples"],
                &rows,
            ));
            md.push('\n');
        }
        Ok(_) => {
            md.push_str(&format!(
                "No trajectory yet — `perf_record` appends to `{history_path}`.\n\n"
            ));
        }
        Err(e) => {
            eprintln!("report: trajectory unreadable: {e}");
            md.push_str(&format!("Trajectory unreadable: {e}\n\n"));
        }
    }

    if let Err(e) = std::fs::write(&out_path, md.as_bytes()) {
        eprintln!("report: {out_path}: {e}");
        std::process::exit(1);
    }
    if !quiet {
        eprintln!(
            "report: wrote {out_path} ({} manifests, {} attribution docs, {} audits, \
             {} profiles, {} hotspot keys)",
            manifests.len(),
            attributions.len(),
            audits.len(),
            profiles.len(),
            hotspots.len()
        );
    }
    if !cross_check_failures.is_empty() {
        // The hard invariants: per-PC attribution and the cycle audit
        // must reconcile exactly with the Stats counters. A mismatch
        // means a probe lost or double-counted evidence — fail the
        // report.
        for f in &cross_check_failures {
            eprintln!("report: cross-check: {f}");
        }
        std::process::exit(1);
    }
}
