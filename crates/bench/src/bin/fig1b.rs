//! Figure 1b: breakdown of the virtual-function direct cost under
//! contemporary CUDA, averaged over the object-oriented apps.
//!
//! Paper (PC sampling on a V100): ~87% of the added latency comes from
//! the vTable-pointer load (A), the rest split between the vFunc load
//! (B) and the indirect call (C).

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let cells: Vec<WorkloadKind> = WorkloadKind::EVALUATED.to_vec();
    let cache = opts.cell_cache("fig1b");
    let mut results = run_cells("fig1b", &opts, &cells, |i, &k| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || run_workload(k, Strategy::Cuda, &cfg))
    })
    .into_results(&opts);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let (mut sa, mut sb, mut sc) = (0.0, 0.0, 0.0);
    for (kind, r) in cells.iter().zip(&results) {
        let (a, b, c) = r.stats.dispatch_latency_breakdown();
        sa += a;
        sb += b;
        sc += c;
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.1}%", a * 100.0),
            format!("{:.1}%", b * 100.0),
            format!("{:.1}%", c * 100.0),
        ]);
        records.push(
            CellRecord::of(kind.label(), Strategy::Cuda.label(), r)
                .with("vtable_load_share", Json::Num(a))
                .with("vfunc_load_share", Json::Num(b))
                .with("indirect_call_share", Json::Num(c)),
        );
    }
    let n = WorkloadKind::EVALUATED.len() as f64;
    rows.push(vec![
        "AVG".to_string(),
        format!("{:.1}%", sa / n * 100.0),
        format!("{:.1}%", sb / n * 100.0),
        format!("{:.1}%", sc / n * 100.0),
    ]);

    println!("\nFig. 1b — Virtual-function direct-cost latency breakdown (CUDA)");
    println!("paper AVG: A (load vTable*) ~87%, remainder split between B and C\n");
    print_table(
        &[
            "Workload",
            "A: load vTable*",
            "B: load vFunc*",
            "C: indirect call",
        ],
        &rows,
    );

    manifest::emit_grid(&opts, "fig1b", &records, &mut results);
}
