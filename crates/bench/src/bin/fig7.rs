//! Figure 7: dynamic warp instruction breakdown (MEM / COMPUTE / CTRL)
//! normalized to SharedOA.
//!
//! Paper: Concord, COAL and TypePointer increase total instructions by
//! 28%, 83% and 19% respectively; Concord halves memory instructions.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let strategies = Strategy::EVALUATED;
    let base_idx = strategies
        .iter()
        .position(|&s| s == Strategy::SharedOa)
        .expect("SharedOA is evaluated");

    let cells: Vec<(WorkloadKind, Strategy)> = WorkloadKind::EVALUATED
        .into_iter()
        .flat_map(|k| strategies.into_iter().map(move |s| (k, s)))
        .collect();
    let cache = opts.cell_cache("fig7");
    let mut results = run_cells("fig7", &opts, &cells, |i, &(k, s)| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    // Unweighted per-app ratios, as the paper averages them.
    let mut sums = vec![(0.0f64, 0.0f64, 0.0f64, 0.0f64); strategies.len()];
    for (ki, kind) in WorkloadKind::EVALUATED.into_iter().enumerate() {
        let base_total = results[ki * strategies.len() + base_idx]
            .stats
            .total_instrs() as f64;
        for (si, s) in strategies.into_iter().enumerate() {
            let r = &results[ki * strategies.len() + si];
            let (m, c, x) = (
                r.stats.instrs_mem as f64 / base_total,
                r.stats.instrs_compute as f64 / base_total,
                r.stats.instrs_ctrl as f64 / base_total,
            );
            sums[si].0 += m;
            sums[si].1 += c;
            sums[si].2 += x;
            sums[si].3 += m + c + x;
            rows.push(vec![
                format!("{} {}", kind.label(), s.label()),
                format!("{m:.2}"),
                format!("{c:.2}"),
                format!("{x:.2}"),
                format!("{:.2}", m + c + x),
            ]);
            records.push(
                CellRecord::of(kind.label(), s.label(), r)
                    .with("instrs_vs_sharedoa", Json::Num(m + c + x)),
            );
        }
    }
    let n = WorkloadKind::EVALUATED.len() as f64;
    for (si, s) in strategies.into_iter().enumerate() {
        let (m, c, x, t) = sums[si];
        rows.push(vec![
            format!("AVG {}", s.label()),
            format!("{:.2}", m / n),
            format!("{:.2}", c / n),
            format!("{:.2}", x / n),
            format!("{:.2}", t / n),
        ]);
    }

    println!("\nFig. 7 — Dynamic warp instructions normalized to SharedOA");
    println!("paper AVG totals: Concord 1.28, COAL 1.83, TypePointer 1.19\n");
    print_table(
        &["Workload/Strategy", "MEM", "COMPUTE", "CTRL", "TOTAL"],
        &rows,
    );

    manifest::emit_grid(&opts, "fig7", &records, &mut results);
}
