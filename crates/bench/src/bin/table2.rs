//! Table 2: workload characteristics — object instances, concrete types,
//! vTable entries, and dynamic virtual calls per thousand instructions.
//!
//! Paper values (full-scale CUDA inputs): 0.5–5.6 M objects, 3–6 types,
//! 3–74 vFuncs, vFuncPKI 15–54. Ours are the same ports at the harness
//! scale; object counts shrink with `--scale`, the rest should land in
//! the same ballpark.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::print_table;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();
    let cells: Vec<WorkloadKind> = WorkloadKind::EVALUATED.to_vec();
    let cache = opts.cell_cache("table2");
    let mut results = run_cells("table2", &opts, &cells, |i, &k| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || run_workload(k, Strategy::SharedOa, &cfg))
    })
    .into_results(&opts);

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (kind, r) in cells.iter().zip(&results) {
        rows.push(vec![
            format!("{} {}", kind.suite(), kind.label()),
            format!("{}", r.table2.objects),
            format!("{}", r.table2.types),
            format!("{}", r.table2.vfunc_entries),
            format!("{:.1}", r.table2.vfunc_pki),
        ]);
        records.push(
            CellRecord::of(kind.label(), Strategy::SharedOa.label(), r)
                .with("objects", Json::num_u64(r.table2.objects))
                .with("types", Json::num_u64(r.table2.types as u64))
                .with(
                    "vfunc_entries",
                    Json::num_u64(r.table2.vfunc_entries as u64),
                )
                .with("vfunc_pki", Json::Num(r.table2.vfunc_pki)),
        );
    }
    println!(
        "\nTable 2 — workload characteristics (at --scale {})",
        opts.cfg.scale
    );
    println!("paper: 0.5-5.6M objects, 3-6 types, 3-74 vFuncs, vFuncPKI 15-54\n");
    print_table(
        &["Workload", "# Objects", "# Types", "# vFuncs", "vFuncPKI"],
        &rows,
    );

    manifest::emit_grid(&opts, "table2", &records, &mut results);
}
