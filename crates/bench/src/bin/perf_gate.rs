//! Regression gate: judges the current run's throughput against the
//! recorded trajectory, exit non-zero on regression.
//!
//! Usage: `perf_gate [--history PATH] [--max-regress F] [--noise-mult F]
//!                   [--min-samples N] [--quiet] MANIFEST...`
//!
//! `--quiet` silences PASS/SKIP chatter; failures (and the summary
//! line accompanying them) still print, and exit codes are unchanged.
//!
//! For each manifest the gate extracts the `hostPerf` throughput sample
//! and compares its simulated-cycles-per-second against the **median**
//! of the matching baseline (same generator, same config) in
//! `BENCH_gvf.json`. The allowed relative slowdown is
//! `max(max_regress, noise_mult × MAD/median)` — a noisy baseline
//! widens its own tolerance. Bins with fewer than `--min-samples`
//! baseline entries are skipped, never failed, so a fresh checkout
//! passes trivially.
//!
//! A failing verdict is followed by up to three `cause N:` lines from
//! [`gvf_bench::rundiff::attributed_causes`] — the failing run's own
//! sibling artifacts (span profile, cycle audit, attribution) naming
//! the hottest span, the dominant cycle class, and the L1 hit rate, so
//! the log explains the regression instead of just measuring it.
//!
//! Exit codes: `0` all judged samples passed (skips allowed), `1` at
//! least one regression, `2` usage error. Verdicts go to stderr; CI
//! runs this as an advisory job (single-machine wall clocks are noisy).
//! `run_all.sh` gates **before** recording and only records runs that
//! pass — the judged sample must never sit inside its own baseline,
//! or the comparison degenerates into "slower than the midpoint of
//! (baseline, me)?", which no regression can ever fail.

use gvf_bench::bench_history::{
    gate, manifest_used_cell_cache, sample_from_manifest, GateConfig, GateVerdict, History,
    DEFAULT_HISTORY_PATH,
};
use gvf_bench::json::Json;

fn parse_flag<T: std::str::FromStr>(name: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("perf_gate: {name} needs a valid value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut history_path = DEFAULT_HISTORY_PATH.to_string();
    let mut cfg = GateConfig::default();
    let mut quiet = false;
    let mut manifests: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--history" => history_path = parse_flag("--history", args.next()),
            "--max-regress" => cfg.max_regress = parse_flag("--max-regress", args.next()),
            "--noise-mult" => cfg.noise_mult = parse_flag("--noise-mult", args.next()),
            "--min-samples" => cfg.min_samples = parse_flag("--min-samples", args.next()),
            "--quiet" => quiet = true,
            _ => manifests.push(arg),
        }
    }
    if manifests.is_empty() {
        eprintln!(
            "usage: perf_gate [--history PATH] [--max-regress F] [--noise-mult F] \
             [--min-samples N] [--quiet] MANIFEST..."
        );
        std::process::exit(2);
    }

    let history = match History::load(&history_path) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(1);
        }
    };

    let mut failures = 0usize;
    let mut passes = 0usize;
    let mut skips = 0usize;
    for path in &manifests {
        let doc = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| Json::parse(&t).map_err(|e| e.to_string()))
        {
            Ok(d) => d,
            Err(e) => {
                eprintln!("perf_gate: {path}: {e}");
                std::process::exit(1);
            }
        };
        if manifest_used_cell_cache(&doc) {
            // Cached cells take near-zero wall time; judging a resumed
            // run against a fresh baseline is meaningless either way.
            skips += 1;
            if !quiet {
                eprintln!("perf_gate: SKIP {path} — run resumed cells from the cell cache");
            }
            continue;
        }
        let sample = match sample_from_manifest(&doc) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("perf_gate: {path}: {e}");
                std::process::exit(1);
            }
        };
        match gate(&history, &sample, &cfg) {
            GateVerdict::Pass {
                current,
                baseline,
                allowed_drop,
            } => {
                passes += 1;
                if !quiet {
                    eprintln!(
                        "perf_gate: PASS {} — {:.3e} vs baseline {:.3e} sim cycles/s \
                         (allowed drop {:.0}%)",
                        sample.bin,
                        current,
                        baseline,
                        allowed_drop * 100.0
                    );
                }
            }
            GateVerdict::Fail {
                current,
                baseline,
                allowed_drop,
            } => {
                failures += 1;
                eprintln!(
                    "perf_gate: FAIL {} — {:.3e} vs baseline {:.3e} sim cycles/s: \
                     {:.0}% below, only {:.0}% allowed",
                    sample.bin,
                    current,
                    baseline,
                    (1.0 - current / baseline) * 100.0,
                    allowed_drop * 100.0
                );
                // Point the log at *why*, not just *how much*: the
                // failing run's own sibling artifacts (span profile,
                // cycle audit, attribution) name the dominant costs.
                for (i, cause) in gvf_bench::rundiff::attributed_causes(path)
                    .iter()
                    .enumerate()
                {
                    eprintln!("  cause {}: {cause}", i + 1);
                }
            }
            GateVerdict::Skip { reason } => {
                skips += 1;
                if !quiet {
                    eprintln!("perf_gate: SKIP {reason}");
                }
            }
        }
    }
    if !quiet || failures > 0 {
        eprintln!(
            "perf_gate: {passes} passed, {failures} failed, {skips} skipped \
             (baseline {history_path}, {} entries)",
            history.entries.len()
        );
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
