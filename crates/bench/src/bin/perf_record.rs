//! Appends the current run's throughput samples to the benchmark
//! trajectory (`BENCH_gvf.json`).
//!
//! Usage: `perf_record [--history PATH] [--quiet] MANIFEST...`
//!
//! `--quiet` silences the per-entry and summary chatter; errors still
//! print and exit codes are unchanged.
//!
//! Each argument is a `gvf.run-manifest` produced by a figure binary
//! (their `--json-out` artifacts); the embedded `hostPerf` section
//! carries the throughput sample, so nothing is re-run. Manifests are
//! grouped by (generator, config) and each group contributes one
//! trajectory entry holding the **median** over its N samples — run a
//! figure binary several times and pass all the manifests here for a
//! noise-robust point. Exits non-zero if any manifest is unreadable,
//! so a broken pipeline cannot silently record nothing.
//!
//! Manifests from resumed runs (any cell served from the cell cache,
//! see `hostPerf.cellCache`) are **skipped with a note**: cached cells
//! take near-zero wall time, so their cycles/sec figure would poison
//! the baseline with impossibly fast samples.
//!
//! Benchmark-grade entries (non-smoke, wall ≥ `MIN_BENCH_WALL_S`)
//! recorded from fewer than
//! [`gvf_bench::bench_history::RECOMMENDED_SAMPLES`] manifests get a
//! warning: a single wall-clock sample makes a noisy baseline, and the
//! gate's MAD-based tolerance needs spread to measure.
//!
//! All human-facing output goes to stderr; this binary emits nothing on
//! stdout (the determinism contract's channel discipline applies to
//! tooling too).

use gvf_bench::bench_history::{
    git_short_rev, manifest_used_cell_cache, record, sample_from_manifest,
    sample_is_benchmark_grade, today_utc, History, DEFAULT_HISTORY_PATH, RECOMMENDED_SAMPLES,
};
use gvf_bench::json::Json;

fn main() {
    let mut history_path = DEFAULT_HISTORY_PATH.to_string();
    let mut quiet = false;
    let mut manifests: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--history" => match args.next() {
                Some(p) => history_path = p,
                None => {
                    eprintln!("perf_record: --history needs a path");
                    std::process::exit(2);
                }
            },
            "--quiet" => quiet = true,
            _ => manifests.push(arg),
        }
    }
    if manifests.is_empty() {
        eprintln!("usage: perf_record [--history PATH] [--quiet] MANIFEST...");
        std::process::exit(2);
    }

    let mut samples = Vec::new();
    for path in &manifests {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf_record: {path}: {e}");
                std::process::exit(1);
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("perf_record: {path}: {e}");
                std::process::exit(1);
            }
        };
        if manifest_used_cell_cache(&doc) {
            if !quiet {
                eprintln!("perf_record: {path}: skipped — run resumed cells from the cell cache");
            }
            continue;
        }
        match sample_from_manifest(&doc) {
            Ok(s) => samples.push(s),
            Err(e) => {
                eprintln!("perf_record: {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut history = match History::load(&history_path) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("perf_record: {e}");
            std::process::exit(1);
        }
    };
    let rev = git_short_rev();
    let date = today_utc();
    let appended = record(&mut history, &samples, &rev, &date);
    if let Err(e) = history.save(&history_path) {
        eprintln!("perf_record: {history_path}: {e}");
        std::process::exit(1);
    }
    if quiet {
        return;
    }
    for entry in &appended {
        eprintln!(
            "perf_record: {} @ {} — {:.3e} sim cycles/s over {} sample{} -> {}",
            entry.sample.bin,
            rev,
            entry.sample.sim_cycles_per_sec,
            entry.samples,
            if entry.samples == 1 { "" } else { "s" },
            history_path
        );
        if sample_is_benchmark_grade(&entry.sample) && entry.samples < RECOMMENDED_SAMPLES {
            eprintln!(
                "perf_record: warning: {} recorded from {} sample{} — a \
                 single-machine median wants {RECOMMENDED_SAMPLES} (pass \
                 several manifests of the same config, e.g. run_all.sh \
                 --samples {RECOMMENDED_SAMPLES})",
                entry.sample.bin,
                entry.samples,
                if entry.samples == 1 { "" } else { "s" },
            );
        }
    }
    eprintln!(
        "perf_record: {} entr{} appended ({} total)",
        appended.len(),
        if appended.len() == 1 { "y" } else { "ies" },
        history.entries.len()
    );
}
