//! Sweep status console over a `gvf.events` telemetry stream.
//!
//! A long figure sweep writing `--events-out fig7.events.jsonl` can be
//! watched from another terminal:
//!
//! - `status --summary FILE` — one-shot roll-up: per-sweep cell
//!   outcomes (simulated / cached / failed), worker occupancy, stall
//!   warnings, the last host resource sample, and whether the run is
//!   still going, finished, failed, or was interrupted. The stream is
//!   validated against the full lifecycle invariants first, so a
//!   corrupt file is an error, not a garbled table.
//! - `status --follow FILE` — tails the stream like `tail -f`,
//!   rendering each event as a human-readable line as it lands, and
//!   exits when the writer closes the stream with `runEnd` (or on
//!   ctrl-C). A torn final line is re-read on the next poll — the
//!   writer flushes whole lines, so this converges.
//!
//! The binary never writes anything: it is a pure consumer of the
//! events file, safe to run against a live sweep.

use gvf_bench::events;
use gvf_bench::json::Json;

fn usage() -> ! {
    eprintln!("usage: status --summary FILE | status --follow FILE");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [mode, path] if mode == "--summary" => summary(path),
        [mode, path] if mode == "--follow" => follow(path),
        _ => usage(),
    }
}

fn summary(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: unreadable: {e}");
            std::process::exit(1);
        }
    };
    let summary = events::parse_stream(&text)
        .and_then(|stream| events::validate_stream(&stream))
        .unwrap_or_else(|e| {
            eprintln!("{path}: invalid events stream: {e}");
            std::process::exit(1);
        });
    print!("{}", events::render_summary(&summary));
    // Scriptable exit: 0 only for a cleanly finished run.
    std::process::exit(match summary.run_status.as_deref() {
        Some("ok") => 0,
        _ => 1,
    });
}

/// One human-readable line per event; `None` for event kinds too noisy
/// to tail (`cellScheduled` bursts, throttled internals).
fn render_line(e: &Json) -> Option<String> {
    let ev = e.get("ev").and_then(Json::as_str)?;
    let t = e.get("tMs").and_then(Json::as_num).unwrap_or(0.0) / 1000.0;
    let s = |k: &str| e.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let n = |k: &str| e.get(k).and_then(Json::as_num).unwrap_or(0.0);
    let line = match ev {
        "runStart" => format!(
            "run {} starts (config {}, jobs {})",
            s("bin"),
            s("configFingerprint"),
            n("jobs")
        ),
        "sweepStart" => format!("sweep {} starts: {} cells", s("sweep"), n("cells")),
        "cellScheduled" | "cellStarted" => return None,
        "cellFinished" => format!(
            "[{}] cell {} done on worker {} in {:.2}s",
            s("sweep"),
            n("cell"),
            n("worker"),
            n("durationMs") / 1000.0
        ),
        "cellCacheHit" => format!("[{}] cell {} from cache", s("sweep"), n("cell")),
        "cellFailed" => format!(
            "[{}] cell {} FAILED on worker {}: {}",
            s("sweep"),
            n("cell"),
            n("worker"),
            s("panic").lines().next().unwrap_or("")
        ),
        "progress" => {
            let eta = e
                .get("etaS")
                .and_then(Json::as_num)
                .map(|eta| format!(", ETA {eta:.0}s"))
                .unwrap_or_default();
            format!("[{}] {}/{} cells{eta}", s("sweep"), n("done"), n("total"))
        }
        "resource" => format!(
            "rss {:.1} MB, cpu {:.1}s",
            n("rssBytes") / (1024.0 * 1024.0),
            n("cpuMs") / 1000.0
        ),
        "stall" => format!(
            "[{}] STALL: cell {} on worker {} for {:.1}s (baseline {:.1}s)",
            s("sweep"),
            n("cell"),
            n("worker"),
            n("elapsedMs") / 1000.0,
            n("baselineMs") / 1000.0
        ),
        "sweepEnd" => format!(
            "sweep {} done: {} simulated, {} cached, {} failed in {:.2}s",
            s("sweep"),
            n("finished"),
            n("cached"),
            n("failed"),
            n("wallMs") / 1000.0
        ),
        "runEnd" => format!("run ends: {}", s("status")),
        other => format!("{other} {}", e.render_compact()),
    };
    Some(format!("[{t:8.2}s] {line}"))
}

fn follow(path: &str) -> ! {
    use std::io::Write;
    // Byte offset of the first unconsumed line; re-polled so a torn
    // line is retried once the writer completes it.
    let mut offset = 0usize;
    let stdout = std::io::stdout();
    loop {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let fresh = text.get(offset..).unwrap_or("");
        for line in fresh.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break; // torn tail: wait for the writer's flush
            }
            offset += line.len();
            let Ok(e) = Json::parse(line) else {
                continue;
            };
            if let Some(rendered) = render_line(&e) {
                if writeln!(stdout.lock(), "{rendered}").is_err() {
                    std::process::exit(0); // reader hung up (`status --follow | head`)
                }
            }
            if e.get("ev").and_then(Json::as_str) == Some("runEnd") {
                std::process::exit(0);
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
}
