//! Artifact validator: parses each given file with the in-repo JSON
//! reader and checks its schema header, so CI (and `run_all.sh`) can
//! prove every emitted artifact round-trips through the same parser a
//! downstream consumer would use.
//!
//! Usage:
//!
//! - `validate_json FILE...` — exits non-zero on the first file that
//!   fails to parse or carries an unknown/missing schema. Chrome traces
//!   (`gvf.timeline`) keep their schema under `otherData`, the
//!   manifest, metrics, and trajectory documents at top level.
//! - `validate_json --det-diff A B` — the determinism comparison: both
//!   manifests must parse, and must be **identical after stripping the
//!   `hostPerf` section** (the one intentionally wall-clock-dependent
//!   part of a manifest). This is what CI runs on the serial-vs-parallel
//!   pair instead of a raw byte diff.

use gvf_bench::bench_history::TRAJECTORY_SCHEMA;
use gvf_bench::hostperf::HOSTPERF_SCHEMA;
use gvf_bench::json::Json;
use gvf_bench::manifest::{strip_host_perf, MANIFEST_SCHEMA, METRICS_SCHEMA};
use gvf_sim::TIMELINE_SCHEMA;

/// Returns the document's schema identifier, looking both at the top
/// level (manifest, metrics, trajectory) and under `otherData` (Chrome
/// trace).
fn schema_of(doc: &Json) -> Option<&str> {
    doc.get("schema")
        .or_else(|| doc.get("otherData").and_then(|o| o.get("schema")))
        .and_then(Json::as_str)
}

/// Structural spot-checks per schema, beyond "it parses".
fn check(doc: &Json, schema: &str) -> Result<(), String> {
    let arr_len = |key: &str| doc.get(key).and_then(Json::as_arr).map(<[_]>::len);
    match schema {
        MANIFEST_SCHEMA => {
            let cells = arr_len("cells").ok_or("manifest without a cells array")?;
            if cells == 0 {
                return Err("manifest with zero cells".into());
            }
            doc.get("config")
                .ok_or("manifest without a config section")?;
            let host = doc
                .get("hostPerf")
                .ok_or("manifest without a hostPerf section")?;
            if host.get("schema").and_then(Json::as_str) != Some(HOSTPERF_SCHEMA) {
                return Err(format!("hostPerf section is not {HOSTPERF_SCHEMA:?}"));
            }
            host.get("throughput")
                .ok_or("hostPerf without a throughput section")?;
            Ok(())
        }
        METRICS_SCHEMA => {
            arr_len("kernels").ok_or("metrics without a kernels array")?;
            Ok(())
        }
        TIMELINE_SCHEMA => {
            arr_len("traceEvents").ok_or("trace without a traceEvents array")?;
            Ok(())
        }
        TRAJECTORY_SCHEMA => {
            let entries = arr_len("entries").ok_or("trajectory without an entries array")?;
            // A freshly bootstrapped history may be empty; entries that
            // do exist must decode.
            if entries > 0 {
                gvf_bench::bench_history::History::from_json(doc)?;
            }
            Ok(())
        }
        other => Err(format!("unknown schema {other:?}")),
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse error: {e}"))
}

/// `--det-diff A B`: equality of the two manifests' determinism views.
fn det_diff(a_path: &str, b_path: &str) -> Result<(), String> {
    let a = load(a_path).map_err(|e| format!("{a_path}: {e}"))?;
    let b = load(b_path).map_err(|e| format!("{b_path}: {e}"))?;
    for (path, doc) in [(a_path, &a), (b_path, &b)] {
        if schema_of(doc) != Some(MANIFEST_SCHEMA) {
            return Err(format!("{path}: not a {MANIFEST_SCHEMA:?} document"));
        }
    }
    let a_view = strip_host_perf(&a).render();
    let b_view = strip_host_perf(&b).render();
    if a_view != b_view {
        // Point at the first differing line so the CI log is actionable.
        let line = a_view
            .lines()
            .zip(b_view.lines())
            .position(|(x, y)| x != y)
            .map(|i| i + 1)
            .unwrap_or_else(|| a_view.lines().count().min(b_view.lines().count()) + 1);
        return Err(format!(
            "determinism views differ (first difference at line {line})"
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--det-diff") {
        match &args[1..] {
            [a, b] => match det_diff(a, b) {
                Ok(()) => {
                    println!("{a} == {b} (modulo hostPerf): ok");
                }
                Err(msg) => {
                    eprintln!("det-diff: {msg}");
                    std::process::exit(1);
                }
            },
            _ => {
                eprintln!("usage: validate_json --det-diff A B");
                std::process::exit(2);
            }
        }
        return;
    }
    if args.is_empty() {
        eprintln!("usage: validate_json FILE... | validate_json --det-diff A B");
        std::process::exit(2);
    }
    for path in &args {
        let fail = |msg: &str| -> ! {
            eprintln!("{path}: INVALID — {msg}");
            std::process::exit(1);
        };
        let doc = match load(path) {
            Ok(d) => d,
            Err(e) => fail(&e),
        };
        let schema = match schema_of(&doc) {
            Some(s) => s.to_string(),
            None => fail("no schema header"),
        };
        if let Err(msg) = check(&doc, &schema) {
            fail(&msg);
        }
        println!("{path}: ok ({schema})");
    }
}
