//! Artifact validator: parses each given file with the in-repo JSON
//! reader and checks its schema header, so CI (and `run_all.sh`) can
//! prove every emitted artifact round-trips through the same parser a
//! downstream consumer would use.
//!
//! Usage: `validate_json FILE...` — exits non-zero on the first file
//! that fails to parse or carries an unknown/missing schema. Chrome
//! traces (`gvf.timeline`) keep their schema under `otherData`, the
//! manifest and metrics documents at top level.

use gvf_bench::json::Json;
use gvf_bench::manifest::{MANIFEST_SCHEMA, METRICS_SCHEMA};
use gvf_sim::TIMELINE_SCHEMA;

/// Returns the document's schema identifier, looking both at the top
/// level (manifest, metrics) and under `otherData` (Chrome trace).
fn schema_of(doc: &Json) -> Option<&str> {
    doc.get("schema")
        .or_else(|| doc.get("otherData").and_then(|o| o.get("schema")))
        .and_then(Json::as_str)
}

/// Structural spot-checks per schema, beyond "it parses".
fn check(doc: &Json, schema: &str) -> Result<(), String> {
    let arr_len = |key: &str| doc.get(key).and_then(Json::as_arr).map(<[_]>::len);
    match schema {
        MANIFEST_SCHEMA => {
            let cells = arr_len("cells").ok_or("manifest without a cells array")?;
            if cells == 0 {
                return Err("manifest with zero cells".into());
            }
            doc.get("config")
                .ok_or("manifest without a config section")?;
            Ok(())
        }
        METRICS_SCHEMA => {
            arr_len("kernels").ok_or("metrics without a kernels array")?;
            Ok(())
        }
        TIMELINE_SCHEMA => {
            arr_len("traceEvents").ok_or("trace without a traceEvents array")?;
            Ok(())
        }
        other => Err(format!("unknown schema {other:?}")),
    }
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_json FILE...");
        std::process::exit(2);
    }
    for path in &paths {
        let fail = |msg: &str| -> ! {
            eprintln!("{path}: INVALID — {msg}");
            std::process::exit(1);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("unreadable: {e}")),
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => fail(&format!("parse error: {e}")),
        };
        let schema = match schema_of(&doc) {
            Some(s) => s.to_string(),
            None => fail("no schema header"),
        };
        if let Err(msg) = check(&doc, &schema) {
            fail(&msg);
        }
        println!("{path}: ok ({schema})");
    }
}
