//! Artifact validator: parses each given file with the in-repo JSON
//! reader and checks its schema header, so CI (and `run_all.sh`) can
//! prove every emitted artifact round-trips through the same parser a
//! downstream consumer would use.
//!
//! Usage:
//!
//! - `validate_json FILE...` — exits non-zero on the first file that
//!   fails to parse or carries an unknown/missing schema. Chrome traces
//!   (`gvf.timeline`) keep their schema under `otherData`, the
//!   manifest, metrics, and trajectory documents at top level.
//!   `gvf.events` telemetry streams are JSONL, recognized by their
//!   `runStart` first line, and validated against the full lifecycle
//!   invariants (see [`gvf_bench::events::validate_stream`]).
//! - `validate_json --det-diff A B` — the determinism comparison: both
//!   manifests must parse, and must be **identical after stripping the
//!   `hostPerf` section** (the one intentionally wall-clock-dependent
//!   part of a manifest). This is what CI runs on the serial-vs-parallel
//!   pair instead of a raw byte diff.
//! - `validate_json --events-reconcile EVENTS MANIFEST` — lifecycle
//!   reconciliation: the events stream must validate, and its cell
//!   outcomes must match the run manifest one-to-one (every cell
//!   exactly once; failed index sets equal; cache-hit counts agreeing
//!   with `hostPerf.cellCache`).
//! - `validate_json --list-schemas` — prints every schema id + version
//!   this validator knows (the [`gvf_bench::schemas`] registry), one
//!   `id vN` pair per line. `gvf.rundiff` run-comparison artifacts are
//!   checked via [`gvf_bench::rundiff::check_doc`]: header, per-run
//!   internal consistency (clean flags vs diff lists), and summary
//!   recomputation.
//!
//! For `gvf.attribution` documents the structural check goes beyond the
//! header: for every cell that carries attribution, the per-PC
//! transaction sums must equal the per-tag totals, and the per-tag
//! totals must equal the cell's copied `Stats` load-transaction
//! counters — the profiler's hard cross-check invariant, verifiable
//! from the document alone. `gvf.cycleaudit` documents get the audit's
//! equivalent: the six epoch classes must sum to `sms × auditedCycles`
//! exactly, and `auditedCycles` must equal the cell's copied `Stats`
//! cycle counter.

use gvf_bench::bench_history::TRAJECTORY_SCHEMA;
use gvf_bench::cellcache::{self, CELLCACHE_SCHEMA};
use gvf_bench::events::{self, EVENTS_SCHEMA};
use gvf_bench::hostperf::HOSTPERF_SCHEMA;
use gvf_bench::json::Json;
use gvf_bench::manifest::{
    strip_host_perf, ATTRIB_SCHEMA, CYCLEAUDIT_SCHEMA, HOSTPROFILE_SCHEMA, MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION, METRICS_SCHEMA,
};
use gvf_bench::{rundiff, schemas};
use gvf_sim::TIMELINE_SCHEMA;

/// Returns the document's schema identifier, looking both at the top
/// level (manifest, metrics, trajectory) and under `otherData` (Chrome
/// trace).
fn schema_of(doc: &Json) -> Option<&str> {
    doc.get("schema")
        .or_else(|| doc.get("otherData").and_then(|o| o.get("schema")))
        .and_then(Json::as_str)
}

/// Structural spot-checks per schema, beyond "it parses".
fn check(doc: &Json, schema: &str) -> Result<(), String> {
    let arr_len = |key: &str| doc.get(key).and_then(Json::as_arr).map(<[_]>::len);
    match schema {
        MANIFEST_SCHEMA => {
            // v1 manifests (pre fault isolation) stay valid; v2 adds
            // `"status": "failed"` entries, which are checked below.
            let version = doc.get("version").and_then(Json::as_num).unwrap_or(0.0) as u32;
            if version == 0 || version > MANIFEST_SCHEMA_VERSION {
                return Err(format!(
                    "manifest version {version} (validator knows 1..={MANIFEST_SCHEMA_VERSION})"
                ));
            }
            let cells = doc
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("manifest without a cells array")?;
            if cells.is_empty() {
                return Err("manifest with zero cells".into());
            }
            for (i, cell) in cells.iter().enumerate() {
                match cell.get("status").and_then(Json::as_str) {
                    None | Some("ok") => {}
                    Some("failed") => {
                        if version < 2 {
                            return Err(format!("cell {i}: failed entry in a v{version} manifest"));
                        }
                        for key in ["index", "panic", "configFingerprint"] {
                            cell.get(key)
                                .ok_or(format!("failed cell {i} without {key:?}"))?;
                        }
                    }
                    Some(other) => {
                        return Err(format!("cell {i}: unknown status {other:?}"));
                    }
                }
            }
            doc.get("config")
                .ok_or("manifest without a config section")?;
            let host = doc
                .get("hostPerf")
                .ok_or("manifest without a hostPerf section")?;
            if host.get("schema").and_then(Json::as_str) != Some(HOSTPERF_SCHEMA) {
                return Err(format!("hostPerf section is not {HOSTPERF_SCHEMA:?}"));
            }
            host.get("throughput")
                .ok_or("hostPerf without a throughput section")?;
            Ok(())
        }
        METRICS_SCHEMA => {
            arr_len("kernels").ok_or("metrics without a kernels array")?;
            Ok(())
        }
        ATTRIB_SCHEMA => {
            let cells = doc
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("attribution without a cells array")?;
            if cells.is_empty() {
                return Err("attribution with zero cells".into());
            }
            doc.get("config")
                .ok_or("attribution without a config section")?;
            for (i, cell) in cells.iter().enumerate() {
                check_attrib_cell(cell).map_err(|e| format!("cell {i}: {e}"))?;
            }
            Ok(())
        }
        CYCLEAUDIT_SCHEMA => {
            let cells = doc
                .get("cells")
                .and_then(Json::as_arr)
                .ok_or("cycle audit without a cells array")?;
            if cells.is_empty() {
                return Err("cycle audit with zero cells".into());
            }
            doc.get("config")
                .ok_or("cycle audit without a config section")?;
            for (i, cell) in cells.iter().enumerate() {
                check_audit_cell(cell).map_err(|e| format!("cell {i}: {e}"))?;
            }
            Ok(())
        }
        HOSTPROFILE_SCHEMA => {
            let spans = doc
                .get("spans")
                .and_then(Json::as_arr)
                .ok_or("host profile without a spans array")?;
            doc.get("collapsedStacks")
                .and_then(Json::as_str)
                .ok_or("host profile without collapsedStacks text")?;
            for (i, s) in spans.iter().enumerate() {
                for key in ["path", "count", "totalNs", "exclusiveNs"] {
                    s.get(key).ok_or(format!("span {i} without {key:?}"))?;
                }
            }
            Ok(())
        }
        TIMELINE_SCHEMA => {
            arr_len("traceEvents").ok_or("trace without a traceEvents array")?;
            Ok(())
        }
        CELLCACHE_SCHEMA => cellcache::verify_entry(doc),
        EVENTS_SCHEMA => {
            // Reached only for a one-object file: a real stream is
            // JSONL and is detected before whole-file parsing.
            events::validate_stream(std::slice::from_ref(doc)).map(|_| ())
        }
        TRAJECTORY_SCHEMA => {
            let entries = arr_len("entries").ok_or("trajectory without an entries array")?;
            // A freshly bootstrapped history may be empty; entries that
            // do exist must decode.
            if entries > 0 {
                gvf_bench::bench_history::History::from_json(doc)?;
            }
            Ok(())
        }
        s if s == schemas::RUNDIFF.id => rundiff::check_doc(doc),
        other => Err(format!("unknown schema {other:?}")),
    }
}

/// The attribution invariants checkable from the document alone: for
/// every tag, `sum(per_pc.transactions) == by_tag.transactions ==
/// stats_load_transactions[tag]` (and the same join for instructions,
/// lanes and hits between per_pc and by_tag).
fn check_attrib_cell(cell: &Json) -> Result<(), String> {
    let attrib = cell.get("attribution").ok_or("no attribution member")?;
    if *attrib == Json::Null {
        return Ok(()); // cell ran without attribution recording
    }
    let loads = attrib
        .get("probe")
        .and_then(|p| p.get("loads"))
        .ok_or("attribution without probe.loads")?;
    let per_pc = loads
        .get("per_pc")
        .and_then(Json::as_arr)
        .ok_or("loads without per_pc array")?;
    let by_tag = match loads.get("by_tag") {
        Some(Json::Obj(members)) => members,
        _ => return Err("loads without by_tag object".into()),
    };
    let field = |v: &Json, k: &str| v.get(k).and_then(Json::as_num).unwrap_or(0.0) as u64;
    for (tag, totals) in by_tag {
        let mut sums = [0u64; 4];
        for pc in per_pc {
            if pc.get("tag").and_then(Json::as_str) == Some(tag) {
                for (i, k) in ["instructions", "lanes", "transactions", "l1_hits"]
                    .iter()
                    .enumerate()
                {
                    sums[i] += field(pc, k);
                }
            }
        }
        for (i, k) in ["instructions", "lanes", "transactions", "l1_hits"]
            .iter()
            .enumerate()
        {
            if sums[i] != field(totals, k) {
                return Err(format!(
                    "tag {tag:?}: per_pc {k} sum {} != by_tag total {}",
                    sums[i],
                    field(totals, k)
                ));
            }
        }
        let counted = cell
            .get("stats_load_transactions")
            .and_then(|l| l.get(tag))
            .and_then(Json::as_num)
            .ok_or_else(|| format!("tag {tag:?}: no stats_load_transactions entry"))?
            as u64;
        if sums[2] != counted {
            return Err(format!(
                "tag {tag:?}: attributed transactions {} != Stats counter {counted}",
                sums[2]
            ));
        }
    }
    Ok(())
}

/// The cycle-audit invariants checkable from the document alone: the
/// six epoch classes sum to `sms × auditedCycles` exactly (every
/// simulated cycle of every audited SM is accounted for, once), and
/// `auditedCycles` equals the cell's copied `Stats` cycle counter.
fn check_audit_cell(cell: &Json) -> Result<(), String> {
    let audit = cell.get("audit").ok_or("no audit member")?;
    if *audit == Json::Null {
        return Ok(()); // cell ran without audit recording
    }
    let num = |v: &Json, k: &str| {
        v.get(k)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .ok_or(format!("audit without {k:?}"))
    };
    let sms = num(audit, "sms")?;
    let audited = num(audit, "auditedCycles")?;
    let classes = audit.get("classes").ok_or("audit without classes")?;
    let mut sum = 0u64;
    for k in gvf_sim::CYCLE_CLASS_LABELS {
        sum += num(classes, k)?;
    }
    if sum != sms * audited {
        return Err(format!(
            "classes sum {sum} != sms {sms} × auditedCycles {audited} = {}",
            sms * audited
        ));
    }
    let stats_cycles = cell
        .get("statsCycles")
        .and_then(Json::as_num)
        .ok_or("cell without statsCycles")? as u64;
    if audited != stats_cycles {
        return Err(format!(
            "auditedCycles {audited} != Stats cycle counter {stats_cycles}"
        ));
    }
    audit
        .get("fastForward")
        .ok_or("audit without fastForward")?;
    Ok(())
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parse error: {e}"))
}

/// Whether this file is a `gvf.events` JSONL stream: its first line is
/// a JSON object claiming the events schema (whole-file parsing would
/// reject JSONL, so streams are detected before [`load`]).
fn is_events_stream(text: &str) -> bool {
    text.lines()
        .find(|l| !l.trim().is_empty())
        .and_then(|l| Json::parse(l).ok())
        .map(|e| e.get("schema").and_then(Json::as_str) == Some(EVENTS_SCHEMA))
        .unwrap_or(false)
}

/// Full events-stream validation: parse each line, check the lifecycle
/// invariants.
fn check_events(text: &str) -> Result<events::StreamSummary, String> {
    let stream = events::parse_stream(text)?;
    events::validate_stream(&stream)
}

/// `--events-reconcile EVENTS MANIFEST`: the stream validates and its
/// cell outcomes match the manifest one-to-one.
fn events_reconcile(events_path: &str, manifest_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(events_path)
        .map_err(|e| format!("{events_path}: unreadable: {e}"))?;
    let summary = check_events(&text).map_err(|e| format!("{events_path}: {e}"))?;
    let manifest = load(manifest_path).map_err(|e| format!("{manifest_path}: {e}"))?;
    if schema_of(&manifest) != Some(MANIFEST_SCHEMA) {
        return Err(format!(
            "{manifest_path}: not a {MANIFEST_SCHEMA:?} document"
        ));
    }
    events::reconcile(&summary, &manifest)
}

/// `--det-diff A B`: equality of the two manifests' determinism views.
fn det_diff(a_path: &str, b_path: &str) -> Result<(), String> {
    let a = load(a_path).map_err(|e| format!("{a_path}: {e}"))?;
    let b = load(b_path).map_err(|e| format!("{b_path}: {e}"))?;
    for (path, doc) in [(a_path, &a), (b_path, &b)] {
        if schema_of(doc) != Some(MANIFEST_SCHEMA) {
            return Err(format!("{path}: not a {MANIFEST_SCHEMA:?} document"));
        }
    }
    let a_view = strip_host_perf(&a).render();
    let b_view = strip_host_perf(&b).render();
    if a_view != b_view {
        // Point at the first differing line so the CI log is actionable.
        let line = a_view
            .lines()
            .zip(b_view.lines())
            .position(|(x, y)| x != y)
            .map(|i| i + 1)
            .unwrap_or_else(|| a_view.lines().count().min(b_view.lines().count()) + 1);
        return Err(format!(
            "determinism views differ (first difference at line {line})"
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--list-schemas") {
        for s in schemas::ALL {
            println!("{} v{}", s.id, s.version);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("--det-diff") {
        match &args[1..] {
            [a, b] => match det_diff(a, b) {
                Ok(()) => {
                    println!("{a} == {b} (modulo hostPerf): ok");
                }
                Err(msg) => {
                    eprintln!("det-diff: {msg}");
                    std::process::exit(1);
                }
            },
            _ => {
                eprintln!("usage: validate_json --det-diff A B");
                std::process::exit(2);
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("--events-reconcile") {
        match &args[1..] {
            [ev, mf] => match events_reconcile(ev, mf) {
                Ok(()) => {
                    println!("{ev} reconciles with {mf}: ok");
                }
                Err(msg) => {
                    eprintln!("events-reconcile: {msg}");
                    std::process::exit(1);
                }
            },
            _ => {
                eprintln!("usage: validate_json --events-reconcile EVENTS MANIFEST");
                std::process::exit(2);
            }
        }
        return;
    }
    if args.is_empty() {
        eprintln!(
            "usage: validate_json FILE... | validate_json --det-diff A B | \
             validate_json --events-reconcile EVENTS MANIFEST | validate_json --list-schemas"
        );
        std::process::exit(2);
    }
    for path in &args {
        let fail = |msg: &str| -> ! {
            eprintln!("{path}: INVALID — {msg}");
            std::process::exit(1);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("unreadable: {e}")),
        };
        if is_events_stream(&text) {
            if let Err(msg) = check_events(&text) {
                fail(&msg);
            }
            println!("{path}: ok ({EVENTS_SCHEMA})");
            continue;
        }
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => fail(&format!("parse error: {e}")),
        };
        let schema = match schema_of(&doc) {
            Some(s) => s.to_string(),
            None => fail("no schema header"),
        };
        if let Err(msg) = check(&doc, &schema) {
            fail(&msg);
        }
        println!("{path}: ok ({schema})");
    }
}
