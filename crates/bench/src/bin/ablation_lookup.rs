//! Ablation (§5 design choice): COAL's segment tree vs a linear scan of
//! the virtual range table, end-to-end on the real workloads, and the
//! §6.1 tag-budget fallback sweep for TypePointer.
//!
//! Not a paper figure — it backs the paper's *argument* for organizing
//! the ranges as a tree and for the overflow fallback being viable.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::json::Json;
use gvf_bench::manifest::{self, CellRecord};
use gvf_bench::report::{geomean, print_table};
use gvf_bench::sweep::run_cells;
use gvf_core::{LookupKind, Strategy};
use gvf_workloads::{run_workload, WorkloadKind};

/// Part-1 grid variants per workload, in grid order.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    /// SharedOA baseline.
    Base,
    /// COAL with the paper's segment tree.
    Tree,
    /// COAL with a linear range scan.
    Linear,
}

const KINDS: [WorkloadKind; 4] = [
    WorkloadKind::GameOfLife,
    WorkloadKind::Structure,
    WorkloadKind::VeBfs,
    WorkloadKind::VenPr,
];

fn main() {
    let opts = HarnessOpts::from_args();

    // Part 1: COAL lookup structure, normalized to SharedOA.
    let cells: Vec<(WorkloadKind, Variant)> = KINDS
        .into_iter()
        .flat_map(|k| [(k, Variant::Base), (k, Variant::Tree), (k, Variant::Linear)])
        .collect();
    let cache = opts.cell_cache("ablation_lookup");
    let mut results = run_cells("ablation_lookup", &opts, &cells, |i, &(k, v)| {
        let mut cfg = opts.cfg_for_cell(i);
        let s = match v {
            Variant::Base => Strategy::SharedOa,
            Variant::Tree => Strategy::Coal,
            Variant::Linear => {
                cfg.coal_lookup = LookupKind::LinearScan;
                Strategy::Coal
            }
        };
        cache.run(i, &cfg, || run_workload(k, s, &cfg))
    })
    .into_results(&opts);

    let mut records = Vec::new();
    let mut rows = Vec::new();
    let mut tree_norm = Vec::new();
    let mut lin_norm = Vec::new();
    for (ki, kind) in KINDS.into_iter().enumerate() {
        let base = &results[ki * 3];
        let tree = &results[ki * 3 + 1];
        let lin = &results[ki * 3 + 2];
        assert_eq!(tree.checksum, lin.checksum, "{kind}: lookup kinds disagree");
        let t = tree.stats.speedup_vs(&base.stats);
        let l = lin.stats.speedup_vs(&base.stats);
        tree_norm.push(t);
        lin_norm.push(l);
        rows.push(vec![
            kind.label().to_string(),
            format!("{t:.2}"),
            format!("{l:.2}"),
            format!("{}", tree.stats.total_instrs()),
            format!("{}", lin.stats.total_instrs()),
        ]);
        records.push(CellRecord::of(kind.label(), "sharedoa", base));
        records.push(
            CellRecord::of(kind.label(), "coal-tree", tree).with("norm_vs_sharedoa", Json::Num(t)),
        );
        records.push(
            CellRecord::of(kind.label(), "coal-linear", lin).with("norm_vs_sharedoa", Json::Num(l)),
        );
    }
    rows.push(vec![
        "GM".to_string(),
        format!("{:.2}", geomean(&tree_norm)),
        format!("{:.2}", geomean(&lin_norm)),
        String::new(),
        String::new(),
    ]);
    println!("\nAblation — COAL lookup: segment tree (paper Algorithm 1) vs linear scan");
    println!("(performance normalized to SharedOA; instrs = dynamic warp instructions)\n");
    print_table(
        &[
            "Workload",
            "tree perf",
            "linear perf",
            "tree instrs",
            "linear instrs",
        ],
        &rows,
    );

    // Part 2: TypePointer tag-budget sweep. vE has four single-slot
    // edge types = 32 bytes of vTables; shrinking the budget pushes
    // types one by one onto the classic fallback path, converging on
    // SharedOA-like behaviour.
    println!("\nExtension — TypePointer §6.1 fallback: shrinking tag budget (vE-BFS)");
    println!("(normalized to unbounded-budget TypePointer)\n");
    let budgets: [(Option<u64>, u32); 4] = [(None, 4), (Some(24), 3), (Some(16), 2), (Some(8), 1)];
    let budget_cache = opts.cell_cache("ablation_budget");
    let sweep = run_cells("ablation_budget", &opts, &budgets, |i, &(budget, _)| {
        let mut cfg = opts.cfg.clone();
        cfg.tag_budget = budget;
        budget_cache.run(i, &cfg, || {
            run_workload(WorkloadKind::VeBfs, Strategy::TypePointerHw, &cfg)
        })
    })
    .into_results(&opts);
    let full = &sweep[0];
    let mut rows = vec![vec![
        "unbounded (4/4 tagged)".to_string(),
        "1.00".to_string(),
        format!("{}", full.stats.global_load_transactions),
    ]];
    records.push(
        CellRecord::of(WorkloadKind::VeBfs.label(), "typepointer-hw", full)
            .with("tag_budget", Json::Null),
    );
    for (&(budget, tagged), r) in budgets.iter().zip(&sweep).skip(1) {
        let budget = budget.expect("swept budgets are bounded");
        assert_eq!(r.checksum, full.checksum, "fallback changed results");
        rows.push(vec![
            format!("{budget} B ({tagged}/4 tagged)"),
            format!("{:.2}", r.stats.speedup_vs(&full.stats)),
            format!("{}", r.stats.global_load_transactions),
        ]);
        records.push(
            CellRecord::of(WorkloadKind::VeBfs.label(), "typepointer-hw", r)
                .with("tag_budget", Json::num_u64(budget)),
        );
    }
    print_table(&["tag budget", "norm perf", "ld transactions"], &rows);
    println!("(fewer tagged types ⇒ more classic vTable loads ⇒ more transactions)");

    manifest::emit_grid(&opts, "ablation_lookup", &records, &mut results);
}
