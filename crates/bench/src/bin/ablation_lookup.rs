//! Ablation (§5 design choice): COAL's segment tree vs a linear scan of
//! the virtual range table, end-to-end on the real workloads, and the
//! §6.1 tag-budget fallback sweep for TypePointer.
//!
//! Not a paper figure — it backs the paper's *argument* for organizing
//! the ranges as a tree and for the overflow fallback being viable.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::report::{geomean, print_table};
use gvf_core::{LookupKind, Strategy};
use gvf_workloads::{run_workload, WorkloadKind};

fn main() {
    let opts = HarnessOpts::from_args();

    // Part 1: COAL lookup structure, normalized to SharedOA.
    let mut rows = Vec::new();
    let mut tree_norm = Vec::new();
    let mut lin_norm = Vec::new();
    for kind in [
        WorkloadKind::GameOfLife,
        WorkloadKind::Structure,
        WorkloadKind::VeBfs,
        WorkloadKind::VenPr,
    ] {
        let base = run_workload(kind, Strategy::SharedOa, &opts.cfg);
        let tree = run_workload(kind, Strategy::Coal, &opts.cfg);
        let mut cfg = opts.cfg.clone();
        cfg.coal_lookup = LookupKind::LinearScan;
        let lin = run_workload(kind, Strategy::Coal, &cfg);
        assert_eq!(tree.checksum, lin.checksum, "{kind}: lookup kinds disagree");
        let t = base.stats.cycles as f64 / tree.stats.cycles as f64;
        let l = base.stats.cycles as f64 / lin.stats.cycles as f64;
        tree_norm.push(t);
        lin_norm.push(l);
        rows.push(vec![
            kind.label().to_string(),
            format!("{t:.2}"),
            format!("{l:.2}"),
            format!("{}", tree.stats.total_instrs()),
            format!("{}", lin.stats.total_instrs()),
        ]);
    }
    rows.push(vec![
        "GM".to_string(),
        format!("{:.2}", geomean(&tree_norm)),
        format!("{:.2}", geomean(&lin_norm)),
        String::new(),
        String::new(),
    ]);
    println!("\nAblation — COAL lookup: segment tree (paper Algorithm 1) vs linear scan");
    println!("(performance normalized to SharedOA; instrs = dynamic warp instructions)\n");
    print_table(
        &[
            "Workload",
            "tree perf",
            "linear perf",
            "tree instrs",
            "linear instrs",
        ],
        &rows,
    );

    // Part 2: TypePointer tag-budget sweep. vE has four single-slot
    // edge types = 32 bytes of vTables; shrinking the budget pushes
    // types one by one onto the classic fallback path, converging on
    // SharedOA-like behaviour.
    println!("\nExtension — TypePointer §6.1 fallback: shrinking tag budget (vE-BFS)");
    println!("(normalized to unbounded-budget TypePointer)\n");
    let full = run_workload(WorkloadKind::VeBfs, Strategy::TypePointerHw, &opts.cfg);
    let mut rows = vec![vec![
        "unbounded (4/4 tagged)".to_string(),
        "1.00".to_string(),
        format!("{}", full.stats.global_load_transactions),
    ]];
    for (budget, tagged) in [(24u64, 3), (16, 2), (8, 1)] {
        let mut cfg = opts.cfg.clone();
        cfg.tag_budget = Some(budget);
        let r = run_workload(WorkloadKind::VeBfs, Strategy::TypePointerHw, &cfg);
        assert_eq!(r.checksum, full.checksum, "fallback changed results");
        rows.push(vec![
            format!("{budget} B ({tagged}/4 tagged)"),
            format!("{:.2}", full.stats.cycles as f64 / r.stats.cycles as f64),
            format!("{}", r.stats.global_load_transactions),
        ]);
    }
    print_table(&["tag budget", "norm perf", "ld transactions"], &rows);
    println!("(fewer tagged types ⇒ more classic vTable loads ⇒ more transactions)");
}
