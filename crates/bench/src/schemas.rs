//! One registry of every versioned artifact schema the harness emits.
//!
//! Each artifact family (run manifest, attribution report, cycle audit,
//! host profile, events stream, …) stamps its documents with a
//! `"schema"` name and an integer `"version"`. Those pairs used to live
//! as string literals scattered across the emitting modules; this
//! module is now the single source of truth. Emitters keep their local
//! `*_SCHEMA` constants for doc-comment discoverability, but each one
//! is defined *from* the registry entry, so a rename or version bump
//! happens in exactly one place and `validate_json --list-schemas`
//! can enumerate everything the toolchain understands.
//!
//! Adding a new artifact family is a one-line registration here plus a
//! `check` arm in `validate_json`.

use crate::json::Json;

/// A versioned artifact schema: the `"schema"` / `"version"` pair every
/// document of that family carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Schema {
    /// The `"schema"` member (e.g. `"gvf.run-manifest"`).
    pub id: &'static str,
    /// The `"version"` member.
    pub version: u32,
}

impl Schema {
    /// A fresh document carrying this schema's two header members —
    /// the standard opening every emitter builds on.
    pub fn header(&self) -> Json {
        Json::obj()
            .with("schema", Json::str(self.id))
            .with("version", Json::num_u64(self.version as u64))
    }

    /// Whether `doc` claims this schema (by its top-level `"schema"`
    /// member).
    pub fn matches(&self, doc: &Json) -> bool {
        doc.get("schema").and_then(Json::as_str) == Some(self.id)
    }
}

/// The per-run manifest: config, per-cell [`gvf_sim::Stats`], hostPerf.
pub const RUN_MANIFEST: Schema = Schema {
    id: "gvf.run-manifest",
    version: 2,
};
/// Per-epoch metrics series for the probed cell.
pub const METRICS: Schema = Schema {
    id: "gvf.metrics",
    version: 1,
};
/// Mechanism attribution: per-(PC, AccessTag) load accounting.
pub const ATTRIBUTION: Schema = Schema {
    id: "gvf.attribution",
    version: 1,
};
/// Deterministic cycle audit: six-way cycle classification per cell.
pub const CYCLEAUDIT: Schema = Schema {
    id: "gvf.cycleaudit",
    version: 1,
};
/// Host-side span profile (wall-clock; excluded from determinism).
pub const HOSTPROFILE: Schema = Schema {
    id: "gvf.hostprofile",
    version: 1,
};
/// Chrome trace-event timeline of the probed cell.
pub const TIMELINE: Schema = Schema {
    id: gvf_sim::TIMELINE_SCHEMA,
    version: gvf_sim::TIMELINE_SCHEMA_VERSION,
};
/// Host performance section embedded in the manifest.
pub const HOSTPERF: Schema = Schema {
    id: "gvf.hostperf",
    version: 1,
};
/// Append-only benchmark trajectory (`BENCH_gvf.json`).
pub const TRAJECTORY: Schema = Schema {
    id: "gvf.bench-trajectory",
    version: 1,
};
/// Content-addressed cell-cache entries.
pub const CELLCACHE: Schema = Schema {
    id: "gvf.cellcache",
    version: 2,
};
/// Live JSONL telemetry stream.
pub const EVENTS: Schema = Schema {
    id: "gvf.events",
    version: 1,
};
/// Run-comparison artifact: semantic / performance / coverage drift
/// between two result trees (see [`crate::rundiff`]).
pub const RUNDIFF: Schema = Schema {
    id: "gvf.rundiff",
    version: 1,
};

/// Every schema the toolchain understands, in the order
/// `validate_json --list-schemas` prints them.
pub const ALL: &[Schema] = &[
    RUN_MANIFEST,
    METRICS,
    ATTRIBUTION,
    CYCLEAUDIT,
    HOSTPROFILE,
    TIMELINE,
    HOSTPERF,
    TRAJECTORY,
    CELLCACHE,
    EVENTS,
    RUNDIFF,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_gvf_prefixed() {
        for (i, s) in ALL.iter().enumerate() {
            assert!(s.id.starts_with("gvf."), "{} lacks the gvf. prefix", s.id);
            assert!(s.version >= 1);
            for other in &ALL[i + 1..] {
                assert_ne!(s.id, other.id, "duplicate schema id");
            }
        }
    }

    #[test]
    fn header_stamps_both_members() {
        let doc = RUNDIFF.header();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gvf.rundiff")
        );
        assert_eq!(doc.get("version").and_then(Json::as_num), Some(1.0));
        assert!(RUNDIFF.matches(&doc));
        assert!(!RUN_MANIFEST.matches(&doc));
    }

    #[test]
    fn registry_matches_the_emitters() {
        // The emitting modules define their local constants *from* the
        // registry; this pins the linkage in both directions.
        assert_eq!(crate::manifest::MANIFEST_SCHEMA, RUN_MANIFEST.id);
        assert_eq!(
            crate::manifest::MANIFEST_SCHEMA_VERSION,
            RUN_MANIFEST.version
        );
        assert_eq!(crate::manifest::ATTRIB_SCHEMA, ATTRIBUTION.id);
        assert_eq!(crate::manifest::CYCLEAUDIT_SCHEMA, CYCLEAUDIT.id);
        assert_eq!(crate::manifest::HOSTPROFILE_SCHEMA, HOSTPROFILE.id);
        assert_eq!(crate::manifest::METRICS_SCHEMA, METRICS.id);
        assert_eq!(crate::hostperf::HOSTPERF_SCHEMA, HOSTPERF.id);
        assert_eq!(crate::cellcache::CELLCACHE_SCHEMA, CELLCACHE.id);
        assert_eq!(crate::events::EVENTS_SCHEMA, EVENTS.id);
        assert_eq!(crate::bench_history::TRAJECTORY_SCHEMA, TRAJECTORY.id);
        assert_eq!(gvf_sim::TIMELINE_SCHEMA, TIMELINE.id);
    }
}
