//! Run comparison: explain what changed between two result trees.
//!
//! The harness's artifacts say everything about *one* run; this module
//! says what differs between *two* — the observability a hot-path
//! rewrite or a perf regression actually needs. [`load_tree`] reads a
//! result tree (a directory of artifacts, or one manifest file plus its
//! siblings), [`diff_trees`] pairs runs by generator and cells by their
//! grid coordinates, and the emitted `gvf.rundiff` v1 document
//! classifies every delta into three families:
//!
//! - **semantic drift** — any [`gvf_sim::Stats`] / attribution /
//!   cycle-audit counter difference, reported with the exact counter
//!   path (`cells[3].stats.l1_hits`) and a per-(PC, AccessTag) offender
//!   list from the attribution evidence. During a timing-engine rewrite
//!   this section must be *empty*: the simulation is deterministic, so
//!   any entry here is a behavior change, not noise.
//! - **performance drift** — wall-clock movement attributed by aligning
//!   the two runs' span profiles ([`gvf_sim::align_exclusive`]: per-path
//!   exclusive-time deltas, top-K movers), stall-cause mix shifts from
//!   the cycle audit, and cache-hit-rate movements from attribution.
//! - **coverage drift** — cells added / removed / failed / cache-hit on
//!   one side only, cross-checked against both `gvf.events` streams.
//!
//! Determinism contract: the document contains ratios and deltas, never
//! absolute wall-clock values at stable positions, and every
//! performance list is threshold-gated. Diffing a tree against itself
//! therefore renders byte-identically no matter which `--jobs` value
//! produced the tree — CI's A/A gate holds `diffrun` to that.

use crate::json::Json;
use crate::schemas;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Span movers listed per run pair, by descending |exclusive delta|.
pub const TOP_MOVERS: usize = 8;
/// Minimum |exclusive-time delta| (ns) for a span to count as a mover —
/// gates scheduling jitter out of the A/A self-diff.
pub const SPAN_MOVER_MIN_NS: u64 = 100_000;
/// Minimum |stall-class fraction shift| worth reporting.
pub const STALL_SHIFT_MIN: f64 = 0.001;
/// Minimum |L1 hit-rate movement| worth reporting.
pub const HIT_RATE_MOVE_MIN: f64 = 0.0005;
/// Cap per diff list in the document; `truncated` counts the overflow
/// (clean verdicts always count *all* diffs, truncated or not).
pub const MAX_DIFFS_PER_LIST: usize = 64;

/// The artifact set of one run: the manifest plus whichever optional
/// evidence documents the tree carried for the same generator.
#[derive(Clone, Debug)]
pub struct RunArtifacts {
    /// Generator name (the manifest's `generator` member).
    pub generator: String,
    /// The `gvf.run-manifest` document.
    pub manifest: Json,
    /// The `gvf.attribution` document, when present.
    pub attribution: Option<Json>,
    /// The `gvf.cycleaudit` document, when present.
    pub audit: Option<Json>,
    /// The `gvf.hostprofile` document, when present.
    pub profile: Option<Json>,
    /// Validated `gvf.events` stream summary, when present.
    pub events: Option<crate::events::StreamSummary>,
}

/// One side of a comparison: every run loaded from a result tree.
#[derive(Clone, Debug, Default)]
pub struct RunTree {
    /// Runs sorted by generator name.
    pub runs: Vec<RunArtifacts>,
}

/// Loads a result tree for one side of a diff. `path` is either a
/// directory — every `*.json` artifact is classified by its `schema`
/// member, every `*.events.jsonl` stream is validated and keyed by its
/// `runStart` bin — or a single manifest file, whose siblings
/// (`X.attrib.json`, `X.audit.json`, `X.profile.json`,
/// `X.events.jsonl` for manifest `X.json`) are picked up when present.
/// Unreadable or torn artifacts are hard errors: a differ that silently
/// drops evidence would report clean diffs that aren't.
pub fn load_tree(path: &str) -> Result<RunTree, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
    if meta.is_dir() {
        load_dir(path)
    } else {
        load_single(path)
    }
}

fn read_doc(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_dir(dir: &str) -> Result<RunTree, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    let mut manifests: Vec<(String, Json)> = Vec::new();
    let mut attribs: BTreeMap<String, Json> = BTreeMap::new();
    let mut audits: BTreeMap<String, Json> = BTreeMap::new();
    let mut profiles: BTreeMap<String, Json> = BTreeMap::new();
    let mut events: BTreeMap<String, crate::events::StreamSummary> = BTreeMap::new();
    for name in &names {
        let path = std::path::Path::new(dir).join(name);
        if name.ends_with(".events.jsonl") {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let evs = crate::events::parse_stream(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let summary = crate::events::validate_stream(&evs)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            events.insert(summary.bin.clone(), summary);
            continue;
        }
        if !name.ends_with(".json") {
            continue;
        }
        let doc = read_doc(&path)?;
        let generator = doc
            .get("generator")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or_default();
        let dest = if schema == schemas::RUN_MANIFEST.id {
            if manifests.iter().any(|(g, _)| *g == generator) {
                return Err(format!(
                    "{dir}: two manifests claim generator {generator:?}"
                ));
            }
            manifests.push((generator, doc));
            continue;
        } else if schema == schemas::ATTRIBUTION.id {
            &mut attribs
        } else if schema == schemas::CYCLEAUDIT.id {
            &mut audits
        } else if schema == schemas::HOSTPROFILE.id {
            &mut profiles
        } else {
            // Metrics, timelines, trajectories, earlier rundiffs, …:
            // per-run evidence the diff doesn't consume.
            continue;
        };
        dest.insert(generator, doc);
    }
    if manifests.is_empty() {
        return Err(format!("{dir}: no run manifests found"));
    }
    manifests.sort_by(|a, b| a.0.cmp(&b.0));
    let runs = manifests
        .into_iter()
        .map(|(generator, manifest)| RunArtifacts {
            attribution: attribs.get(&generator).cloned(),
            audit: audits.get(&generator).cloned(),
            profile: profiles.get(&generator).cloned(),
            events: events.get(&generator).cloned(),
            generator,
            manifest,
        })
        .collect();
    Ok(RunTree { runs })
}

fn load_single(file: &str) -> Result<RunTree, String> {
    let manifest = read_doc(std::path::Path::new(file))?;
    if manifest.get("schema").and_then(Json::as_str) != Some(schemas::RUN_MANIFEST.id) {
        return Err(format!(
            "{file}: not a {} document",
            schemas::RUN_MANIFEST.id
        ));
    }
    let generator = manifest
        .get("generator")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let stem = file.strip_suffix(".json").unwrap_or(file);
    let optional = |suffix: &str| -> Result<Option<Json>, String> {
        let p = format!("{stem}{suffix}");
        if std::path::Path::new(&p).is_file() {
            read_doc(std::path::Path::new(&p)).map(Some)
        } else {
            Ok(None)
        }
    };
    let events_path = format!("{stem}.events.jsonl");
    let events = if std::path::Path::new(&events_path).is_file() {
        let text =
            std::fs::read_to_string(&events_path).map_err(|e| format!("{events_path}: {e}"))?;
        let evs = crate::events::parse_stream(&text).map_err(|e| format!("{events_path}: {e}"))?;
        Some(crate::events::validate_stream(&evs).map_err(|e| format!("{events_path}: {e}"))?)
    } else {
        None
    };
    Ok(RunTree {
        runs: vec![RunArtifacts {
            generator,
            manifest,
            attribution: optional(".attrib.json")?,
            audit: optional(".audit.json")?,
            profile: optional(".profile.json")?,
            events,
        }],
    })
}

// ---------------------------------------------------------------------
// Value diffing

fn json_eq(a: &Json, b: &Json) -> bool {
    a.render_compact() == b.render_compact()
}

/// Recursively diffs two values, recording `(path, baseline, current)`
/// for every leaf that differs. Objects diff over the union of keys
/// (one-sided members diff against `null`); arrays diff their common
/// prefix plus a `.length` marker when the lengths differ.
fn diff_value(path: &str, a: &Json, b: &Json, out: &mut Vec<(String, Json, Json)>) {
    match (a, b) {
        (Json::Obj(members_a), Json::Obj(members_b)) => {
            for (k, va) in members_a {
                match b.get(k) {
                    Some(vb) => diff_value(&format!("{path}.{k}"), va, vb, out),
                    None => out.push((format!("{path}.{k}"), va.clone(), Json::Null)),
                }
            }
            for (k, vb) in members_b {
                if a.get(k).is_none() {
                    out.push((format!("{path}.{k}"), Json::Null, vb.clone()));
                }
            }
        }
        (Json::Arr(items_a), Json::Arr(items_b)) => {
            if items_a.len() != items_b.len() {
                out.push((
                    format!("{path}.length"),
                    Json::num_u64(items_a.len() as u64),
                    Json::num_u64(items_b.len() as u64),
                ));
            }
            for (i, (va, vb)) in items_a.iter().zip(items_b).enumerate() {
                diff_value(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ => {
            if !json_eq(a, b) {
                out.push((path.to_string(), a.clone(), b.clone()));
            }
        }
    }
}

/// A deep copy of `v` with every member named `name` removed, at any
/// depth — used to diff attribution cells minus their `per_pc` tables
/// (which get the dedicated offender alignment instead).
fn without_member(v: &Json, name: &str) -> Json {
    match v {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != name)
                .map(|(k, val)| (k.clone(), without_member(val, name)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(|x| without_member(x, name)).collect()),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// Cell pairing

/// Members that are measurements or per-run bookkeeping rather than
/// grid coordinates; everything else identifies the cell.
const NON_COORDINATE_MEMBERS: &[&str] = &[
    "stats",
    "derived",
    "status",
    "panic",
    "configFingerprint",
    "worker",
    "queueWaitMs",
    "flightRecorder",
    "stats_load_transactions",
    "attribution",
    "statsCycles",
    "audit",
];

/// A cell's pairing key: the compact rendering of its coordinate
/// members. Cells from the same grid agree on it regardless of which
/// artifact family (manifest / attribution / audit) they came from.
fn cell_key(cell: &Json) -> String {
    let mut key = Json::obj();
    if let Json::Obj(members) = cell {
        for (k, v) in members {
            if !NON_COORDINATE_MEMBERS.contains(&k.as_str()) {
                key.set(k, v.clone());
            }
        }
    }
    key.render_compact()
}

/// Cells of a document keyed for pairing, in document order; duplicate
/// coordinates (shouldn't happen, but a differ must not lie if they do)
/// get a `#n` occurrence suffix so pairing stays positional among
/// duplicates.
fn keyed_cells(doc: &Json) -> Vec<(String, usize, Json)> {
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = Vec::new();
    if let Some(cells) = doc.get("cells").and_then(Json::as_arr) {
        for (i, cell) in cells.iter().enumerate() {
            let base = cell_key(cell);
            let n = seen.entry(base.clone()).or_insert(0);
            let key = if *n == 0 {
                base.clone()
            } else {
                format!("{base}#{n}")
            };
            *n += 1;
            out.push((key, i, cell.clone()));
        }
    }
    out
}

fn pair_cells<'a>(
    baseline: &'a [(String, usize, Json)],
    current: &'a [(String, usize, Json)],
) -> Vec<(&'a str, usize, &'a Json, usize, &'a Json)> {
    let index: BTreeMap<&str, (usize, &Json)> = current
        .iter()
        .map(|(k, i, c)| (k.as_str(), (*i, c)))
        .collect();
    baseline
        .iter()
        .filter_map(|(k, bi, bc)| {
            index
                .get(k.as_str())
                .map(|(ci, cc)| (k.as_str(), *bi, bc, *ci, *cc))
        })
        .collect()
}

fn is_failed(cell: &Json) -> bool {
    cell.get("status").and_then(Json::as_str) == Some("failed")
}

// ---------------------------------------------------------------------
// Read-back helpers over the artifact documents

/// `(path, exclusiveNs)` rows of a `gvf.hostprofile` document.
fn profile_spans(doc: &Json) -> Vec<(String, u64)> {
    doc.get("spans")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| {
                    let path = r.get("path").and_then(Json::as_str)?;
                    let ns = r.get("exclusiveNs").and_then(Json::as_num)?;
                    Some((path.to_string(), ns as u64))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Six-class cycle totals summed over every cell of a `gvf.cycleaudit`
/// document, in [`gvf_sim::CYCLE_CLASS_LABELS`] order.
fn audit_class_sums(doc: &Json) -> [u64; 6] {
    let mut sums = [0u64; 6];
    if let Some(cells) = doc.get("cells").and_then(Json::as_arr) {
        for cell in cells {
            let Some(classes) = cell.get("audit").and_then(|a| a.get("classes")) else {
                continue;
            };
            for (slot, label) in gvf_sim::CYCLE_CLASS_LABELS.iter().enumerate() {
                sums[slot] += classes.get(label).and_then(Json::as_num).unwrap_or(0.0) as u64;
            }
        }
    }
    sums
}

/// Per-tag `(transactions, l1_hits)` summed over every cell of a
/// `gvf.attribution` document, keyed by tag label.
fn attrib_tag_totals(doc: &Json) -> BTreeMap<String, (u64, u64)> {
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    if let Some(cells) = doc.get("cells").and_then(Json::as_arr) {
        for cell in cells {
            let Some(Json::Obj(tags)) = cell
                .get("attribution")
                .and_then(|a| a.get("probe"))
                .and_then(|p| p.get("loads"))
                .and_then(|l| l.get("by_tag"))
            else {
                continue;
            };
            for (tag, entry) in tags {
                let txns = entry
                    .get("transactions")
                    .and_then(Json::as_num)
                    .unwrap_or(0.0);
                let hits = entry.get("l1_hits").and_then(Json::as_num).unwrap_or(0.0);
                let t = totals.entry(tag.clone()).or_default();
                t.0 += txns as u64;
                t.1 += hits as u64;
            }
        }
    }
    totals
}

/// The per-(PC, tag) load table of one attribution cell.
fn per_pc_map(cell: &Json) -> BTreeMap<(u64, String), [u64; 4]> {
    let mut m = BTreeMap::new();
    let Some(rows) = cell
        .get("attribution")
        .and_then(|a| a.get("probe"))
        .and_then(|p| p.get("loads"))
        .and_then(|l| l.get("per_pc"))
        .and_then(Json::as_arr)
    else {
        return m;
    };
    for r in rows {
        let pc = r.get("pc").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let tag = r
            .get("tag")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let mut fields = [0u64; 4];
        for (slot, name) in PC_FIELDS.iter().enumerate() {
            fields[slot] = r.get(name).and_then(Json::as_num).unwrap_or(0.0) as u64;
        }
        m.insert((pc, tag), fields);
    }
    m
}

const PC_FIELDS: [&str; 4] = ["instructions", "lanes", "transactions", "l1_hits"];

fn ratio_json(baseline: f64, current: f64) -> Json {
    if baseline == 0.0 {
        if current == 0.0 {
            Json::Num(1.0)
        } else {
            Json::Null
        }
    } else {
        Json::Num(current / baseline)
    }
}

fn host_num(manifest: &Json, path: &[&str]) -> Option<f64> {
    let mut v = manifest.get("hostPerf")?;
    for p in path {
        v = v.get(p)?;
    }
    v.as_num()
}

// ---------------------------------------------------------------------
// The diff itself

struct DiffList {
    entries: Vec<Json>,
    total: usize,
}

impl DiffList {
    fn new() -> Self {
        DiffList {
            entries: Vec::new(),
            total: 0,
        }
    }

    fn push(&mut self, entry: Json) {
        self.total += 1;
        if self.entries.len() < MAX_DIFFS_PER_LIST {
            self.entries.push(entry);
        }
    }

    fn push_diffs(&mut self, diffs: Vec<(String, Json, Json)>) {
        for (path, baseline, current) in diffs {
            self.push(
                Json::obj()
                    .with("path", Json::str(&path))
                    .with("baseline", baseline)
                    .with("current", current),
            );
        }
    }

    fn truncated(&self) -> usize {
        self.total - self.entries.len()
    }
}

/// Diffs two loaded trees into a `gvf.rundiff` v1 document. Pure and
/// deterministic: no clocks, no filesystem paths, no absolute
/// wall-clock values — see the module docs for the byte-identity
/// contract the A/A CI gate enforces.
pub fn diff_trees(baseline: &RunTree, current: &RunTree) -> Json {
    let base_gens: Vec<&str> = baseline.runs.iter().map(|r| r.generator.as_str()).collect();
    let cur_gens: Vec<&str> = current.runs.iter().map(|r| r.generator.as_str()).collect();
    let baseline_only: Vec<Json> = base_gens
        .iter()
        .filter(|g| !cur_gens.contains(g))
        .map(|g| Json::str(*g))
        .collect();
    let current_only: Vec<Json> = cur_gens
        .iter()
        .filter(|g| !base_gens.contains(g))
        .map(|g| Json::str(*g))
        .collect();

    let mut runs = Vec::new();
    let mut semantic_clean = true;
    let mut coverage_clean = baseline_only.is_empty() && current_only.is_empty();
    let mut semantic_diffs_total = 0usize;
    let mut coverage_drifts_total = baseline_only.len() + current_only.len();
    // (|delta_ns|, cause text) across all run pairs, for the summary.
    let mut causes: Vec<(u64, String)> = Vec::new();

    for b in &baseline.runs {
        let Some(c) = current.runs.iter().find(|c| c.generator == b.generator) else {
            continue;
        };
        let entry = diff_run_pair(b, c, &mut causes);
        let config_changed = entry
            .get("configChanged")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let sem = entry.get("semantic").expect("semantic section");
        let sem_clean = sem.get("clean").and_then(Json::as_bool).unwrap_or(false);
        let sem_diffs = sem.get("diffs").and_then(Json::as_num).unwrap_or(0.0) as usize;
        // A deliberate config change is expected to move counters; only
        // fingerprint-equal pairs can vote the tree un-clean.
        if !config_changed && !sem_clean {
            semantic_clean = false;
        }
        semantic_diffs_total += sem_diffs;
        let cov = entry.get("coverage").expect("coverage section");
        if !cov.get("clean").and_then(Json::as_bool).unwrap_or(false) {
            coverage_clean = false;
        }
        coverage_drifts_total += cov.get("drifts").and_then(Json::as_num).unwrap_or(0.0) as usize;
        runs.push(entry);
    }

    causes.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let top_causes: Vec<Json> = causes.iter().take(3).map(|(_, s)| Json::str(s)).collect();

    let paired = runs.len();
    schemas::RUNDIFF
        .header()
        .with(
            "baseline",
            Json::obj().with("runs", Json::num_u64(baseline.runs.len() as u64)),
        )
        .with(
            "current",
            Json::obj().with("runs", Json::num_u64(current.runs.len() as u64)),
        )
        .with("baselineOnly", Json::Arr(baseline_only))
        .with("currentOnly", Json::Arr(current_only))
        .with("runs", Json::Arr(runs))
        .with(
            "summary",
            Json::obj()
                .with("pairedRuns", Json::num_u64(paired as u64))
                .with("semanticClean", Json::Bool(semantic_clean))
                .with("coverageClean", Json::Bool(coverage_clean))
                .with("semanticDiffs", Json::num_u64(semantic_diffs_total as u64))
                .with(
                    "coverageDrifts",
                    Json::num_u64(coverage_drifts_total as u64),
                )
                .with("topCauses", Json::Arr(top_causes)),
        )
}

fn diff_run_pair(b: &RunArtifacts, c: &RunArtifacts, causes: &mut Vec<(u64, String)>) -> Json {
    let fingerprint = |r: &RunArtifacts| -> Option<String> {
        r.manifest
            .get("config")
            .and_then(|cfg| cfg.get("configFingerprint"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    let fp_b = fingerprint(b);
    let fp_c = fingerprint(c);
    let config_changed = match (&fp_b, &fp_c) {
        (Some(x), Some(y)) => x != y,
        // Older manifests predate the fingerprint: fall back to the
        // config section itself.
        _ => !json_eq(
            &without_member(
                b.manifest.get("config").unwrap_or(&Json::Null),
                "configFingerprint",
            ),
            &without_member(
                c.manifest.get("config").unwrap_or(&Json::Null),
                "configFingerprint",
            ),
        ),
    };
    let opt_str = |s: &Option<String>| match s {
        Some(v) => Json::str(v),
        None => Json::Null,
    };

    let b_cells = keyed_cells(&b.manifest);
    let c_cells = keyed_cells(&c.manifest);
    let pairs = pair_cells(&b_cells, &c_cells);

    // --- semantic: Stats / derived ---
    let mut stats_diffs = DiffList::new();
    for &(_, bi, bc, _, cc) in &pairs {
        if is_failed(bc) || is_failed(cc) {
            continue; // failed-vs-anything is coverage, not semantics
        }
        let mut diffs = Vec::new();
        for section in ["stats", "derived"] {
            diff_value(
                &format!("cells[{bi}].{section}"),
                bc.get(section).unwrap_or(&Json::Null),
                cc.get(section).unwrap_or(&Json::Null),
                &mut diffs,
            );
        }
        stats_diffs.push_diffs(diffs);
    }

    // --- semantic: attribution counters + per-(PC, tag) offenders ---
    let attrib_compared = b.attribution.is_some() && c.attribution.is_some();
    let mut counter_diffs = DiffList::new();
    let mut offenders = DiffList::new();
    if let (Some(ba), Some(ca)) = (&b.attribution, &c.attribution) {
        let b_acells = keyed_cells(ba);
        let c_acells = keyed_cells(ca);
        for (_, bi, bc, _, cc) in pair_cells(&b_acells, &c_acells) {
            let mut diffs = Vec::new();
            diff_value(
                &format!("cells[{bi}]"),
                &without_member(bc, "per_pc"),
                &without_member(cc, "per_pc"),
                &mut diffs,
            );
            counter_diffs.push_diffs(diffs);
            let b_pcs = per_pc_map(bc);
            let c_pcs = per_pc_map(cc);
            let mut keys: Vec<&(u64, String)> = b_pcs.keys().chain(c_pcs.keys()).collect();
            keys.sort();
            keys.dedup();
            for key in keys {
                let zero = [0u64; 4];
                let bv = b_pcs.get(key).unwrap_or(&zero);
                let cv = c_pcs.get(key).unwrap_or(&zero);
                for (slot, field) in PC_FIELDS.iter().enumerate() {
                    if bv[slot] != cv[slot] {
                        offenders.push(
                            Json::obj()
                                .with("cell", Json::num_u64(bi as u64))
                                .with("pc", Json::num_u64(key.0))
                                .with("tag", Json::str(&key.1))
                                .with("field", Json::str(*field))
                                .with("baseline", Json::num_u64(bv[slot]))
                                .with("current", Json::num_u64(cv[slot])),
                        );
                    }
                }
            }
        }
    }

    // --- semantic: cycle audit ---
    let audit_compared = b.audit.is_some() && c.audit.is_some();
    let mut audit_diffs = DiffList::new();
    if let (Some(ba), Some(ca)) = (&b.audit, &c.audit) {
        let b_acells = keyed_cells(ba);
        let c_acells = keyed_cells(ca);
        for (_, bi, bc, _, cc) in pair_cells(&b_acells, &c_acells) {
            let mut diffs = Vec::new();
            for section in ["statsCycles", "audit"] {
                diff_value(
                    &format!("cells[{bi}].{section}"),
                    bc.get(section).unwrap_or(&Json::Null),
                    cc.get(section).unwrap_or(&Json::Null),
                    &mut diffs,
                );
            }
            audit_diffs.push_diffs(diffs);
        }
    }

    let semantic_total =
        stats_diffs.total + counter_diffs.total + offenders.total + audit_diffs.total;
    let truncated = stats_diffs.truncated()
        + counter_diffs.truncated()
        + offenders.truncated()
        + audit_diffs.truncated();
    let semantic = Json::obj()
        .with("clean", Json::Bool(semantic_total == 0))
        .with("diffs", Json::num_u64(semantic_total as u64))
        .with("truncated", Json::num_u64(truncated as u64))
        .with("statsDiffs", Json::Arr(stats_diffs.entries))
        .with(
            "attribution",
            Json::obj()
                .with("compared", Json::Bool(attrib_compared))
                .with("counterDiffs", Json::Arr(counter_diffs.entries))
                .with("offenders", Json::Arr(offenders.entries)),
        )
        .with(
            "audit",
            Json::obj()
                .with("compared", Json::Bool(audit_compared))
                .with("diffs", Json::Arr(audit_diffs.entries)),
        );

    // --- performance ---
    let wall_clock = match (
        host_num(&b.manifest, &["wall_s"]),
        host_num(&c.manifest, &["wall_s"]),
    ) {
        (Some(bw), Some(cw)) => {
            let phases: Vec<Json> = ["setup_s", "alloc_s", "simulate_s", "report_s"]
                .iter()
                .map(|phase| {
                    let bp = host_num(&b.manifest, &["phases", phase]).unwrap_or(0.0);
                    let cp = host_num(&c.manifest, &["phases", phase]).unwrap_or(0.0);
                    Json::obj()
                        .with("phase", Json::str(*phase))
                        .with("ratio", ratio_json(bp, cp))
                })
                .collect();
            let b_tput =
                host_num(&b.manifest, &["throughput", "sim_cycles_per_sec"]).unwrap_or(0.0);
            let c_tput =
                host_num(&c.manifest, &["throughput", "sim_cycles_per_sec"]).unwrap_or(0.0);
            Json::obj()
                .with("wallRatio", ratio_json(bw, cw))
                .with("simCyclesPerSecRatio", ratio_json(b_tput, c_tput))
                .with("phases", Json::Arr(phases))
        }
        _ => Json::Null,
    };

    let mut span_movers = Vec::new();
    if let (Some(bp), Some(cp)) = (&b.profile, &c.profile) {
        let deltas = gvf_sim::align_exclusive(&profile_spans(bp), &profile_spans(cp));
        for d in deltas
            .iter()
            .filter(|d| d.delta_ns().unsigned_abs() >= SPAN_MOVER_MIN_NS as u128)
            .take(TOP_MOVERS)
        {
            span_movers.push(
                Json::obj()
                    .with("path", Json::str(&d.path))
                    .with("baselineNs", Json::num_u64(d.baseline_ns))
                    .with("currentNs", Json::num_u64(d.current_ns))
                    .with("deltaNs", Json::Num(d.delta_ns() as f64))
                    .with(
                        "ratio",
                        ratio_json(d.baseline_ns as f64, d.current_ns as f64),
                    ),
            );
            let delta_ms = d.delta_ns() as f64 / 1e6;
            causes.push((
                d.delta_ns().unsigned_abs() as u64,
                format!(
                    "{}: span {} {}{:.1}ms exclusive",
                    b.generator,
                    d.path,
                    if delta_ms >= 0.0 { "+" } else { "" },
                    delta_ms
                ),
            ));
        }
    }

    let mut stall_mix = Vec::new();
    if let (Some(ba), Some(ca)) = (&b.audit, &c.audit) {
        let bs = audit_class_sums(ba);
        let cs = audit_class_sums(ca);
        let b_total: u64 = bs.iter().sum();
        let c_total: u64 = cs.iter().sum();
        if b_total > 0 && c_total > 0 {
            for (slot, label) in gvf_sim::CYCLE_CLASS_LABELS.iter().enumerate() {
                let bf = bs[slot] as f64 / b_total as f64;
                let cf = cs[slot] as f64 / c_total as f64;
                if (cf - bf).abs() >= STALL_SHIFT_MIN {
                    stall_mix.push(
                        Json::obj()
                            .with("class", Json::str(*label))
                            .with("baseline", Json::Num(bf))
                            .with("current", Json::Num(cf))
                            .with("shift", Json::Num(cf - bf)),
                    );
                }
            }
        }
    }

    let mut hit_rate_moves = Vec::new();
    if let (Some(ba), Some(ca)) = (&b.attribution, &c.attribution) {
        let bt = attrib_tag_totals(ba);
        let ct = attrib_tag_totals(ca);
        let mut tags: Vec<&String> = bt.keys().chain(ct.keys()).collect();
        tags.sort();
        tags.dedup();
        for tag in tags {
            let (btx, bh) = bt.get(tag).copied().unwrap_or((0, 0));
            let (ctx, ch) = ct.get(tag).copied().unwrap_or((0, 0));
            if btx == 0 || ctx == 0 {
                continue;
            }
            let br = bh as f64 / btx as f64;
            let cr = ch as f64 / ctx as f64;
            if (cr - br).abs() >= HIT_RATE_MOVE_MIN {
                hit_rate_moves.push(
                    Json::obj()
                        .with("tag", Json::str(tag))
                        .with("baseline", Json::Num(br))
                        .with("current", Json::Num(cr))
                        .with("delta", Json::Num(cr - br)),
                );
            }
        }
    }

    let performance = Json::obj()
        .with("wallClock", wall_clock)
        .with("spanMovers", Json::Arr(span_movers))
        .with("stallMix", Json::Arr(stall_mix))
        .with("cacheHitRates", Json::Arr(hit_rate_moves));

    // --- coverage ---
    let b_keys: Vec<&str> = b_cells.iter().map(|(k, _, _)| k.as_str()).collect();
    let c_keys: Vec<&str> = c_cells.iter().map(|(k, _, _)| k.as_str()).collect();
    let added: Vec<Json> = c_keys
        .iter()
        .filter(|k| !b_keys.contains(k))
        .map(|k| Json::str(*k))
        .collect();
    let removed: Vec<Json> = b_keys
        .iter()
        .filter(|k| !c_keys.contains(k))
        .map(|k| Json::str(*k))
        .collect();
    let failed_keys = |cells: &[(String, usize, Json)]| -> Vec<String> {
        cells
            .iter()
            .filter(|(_, _, c)| is_failed(c))
            .map(|(k, _, _)| k.clone())
            .collect()
    };
    let b_failed = failed_keys(&b_cells);
    let c_failed = failed_keys(&c_cells);
    let failed_only = |mine: &[String], theirs: &[String]| -> Vec<Json> {
        mine.iter()
            .filter(|k| !theirs.contains(k))
            .map(Json::str)
            .collect()
    };
    let failed_only_b = failed_only(&b_failed, &c_failed);
    let failed_only_c = failed_only(&c_failed, &b_failed);

    let cached_cells = |r: &RunArtifacts| -> Vec<String> {
        let mut out = Vec::new();
        if let Some(s) = &r.events {
            for sweep in &s.sweeps {
                for i in &sweep.cached {
                    out.push(format!("{}[{}]", sweep.label, i));
                }
            }
        }
        out.sort();
        out
    };
    let b_cached = cached_cells(b);
    let c_cached = cached_cells(c);
    let cached_only_b = failed_only(&b_cached, &c_cached);
    let cached_only_c = failed_only(&c_cached, &b_cached);

    let events_check = |r: &RunArtifacts, fp: &Option<String>| -> (String, bool) {
        let Some(summary) = &r.events else {
            return ("absent".to_string(), false);
        };
        if let Some(fp) = fp {
            if summary.fingerprint != *fp {
                return (
                    format!(
                        "mismatch: events fingerprint {} != manifest {}",
                        summary.fingerprint, fp
                    ),
                    true,
                );
            }
        }
        match crate::events::reconcile(summary, &r.manifest) {
            Ok(()) => ("ok".to_string(), false),
            Err(e) => (format!("mismatch: {e}"), true),
        }
    };
    let (b_events, b_events_bad) = events_check(b, &fp_b);
    let (c_events, c_events_bad) = events_check(c, &fp_c);

    let drifts = added.len()
        + removed.len()
        + failed_only_b.len()
        + failed_only_c.len()
        + cached_only_b.len()
        + cached_only_c.len()
        + usize::from(b_events_bad)
        + usize::from(c_events_bad);
    let coverage = Json::obj()
        .with("clean", Json::Bool(drifts == 0))
        .with("drifts", Json::num_u64(drifts as u64))
        .with("addedCells", Json::Arr(added))
        .with("removedCells", Json::Arr(removed))
        .with("failedOnlyBaseline", Json::Arr(failed_only_b))
        .with("failedOnlyCurrent", Json::Arr(failed_only_c))
        .with("cachedOnlyBaseline", Json::Arr(cached_only_b))
        .with("cachedOnlyCurrent", Json::Arr(cached_only_c))
        .with(
            "events",
            Json::obj()
                .with("baseline", Json::str(&b_events))
                .with("current", Json::str(&c_events)),
        );

    Json::obj()
        .with("generator", Json::str(&b.generator))
        .with(
            "configFingerprint",
            Json::obj()
                .with("baseline", opt_str(&fp_b))
                .with("current", opt_str(&fp_c)),
        )
        .with("configChanged", Json::Bool(config_changed))
        .with(
            "cells",
            Json::obj()
                .with("baseline", Json::num_u64(b_cells.len() as u64))
                .with("current", Json::num_u64(c_cells.len() as u64))
                .with("paired", Json::num_u64(pairs.len() as u64)),
        )
        .with("semantic", semantic)
        .with("performance", performance)
        .with("coverage", coverage)
}

// ---------------------------------------------------------------------
// Validation

/// Structural validation of a `gvf.rundiff` document, called by
/// `validate_json`: header, section presence, and the summary's
/// consistency with the per-run verdicts.
pub fn check_doc(doc: &Json) -> Result<(), String> {
    if !schemas::RUNDIFF.matches(doc) {
        return Err(format!("schema is not {}", schemas::RUNDIFF.id));
    }
    if doc.get("version").and_then(Json::as_num) != Some(schemas::RUNDIFF.version as f64) {
        return Err(format!("version is not {}", schemas::RUNDIFF.version));
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing runs array")?;
    let summary = doc.get("summary").ok_or("missing summary")?;
    let paired = summary
        .get("pairedRuns")
        .and_then(Json::as_num)
        .ok_or("summary.pairedRuns missing")? as usize;
    if paired != runs.len() {
        return Err(format!(
            "summary.pairedRuns is {paired} but runs has {} entries",
            runs.len()
        ));
    }
    let mut semantic_clean = true;
    let mut coverage_clean = doc
        .get("baselineOnly")
        .and_then(Json::as_arr)
        .ok_or("missing baselineOnly")?
        .is_empty()
        && doc
            .get("currentOnly")
            .and_then(Json::as_arr)
            .ok_or("missing currentOnly")?
            .is_empty();
    for (i, run) in runs.iter().enumerate() {
        let gen = run
            .get("generator")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("runs[{i}] lacks a generator"))?;
        let sem = run
            .get("semantic")
            .ok_or_else(|| format!("run {gen} lacks a semantic section"))?;
        let clean = sem
            .get("clean")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("run {gen} semantic.clean missing"))?;
        let diffs = sem
            .get("diffs")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("run {gen} semantic.diffs missing"))?;
        if clean != (diffs == 0.0) {
            return Err(format!(
                "run {gen}: semantic.clean disagrees with its diff count"
            ));
        }
        for section in ["statsDiffs"] {
            for entry in sem
                .get(section)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("run {gen} semantic.{section} missing"))?
            {
                if entry.get("path").and_then(Json::as_str).is_none() {
                    return Err(format!("run {gen}: a {section} entry lacks its path"));
                }
            }
        }
        let config_changed = run
            .get("configChanged")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("run {gen} configChanged missing"))?;
        if !config_changed && !clean {
            semantic_clean = false;
        }
        run.get("performance")
            .ok_or_else(|| format!("run {gen} lacks a performance section"))?;
        let cov = run
            .get("coverage")
            .ok_or_else(|| format!("run {gen} lacks a coverage section"))?;
        if !cov
            .get("clean")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("run {gen} coverage.clean missing"))?
        {
            coverage_clean = false;
        }
    }
    if summary.get("semanticClean").and_then(Json::as_bool) != Some(semantic_clean) {
        return Err("summary.semanticClean disagrees with the per-run verdicts".into());
    }
    if summary.get("coverageClean").and_then(Json::as_bool) != Some(coverage_clean) {
        return Err("summary.coverageClean disagrees with the per-run verdicts".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Single-run cause attribution (perf_gate's failure output)

/// Derives the sibling artifact path `X.<suffix>` for manifest `X.json`.
pub fn sibling(manifest_path: &str, suffix: &str) -> String {
    let stem = manifest_path.strip_suffix(".json").unwrap_or(manifest_path);
    format!("{stem}{suffix}")
}

/// Up to three human-readable performance-cause lines for a run, read
/// from the artifacts next to its manifest (span profile, cycle audit,
/// attribution). Used by `perf_gate` so a throughput failure names
/// *where* the time goes instead of only the ratio; absent artifacts
/// simply contribute no line.
pub fn attributed_causes(manifest_path: &str) -> Vec<String> {
    let mut causes = Vec::new();
    let load = |suffix: &str| -> Option<Json> {
        let p = sibling(manifest_path, suffix);
        let text = std::fs::read_to_string(&p).ok()?;
        Json::parse(&text).ok()
    };
    if let Some(profile) = load(".profile.json") {
        let mut spans = profile_spans(&profile);
        spans.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let total: u64 = spans.iter().map(|(_, ns)| ns).sum();
        if let Some((path, ns)) = spans.first() {
            if *ns > 0 && total > 0 {
                causes.push(format!(
                    "hottest host span: {} ({:.2}s exclusive, {:.0}% of profiled time)",
                    path,
                    *ns as f64 / 1e9,
                    100.0 * *ns as f64 / total as f64
                ));
            }
        }
    }
    if let Some(audit) = load(".audit.json") {
        let sums = audit_class_sums(&audit);
        let total: u64 = sums.iter().sum();
        if total > 0 {
            let (slot, &count) = sums
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .expect("six classes");
            causes.push(format!(
                "cycle mix: {} {:.0}% of SM epoch-cycles",
                gvf_sim::CYCLE_CLASS_LABELS[slot],
                100.0 * count as f64 / total as f64
            ));
        }
    }
    if let Some(attrib) = load(".attrib.json") {
        let totals = attrib_tag_totals(&attrib);
        let (txns, hits) = totals
            .values()
            .fold((0u64, 0u64), |(t, h), (tx, hi)| (t + tx, h + hi));
        if txns > 0 {
            causes.push(format!(
                "L1 hit rate: {:.1}% over {txns} load transactions",
                100.0 * hits as f64 / txns as f64
            ));
        }
    }
    causes.truncate(3);
    causes
}

/// One-line-per-run human summary of a rundiff document, shared by
/// `diffrun`'s stderr output and REPORT.md's baseline section.
pub fn human_summary(doc: &Json) -> String {
    let mut out = String::new();
    let empty: Vec<Json> = Vec::new();
    for run in doc.get("runs").and_then(Json::as_arr).unwrap_or(&empty) {
        let gen = run.get("generator").and_then(Json::as_str).unwrap_or("?");
        let sem = run.get("semantic");
        let sem_diffs = sem
            .and_then(|s| s.get("diffs"))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64;
        let cov_drifts = run
            .get("coverage")
            .and_then(|c| c.get("drifts"))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64;
        let wall = run
            .get("performance")
            .and_then(|p| p.get("wallClock"))
            .and_then(|w| w.get("wallRatio"))
            .and_then(Json::as_num);
        let config_changed = run
            .get("configChanged")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let _ = write!(
            out,
            "{gen}: semantic {}, coverage {}, wall {}",
            if sem_diffs == 0 {
                "clean".to_string()
            } else {
                format!("{sem_diffs} diff(s)")
            },
            if cov_drifts == 0 {
                "clean".to_string()
            } else {
                format!("{cov_drifts} drift(s)")
            },
            match wall {
                Some(r) => format!("x{r:.2}"),
                None => "n/a".to_string(),
            },
        );
        if config_changed {
            out.push_str(" [config changed]");
        }
        out.push('\n');
    }
    for (label, member) in [("baseline", "baselineOnly"), ("current", "currentOnly")] {
        for g in doc.get(member).and_then(Json::as_arr).unwrap_or(&empty) {
            if let Some(g) = g.as_str() {
                let _ = writeln!(out, "{g}: only in {label} tree");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // `Json::set` appends, so replacing an existing member needs a
    // rebuild.
    fn replace(obj: &Json, key: &str, value: Json) -> Json {
        match obj {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .map(|(k, v)| {
                        if k == key {
                            (k.clone(), value.clone())
                        } else {
                            (k.clone(), v.clone())
                        }
                    })
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    fn cell(workload: &str, l1_hits: u64) -> Json {
        Json::obj()
            .with("workload", Json::str(workload))
            .with("strategy", Json::str("vtable"))
            .with(
                "stats",
                Json::obj()
                    .with("cycles", Json::num_u64(1000))
                    .with("l1_hits", Json::num_u64(l1_hits)),
            )
            .with("derived", Json::obj().with("ipc", Json::Num(0.5)))
    }

    fn manifest(gen: &str, cells: Vec<Json>, wall_s: f64) -> Json {
        schemas::RUN_MANIFEST
            .header()
            .with("generator", Json::str(gen))
            .with(
                "config",
                Json::obj()
                    .with("scale", Json::num_u64(2))
                    .with("configFingerprint", Json::str("aaaa111122223333")),
            )
            .with("cells", Json::Arr(cells))
            .with(
                "hostPerf",
                Json::obj().with("wall_s", Json::Num(wall_s)).with(
                    "throughput",
                    Json::obj().with("sim_cycles_per_sec", Json::Num(1e6 / wall_s)),
                ),
            )
    }

    fn tree(m: Json) -> RunTree {
        RunTree {
            runs: vec![RunArtifacts {
                generator: m
                    .get("generator")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
                manifest: m,
                attribution: None,
                audit: None,
                profile: None,
                events: None,
            }],
        }
    }

    #[test]
    fn self_diff_is_clean_and_wall_independent() {
        let a = tree(manifest(
            "fig7",
            vec![cell("bank", 10), cell("nbody", 20)],
            2.0,
        ));
        // Same semantics, different wall clock — as two --jobs values
        // would produce.
        let b = tree(manifest(
            "fig7",
            vec![cell("bank", 10), cell("nbody", 20)],
            7.5,
        ));
        let aa = diff_trees(&a, &a);
        let bb = diff_trees(&b, &b);
        assert_eq!(
            aa.render(),
            bb.render(),
            "A/A diff must not leak wall clock"
        );
        let summary = aa.get("summary").unwrap();
        assert_eq!(
            summary.get("semanticClean").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            summary.get("coverageClean").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            summary.get("semanticDiffs").and_then(Json::as_num),
            Some(0.0)
        );
        check_doc(&aa).expect("self-diff validates");
    }

    #[test]
    fn mutated_counter_is_flagged_with_its_exact_path() {
        let a = tree(manifest(
            "fig7",
            vec![cell("bank", 10), cell("nbody", 20)],
            2.0,
        ));
        let m = tree(manifest(
            "fig7",
            vec![cell("bank", 99), cell("nbody", 20)],
            2.0,
        ));
        let doc = diff_trees(&a, &m);
        let run = &doc.get("runs").and_then(Json::as_arr).unwrap()[0];
        let diffs = run
            .get("semantic")
            .and_then(|s| s.get("statsDiffs"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(diffs.len(), 1);
        assert_eq!(
            diffs[0].get("path").and_then(Json::as_str),
            Some("cells[0].stats.l1_hits")
        );
        assert_eq!(diffs[0].get("baseline").and_then(Json::as_num), Some(10.0));
        assert_eq!(diffs[0].get("current").and_then(Json::as_num), Some(99.0));
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("semanticClean"))
                .and_then(Json::as_bool),
            Some(false)
        );
        check_doc(&doc).expect("drift doc validates");
    }

    #[test]
    fn coverage_sees_added_removed_and_failed_cells() {
        let a = tree(manifest(
            "fig7",
            vec![cell("bank", 10), cell("nbody", 20)],
            2.0,
        ));
        let failed = Json::obj()
            .with("index", Json::num_u64(1))
            .with("status", Json::str("failed"))
            .with("panic", Json::str("boom"));
        let b = tree(manifest(
            "fig7",
            vec![cell("bank", 10), cell("extra", 5), failed],
            2.0,
        ));
        let doc = diff_trees(&a, &b);
        let cov = doc.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("coverage")
            .unwrap()
            .clone();
        assert_eq!(cov.get("clean").and_then(Json::as_bool), Some(false));
        assert_eq!(
            cov.get("addedCells").and_then(Json::as_arr).unwrap().len(),
            2
        );
        assert_eq!(
            cov.get("removedCells")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            cov.get("failedOnlyCurrent")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            1
        );
        check_doc(&doc).expect("coverage drift doc validates");
    }

    #[test]
    fn config_change_reports_diffs_but_does_not_vote_unclean() {
        let a = tree(manifest("fig7", vec![cell("bank", 10)], 2.0));
        let m = manifest("fig7", vec![cell("bank", 44)], 2.0);
        let cfg = replace(
            m.get("config").unwrap(),
            "configFingerprint",
            Json::str("ffff000011112222"),
        );
        let b = tree(replace(&m, "config", cfg));
        let doc = diff_trees(&a, &b);
        let run = &doc.get("runs").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(run.get("configChanged").and_then(Json::as_bool), Some(true));
        let sem = run.get("semantic").unwrap();
        assert_eq!(sem.get("clean").and_then(Json::as_bool), Some(false));
        // The deliberate config change keeps the tree-level verdict clean.
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("semanticClean"))
                .and_then(Json::as_bool),
            Some(true)
        );
        check_doc(&doc).expect("doc validates");
    }

    #[test]
    fn span_movers_rank_the_injected_slowdown_first() {
        let profile = |slow_ns: u64| {
            schemas::HOSTPROFILE
                .header()
                .with("generator", Json::str("fig7"))
                .with(
                    "spans",
                    Json::Arr(vec![
                        Json::obj()
                            .with("path", Json::str("engine.execute"))
                            .with("exclusiveNs", Json::num_u64(50_000_000)),
                        Json::obj()
                            .with("path", Json::str("sweep.slow_cell_injection"))
                            .with("exclusiveNs", Json::num_u64(slow_ns)),
                    ]),
                )
        };
        let mut a = tree(manifest("fig7", vec![cell("bank", 10)], 2.0));
        a.runs[0].profile = Some(profile(0));
        let mut b = tree(manifest("fig7", vec![cell("bank", 10)], 20.0));
        b.runs[0].profile = Some(profile(450_000_000));
        let doc = diff_trees(&a, &b);
        let movers = doc.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("performance")
            .and_then(|p| p.get("spanMovers"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(
            movers[0].get("path").and_then(Json::as_str),
            Some("sweep.slow_cell_injection")
        );
        assert_eq!(
            movers[0].get("deltaNs").and_then(Json::as_num),
            Some(450_000_000.0)
        );
        // The top summary cause names the same span.
        let causes = doc
            .get("summary")
            .and_then(|s| s.get("topCauses"))
            .and_then(Json::as_arr)
            .unwrap();
        assert!(causes[0]
            .as_str()
            .unwrap()
            .contains("sweep.slow_cell_injection"));
    }

    #[test]
    fn check_doc_rejects_inconsistent_summaries() {
        let a = tree(manifest("fig7", vec![cell("bank", 10)], 2.0));
        let doc = diff_trees(&a, &a);
        let summary = replace(
            doc.get("summary").unwrap(),
            "semanticClean",
            Json::Bool(false),
        );
        let doc = replace(&doc, "summary", summary);
        assert!(check_doc(&doc).is_err());
    }
}
