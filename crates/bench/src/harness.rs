//! A minimal, zero-dependency stand-in for the slice of the Criterion
//! API the benches use (`cargo bench` harnesses must still work from a
//! cold checkout with no registry access).
//!
//! Semantics: each benchmark warms up once, then runs adaptively-sized
//! batches until it has a stable per-iteration time, and prints
//! `name/id  <ns>/iter`. Under `cargo test` (which builds bench targets
//! with `--test`) every benchmark runs exactly once, as Criterion does,
//! so the suite stays fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; one per process, threaded through the
/// `criterion_group!`-generated functions.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a driver from the process arguments. Like Criterion, the
    /// harness only measures when invoked by `cargo bench` (which
    /// passes `--bench`); under `cargo test` each benchmark runs once
    /// as a smoke test. Other arguments are ignored.
    pub fn from_args() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            test_mode: !bench_mode,
        }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            test_mode: self.test_mode,
            name: name.into(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Throughput annotation: when set, results include an elements/second
/// rate alongside ns/iter.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    test_mode: bool,
    name: String,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for Criterion compatibility; the adaptive timer ignores
    /// it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput annotation for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs `f` as the benchmark body for `id`.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            test_mode: self.test_mode,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string(), self.throughput);
    }

    /// Runs `f` with `input` as the benchmark body for `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            test_mode: self.test_mode,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&self.name, &id.to_string(), self.throughput);
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Hands the benchmark body a timing loop.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    total: Duration,
    iters: u64,
}

/// Wall-clock budget per benchmark once warm (adaptive batching stops
/// after this much measured time).
const TARGET_TIME: Duration = Duration::from_millis(300);

impl Bencher {
    /// Times `f`, adaptively choosing the iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            std::hint::black_box(f());
            self.iters = 1;
            self.total = Duration::from_nanos(1);
            return;
        }
        std::hint::black_box(f()); // warmup, untimed
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.total += start.elapsed();
            self.iters += batch;
            if self.total >= TARGET_TIME {
                break;
            }
            batch = batch.saturating_mul(2);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        let mut line = format!("{group}/{id}: {ns:>14.0} ns/iter ({} iters)", self.iters);
        if let (Some(Throughput::Elements(n)), false) = (throughput, self.test_mode) {
            let rate = n as f64 / (ns * 1e-9);
            line.push_str(&format!(", {rate:.3e} elem/s"));
        }
        println!("{line}");
    }
}

/// Groups bench functions under one driver entry point, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($f(c);)+
        }
    };
}

/// Generates `main` for a bench binary, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            test_mode: false,
            total: Duration::ZERO,
            iters: 0,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters >= 1);
        assert!(n >= b.iters); // warmup adds at least one extra call
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            total: Duration::ZERO,
            iters: 0,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
