//! Pooled execution of a figure's simulation grid.
//!
//! Every figure binary boils down to a grid of independent cells
//! (workload × strategy × knob). [`run_cells`] pushes the grid through a
//! [`SimPool`] and returns the results in grid order, so the reporting
//! code stays a plain in-order loop and the output is byte-identical
//! for any `--jobs` value.

use gvf_sim::SimPool;
use std::time::Instant;

/// Runs `f` over `cells` on `jobs` threads (`0` = all cores), returning
/// results in input order. Prints a wall-clock line to stderr so stdout
/// stays a clean report.
pub fn run_cells<I, T, F>(label: &str, jobs: usize, cells: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let pool = SimPool::new(jobs);
    let start = Instant::now();
    let out = pool.run(cells, f);
    eprintln!(
        "[{label}] {} simulations in {:.2}s ({} job{})",
        cells.len(),
        start.elapsed().as_secs_f64(),
        pool.jobs(),
        if pool.jobs() == 1 { "" } else { "s" },
    );
    out
}
