//! Pooled execution of a figure's simulation grid.
//!
//! Every figure binary boils down to a grid of independent cells
//! (workload × strategy × knob). [`run_cells`] pushes the grid through a
//! [`SimPool`] and returns the results in grid order, so the reporting
//! code stays a plain in-order loop and stdout is byte-identical for
//! any `--jobs` value. All operator feedback — progress heartbeats and
//! the wall-clock summary — goes to **stderr only** (the CI determinism
//! diff compares stdout between serial and parallel runs), and
//! `--quiet` suppresses even that for scripted runs.
//!
//! Each sweep also self-reports to [`gvf_sim::hostperf`]: the pool's
//! [`gvf_sim::PoolTelemetry`] (per-worker busy/queue-wait/idle time)
//! and the cell count land in the manifest's `hostPerf` section, which
//! the determinism diff strips (wall-clock numbers differ run to run by
//! design — see `DESIGN.md` "Host performance & trajectory").

use crate::cli::HarnessOpts;
use gvf_sim::hostperf::{self, SweepTelemetry};
use gvf_sim::SimPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum milliseconds between progress heartbeats.
const HEARTBEAT_MS: u64 = 1000;

/// Runs `f` over `cells` on `opts.jobs` threads (`0` = all cores),
/// returning results in input order; `f` also receives the cell's grid
/// index (feeding [`crate::cli::HarnessOpts::cfg_for_cell`]). Long
/// sweeps get throttled `k/N cells, ETA` heartbeats on stderr; a final
/// wall-clock line always prints to stderr so stdout stays a clean
/// report. `--quiet` silences both. The sweep's pool telemetry is
/// recorded for the manifest's `hostPerf` section.
pub fn run_cells<I, T, F>(label: &str, opts: &HarnessOpts, cells: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let pool = SimPool::new(opts.jobs);
    let quiet = opts.quiet;
    let start = Instant::now();
    let last_beat = AtomicU64::new(0);
    let (out, telemetry) = pool.run_timed(cells, f, |done, total| {
        if quiet {
            return;
        }
        let elapsed_ms = start.elapsed().as_millis() as u64;
        let prev = last_beat.load(Ordering::Relaxed);
        // One thread wins the CAS per heartbeat window; the rest skip.
        if done < total
            && elapsed_ms >= prev + HEARTBEAT_MS
            && last_beat
                .compare_exchange(prev, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            match eta_seconds(done, total, start.elapsed().as_secs_f64()) {
                Some(eta) => eprintln!("[{label}] {done}/{total} cells, ETA {eta:.0}s"),
                None => eprintln!("[{label}] {done}/{total} cells"),
            }
        }
    });
    if !quiet {
        eprintln!(
            "[{label}] {} simulations in {:.2}s ({} job{})",
            cells.len(),
            start.elapsed().as_secs_f64(),
            pool.jobs(),
            if pool.jobs() == 1 { "" } else { "s" },
        );
    }
    hostperf::record_sweep(
        SweepTelemetry {
            label: label.to_string(),
            cells: cells.len() as u64,
            pool: telemetry,
        },
        start.elapsed().as_nanos() as u64,
    );
    out
}

/// Remaining-time estimate, `None` when there is nothing to extrapolate
/// from (zero completed cells or no measurable elapsed time — a
/// division by zero in disguise).
fn eta_seconds(done: usize, total: usize, elapsed_s: f64) -> Option<f64> {
    if done == 0 || elapsed_s <= 0.0 {
        return None;
    }
    Some(elapsed_s / done as f64 * total.saturating_sub(done) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_guards_degenerate_inputs() {
        assert_eq!(eta_seconds(0, 10, 1.0), None);
        assert_eq!(eta_seconds(5, 10, 0.0), None);
        assert_eq!(eta_seconds(5, 10, -1.0), None);
        let eta = eta_seconds(5, 10, 2.0).expect("well-defined");
        assert!((eta - 2.0).abs() < 1e-9);
        // Finished sweeps extrapolate to zero remaining.
        assert_eq!(eta_seconds(10, 10, 3.0), Some(0.0));
    }
}
