//! Pooled execution of a figure's simulation grid.
//!
//! Every figure binary boils down to a grid of independent cells
//! (workload × strategy × knob). [`run_cells`] pushes the grid through a
//! [`SimPool`] and returns a [`SweepRun`] holding the results in grid
//! order, so the reporting code stays a plain in-order loop and stdout
//! is byte-identical for any `--jobs` value. All operator feedback —
//! progress heartbeats and the wall-clock summary — goes to **stderr
//! only** (the CI determinism diff compares stdout between serial and
//! parallel runs), and `--quiet` suppresses even that for scripted runs.
//!
//! **Fault isolation:** a panicking cell no longer aborts the sweep.
//! The pool catches each cell's panic ([`gvf_sim::CellFailure`]); the
//! remaining cells complete, and [`SweepRun::into_results`] turns any
//! failures into first-class `"failed"` manifest entries plus a
//! non-zero exit that lists exactly which cells died — per-cell
//! granularity instead of losing the whole binary's work.
//!
//! **Telemetry:** the sweep's lifecycle flows through
//! [`crate::events`] via the pool's [`gvf_sim::CellHooks`] — per-cell
//! scheduled/started/terminal events with worker id, queue wait and
//! duration, the stderr heartbeat (now an events consumer, with the
//! resumed-run ETA fix), the flight recorder, and the `--events-out`
//! JSONL stream. Each sweep also self-reports to
//! [`gvf_sim::hostperf`]: the pool's [`gvf_sim::PoolTelemetry`]
//! (per-worker busy/queue-wait/idle time) and the cell count land in
//! the manifest's `hostPerf` section, which the determinism diff strips
//! (wall-clock numbers differ run to run by design — see `DESIGN.md`
//! "Host performance & trajectory").

use crate::cli::HarnessOpts;
use gvf_sim::hostperf::{self, SweepTelemetry};
use gvf_sim::{CellFailure, CellHooks, CellObservation, SimPool};
use gvf_workloads::RunResult;
use std::sync::Mutex;
use std::time::Instant;

/// One dead cell of a sweep: where it died, what the panic said, which
/// worker it was on, how long it queued, and the fingerprint of the
/// configuration that killed it (reproducible via `--seed`/knob flags;
/// the fingerprint is what the cell cache would have keyed it by — see
/// [`crate::cellcache`]).
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Grid index of the dead cell.
    pub cell: usize,
    /// The panic payload.
    pub payload: String,
    /// Hex fingerprint of the cell's simulation config.
    pub fingerprint: String,
    /// Pool worker the cell died on.
    pub worker: usize,
    /// Nanoseconds the cell waited in the pool queue before starting.
    pub queue_wait_ns: u64,
}

/// The outcome of a sweep: per-cell results in grid order, each either
/// a value or the failure that killed it.
pub struct SweepRun<T> {
    label: String,
    cells: Vec<Result<T, SweepFailure>>,
}

impl<T> SweepRun<T> {
    /// The dead cells, in grid order.
    pub fn failures(&self) -> Vec<&SweepFailure> {
        self.cells.iter().filter_map(|c| c.as_ref().err()).collect()
    }

    /// Every cell outcome in grid order — for callers (tests, the
    /// failure-manifest builder) that need the raw per-cell results
    /// without the exit-on-failure policy of [`SweepRun::into_results`].
    pub fn cells(&self) -> &[Result<T, SweepFailure>] {
        &self.cells
    }

    /// Unwraps every cell, panicking on the first failure — for callers
    /// (tests, benches) that treat any dead cell as fatal.
    pub fn expect_all(self) -> Vec<T> {
        self.cells
            .into_iter()
            .map(|c| c.unwrap_or_else(|f| panic!("cell {} panicked: {}", f.cell, f.payload)))
            .collect()
    }
}

impl SweepRun<RunResult> {
    /// The figure-binary unwrap: on an all-green sweep, the results in
    /// grid order. Any dead cell instead writes the failure manifest
    /// (`--json-out`, schema v2 with `"status": "failed"` entries — see
    /// [`crate::manifest::emit_failures`]), lists the dead cells on
    /// stderr, closes the events stream with `runEnd: failed`, and
    /// exits non-zero; surviving cells' counters are preserved in the
    /// manifest, so a long sweep's work is not lost.
    pub fn into_results(self, opts: &HarnessOpts) -> Vec<RunResult> {
        if self.failures().is_empty() {
            return self
                .cells
                .into_iter()
                .map(|c| c.unwrap_or_else(|_| unreachable!("no failures")))
                .collect();
        }
        let label = self.label.clone();
        let failed: Vec<usize> = self.failures().iter().map(|f| f.cell).collect();
        crate::manifest::emit_failures(opts, &label, &self.cells);
        for f in self.failures() {
            eprintln!(
                "[{label}] cell {} FAILED: {} (config {})",
                f.cell, f.payload, f.fingerprint
            );
        }
        eprintln!(
            "[{label}] {} of {} cells failed: {failed:?}",
            failed.len(),
            self.cells.len(),
        );
        crate::events::run_end("failed");
        std::process::exit(1);
    }
}

/// Bridges the pool's per-cell lifecycle to [`crate::events`] and
/// records each cell's worker id and queue wait for failure reporting.
struct SweepHooks {
    /// Per-cell (worker, queue-wait ns), filled as cells terminate.
    runtime: Mutex<Vec<(usize, u64)>>,
}

impl CellHooks for SweepHooks {
    fn started(&self, index: usize, worker: usize) {
        crate::events::cell_started(index, worker);
    }

    fn finished(&self, obs: &CellObservation, done: usize, total: usize) {
        {
            let mut runtime = self.runtime.lock().expect("sweep runtime mutex");
            runtime[obs.index] = (obs.worker, obs.queue_wait_ns);
        }
        crate::events::cell_done(obs, done, total);
    }
}

/// Runs `f` over `cells` on `opts.jobs` threads (`0` = all cores),
/// returning a [`SweepRun`] in input order; `f` also receives the
/// cell's grid index (feeding [`crate::cli::HarnessOpts::cfg_for_cell`]).
/// Long sweeps get throttled `k/N cells, ETA` heartbeats on stderr (an
/// events consumer — see [`crate::events`]; the ETA extrapolates from
/// non-cached completions only, and the completion heartbeat always
/// prints); a final wall-clock line also goes to stderr so stdout stays
/// a clean report. `--quiet` silences all of it. The sweep's pool
/// telemetry is recorded for the manifest's `hostPerf` section.
/// `--fail-cell N` makes grid cell `N` panic instead of running `f` —
/// the injected failure takes the real isolation path (pool
/// `catch_unwind`, failure manifest, flight recorder), which CI uses to
/// test the telemetry end to end. `--slow-cell N` runs cell `N`
/// normally, then busy-waits ~9× the cell's own wall time (min 250 ms)
/// inside the `sweep.slow_cell_injection` host span: a pure wall-clock
/// regression with untouched simulated results, which CI's rundiff gate
/// uses to check that the span-profile attribution names the right
/// path.
pub fn run_cells<I, T, F>(label: &str, opts: &HarnessOpts, cells: &[I], f: F) -> SweepRun<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let pool = SimPool::new(opts.jobs);
    let quiet = opts.quiet;
    let start = Instant::now();
    crate::events::sweep_start(label, cells.len(), pool.jobs(), quiet);
    let hooks = SweepHooks {
        runtime: Mutex::new(vec![(0, 0); cells.len()]),
    };
    let fail_cell = opts.fail_cell;
    let slow_cell = opts.slow_cell;
    let (out, telemetry) = pool.run_observed(
        cells,
        |i, cell| {
            if fail_cell == Some(i) {
                panic!("injected failure (--fail-cell {i})");
            }
            if slow_cell == Some(i) {
                let t0 = Instant::now();
                let out = f(i, cell);
                let budget = (t0.elapsed() * 9).max(std::time::Duration::from_millis(250));
                let _g = gvf_sim::spans::span("sweep.slow_cell_injection");
                let spin = Instant::now();
                while spin.elapsed() < budget {
                    std::hint::spin_loop();
                }
                return out;
            }
            f(i, cell)
        },
        &hooks,
    );
    crate::events::sweep_end(label);
    if !quiet {
        eprintln!(
            "[{label}] {} simulations in {:.2}s ({} job{})",
            cells.len(),
            start.elapsed().as_secs_f64(),
            pool.jobs(),
            if pool.jobs() == 1 { "" } else { "s" },
        );
    }
    hostperf::record_sweep(
        SweepTelemetry {
            label: label.to_string(),
            cells: cells.len() as u64,
            pool: telemetry,
        },
        start.elapsed().as_nanos() as u64,
    );
    let runtime = hooks.runtime.into_inner().expect("sweep runtime mutex");
    let cells = out
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.map_err(|CellFailure { index, payload }| SweepFailure {
                cell: index,
                payload,
                fingerprint: crate::cellcache::config_fingerprint(&opts.cfg_for_cell(i)),
                worker: runtime[i].0,
                queue_wait_ns: runtime[i].1,
            })
        })
        .collect();
    SweepRun {
        label: label.to_string(),
        cells,
    }
}
