//! Pooled execution of a figure's simulation grid.
//!
//! Every figure binary boils down to a grid of independent cells
//! (workload × strategy × knob). [`run_cells`] pushes the grid through a
//! [`SimPool`] and returns a [`SweepRun`] holding the results in grid
//! order, so the reporting code stays a plain in-order loop and stdout
//! is byte-identical for any `--jobs` value. All operator feedback —
//! progress heartbeats and the wall-clock summary — goes to **stderr
//! only** (the CI determinism diff compares stdout between serial and
//! parallel runs), and `--quiet` suppresses even that for scripted runs.
//!
//! **Fault isolation:** a panicking cell no longer aborts the sweep.
//! The pool catches each cell's panic ([`gvf_sim::CellFailure`]); the
//! remaining cells complete, and [`SweepRun::into_results`] turns any
//! failures into first-class `"failed"` manifest entries plus a
//! non-zero exit that lists exactly which cells died — per-cell
//! granularity instead of losing the whole binary's work.
//!
//! Each sweep also self-reports to [`gvf_sim::hostperf`]: the pool's
//! [`gvf_sim::PoolTelemetry`] (per-worker busy/queue-wait/idle time)
//! and the cell count land in the manifest's `hostPerf` section, which
//! the determinism diff strips (wall-clock numbers differ run to run by
//! design — see `DESIGN.md` "Host performance & trajectory").

use crate::cli::HarnessOpts;
use gvf_sim::hostperf::{self, SweepTelemetry};
use gvf_sim::{CellFailure, SimPool};
use gvf_workloads::RunResult;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum milliseconds between progress heartbeats.
const HEARTBEAT_MS: u64 = 1000;

/// One dead cell of a sweep: where it died, what the panic said, and
/// the fingerprint of the configuration that killed it (reproducible
/// via `--seed`/knob flags; the fingerprint is what the cell cache
/// would have keyed it by — see [`crate::cellcache`]).
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// Grid index of the dead cell.
    pub cell: usize,
    /// The panic payload.
    pub payload: String,
    /// Hex fingerprint of the cell's simulation config.
    pub fingerprint: String,
}

/// The outcome of a sweep: per-cell results in grid order, each either
/// a value or the failure that killed it.
pub struct SweepRun<T> {
    label: String,
    cells: Vec<Result<T, SweepFailure>>,
}

impl<T> SweepRun<T> {
    /// The dead cells, in grid order.
    pub fn failures(&self) -> Vec<&SweepFailure> {
        self.cells.iter().filter_map(|c| c.as_ref().err()).collect()
    }

    /// Unwraps every cell, panicking on the first failure — for callers
    /// (tests, benches) that treat any dead cell as fatal.
    pub fn expect_all(self) -> Vec<T> {
        self.cells
            .into_iter()
            .map(|c| c.unwrap_or_else(|f| panic!("cell {} panicked: {}", f.cell, f.payload)))
            .collect()
    }
}

impl SweepRun<RunResult> {
    /// The figure-binary unwrap: on an all-green sweep, the results in
    /// grid order. Any dead cell instead writes the failure manifest
    /// (`--json-out`, schema v2 with `"status": "failed"` entries — see
    /// [`crate::manifest::emit_failures`]), lists the dead cells on
    /// stderr, and exits non-zero; surviving cells' counters are
    /// preserved in the manifest, so a long sweep's work is not lost.
    pub fn into_results(self, opts: &HarnessOpts) -> Vec<RunResult> {
        if self.failures().is_empty() {
            return self
                .cells
                .into_iter()
                .map(|c| c.unwrap_or_else(|_| unreachable!("no failures")))
                .collect();
        }
        let label = self.label.clone();
        let failed: Vec<usize> = self.failures().iter().map(|f| f.cell).collect();
        crate::manifest::emit_failures(opts, &label, &self.cells);
        for f in self.failures() {
            eprintln!(
                "[{label}] cell {} FAILED: {} (config {})",
                f.cell, f.payload, f.fingerprint
            );
        }
        eprintln!(
            "[{label}] {} of {} cells failed: {failed:?}",
            failed.len(),
            self.cells.len(),
        );
        std::process::exit(1);
    }
}

/// Runs `f` over `cells` on `opts.jobs` threads (`0` = all cores),
/// returning a [`SweepRun`] in input order; `f` also receives the
/// cell's grid index (feeding [`crate::cli::HarnessOpts::cfg_for_cell`]).
/// Long sweeps get throttled `k/N cells, ETA` heartbeats on stderr, and
/// the completion heartbeat always prints (the last cell must never be
/// swallowed by the throttle); a final wall-clock line also goes to
/// stderr so stdout stays a clean report. `--quiet` silences all of it.
/// The sweep's pool telemetry is recorded for the manifest's `hostPerf`
/// section.
pub fn run_cells<I, T, F>(label: &str, opts: &HarnessOpts, cells: &[I], f: F) -> SweepRun<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let pool = SimPool::new(opts.jobs);
    let quiet = opts.quiet;
    let start = Instant::now();
    let last_beat = AtomicU64::new(0);
    let (out, telemetry) = pool.run_timed(cells, f, |done, total| {
        if quiet {
            return;
        }
        let elapsed_ms = start.elapsed().as_millis() as u64;
        let prev = last_beat.load(Ordering::Relaxed);
        if !heartbeat_due(done, total, elapsed_ms, prev) {
            return;
        }
        // The completion beat is unconditionally printed: only one
        // thread ever observes `done == total`, so it needs no CAS and
        // cannot be swallowed by the throttle window. Throttled beats
        // race; one thread wins the CAS per window, the rest skip.
        if done == total {
            eprintln!("[{label}] {done}/{total} cells");
        } else if last_beat
            .compare_exchange(prev, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            match eta_seconds(done, total, start.elapsed().as_secs_f64()) {
                Some(eta) => eprintln!("[{label}] {done}/{total} cells, ETA {eta:.0}s"),
                None => eprintln!("[{label}] {done}/{total} cells"),
            }
        }
    });
    if !quiet {
        eprintln!(
            "[{label}] {} simulations in {:.2}s ({} job{})",
            cells.len(),
            start.elapsed().as_secs_f64(),
            pool.jobs(),
            if pool.jobs() == 1 { "" } else { "s" },
        );
    }
    hostperf::record_sweep(
        SweepTelemetry {
            label: label.to_string(),
            cells: cells.len() as u64,
            pool: telemetry,
        },
        start.elapsed().as_nanos() as u64,
    );
    let cells = out
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.map_err(|CellFailure { index, payload }| SweepFailure {
                cell: index,
                payload,
                fingerprint: crate::cellcache::config_fingerprint(&opts.cfg_for_cell(i)),
            })
        })
        .collect();
    SweepRun {
        label: label.to_string(),
        cells,
    }
}

/// Whether a progress line should be considered at all: the completion
/// beat (`done == total`) is always due — the CAS throttle used to
/// swallow it when the last cell landed inside the throttle window —
/// and intermediate beats are due once the window has elapsed.
fn heartbeat_due(done: usize, total: usize, elapsed_ms: u64, prev_beat_ms: u64) -> bool {
    done == total || elapsed_ms >= prev_beat_ms + HEARTBEAT_MS
}

/// Remaining-time estimate, `None` when there is nothing to extrapolate
/// from (zero completed cells or no measurable elapsed time — a
/// division by zero in disguise).
fn eta_seconds(done: usize, total: usize, elapsed_s: f64) -> Option<f64> {
    if done == 0 || elapsed_s <= 0.0 {
        return None;
    }
    Some(elapsed_s / done as f64 * total.saturating_sub(done) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_guards_degenerate_inputs() {
        assert_eq!(eta_seconds(0, 10, 1.0), None);
        assert_eq!(eta_seconds(5, 10, 0.0), None);
        assert_eq!(eta_seconds(5, 10, -1.0), None);
        let eta = eta_seconds(5, 10, 2.0).expect("well-defined");
        assert!((eta - 2.0).abs() < 1e-9);
        // Finished sweeps extrapolate to zero remaining.
        assert_eq!(eta_seconds(10, 10, 3.0), Some(0.0));
    }

    #[test]
    fn completion_heartbeat_is_never_throttled() {
        // The regression: last cell completes 1 ms after a beat, inside
        // the throttle window — the final N/N line must still be due.
        assert!(heartbeat_due(10, 10, 501, 500));
        assert!(heartbeat_due(10, 10, 0, 0), "instant sweeps too");
        // Intermediate beats still throttle.
        assert!(!heartbeat_due(5, 10, 501, 500));
        assert!(heartbeat_due(5, 10, 500 + HEARTBEAT_MS, 500));
    }
}
