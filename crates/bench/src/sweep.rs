//! Pooled execution of a figure's simulation grid.
//!
//! Every figure binary boils down to a grid of independent cells
//! (workload × strategy × knob). [`run_cells`] pushes the grid through a
//! [`SimPool`] and returns the results in grid order, so the reporting
//! code stays a plain in-order loop and stdout is byte-identical for
//! any `--jobs` value. All operator feedback — progress heartbeats and
//! the wall-clock summary — goes to **stderr only** (the CI determinism
//! diff compares stdout between serial and parallel runs).

use gvf_sim::SimPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Minimum milliseconds between progress heartbeats.
const HEARTBEAT_MS: u64 = 1000;

/// Runs `f` over `cells` on `jobs` threads (`0` = all cores), returning
/// results in input order; `f` also receives the cell's grid index
/// (feeding [`crate::cli::HarnessOpts::cfg_for_cell`]). Long sweeps get
/// throttled `k/N cells, ETA` heartbeats on stderr; a final wall-clock
/// line always prints to stderr so stdout stays a clean report.
pub fn run_cells<I, T, F>(label: &str, jobs: usize, cells: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let pool = SimPool::new(jobs);
    let start = Instant::now();
    let last_beat = AtomicU64::new(0);
    let out = pool.run_indexed(cells, f, |done, total| {
        let elapsed_ms = start.elapsed().as_millis() as u64;
        let prev = last_beat.load(Ordering::Relaxed);
        // One thread wins the CAS per heartbeat window; the rest skip.
        if done < total
            && elapsed_ms >= prev + HEARTBEAT_MS
            && last_beat
                .compare_exchange(prev, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let eta = start.elapsed().as_secs_f64() / done as f64 * (total - done) as f64;
            eprintln!("[{label}] {done}/{total} cells, ETA {eta:.0}s");
        }
    });
    eprintln!(
        "[{label}] {} simulations in {:.2}s ({} job{})",
        cells.len(),
        start.elapsed().as_secs_f64(),
        pool.jobs(),
        if pool.jobs() == 1 { "" } else { "s" },
    );
    out
}
