//! End-to-end telemetry: a real (tiny) sweep with an injected panic and
//! a resumed re-run, all writing one `gvf.events` stream — the stream
//! must validate against the lifecycle invariants, its roll-up must
//! match what actually happened (including cache hits on resume), the
//! flight recorder must capture the dead cell's context, and the
//! failure manifest must carry worker id, queue wait and the recorder
//! snapshot.
//!
//! This lives in its own integration-test file on purpose: the events
//! log, the cell-cache counters and the span/progress switches are
//! process-global, so the test needs a process of its own. Keep it the
//! only `#[test]` here.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::events;
use gvf_bench::json::Json;
use gvf_bench::manifest::failure_manifest;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadConfig, WorkloadKind};

fn opts(cache_dir: &std::path::Path, resume: bool, fail_cell: Option<usize>) -> HarnessOpts {
    HarnessOpts {
        cfg: WorkloadConfig::tiny(),
        jobs: 3,
        smoke: true,
        quiet: true,
        json_out: None,
        trace_out: None,
        metrics_out: None,
        attrib_out: None,
        profile_out: None,
        audit_out: None,
        resume,
        no_cache: false,
        cache_dir: Some(cache_dir.to_string_lossy().into_owned()),
        events_out: None, // the sink is installed via events::init below
        stall_factor: events::DEFAULT_STALL_FACTOR,
        fail_cell,
        slow_cell: None,
    }
}

#[test]
fn sweep_telemetry_reconciles_with_what_happened() {
    let tmp = std::env::temp_dir().join(format!("gvf_events_stream_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let cache_dir = tmp.join("cache");
    let events_path = tmp.join("run.events.jsonl");

    events::init(
        &events_path.to_string_lossy(),
        &events::RunInfo {
            bin: "evtest".into(),
            fingerprint: "0123456789abcdef".into(),
            jobs: 3,
            smoke: true,
            stall_factor: events::DEFAULT_STALL_FACTOR,
        },
    );
    assert!(events::sink_installed());

    let cells: Vec<WorkloadKind> = WorkloadKind::EVALUATED.to_vec();
    let n = cells.len();
    assert!(n >= 2, "test needs at least two grid cells");
    let dead = 1usize;

    // Sweep 1: cell `dead` dies via the injection flag; the survivors
    // simulate and warm the cache.
    let o1 = opts(&cache_dir, false, Some(dead));
    let cache1 = o1.cell_cache("evtest");
    let run1 = run_cells("evsweep1", &o1, &cells, |i, &k| {
        let cfg = o1.cfg_for_cell(i);
        cache1.run(i, &cfg, || run_workload(k, Strategy::Cuda, &cfg))
    });

    let failures = run1.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].cell, dead);
    assert!(failures[0].payload.contains("--fail-cell"));
    assert!(failures[0].worker < 3, "worker id must be a pool worker");

    // The flight recorder caught the failure, ending with its
    // cellFailed event.
    let flight = events::flight_recorder("evsweep1", dead).expect("flight recorder snapshot");
    assert!(!flight.is_empty() && flight.len() <= events::FLIGHT_RECORDER_EVENTS);
    let last = flight.last().unwrap();
    assert_eq!(last.get("ev").and_then(Json::as_str), Some("cellFailed"));
    assert_eq!(last.get("cell").and_then(Json::as_num), Some(dead as f64));

    // The failure manifest surfaces the runtime context per dead cell.
    let doc = failure_manifest("evsweep1", &o1, run1.cells());
    let entries = doc.get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(entries.len(), n);
    let dead_entry = &entries[dead];
    assert_eq!(
        dead_entry.get("status").and_then(Json::as_str),
        Some("failed")
    );
    assert!(dead_entry.get("worker").and_then(Json::as_num).is_some());
    assert!(dead_entry
        .get("queueWaitMs")
        .and_then(Json::as_num)
        .is_some());
    let embedded = dead_entry
        .get("flightRecorder")
        .and_then(Json::as_arr)
        .expect("failed entry embeds the flight recorder");
    assert_eq!(embedded.len(), flight.len());

    // Sweep 2: the resumed run — survivors come back as cache hits, the
    // dead cell simulates for real this time.
    let o2 = opts(&cache_dir, true, None);
    let cache2 = o2.cell_cache("evtest");
    let run2 = run_cells("evsweep2", &o2, &cells, |i, &k| {
        let cfg = o2.cfg_for_cell(i);
        cache2.run(i, &cfg, || run_workload(k, Strategy::Cuda, &cfg))
    });
    assert!(run2.failures().is_empty());
    events::run_end("ok");

    // The stream on disk validates and rolls up to exactly this story.
    let text = std::fs::read_to_string(&events_path).expect("events file");
    let stream = events::parse_stream(&text).expect("stream parses");
    let summary = events::validate_stream(&stream).expect("stream validates");
    assert_eq!(summary.bin, "evtest");
    assert_eq!(summary.fingerprint, "0123456789abcdef");
    assert_eq!(summary.run_status.as_deref(), Some("ok"));
    assert_eq!(summary.sweeps.len(), 2);

    let s1 = &summary.sweeps[0];
    assert_eq!((s1.label.as_str(), s1.total), ("evsweep1", n));
    assert!(s1.ended);
    assert_eq!(s1.failed, vec![dead]);
    assert_eq!(s1.finished.len(), n - 1);
    assert!(s1.cached.is_empty());

    let s2 = &summary.sweeps[1];
    assert_eq!((s2.label.as_str(), s2.total), ("evsweep2", n));
    assert!(s2.ended);
    assert!(s2.failed.is_empty());
    // Resume: every survivor of sweep 1 is a cache hit; only the
    // previously-dead cell simulates.
    assert_eq!(s2.finished, vec![dead]);
    assert_eq!(s2.cached.len(), n - 1);

    let _ = std::fs::remove_dir_all(&tmp);
}
