//! Property tests for the two telemetry schemas added with the
//! host-performance subsystem (`gvf.hostperf` v1 and
//! `gvf.bench-trajectory` v1): any generated document must survive the
//! render → parse round trip of the in-repo JSON layer, and the
//! trajectory must additionally decode back to an equal value — the
//! same guarantee the older schemas already enjoy (see
//! `json_roundtrip.rs`), run on the in-repo `gvf-prop` harness.

use gvf_bench::bench_history::{History, RunConfig, Sample, TrajectoryEntry};
use gvf_bench::hostperf::host_perf_json_from;
use gvf_bench::json::Json;
use gvf_prop::{props, Rng};
use gvf_sim::{HostPerfSnapshot, PoolTelemetry, SweepTelemetry, WorkerTelemetry};

/// An exactly-representable f64 (k/64 with bounded k), mirroring the
/// JSON round-trip suite's number palette.
fn arb_f64(rng: &mut Rng) -> f64 {
    rng.range_u64(0, 1 << 20) as f64 / 64.0
}

fn arb_snapshot(rng: &mut Rng) -> HostPerfSnapshot {
    let n_sweeps = rng.range_usize(0, 4);
    HostPerfSnapshot {
        wall_ns: rng.range_u64(0, 1 << 40),
        setup_ns: rng.range_u64(0, 1 << 30),
        report_ns: rng.range_u64(0, 1 << 30),
        alloc_ns: rng.range_u64(0, 1 << 40),
        simulate_ns: rng.range_u64(0, 1 << 40),
        sweeps: (0..n_sweeps)
            .map(|i| {
                let jobs = rng.range_usize(1, 9);
                SweepTelemetry {
                    label: format!("sweep{i}"),
                    cells: rng.range_u64(0, 1 << 16),
                    pool: PoolTelemetry {
                        wall_ns: rng.range_u64(0, 1 << 40),
                        jobs,
                        workers: (0..jobs)
                            .map(|_| WorkerTelemetry {
                                busy_ns: rng.range_u64(0, 1 << 40),
                                queue_wait_ns: rng.range_u64(0, 1 << 30),
                                cells: rng.range_u64(0, 1 << 16),
                            })
                            .collect(),
                    },
                }
            })
            .collect(),
        peak_rss_bytes: if rng.bool(0.8) {
            Some(rng.range_u64(0, 1 << 44))
        } else {
            None
        },
    }
}

fn arb_entry(rng: &mut Rng, i: usize) -> TrajectoryEntry {
    TrajectoryEntry {
        rev: format!("{:07x}", rng.range_u64(0, 1 << 28)),
        date: format!(
            "{:04}-{:02}-{:02}",
            rng.range_u64(1970, 2100),
            rng.range_u64(1, 13),
            rng.range_u64(1, 29)
        ),
        samples: rng.range_u64(1, 10),
        sample: Sample {
            bin: format!("bin{i}"),
            config: RunConfig {
                smoke: rng.bool(0.5),
                scale: rng.range_u64(1, 64),
                iterations: rng.range_u64(1, 16),
            },
            wall_s: arb_f64(rng),
            cells: rng.range_u64(0, 1 << 20),
            cells_per_sec: arb_f64(rng),
            sim_cycles: rng.range_u64(0, 1 << 50),
            sim_cycles_per_sec: arb_f64(rng),
            total_instrs: rng.range_u64(0, 1 << 50),
            mean_ipc: arb_f64(rng),
        },
    }
}

/// `gvf.hostperf` v1: the emitted section always parses back to an
/// equal JSON tree and keeps its schema header and throughput block,
/// whatever the snapshot — including zero-duration and worker-less
/// degenerate shapes.
#[test]
fn hostperf_sections_round_trip() {
    props!(96, |rng| {
        let snap = arb_snapshot(rng);
        let cycles = rng.range_u64(0, 1 << 50);
        let doc = host_perf_json_from(&snap, cycles);
        let text = doc.render();
        let back = Json::parse(&text).expect("hostPerf section must parse");
        assert_eq!(back, doc, "round-trip mismatch for: {text}");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("gvf.hostperf")
        );
        let rate = back
            .get("throughput")
            .and_then(|t| t.get("sim_cycles_per_sec"))
            .and_then(Json::as_num)
            .expect("throughput rate");
        assert!(rate.is_finite(), "rate must stay finite: {rate}");
    });
}

/// `gvf.bench-trajectory` v1: a history of arbitrary entries decodes
/// back to an equal value after render → parse → from_json, and the
/// encoding is idempotent.
#[test]
fn trajectories_round_trip() {
    props!(96, |rng| {
        let n = rng.range_usize(0, 8);
        let history = History {
            entries: (0..n).map(|i| arb_entry(rng, i)).collect(),
        };
        let doc = history.to_json();
        let text = doc.render();
        let back = Json::parse(&text).expect("trajectory must parse");
        assert_eq!(back, doc);
        let decoded = History::from_json(&back).expect("trajectory must decode");
        assert_eq!(decoded, history);
        assert_eq!(decoded.to_json().render(), text, "encoding must be stable");
    });
}
