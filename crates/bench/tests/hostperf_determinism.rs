//! The determinism contract versus the telemetry subsystem: host-perf
//! sections and trajectory timestamps are wall-clock data, so neither
//! may influence the serial-vs-parallel manifest comparison or the
//! regression gate's arithmetic. These tests pin that exclusion down
//! end-to-end, at the same layer `validate_json --det-diff` and
//! `perf_gate` operate on.

use gvf_bench::bench_history::{
    gate, record, sample_from_manifest, GateConfig, History, RunConfig, Sample,
};
use gvf_bench::cli::HarnessOpts;
use gvf_bench::hostperf::host_perf_json_from;
use gvf_bench::json::Json;
use gvf_bench::manifest::{manifest, strip_host_perf, CellRecord};
use gvf_sim::{HostPerfSnapshot, PoolTelemetry, SweepTelemetry, WorkerTelemetry};
use gvf_workloads::WorkloadConfig;

fn opts() -> HarnessOpts {
    HarnessOpts {
        cfg: WorkloadConfig::tiny(),
        jobs: 1,
        smoke: true,
        quiet: true,
        json_out: None,
        trace_out: None,
        metrics_out: None,
        attrib_out: None,
        profile_out: None,
        audit_out: None,
        resume: false,
        no_cache: false,
        cache_dir: None,
        events_out: None,
        stall_factor: gvf_bench::events::DEFAULT_STALL_FACTOR,
        fail_cell: None,
        slow_cell: None,
    }
}

fn cells() -> Vec<CellRecord> {
    let mut stats = gvf_sim::Stats::new();
    stats.cycles = 12_345;
    stats.instrs_mem = 100;
    stats.instrs_compute = 4_000;
    stats.instrs_ctrl = 50;
    vec![CellRecord::new("raytrace", "typegroup", &stats)]
}

/// A snapshot shaped like run `variant`: same work, different clocks —
/// exactly what a serial and a parallel run of one grid look like.
fn snapshot(variant: u64) -> HostPerfSnapshot {
    HostPerfSnapshot {
        wall_ns: 1_000_000_000 * (variant + 1),
        setup_ns: 7_000_000 * (variant + 1),
        report_ns: 3_000_000,
        alloc_ns: 90_000_000 * (variant + 1),
        simulate_ns: 800_000_000,
        sweeps: vec![SweepTelemetry {
            label: "fig6".into(),
            cells: 1,
            pool: PoolTelemetry {
                wall_ns: 900_000_000 / (variant + 1),
                jobs: variant as usize + 1,
                workers: vec![WorkerTelemetry {
                    busy_ns: 850_000_000,
                    queue_wait_ns: 1_000 * variant,
                    cells: 1,
                }],
            },
        }],
        peak_rss_bytes: Some((64 + variant) << 20),
    }
}

/// Two runs of the same grid with wildly different host telemetry must
/// compare identical through the determinism view — and, as a sanity
/// check on the test itself, differ without the strip.
#[test]
fn host_perf_is_excluded_from_the_determinism_view() {
    let opts = opts();
    let cells = cells();
    let core = manifest("fig6", &opts, &cells);
    let serial = core
        .clone()
        .with("hostPerf", host_perf_json_from(&snapshot(0), 12_345));
    let parallel = core
        .clone()
        .with("hostPerf", host_perf_json_from(&snapshot(3), 12_345));

    assert_ne!(
        serial.render(),
        parallel.render(),
        "test is vacuous: the two hostPerf sections did not differ"
    );
    assert_eq!(
        strip_host_perf(&serial).render(),
        strip_host_perf(&parallel).render(),
        "determinism views must be byte-identical"
    );
    // The strip recovers exactly the deterministic core.
    assert_eq!(strip_host_perf(&serial), core);
}

/// The round trip `perf_record` relies on: a manifest with an embedded
/// hostPerf section yields the same throughput sample after render →
/// parse, and the sample ignores everything the strip removes… except
/// the hostPerf numbers themselves.
#[test]
fn samples_survive_the_manifest_round_trip() {
    let doc = manifest("fig6", &opts(), &cells())
        .with("hostPerf", host_perf_json_from(&snapshot(1), 12_345));
    let parsed = Json::parse(&doc.render()).expect("manifest must parse");
    let a = sample_from_manifest(&doc).expect("sample");
    let b = sample_from_manifest(&parsed).expect("sample after round trip");
    assert_eq!(a, b);
    assert_eq!(a.bin, "fig6");
    assert_eq!(a.sim_cycles, 12_345);
    assert!(a.sim_cycles_per_sec > 0.0);
    // The stripped view must NOT yield a sample: hostPerf is the
    // sample's only wall-clock source.
    assert!(sample_from_manifest(&strip_host_perf(&doc)).is_err());
}

/// Trajectory provenance (git rev, date) never reaches the gate: two
/// histories recording identical measurements under different
/// rev/date stamps produce identical verdicts for every probe.
#[test]
fn trajectory_timestamps_are_excluded_from_the_gate() {
    let sample = |rate: f64| Sample {
        bin: "fig6".into(),
        config: RunConfig {
            // Benchmark-grade: smoke or sub-second samples are skipped
            // by the gate outright, which would make this test vacuous.
            smoke: false,
            scale: 1,
            iterations: 2,
        },
        wall_s: 2.0,
        cells: 4,
        cells_per_sec: 4.0,
        sim_cycles: 1_000,
        sim_cycles_per_sec: rate,
        total_instrs: 500,
        mean_ipc: 0.5,
    };
    let mut then = History::default();
    let mut now = History::default();
    record(&mut then, &[sample(1000.0)], "0000001", "1999-12-31");
    record(&mut now, &[sample(1000.0)], "fffffff", "2026-08-05");
    let cfg = GateConfig::default();
    for rate in [1000.0, 900.0, 100.0, 0.5] {
        assert_eq!(
            gate(&then, &sample(rate), &cfg),
            gate(&now, &sample(rate), &cfg),
            "verdict for rate {rate} depended on provenance"
        );
    }
}
