//! `hostPerf.cellCache` accounting on resumed runs, end-to-end: a
//! fresh sweep followed by a `--resume` sweep over the same grid must
//! leave the process-global cache counters, the per-worker pool
//! telemetry, and the simulation results all reconciling with each
//! other — even though the resumed sweep's cells take near-zero busy
//! time.
//!
//! This lives in its own integration-test file on purpose: the cache
//! counters and the host-perf collector are process-global statics, so
//! the test needs a process where no other sweep has ever run. Keep it
//! the only `#[test]` here.

use gvf_bench::cli::HarnessOpts;
use gvf_bench::hostperf::host_perf_json;
use gvf_bench::json::Json;
use gvf_bench::sweep::run_cells;
use gvf_core::Strategy;
use gvf_workloads::{run_workload, RunResult, WorkloadConfig, WorkloadKind};

fn opts(cache_dir: &std::path::Path, resume: bool) -> HarnessOpts {
    HarnessOpts {
        cfg: WorkloadConfig::tiny(),
        jobs: 1,
        smoke: true,
        quiet: true,
        json_out: None,
        trace_out: None,
        metrics_out: None,
        attrib_out: None,
        profile_out: None,
        // Enables the cycle-audit probe on every cell, so the test also
        // exercises the audit report travelling through the cache.
        audit_out: Some("unused.audit.json".into()),
        resume,
        no_cache: false,
        cache_dir: Some(cache_dir.to_string_lossy().into_owned()),
        events_out: None,
        stall_factor: gvf_bench::events::DEFAULT_STALL_FACTOR,
        fail_cell: None,
        slow_cell: None,
    }
}

fn num(j: &Json, key: &str) -> u64 {
    j.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("cellCache.{key} missing")) as u64
}

fn sweep(label: &str, opts: &HarnessOpts, cells: &[WorkloadKind]) -> Vec<RunResult> {
    let cache = opts.cell_cache("cacheacct");
    run_cells(label, opts, cells, |i, &k| {
        let cfg = opts.cfg_for_cell(i);
        cache.run(i, &cfg, || run_workload(k, Strategy::Cuda, &cfg))
    })
    .expect_all()
}

#[test]
fn cache_counters_and_pool_timers_reconcile_on_resume() {
    let dir = std::env::temp_dir().join(format!("gvf_cellcache_acct_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cells: Vec<WorkloadKind> = WorkloadKind::EVALUATED.to_vec();
    let n = cells.len() as u64;

    // Fresh sweep: write-only cache — every cell simulates and every
    // cell is persisted.
    let fresh = sweep("fresh", &opts(&dir, false), &cells);
    // Resumed sweep: every cell is served from the cache.
    let resumed = sweep("resumed", &opts(&dir, true), &cells);

    // The resumed run reproduces the fresh run exactly — including the
    // cycle-audit report, which travels *through* the cache.
    assert_eq!(fresh.len(), resumed.len());
    for (i, (a, b)) in fresh.iter().zip(&resumed).enumerate() {
        assert_eq!(a.stats.cycles, b.stats.cycles, "cell {i} cycles");
        assert!(a.audit.is_some(), "cell {i} lost its audit report");
        assert_eq!(a.audit, b.audit, "cell {i} audit");
    }

    // Counter accounting: n simulated (fresh), n cached (resumed), n
    // entries written; cached + simulated covers every cell ever run.
    let total_cycles: u64 = fresh.iter().map(|r| r.stats.cycles).sum();
    let perf = host_perf_json(total_cycles * 2);
    let cc = perf.get("cellCache").expect("hostPerf.cellCache");
    assert_eq!(num(cc, "simulatedCells"), n);
    assert_eq!(num(cc, "cachedCells"), n);
    assert_eq!(num(cc, "entriesWritten"), n);

    // Pool-telemetry accounting: both sweeps recorded, each crediting
    // every cell to exactly one worker, with non-negative idle time
    // (busy + queue-wait never exceeds the pool's wall clock) — the
    // resumed sweep included, where busy time is near zero.
    let snap = gvf_sim::hostperf::snapshot();
    assert_eq!(snap.sweeps.len(), 2, "one telemetry record per sweep");
    for s in &snap.sweeps {
        assert_eq!(s.cells, n, "sweep {} cell count", s.label);
        let credited: u64 = s.pool.workers.iter().map(|w| w.cells).sum();
        assert_eq!(credited, n, "sweep {} worker cell credit", s.label);
        for w in &s.pool.workers {
            assert!(
                w.busy_ns + w.queue_wait_ns <= s.pool.wall_ns,
                "sweep {}: worker busy {} + wait {} exceeds wall {}",
                s.label,
                w.busy_ns,
                w.queue_wait_ns,
                s.pool.wall_ns
            );
        }
    }
    // cachedCells + simulatedCells must equal the telemetry's total.
    let telemetry_cells: u64 = snap.sweeps.iter().map(|s| s.cells).sum();
    assert_eq!(
        num(cc, "cachedCells") + num(cc, "simulatedCells"),
        telemetry_cells
    );

    let _ = std::fs::remove_dir_all(&dir);
}
