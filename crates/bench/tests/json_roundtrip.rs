//! Property tests for the dependency-free JSON writer/parser: any
//! document built from the [`Json`] constructors renders to text that
//! parses back to an equal tree (on the in-repo `gvf-prop` harness).

use gvf_bench::json::Json;
use gvf_prop::{props, Rng};

/// An arbitrary JSON tree of bounded depth. Strings exercise the escape
/// paths (quotes, backslashes, control characters, non-ASCII).
fn arb_json(rng: &mut Rng, depth: usize) -> Json {
    let top = if depth == 0 { 4 } else { 6 };
    match rng.range_usize(0, top) {
        0 => Json::Null,
        1 => Json::Bool(rng.range_u64(0, 2) == 1),
        2 => {
            // Integers in the exactly-representable window plus a few
            // fractional values; render() must round-trip both.
            if rng.range_u64(0, 2) == 0 {
                Json::num_u64(rng.range_u64(0, 1 << 50))
            } else {
                Json::Num(rng.range_u64(0, 1 << 20) as f64 / 64.0)
            }
        }
        3 => Json::Str(arb_string(rng)),
        4 => {
            let n = rng.range_usize(0, 5);
            Json::Arr((0..n).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.range_usize(0, 5);
            let mut obj = Json::obj();
            for i in 0..n {
                obj.set(
                    &format!("k{i}_{}", arb_string(rng)),
                    arb_json(rng, depth - 1),
                );
            }
            obj
        }
    }
}

fn arb_string(rng: &mut Rng) -> String {
    let palette = [
        'a', 'Z', '"', '\\', '\n', '\t', '\u{1}', 'é', '€', '𝄞', ' ', '/',
    ];
    let n = rng.range_usize(0, 12);
    (0..n)
        .map(|_| palette[rng.range_usize(0, palette.len())])
        .collect()
}

#[test]
fn render_parse_round_trip() {
    props!(128, |rng| {
        let doc = arb_json(rng, 3);
        let text = doc.render();
        let back = Json::parse(&text).expect("rendered JSON must parse");
        assert_eq!(back, doc, "round-trip mismatch for: {text}");
        // Idempotence: render(parse(render(x))) == render(x).
        assert_eq!(back.render(), text);
    });
}

#[test]
fn escapes_survive_round_trip() {
    props!(64, |rng| {
        let s = arb_string(rng);
        let doc = Json::Str(s.clone());
        let back = Json::parse(&doc.render()).expect("escaped string must parse");
        assert_eq!(back, doc, "string {s:?} did not survive");
    });
}
