//! The report must degrade, not die: a results directory holding a
//! valid manifest next to empty, torn, and missing sibling artifacts
//! still collates (exit 0), and each affected section carries an
//! explicit "artifact absent" note naming the bad file — evidence is
//! never silently dropped.

use gvf_bench::json::Json;
use gvf_bench::schemas;
use std::path::PathBuf;
use std::process::Command;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gvf-report-resilience-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_manifest() -> String {
    schemas::RUN_MANIFEST
        .header()
        .with("generator", Json::str("fig7"))
        .with(
            "config",
            Json::obj()
                .with("scale", Json::num_u64(2))
                .with("iterations", Json::num_u64(1))
                .with("seed", Json::num_u64(7))
                .with("smoke", Json::Bool(true)),
        )
        .with(
            "cells",
            Json::Arr(vec![Json::obj()
                .with("workload", Json::str("bank"))
                .with("strategy", Json::str("vtable"))
                .with(
                    "stats",
                    Json::obj()
                        .with("cycles", Json::num_u64(1000))
                        .with("l1_hits", Json::num_u64(10)),
                )
                .with("derived", Json::obj().with("ipc", Json::Num(0.5)))]),
        )
        .with(
            "hostPerf",
            schemas::HOSTPERF
                .header()
                .with("wall_s", Json::Num(0.5))
                .with(
                    "throughput",
                    Json::obj().with("sim_cycles_per_sec", Json::Num(2000.0)),
                ),
        )
        .render()
}

#[test]
fn report_survives_missing_empty_and_torn_artifacts() {
    let dir = scratch_dir("torn");
    std::fs::write(dir.join("fig7.json"), tiny_manifest()).unwrap();
    // Empty attribution, torn (truncated mid-string) audit, an events
    // stream cut mid-line, and NO profile at all.
    std::fs::write(dir.join("fig7.attrib.json"), "").unwrap();
    std::fs::write(dir.join("fig7.audit.json"), "{\"schema\": \"gvf.cycleau").unwrap();
    std::fs::write(dir.join("fig7.events.jsonl"), "{\"schema\": \"gvf.events\"").unwrap();

    let out = dir.join("REPORT.md");
    let status = Command::new(env!("CARGO_BIN_EXE_report"))
        .args([
            "--results",
            dir.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--quiet",
        ])
        .status()
        .expect("spawn report");
    assert!(
        status.success(),
        "report must collate what it can, not die on torn artifacts"
    );

    let md = std::fs::read_to_string(&out).expect("REPORT.md written");
    // The good manifest rendered.
    assert!(md.contains("Figure 7"), "valid manifest must render");
    // Each broken family is called out in its own section, naming the
    // file.
    assert!(
        md.contains("attribution artifact absent") && md.contains("fig7.attrib.json"),
        "empty attribution must be an explicit note"
    );
    assert!(
        md.contains("cycle-audit artifact absent") && md.contains("fig7.audit.json"),
        "torn audit must be an explicit note"
    );
    assert!(
        md.contains("events artifact absent") && md.contains("fig7.events.jsonl"),
        "torn events stream must be an explicit note"
    );
    // The missing profile degrades to the section's standing hint, not
    // an error.
    assert!(md.contains("No host profiles found"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_tree_reports_no_absent_notes() {
    let dir = scratch_dir("clean");
    std::fs::write(dir.join("fig7.json"), tiny_manifest()).unwrap();
    let out = dir.join("REPORT.md");
    let status = Command::new(env!("CARGO_BIN_EXE_report"))
        .args([
            "--results",
            dir.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--quiet",
        ])
        .status()
        .expect("spawn report");
    assert!(status.success());
    let md = std::fs::read_to_string(&out).unwrap();
    assert!(
        !md.contains("artifact absent"),
        "a clean tree must not fabricate absence notes"
    );
    // With no rundiff artifacts the baseline section points at the
    // tooling instead.
    assert!(md.contains("What changed since the baseline"));
    assert!(md.contains("No run-comparison artifacts found"));
    let _ = std::fs::remove_dir_all(&dir);
}
