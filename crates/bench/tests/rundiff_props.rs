//! Property tests for the run-comparison engine (`gvf_bench::rundiff`)
//! on the in-repo `gvf-prop` harness, pinning the acceptance contract
//! over generated trees rather than one hand-picked example:
//!
//! - **A/A**: diffing any tree against itself is semantically and
//!   coverage-clean, and the rendered `gvf.rundiff` artifact is
//!   byte-identical no matter what wall-clock numbers the tree's
//!   `hostPerf` sections carry (the `--jobs`-independence CI enforces
//!   on real runs);
//! - a mutated `Stats` counter in any cell is flagged as semantic
//!   drift with its exact counter path;
//! - a large injected slowdown on any span is the top-ranked span
//!   mover and names the run in the summary's top causes;
//! - dropping or failing cells on one side is coverage drift with the
//!   right added/removed split;
//! - every document the engine emits passes its own validator
//!   ([`gvf_bench::rundiff::check_doc`]).

use gvf_bench::json::Json;
use gvf_bench::rundiff::{check_doc, diff_trees, RunArtifacts, RunTree};
use gvf_bench::schemas;
use gvf_prop::{props, Rng};

const WORKLOADS: [&str; 4] = ["bank", "nbody", "shapes", "rays"];
const STRATEGIES: [&str; 3] = ["vtable", "typeptr", "sorted"];

/// One generated grid cell: coordinates plus a couple of `Stats`
/// counters and a derived measure, mirroring the real manifest shape.
#[derive(Clone)]
struct CellSpec {
    workload: &'static str,
    strategy: &'static str,
    cycles: u64,
    l1_hits: u64,
}

fn arb_cells(rng: &mut Rng) -> Vec<CellSpec> {
    // Distinct (workload, strategy) coordinates so pairing is exact.
    let mut coords: Vec<(&str, &str)> = Vec::new();
    for w in WORKLOADS {
        for s in STRATEGIES {
            coords.push((w, s));
        }
    }
    let n = rng.range_usize(1, 7);
    (0..n)
        .map(|i| {
            let (workload, strategy) = coords[i];
            CellSpec {
                workload,
                strategy,
                cycles: rng.range_u64(1, 1 << 30),
                l1_hits: rng.range_u64(0, 1 << 20),
            }
        })
        .collect()
}

fn cell_json(c: &CellSpec) -> Json {
    Json::obj()
        .with("workload", Json::str(c.workload))
        .with("strategy", Json::str(c.strategy))
        .with(
            "stats",
            Json::obj()
                .with("cycles", Json::num_u64(c.cycles))
                .with("l1_hits", Json::num_u64(c.l1_hits)),
        )
        .with(
            "derived",
            Json::obj().with("ipc", Json::Num(c.cycles as f64 / 1e9)),
        )
}

/// A manifest over `cells` with the given wall clock — the wall feeds
/// only `hostPerf`, which the A/A property asserts never leaks into
/// the rendered diff.
fn manifest(generator: &str, cells: &[CellSpec], wall_s: f64) -> Json {
    schemas::RUN_MANIFEST
        .header()
        .with("generator", Json::str(generator))
        .with(
            "config",
            Json::obj()
                .with("scale", Json::num_u64(4))
                .with("configFingerprint", Json::str("feedfacecafebeef")),
        )
        .with("cells", Json::Arr(cells.iter().map(cell_json).collect()))
        .with(
            "hostPerf",
            Json::obj().with("wall_s", Json::Num(wall_s)).with(
                "throughput",
                Json::obj().with("sim_cycles_per_sec", Json::Num(1e9 / wall_s)),
            ),
        )
}

fn profile(spans: &[(&str, u64)]) -> Json {
    schemas::HOSTPROFILE
        .header()
        .with(
            "spans",
            Json::Arr(
                spans
                    .iter()
                    .map(|(path, excl)| {
                        Json::obj()
                            .with("path", Json::str(*path))
                            .with("count", Json::num_u64(1))
                            .with("totalNs", Json::num_u64(*excl))
                            .with("exclusiveNs", Json::num_u64(*excl))
                    })
                    .collect(),
            ),
        )
        .with("collapsedStacks", Json::str(""))
}

fn run(generator: &str, manifest: Json, profile: Option<Json>) -> RunArtifacts {
    RunArtifacts {
        generator: generator.to_string(),
        manifest,
        attribution: None,
        audit: None,
        profile,
        events: None,
    }
}

fn tree(runs: Vec<RunArtifacts>) -> RunTree {
    RunTree { runs }
}

fn summary_flag(doc: &Json, key: &str) -> bool {
    doc.get("summary")
        .and_then(|s| s.get(key))
        .and_then(Json::as_bool)
        .unwrap_or(false)
}

#[test]
fn aa_self_diff_is_clean_and_wall_clock_independent() {
    props!(64, |rng| {
        let gens = ["fig7", "fig8", "table1"];
        let n_runs = rng.range_usize(1, 4);
        let specs: Vec<(&str, Vec<CellSpec>)> =
            (0..n_runs).map(|i| (gens[i], arb_cells(rng))).collect();
        let build = |wall_mult: f64| {
            tree(
                specs
                    .iter()
                    .map(|(g, cells)| run(g, manifest(g, cells, 2.0 * wall_mult), None))
                    .collect(),
            )
        };
        let a = build(1.0);
        // The same simulated results at a very different wall clock, as
        // a different --jobs setting would produce.
        let b = build(1.0 + rng.f64() * 7.0);
        let aa = diff_trees(&a, &a);
        let bb = diff_trees(&b, &b);
        assert_eq!(
            aa.render(),
            bb.render(),
            "A/A artifact must be independent of the tree's wall clock"
        );
        assert!(summary_flag(&aa, "semanticClean"));
        assert!(summary_flag(&aa, "coverageClean"));
        check_doc(&aa).expect("self-diff validates");
    });
}

#[test]
fn any_mutated_counter_is_semantic_drift_with_its_exact_path() {
    props!(64, |rng| {
        let cells = arb_cells(rng);
        let idx = rng.range_usize(0, cells.len());
        let mut mutated = cells.clone();
        // Flip one of the two counters in one cell.
        let field = if rng.bool(0.5) {
            mutated[idx].l1_hits = mutated[idx].l1_hits.wrapping_add(1);
            "l1_hits"
        } else {
            mutated[idx].cycles += 1;
            "cycles"
        };
        let a = tree(vec![run("fig7", manifest("fig7", &cells, 2.0), None)]);
        let b = tree(vec![run("fig7", manifest("fig7", &mutated, 2.0), None)]);
        let doc = diff_trees(&a, &b);
        assert!(!summary_flag(&doc, "semanticClean"));
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        let diffs = runs[0]
            .get("semantic")
            .and_then(|s| s.get("statsDiffs"))
            .and_then(Json::as_arr)
            .unwrap();
        let want = format!("cells[{idx}].stats.{field}");
        assert!(
            diffs
                .iter()
                .any(|d| d.get("path").and_then(Json::as_str) == Some(&want)),
            "statsDiffs must name {want}"
        );
        // The derived ipc moved with cycles; nothing else did.
        for d in diffs {
            let path = d.get("path").and_then(Json::as_str).unwrap();
            assert!(
                path.starts_with(&format!("cells[{idx}].")),
                "only the mutated cell may drift, got {path}"
            );
        }
        check_doc(&doc).expect("semantic drift doc validates");
    });
}

#[test]
fn injected_slowdown_tops_the_span_movers_and_causes() {
    props!(64, |rng| {
        let spans = [
            "pool.cell",
            "pool.cell;engine.execute",
            "pool.cell;sweep.slow_cell_injection",
            "report.render",
        ];
        let base: Vec<(&str, u64)> = spans
            .iter()
            .map(|p| (*p, rng.range_u64(1_000_000, 50_000_000)))
            .collect();
        let slow_idx = rng.range_usize(0, spans.len());
        let current: Vec<(&str, u64)> = base
            .iter()
            .enumerate()
            .map(|(i, (p, ns))| (*p, if i == slow_idx { ns * 10 } else { *ns }))
            .collect();
        let cells = arb_cells(rng);
        let a = tree(vec![run(
            "fig7",
            manifest("fig7", &cells, 2.0),
            Some(profile(&base)),
        )]);
        let b = tree(vec![run(
            "fig7",
            manifest("fig7", &cells, 9.0),
            Some(profile(&current)),
        )]);
        let doc = diff_trees(&a, &b);
        // Pure wall-clock movement: still semantically clean.
        assert!(summary_flag(&doc, "semanticClean"));
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        let movers = runs[0]
            .get("performance")
            .and_then(|p| p.get("spanMovers"))
            .and_then(Json::as_arr)
            .unwrap();
        let top = movers[0].get("path").and_then(Json::as_str).unwrap();
        assert_eq!(top, spans[slow_idx], "top mover must be the slowed span");
        let causes = doc
            .get("summary")
            .and_then(|s| s.get("topCauses"))
            .and_then(Json::as_arr)
            .unwrap();
        let lead = causes[0].as_str().unwrap();
        assert!(
            lead.contains(spans[slow_idx]) && lead.contains("fig7"),
            "top cause must name run and span, got {lead:?}"
        );
        check_doc(&doc).expect("performance drift doc validates");
    });
}

#[test]
fn dropped_cells_are_coverage_drift() {
    props!(64, |rng| {
        let cells = loop {
            let c = arb_cells(rng);
            if c.len() >= 2 {
                break c;
            }
        };
        let keep = rng.range_usize(0, cells.len());
        let kept: Vec<CellSpec> = cells
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != keep)
            .map(|(_, c)| c.clone())
            .collect();
        let a = tree(vec![run("fig7", manifest("fig7", &cells, 2.0), None)]);
        let b = tree(vec![run("fig7", manifest("fig7", &kept, 2.0), None)]);
        let doc = diff_trees(&a, &b);
        assert!(!summary_flag(&doc, "coverageClean"));
        // The drop is pure coverage: the surviving cells still agree.
        assert!(summary_flag(&doc, "semanticClean"));
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        let cov = runs[0].get("coverage").unwrap();
        let arr_len = |k: &str| cov.get(k).and_then(Json::as_arr).map(<[_]>::len);
        assert_eq!(arr_len("removedCells"), Some(1), "one cell removed");
        assert_eq!(arr_len("addedCells"), Some(0));
        // The reverse diff sees the same cell as added.
        let rev = diff_trees(&b, &a);
        let rruns = rev.get("runs").and_then(Json::as_arr).unwrap();
        let rcov = rruns[0].get("coverage").unwrap();
        assert_eq!(
            rcov.get("addedCells")
                .and_then(Json::as_arr)
                .map(<[_]>::len),
            Some(1)
        );
        check_doc(&doc).expect("coverage drift doc validates");
        check_doc(&rev).expect("reverse coverage drift doc validates");
    });
}
