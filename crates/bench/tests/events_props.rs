//! Property tests for the `gvf.events` v1 telemetry schema: generated
//! well-formed streams must render compactly (one line per event),
//! survive the render → parse round trip, and pass
//! [`gvf_bench::events::validate_stream`] with a roll-up matching the
//! generation plan; corrupted streams (lifecycle violations) must be
//! rejected; and [`gvf_bench::events::reconcile`] must accept exactly
//! the manifests whose cell outcomes mirror the stream. Runs on the
//! in-repo `gvf-prop` harness.

use gvf_bench::events::{
    parse_stream, reconcile, validate_stream, EVENTS_SCHEMA, EVENTS_SCHEMA_VERSION,
};
use gvf_bench::json::Json;
use gvf_prop::{props, Rng};

/// What the generator decided each cell's fate is.
#[derive(Clone, Copy, PartialEq)]
enum Fate {
    Simulated,
    Cached,
    Failed,
}

struct Plan {
    cells: Vec<Fate>,
    jobs: usize,
}

fn arb_plan(rng: &mut Rng) -> Plan {
    let n = rng.range_usize(1, 12);
    let cells = (0..n)
        .map(|_| match rng.range_usize(0, 10) {
            0..=5 => Fate::Simulated,
            6..=7 => Fate::Cached,
            _ => Fate::Failed,
        })
        .collect();
    Plan {
        cells,
        jobs: rng.range_usize(1, 5),
    }
}

/// A well-formed single-sweep stream following `plan`: header, sweep
/// lifecycle, every cell scheduled then started then exactly one
/// terminal, one shared monotonic clock (so per-worker timestamps are
/// non-decreasing by construction), closing sweepEnd + runEnd.
fn arb_stream(rng: &mut Rng, plan: &Plan) -> Vec<Json> {
    let mut t: u64 = rng.range_u64(0, 50);
    let mut tick = |rng: &mut Rng| {
        t += rng.range_u64(0, 5);
        t
    };
    let mut stream = vec![Json::obj()
        .with("schema", Json::str(EVENTS_SCHEMA))
        .with("version", Json::num_u64(EVENTS_SCHEMA_VERSION as u64))
        .with("ev", Json::str("runStart"))
        .with("tMs", Json::num_u64(tick(rng)))
        .with("bin", Json::str("figX"))
        .with("configFingerprint", Json::str("cafebabe00000000"))
        .with("jobs", Json::num_u64(plan.jobs as u64))
        .with("smoke", Json::Bool(true))
        .with("stallFactor", Json::Num(8.0))];
    let n = plan.cells.len();
    let base = |ev: &str, t: u64| {
        Json::obj()
            .with("ev", Json::str(ev))
            .with("tMs", Json::num_u64(t))
            .with("sweep", Json::str("sweepA"))
    };
    stream.push(
        base("sweepStart", tick(rng))
            .with("cells", Json::num_u64(n as u64))
            .with("jobs", Json::num_u64(plan.jobs as u64)),
    );
    let t_sched = tick(rng);
    for cell in 0..n {
        stream.push(base("cellScheduled", t_sched).with("cell", Json::num_u64(cell as u64)));
    }
    // Random completion order, cells started and terminated back to
    // back — a legal serialization of any concurrent schedule.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.range_usize(0, i + 1));
    }
    for &cell in &order {
        let worker = rng.range_u64(0, plan.jobs as u64);
        stream.push(
            base("cellStarted", tick(rng))
                .with("cell", Json::num_u64(cell as u64))
                .with("worker", Json::num_u64(worker)),
        );
        let terminal = match plan.cells[cell] {
            Fate::Simulated => base("cellFinished", tick(rng)),
            Fate::Cached => base("cellCacheHit", tick(rng)).with("key", Json::str("deadbeef")),
            Fate::Failed => base("cellFailed", tick(rng)).with("panic", Json::str("boom")),
        };
        stream.push(
            terminal
                .with("cell", Json::num_u64(cell as u64))
                .with("worker", Json::num_u64(worker))
                .with("durationMs", Json::num_u64(rng.range_u64(0, 100)))
                .with("queueWaitMs", Json::num_u64(rng.range_u64(0, 10))),
        );
    }
    let count = |fate: Fate| plan.cells.iter().filter(|f| **f == fate).count() as u64;
    let t_end = tick(rng);
    stream.push(
        base("sweepEnd", t_end)
            .with("cells", Json::num_u64(n as u64))
            .with("finished", Json::num_u64(count(Fate::Simulated)))
            .with("cached", Json::num_u64(count(Fate::Cached)))
            .with("failed", Json::num_u64(count(Fate::Failed)))
            .with("wallMs", Json::num_u64(t_end)),
    );
    stream.push(
        Json::obj()
            .with("ev", Json::str("runEnd"))
            .with("tMs", Json::num_u64(tick(rng)))
            .with(
                "status",
                Json::str(if count(Fate::Failed) > 0 {
                    "failed"
                } else {
                    "ok"
                }),
            ),
    );
    stream
}

/// Object with `key` replaced. ([`Json::set`] appends a member, and
/// [`Json::get`] reads the first one — an appended duplicate would be
/// invisible to the validator, making the mutation a no-op.)
fn replace(obj: &Json, key: &str, value: Json) -> Json {
    let Json::Obj(members) = obj else {
        panic!("replace on a non-object");
    };
    assert!(obj.get(key).is_some(), "no member {key:?} to replace");
    Json::Obj(
        members
            .iter()
            .map(|(k, v)| {
                let v = if k == key { &value } else { v };
                (k.clone(), v.clone())
            })
            .collect(),
    )
}

/// The JSONL text a writer would produce for `stream`.
fn render_jsonl(stream: &[Json]) -> String {
    let mut text = String::new();
    for e in stream {
        text.push_str(&e.render_compact());
        text.push('\n');
    }
    text
}

/// A manifest whose cells mirror `plan` (ok entries for simulated and
/// cached cells, failed entries for failed ones) with a matching
/// `hostPerf.cellCache` counter block.
fn manifest_for(plan: &Plan) -> Json {
    let cells: Vec<Json> = plan
        .cells
        .iter()
        .enumerate()
        .map(|(i, fate)| {
            let rec = Json::obj().with("index", Json::num_u64(i as u64));
            match fate {
                Fate::Failed => rec
                    .with("status", Json::str("failed"))
                    .with("panic", Json::str("boom")),
                _ => rec.with("status", Json::str("ok")),
            }
        })
        .collect();
    let cached = plan.cells.iter().filter(|f| **f == Fate::Cached).count() as u64;
    Json::obj()
        .with("schema", Json::str(gvf_bench::manifest::MANIFEST_SCHEMA))
        .with("version", Json::num_u64(2))
        .with("cells", Json::Arr(cells))
        .with(
            "hostPerf",
            Json::obj().with(
                "cellCache",
                Json::obj().with("cachedCells", Json::num_u64(cached)),
            ),
        )
}

/// Well-formed streams: every line is single-line compact JSON that
/// round-trips, the stream validates, and the roll-up matches the plan.
#[test]
fn generated_streams_validate_and_roll_up() {
    props!(96, |rng| {
        let plan = arb_plan(rng);
        let stream = arb_stream(rng, &plan);
        let text = render_jsonl(&stream);
        for (line, e) in text.lines().zip(&stream) {
            assert!(!line.contains('\n'));
            assert_eq!(&Json::parse(line).expect("line parses"), e);
        }
        let parsed = parse_stream(&text).expect("stream parses");
        assert_eq!(parsed.len(), stream.len());
        let summary = validate_stream(&parsed).expect("stream validates");
        assert_eq!(summary.bin, "figX");
        assert_eq!(summary.jobs, plan.jobs as u64);
        assert_eq!(summary.sweeps.len(), 1);
        let sweep = &summary.sweeps[0];
        assert_eq!(sweep.total, plan.cells.len());
        assert!(sweep.ended);
        assert!(sweep.in_flight.is_empty());
        let count = |fate: Fate| plan.cells.iter().filter(|f| **f == fate).count();
        assert_eq!(sweep.finished.len(), count(Fate::Simulated));
        assert_eq!(sweep.cached.len(), count(Fate::Cached));
        assert_eq!(sweep.failed.len(), count(Fate::Failed));
        // Exactly-once: every cell has exactly one terminal event.
        let mut all: Vec<usize> = sweep
            .finished
            .iter()
            .chain(&sweep.cached)
            .chain(&sweep.failed)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..plan.cells.len()).collect::<Vec<_>>());
        let failed = count(Fate::Failed) > 0;
        assert_eq!(
            summary.run_status.as_deref(),
            Some(if failed { "failed" } else { "ok" })
        );
    });
}

/// Lifecycle violations are rejected: a corrupted copy of a valid
/// stream must fail validation (each mutation breaks one invariant).
#[test]
fn corrupted_streams_are_rejected() {
    props!(96, |rng| {
        let plan = arb_plan(rng);
        let stream = arb_stream(rng, &plan);
        let mut bad = stream.clone();
        let n = plan.cells.len();
        match rng.range_usize(0, 5) {
            0 => {
                // Header gone: first event must be the runStart.
                bad.remove(0);
            }
            1 => {
                // A scheduled cell vanishes before the first start.
                bad.remove(2 + rng.range_usize(0, n));
            }
            2 => {
                // Duplicate terminal for the first terminated cell.
                let dup = bad[3 + n].clone();
                bad.insert(4 + n, dup);
            }
            3 => {
                // A worker's clock jumps backwards on a terminal.
                bad[3 + n] = replace(&bad[3 + n], "tMs", Json::num_u64(0));
                // Guard: only a violation if its start was later.
                let started = bad[2 + n].get("tMs").and_then(Json::as_num).unwrap_or(0.0);
                if started == 0.0 {
                    bad[2 + n] = replace(&bad[2 + n], "tMs", Json::num_u64(1));
                }
            }
            _ => {
                // sweepEnd lies about the failure count.
                let end = bad.len() - 2;
                let failed = bad[end].get("failed").and_then(Json::as_num).unwrap_or(0.0);
                bad[end] = replace(&bad[end], "failed", Json::num_u64(failed as u64 + 1));
            }
        }
        assert!(
            validate_stream(&bad).is_err(),
            "corruption went undetected (n = {n})"
        );
    });
}

/// Reconciliation: the matching manifest is accepted; a manifest whose
/// failed set or cache counter disagrees is rejected.
#[test]
fn reconcile_accepts_matching_manifests_only() {
    props!(96, |rng| {
        let plan = arb_plan(rng);
        let stream = arb_stream(rng, &plan);
        let summary = validate_stream(&stream).expect("stream validates");
        let manifest = manifest_for(&plan);
        reconcile(&summary, &manifest).expect("matching manifest reconciles");

        // Flip one cell's status: the failed sets now disagree (or the
        // green manifest gains a failure the stream never saw).
        let flip = rng.range_usize(0, plan.cells.len());
        let mut cells: Vec<Json> = manifest
            .get("cells")
            .and_then(Json::as_arr)
            .unwrap()
            .to_vec();
        let flipped = if plan.cells[flip] == Fate::Failed {
            Json::obj()
                .with("index", Json::num_u64(flip as u64))
                .with("status", Json::str("ok"))
        } else {
            Json::obj()
                .with("index", Json::num_u64(flip as u64))
                .with("status", Json::str("failed"))
                .with("panic", Json::str("boom"))
        };
        cells[flip] = flipped;
        let tampered = replace(&manifest, "cells", Json::Arr(cells));
        assert!(
            reconcile(&summary, &tampered).is_err(),
            "flipped cell {flip} went unnoticed"
        );

        // Cache counter off by one: caught whenever the section exists.
        let cached = plan.cells.iter().filter(|f| **f == Fate::Cached).count() as u64;
        let skewed = replace(
            &manifest,
            "hostPerf",
            Json::obj().with(
                "cellCache",
                Json::obj().with("cachedCells", Json::num_u64(cached + 1)),
            ),
        );
        assert!(reconcile(&summary, &skewed).is_err());
    });
}
