//! # gvf-prop — zero-dependency property testing for the gvf workspace
//!
//! A small, deterministic stand-in for `proptest`. The workspace must
//! build from a cold checkout with **no registry access** (offline CI,
//! air-gapped machines), so randomized tests run on this in-repo harness
//! instead of an external crate.
//!
//! The moving parts:
//!
//! - [`Rng`] — a SplitMix64 generator: tiny, fast, and with a fixed,
//!   documented stream so failures reproduce across machines;
//! - [`Gen`] — a generator is any `Fn(&mut Rng) -> T` closure; the
//!   combinators in [`gen`] build vectors, ranges and mapped values the
//!   way `proptest::strategy` does;
//! - [`run`] / [`props!`] — drive a property over N generated cases and
//!   panic with the seed and case index on the first failure, so a
//!   failing case can be replayed exactly.
//!
//! ```
//! use gvf_prop::{gen, props};
//!
//! props!(64, |rng| {
//!     let xs = gen::vec(gen::range_u64(0, 100), 1..20)(rng);
//!     let sum: u64 = xs.iter().sum();
//!     assert!(sum <= 100 * xs.len() as u64);
//! });
//! ```

#![warn(missing_docs)]

/// Default number of cases run by [`props!`] when not specified.
pub const DEFAULT_CASES: u32 = 48;

/// The base seed of every property run. Change it locally to explore a
/// different slice of the input space; CI keeps it fixed so failures
/// reproduce.
pub const BASE_SEED: u64 = 0x5eed_cafe_f00d_0001;

/// A SplitMix64 pseudo-random generator.
///
/// Deterministic, seedable, and `Copy`-cheap. Not cryptographic — it
/// only has to cover input spaces well.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping: bias is < 2^-64 per
        // draw, irrelevant for test-case generation.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)` as `usize`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0, xs.len())]
    }
}

/// Generator combinators mirroring the `proptest` strategies the
/// workspace uses: ranges, collections, and mapped values.
pub mod gen {
    use super::Rng;
    use std::ops::Range;

    /// Uniform `u64` in `range`.
    pub fn range_u64(lo: u64, hi: u64) -> impl Fn(&mut Rng) -> u64 {
        move |rng| rng.range_u64(lo, hi)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(lo: u32, hi: u32) -> impl Fn(&mut Rng) -> u32 {
        move |rng| rng.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `u16` in `[lo, hi)`.
    pub fn range_u16(lo: u16, hi: u16) -> impl Fn(&mut Rng) -> u16 {
        move |rng| rng.range_u64(lo as u64, hi as u64) as u16
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(lo: usize, hi: usize) -> impl Fn(&mut Rng) -> usize {
        move |rng| rng.range_usize(lo, hi)
    }

    /// Arbitrary `u64` (full domain).
    pub fn any_u64() -> impl Fn(&mut Rng) -> u64 {
        |rng| rng.next_u64()
    }

    /// Arbitrary `u8`.
    pub fn any_u8() -> impl Fn(&mut Rng) -> u8 {
        |rng| rng.next_u64() as u8
    }

    /// A vector of `inner`-generated values with length drawn from
    /// `len` (half-open, like `proptest::collection::vec`).
    pub fn vec<T>(inner: impl Fn(&mut Rng) -> T, len: Range<usize>) -> impl Fn(&mut Rng) -> Vec<T> {
        move |rng| {
            let n = rng.range_usize(len.start, len.end);
            (0..n).map(|_| inner(rng)).collect()
        }
    }

    /// Maps a generator's output (like `Strategy::prop_map`).
    pub fn map<A, B>(inner: impl Fn(&mut Rng) -> A, f: impl Fn(A) -> B) -> impl Fn(&mut Rng) -> B {
        move |rng| f(inner(rng))
    }

    /// Picks uniformly from a fixed list (like `prop_oneof!` over
    /// `Just` values).
    pub fn one_of<T: Clone>(choices: Vec<T>) -> impl Fn(&mut Rng) -> T {
        move |rng| rng.pick(&choices).clone()
    }
}

/// Runs `prop` over `cases` generated inputs. On panic, re-raises with
/// the case index and RNG seed so the failure replays exactly: seed the
/// RNG with `BASE_SEED + case` and call the property once.
pub fn run(cases: u32, mut prop: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = BASE_SEED.wrapping_add(case as u64);
        let mut rng = Rng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            prop(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "gvf-prop: property failed at case {case}/{cases} \
                 (rng seed {seed:#x}); replay with Rng::new({seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// `props!(N, |rng| { ... })` — run the closure over `N` deterministic
/// cases; `props!(|rng| { ... })` uses [`DEFAULT_CASES`].
#[macro_export]
macro_rules! props {
    ($cases:expr, $prop:expr) => {
        $crate::run($cases, $prop)
    };
    ($prop:expr) => {
        $crate::run($crate::DEFAULT_CASES, $prop)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_in_bounds() {
        let mut r = Rng::new(2);
        let g = gen::vec(gen::range_u64(0, 5), 1..4);
        for _ in 0..1000 {
            let v = g(&mut r);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn props_runs_all_cases() {
        let mut hits = 0u32;
        run(16, |_| hits += 1);
        assert_eq!(hits, 16);
    }

    #[test]
    #[should_panic]
    fn props_propagates_failure() {
        run(4, |rng| {
            assert!(rng.range_u64(0, 10) < 100, "always true");
            panic!("expected");
        });
    }
}
