//! Property tests for the memory substrate (on the in-repo `gvf-prop`
//! harness; the workspace builds offline with no registry access).

use gvf_mem::{DeviceMemory, MmuMode, PageTable, VirtAddr, MAX_TAG, PAGE_SIZE, VA_MASK};
use gvf_prop::{gen, props};

/// Any canonical address + tag survives a with_tag/strip_tag trip.
#[test]
fn tag_roundtrip() {
    props!(64, |rng| {
        let addr = rng.range_u64(0, VA_MASK + 1);
        let tag = rng.range_u64(0, MAX_TAG as u64 + 1) as u16;
        let a = VirtAddr::new(addr);
        let t = a.with_tag(tag);
        assert_eq!(t.tag(), tag);
        assert_eq!(t.canonical(), addr);
        assert_eq!(t.strip_tag(), a);
    });
}

/// Writes followed by reads return the data, for any offset/length
/// (including page-straddling accesses).
#[test]
fn write_read_roundtrip() {
    props!(64, |rng| {
        let offset = rng.range_u64(0, 3 * PAGE_SIZE);
        let data = gen::vec(gen::any_u8(), 1..256)(rng);
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        let base = mem.reserve(4 * PAGE_SIZE, 8);
        let at = base.offset(offset);
        mem.write_bytes(at, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(at, &mut back).unwrap();
        assert_eq!(back, data);
    });
}

/// Disjoint writes do not interfere.
#[test]
fn disjoint_writes_independent() {
    props!(64, |rng| {
        let a = rng.range_u64(0, 1000);
        let b = rng.range_u64(2000, 3000);
        let va = rng.next_u64();
        let vb = rng.next_u64();
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        let base = mem.reserve(PAGE_SIZE, 8);
        mem.write_u64(base.offset(a), va).unwrap();
        mem.write_u64(base.offset(b), vb).unwrap();
        assert_eq!(mem.read_u64(base.offset(a)).unwrap(), va);
        assert_eq!(mem.read_u64(base.offset(b)).unwrap(), vb);
    });
}

/// The MMU in ignore-tag mode translates any tagged alias of a mapped
/// address to the same frame.
#[test]
fn ignore_mode_aliases() {
    props!(64, |rng| {
        let addr = rng.range_u64(PAGE_SIZE, 1u64 << 30);
        let tag = rng.range_u64(1, MAX_TAG as u64 + 1) as u16;
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        mem.mmu_mut().set_mode(MmuMode::IgnoreTagBits);
        let p = VirtAddr::new(addr);
        mem.write_u32(p, 0xabcd).unwrap();
        assert_eq!(mem.read_u32(p.with_tag(tag)).unwrap(), 0xabcd);
    });
}

/// Page-table translation preserves page offsets and is stable.
#[test]
fn translation_preserves_offset() {
    props!(64, |rng| {
        let vpn = rng.range_u64(0, 4096);
        let off = rng.range_u64(0, PAGE_SIZE);
        let mut pt = PageTable::new(64 << 20);
        let va = VirtAddr::new(vpn * PAGE_SIZE + off);
        let pa1 = pt.map_page(va).unwrap();
        let pa2 = pt.translate(va).unwrap();
        assert_eq!(pa1, pa2);
        assert_eq!(pa1.page_offset(), off);
    });
}

/// Reserve never hands out overlapping ranges.
#[test]
fn reserve_never_overlaps() {
    props!(64, |rng| {
        let sizes = gen::vec(gen::range_u64(1, 10_000), 2..20)(rng);
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        let mut prev_end = 0u64;
        for s in sizes {
            let base = mem.reserve(s, 16);
            assert!(base.raw() >= prev_end, "overlap at {base}");
            prev_end = base.raw() + s;
        }
    });
}
