//! Property tests for the memory substrate.

use gvf_mem::{DeviceMemory, MmuMode, PageTable, VirtAddr, MAX_TAG, PAGE_SIZE, VA_MASK};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any canonical address + tag survives a with_tag/strip_tag trip.
    #[test]
    fn tag_roundtrip(addr in 0u64..=VA_MASK, tag in 0u16..=MAX_TAG) {
        let a = VirtAddr::new(addr);
        let t = a.with_tag(tag);
        prop_assert_eq!(t.tag(), tag);
        prop_assert_eq!(t.canonical(), addr);
        prop_assert_eq!(t.strip_tag(), a);
    }

    /// Writes followed by reads return the data, for any offset/length
    /// (including page-straddling accesses).
    #[test]
    fn write_read_roundtrip(
        offset in 0u64..3 * PAGE_SIZE,
        data in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        let base = mem.reserve(4 * PAGE_SIZE, 8);
        let at = base.offset(offset);
        mem.write_bytes(at, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(at, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Disjoint writes do not interfere.
    #[test]
    fn disjoint_writes_independent(
        a in 0u64..1000,
        b in 2000u64..3000,
        va in any::<u64>(),
        vb in any::<u64>(),
    ) {
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        let base = mem.reserve(PAGE_SIZE, 8);
        mem.write_u64(base.offset(a), va).unwrap();
        mem.write_u64(base.offset(b), vb).unwrap();
        prop_assert_eq!(mem.read_u64(base.offset(a)).unwrap(), va);
        prop_assert_eq!(mem.read_u64(base.offset(b)).unwrap(), vb);
    }

    /// The MMU in ignore-tag mode translates any tagged alias of a
    /// mapped address to the same frame.
    #[test]
    fn ignore_mode_aliases(addr in PAGE_SIZE..(1u64 << 30), tag in 1u16..=MAX_TAG) {
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        mem.mmu_mut().set_mode(MmuMode::IgnoreTagBits);
        let p = VirtAddr::new(addr);
        mem.write_u32(p, 0xabcd).unwrap();
        prop_assert_eq!(mem.read_u32(p.with_tag(tag)).unwrap(), 0xabcd);
    }

    /// Page-table translation preserves page offsets and is stable.
    #[test]
    fn translation_preserves_offset(vpn in 0u64..4096, off in 0u64..PAGE_SIZE) {
        let mut pt = PageTable::new(64 << 20);
        let va = VirtAddr::new(vpn * PAGE_SIZE + off);
        let pa1 = pt.map_page(va).unwrap();
        let pa2 = pt.translate(va).unwrap();
        prop_assert_eq!(pa1, pa2);
        prop_assert_eq!(pa1.page_offset(), off);
    }

    /// Reserve never hands out overlapping ranges.
    #[test]
    fn reserve_never_overlaps(sizes in proptest::collection::vec(1u64..10_000, 2..20)) {
        let mut mem = DeviceMemory::with_capacity(1 << 22);
        let mut prev_end = 0u64;
        for s in sizes {
            let base = mem.reserve(s, 16);
            prop_assert!(base.raw() >= prev_end, "overlap at {base}");
            prev_end = base.raw() + s;
        }
    }
}
