//! Byte-addressable simulated device memory behind the MMU.

use crate::addr::{VirtAddr, PAGE_SIZE};
use crate::error::MemResult;
use crate::mmu::{Mmu, MmuMode};

const FRAME_BYTES: usize = PAGE_SIZE as usize;

/// The CPU–GPU shared memory space: an [`Mmu`] plus physical frames.
///
/// All workload data — object images, vTables, range tables — lives here,
/// so every functional access can also be observed by the timing model.
///
/// ```
/// use gvf_mem::{DeviceMemory, VirtAddr};
/// let mut mem = DeviceMemory::with_capacity(1 << 20);
/// let p = mem.reserve(64, 8);
/// mem.write_u64(p, 0xfeed).unwrap();
/// assert_eq!(mem.read_u64(p).unwrap(), 0xfeed);
/// ```
#[derive(Debug)]
pub struct DeviceMemory {
    mmu: Mmu,
    frames: Vec<Box<[u8; FRAME_BYTES]>>,
    brk: u64,
}

impl DeviceMemory {
    /// Default simulated DRAM capacity (4 GiB, the heap limit the paper
    /// sets via `cudaLimitMallocHeapSize`, §7).
    pub const DEFAULT_CAPACITY: u64 = 4 << 30;

    /// Creates a memory with [`DEFAULT_CAPACITY`](Self::DEFAULT_CAPACITY)
    /// and a strict MMU.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a memory with an explicit physical capacity in bytes.
    pub fn with_capacity(phys_bytes: u64) -> Self {
        DeviceMemory {
            mmu: Mmu::new(phys_bytes, MmuMode::Strict),
            frames: Vec::new(),
            // Skip the zero page so that null pointers stay invalid.
            brk: PAGE_SIZE,
        }
    }

    /// Access to the MMU (for mode switches and counters).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Mutable access to the MMU.
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.mmu
    }

    /// Reserves `len` bytes of fresh virtual address space aligned to
    /// `align` (power of two) and returns the base address. No pages are
    /// mapped until first touch (demand paging).
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn reserve(&mut self, len: u64, align: u64) -> VirtAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        self.brk = base + len.max(1);
        VirtAddr::new(base)
    }

    /// Current top of the reserved virtual address space.
    pub fn brk(&self) -> VirtAddr {
        VirtAddr::new(self.brk)
    }

    fn frame_mut(&mut self, pfn: u64) -> &mut [u8; FRAME_BYTES] {
        let idx = pfn as usize;
        while self.frames.len() <= idx {
            self.frames.push(Box::new([0u8; FRAME_BYTES]));
        }
        &mut self.frames[idx]
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    /// Propagates MMU faults ([`MemFault`](crate::MemFault)).
    pub fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) -> MemResult<()> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = addr.offset(done as u64);
            let pa = self.mmu.translate(cur)?;
            let in_page = (FRAME_BYTES as u64 - pa.page_offset()) as usize;
            let n = in_page.min(buf.len() - done);
            let frame = self.frame_mut(pa.pfn());
            let off = pa.page_offset() as usize;
            buf[done..done + n].copy_from_slice(&frame[off..off + n]);
            done += n;
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Errors
    /// Propagates MMU faults.
    pub fn write_bytes(&mut self, addr: VirtAddr, buf: &[u8]) -> MemResult<()> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = addr.offset(done as u64);
            let pa = self.mmu.translate(cur)?;
            let in_page = (FRAME_BYTES as u64 - pa.page_offset()) as usize;
            let n = in_page.min(buf.len() - done);
            let frame = self.frame_mut(pa.pfn());
            let off = pa.page_offset() as usize;
            frame[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Fills `len` bytes at `addr` with `value`.
    ///
    /// # Errors
    /// Propagates MMU faults.
    pub fn fill(&mut self, addr: VirtAddr, len: u64, value: u8) -> MemResult<()> {
        const CHUNK: usize = 4096;
        let chunk = [value; CHUNK];
        let mut done = 0u64;
        while done < len {
            let n = (len - done).min(CHUNK as u64) as usize;
            self.write_bytes(addr.offset(done), &chunk[..n])?;
            done += n as u64;
        }
        Ok(())
    }
}

impl Default for DeviceMemory {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! typed_access {
    ($read:ident, $write:ident, $ty:ty) => {
        impl DeviceMemory {
            #[doc = concat!("Reads a little-endian `", stringify!($ty), "` at `addr`.")]
            ///
            /// # Errors
            /// Propagates MMU faults.
            pub fn $read(&mut self, addr: VirtAddr) -> MemResult<$ty> {
                let mut buf = [0u8; std::mem::size_of::<$ty>()];
                self.read_bytes(addr, &mut buf)?;
                Ok(<$ty>::from_le_bytes(buf))
            }

            #[doc = concat!("Writes a little-endian `", stringify!($ty), "` at `addr`.")]
            ///
            /// # Errors
            /// Propagates MMU faults.
            pub fn $write(&mut self, addr: VirtAddr, value: $ty) -> MemResult<()> {
                self.write_bytes(addr, &value.to_le_bytes())
            }
        }
    };
}

typed_access!(read_u8, write_u8, u8);
typed_access!(read_u16, write_u16, u16);
typed_access!(read_u32, write_u32, u32);
typed_access!(read_u64, write_u64, u64);
typed_access!(read_i32, write_i32, i32);
typed_access!(read_i64, write_i64, i64);
typed_access!(read_f32, write_f32, f32);
typed_access!(read_f64, write_f64, f64);

impl DeviceMemory {
    /// Reads a pointer-sized value as a [`VirtAddr`].
    ///
    /// # Errors
    /// Propagates MMU faults.
    pub fn read_ptr(&mut self, addr: VirtAddr) -> MemResult<VirtAddr> {
        Ok(VirtAddr::new(self.read_u64(addr)?))
    }

    /// Writes a [`VirtAddr`] as a pointer-sized value.
    ///
    /// # Errors
    /// Propagates MMU faults.
    pub fn write_ptr(&mut self, addr: VirtAddr, value: VirtAddr) -> MemResult<()> {
        self.write_u64(addr, value.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MemFault;

    #[test]
    fn reserve_respects_alignment() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let a = mem.reserve(10, 1);
        let b = mem.reserve(16, 256);
        assert_eq!(b.raw() % 256, 0);
        assert!(b.raw() >= a.raw() + 10);
    }

    #[test]
    fn null_page_never_reserved() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let a = mem.reserve(8, 8);
        assert!(a.raw() >= PAGE_SIZE);
    }

    #[test]
    fn rw_roundtrip_typed() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let p = mem.reserve(64, 8);
        mem.write_u32(p, 0xdead_beef).unwrap();
        mem.write_f64(p.offset(8), 3.25).unwrap();
        mem.write_i32(p.offset(16), -7).unwrap();
        assert_eq!(mem.read_u32(p).unwrap(), 0xdead_beef);
        assert_eq!(mem.read_f64(p.offset(8)).unwrap(), 3.25);
        assert_eq!(mem.read_i32(p.offset(16)).unwrap(), -7);
    }

    #[test]
    fn rw_across_page_boundary() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let p = VirtAddr::new(2 * PAGE_SIZE - 4);
        mem.write_u64(p, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(mem.read_u64(p).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn tagged_pointer_faults_then_works_in_ignore_mode() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let p = mem.reserve(8, 8);
        mem.write_u64(p, 42).unwrap();
        let tagged = p.with_tag(5);
        assert!(matches!(
            mem.read_u64(tagged),
            Err(MemFault::NonCanonical { .. })
        ));
        mem.mmu_mut().set_mode(MmuMode::IgnoreTagBits);
        assert_eq!(mem.read_u64(tagged).unwrap(), 42);
    }

    #[test]
    fn fill_and_read_back() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let p = mem.reserve(10_000, 8);
        mem.fill(p, 10_000, 0xab).unwrap();
        let mut buf = vec![0u8; 10_000];
        mem.read_bytes(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xab));
    }

    #[test]
    fn fresh_memory_is_zeroed() {
        let mut mem = DeviceMemory::with_capacity(1 << 20);
        let p = mem.reserve(128, 8);
        assert_eq!(mem.read_u64(p.offset(64)).unwrap(), 0);
    }
}
