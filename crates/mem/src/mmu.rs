//! The simulated memory management unit.

use crate::addr::{PhysAddr, VirtAddr, PAGE_SHIFT};
use crate::error::{MemFault, MemResult};
use crate::page::PageTable;

/// Slots in the MMU's direct-mapped software TLB (must be a power of
/// two). 64 entries cover 256 KiB of working set — enough that the
/// per-lane translations of a warp-wide access almost always hit.
const TLB_SLOTS: usize = 64;

/// Tag-bit policy of the MMU (paper §6.3).
///
/// A stock GPU raises an exception when the unused upper 15 bits of a
/// virtual address are non-zero ([`Strict`](MmuMode::Strict)). TypePointer's
/// proposed hardware change makes the MMU ignore those bits
/// ([`IgnoreTagBits`](MmuMode::IgnoreTagBits)); the paper notes this can be
/// guarded by an enable flag, which is what selecting the mode models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MmuMode {
    /// Fault on any non-canonical address — today's hardware.
    #[default]
    Strict,
    /// Mask the tag bits before translation — the TypePointer MMU change.
    IgnoreTagBits,
}

/// The memory management unit: page table + tag policy + demand paging.
#[derive(Debug, Clone)]
pub struct Mmu {
    page_table: PageTable,
    mode: MmuMode,
    demand_paging: bool,
    non_canonical_faults: u64,
    translations: u64,
    /// Direct-mapped `(vpn, pfn)` lookaside over the page table, keyed
    /// by `vpn % TLB_SLOTS`. A pure software accelerator, not an
    /// architectural model: pages are never unmapped so entries cannot
    /// go stale, canonicalization happens before the lookup, and every
    /// counter (`translations`, `non_canonical_faults`,
    /// `faults_served`) advances exactly as without it.
    tlb: Box<[(u64, u64); TLB_SLOTS]>,
}

impl Mmu {
    /// Creates an MMU over `phys_bytes` of simulated DRAM.
    ///
    /// Demand paging is enabled by default, matching CUDA 9+ unified
    /// memory with GPU page-fault support (paper Fig. 2).
    pub fn new(phys_bytes: u64, mode: MmuMode) -> Self {
        Mmu {
            page_table: PageTable::new(phys_bytes),
            mode,
            demand_paging: true,
            non_canonical_faults: 0,
            translations: 0,
            // u64::MAX can never be a vpn (addresses are 52-bit pages),
            // so fresh slots never false-hit.
            tlb: Box::new([(u64::MAX, 0); TLB_SLOTS]),
        }
    }

    /// Current tag policy.
    pub fn mode(&self) -> MmuMode {
        self.mode
    }

    /// Switches the tag policy (the TypePointer "enable flag").
    pub fn set_mode(&mut self, mode: MmuMode) {
        self.mode = mode;
    }

    /// Enables or disables demand paging.
    pub fn set_demand_paging(&mut self, on: bool) {
        self.demand_paging = on;
    }

    /// Translates `addr`, enforcing the tag policy and serving demand
    /// faults if enabled.
    ///
    /// # Errors
    /// [`MemFault::NonCanonical`] in strict mode with tag bits set;
    /// [`MemFault::Unmapped`] when the page is absent and demand paging is
    /// off; [`MemFault::OutOfMemory`] when no frame is available.
    pub fn translate(&mut self, addr: VirtAddr) -> MemResult<PhysAddr> {
        self.translations += 1;
        let canonical = match self.mode {
            MmuMode::Strict => {
                if !addr.is_canonical() {
                    self.non_canonical_faults += 1;
                    return Err(MemFault::NonCanonical { addr });
                }
                addr
            }
            MmuMode::IgnoreTagBits => addr.strip_tag(),
        };
        let vpn = canonical.vpn();
        let slot = vpn as usize & (TLB_SLOTS - 1);
        let (cached_vpn, cached_pfn) = self.tlb[slot];
        if cached_vpn == vpn {
            return Ok(PhysAddr::new(
                (cached_pfn << PAGE_SHIFT) | canonical.page_offset(),
            ));
        }
        let pa = match self.page_table.translate(canonical) {
            Ok(pa) => pa,
            Err(MemFault::Unmapped { .. }) if self.demand_paging => {
                self.page_table.map_page(canonical)?
            }
            Err(e) => return Err(e),
        };
        self.tlb[slot] = (vpn, pa.pfn());
        Ok(pa)
    }

    /// Pre-maps every page overlapping `[base, base + len)`, enforcing
    /// the same tag policy as [`translate`](Self::translate).
    ///
    /// # Errors
    /// [`MemFault::NonCanonical`] in strict mode with tag bits set;
    /// [`MemFault::OutOfMemory`] when no frame is available.
    pub fn map_range(&mut self, base: VirtAddr, len: u64) -> MemResult<()> {
        let base = match self.mode {
            MmuMode::Strict => {
                if !base.is_canonical() {
                    self.non_canonical_faults += 1;
                    return Err(MemFault::NonCanonical { addr: base });
                }
                base
            }
            MmuMode::IgnoreTagBits => base.strip_tag(),
        };
        self.page_table.map_range(base, len)
    }

    /// Read access to the underlying page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Number of non-canonical faults raised so far.
    pub fn non_canonical_faults(&self) -> u64 {
        self.non_canonical_faults
    }

    /// Total translations performed.
    pub fn translations(&self) -> u64 {
        self.translations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_mode_faults_on_tag() {
        let mut mmu = Mmu::new(1 << 20, MmuMode::Strict);
        let tagged = VirtAddr::new(0x1000).with_tag(3);
        let err = mmu.translate(tagged).unwrap_err();
        assert!(matches!(err, MemFault::NonCanonical { .. }));
        assert_eq!(mmu.non_canonical_faults(), 1);
    }

    #[test]
    fn strict_map_range_faults_on_tag() {
        let mut mmu = Mmu::new(1 << 20, MmuMode::Strict);
        let tagged = VirtAddr::new(0x1000).with_tag(3);
        let err = mmu.map_range(tagged, 0x1000).unwrap_err();
        assert!(matches!(err, MemFault::NonCanonical { .. }));
        assert_eq!(mmu.non_canonical_faults(), 1);
        // A canonical base still maps.
        assert!(mmu.map_range(VirtAddr::new(0x1000), 0x1000).is_ok());
    }

    #[test]
    fn ignore_mode_map_range_masks_tag() {
        let mut mmu = Mmu::new(1 << 20, MmuMode::IgnoreTagBits);
        mmu.set_demand_paging(false);
        let tagged = VirtAddr::new(0x1000).with_tag(0x7fff);
        mmu.map_range(tagged, 0x1000).unwrap();
        // The mapping landed at the canonical address.
        assert!(mmu.translate(VirtAddr::new(0x1000)).is_ok());
        assert_eq!(mmu.non_canonical_faults(), 0);
    }

    #[test]
    fn ignore_mode_masks_tag() {
        let mut mmu = Mmu::new(1 << 20, MmuMode::IgnoreTagBits);
        let plain = mmu.translate(VirtAddr::new(0x1000)).unwrap();
        let tagged = mmu
            .translate(VirtAddr::new(0x1000).with_tag(0x7fff))
            .unwrap();
        assert_eq!(plain, tagged);
    }

    #[test]
    fn demand_paging_toggles() {
        let mut mmu = Mmu::new(1 << 20, MmuMode::Strict);
        mmu.set_demand_paging(false);
        assert!(matches!(
            mmu.translate(VirtAddr::new(0x2000)),
            Err(MemFault::Unmapped { .. })
        ));
        mmu.set_demand_paging(true);
        assert!(mmu.translate(VirtAddr::new(0x2000)).is_ok());
    }

    #[test]
    fn strict_accepts_canonical() {
        let mut mmu = Mmu::new(1 << 20, MmuMode::Strict);
        assert!(mmu.translate(VirtAddr::new(0x3000)).is_ok());
    }
}
