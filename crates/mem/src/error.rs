//! Memory fault model.

use crate::addr::VirtAddr;
use std::fmt;

/// A fault raised by the simulated MMU or backing store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemFault {
    /// The pointer carried non-zero tag bits while the MMU was in
    /// [`strict`](crate::MmuMode::Strict) mode — exactly the exception a
    /// production GPU raises when software clobbers the unused upper bits
    /// of the virtual address (paper §6.3).
    NonCanonical {
        /// Faulting address (tag included).
        addr: VirtAddr,
    },
    /// Access to a virtual page with no mapping and demand paging disabled.
    Unmapped {
        /// Faulting address.
        addr: VirtAddr,
    },
    /// An access crossed the end of the reserved virtual address range.
    OutOfRange {
        /// Faulting address.
        addr: VirtAddr,
        /// Access width in bytes.
        len: u64,
    },
    /// The device ran out of physical frames.
    OutOfMemory,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::NonCanonical { addr } => {
                write!(
                    f,
                    "non-canonical virtual address {addr:#x} (tag bits set in strict mode)"
                )
            }
            MemFault::Unmapped { addr } => write!(f, "access to unmapped page at {addr:#x}"),
            MemFault::OutOfRange { addr, len } => {
                write!(f, "{len}-byte access at {addr:#x} crosses reserved range")
            }
            MemFault::OutOfMemory => write!(f, "out of simulated device memory"),
        }
    }
}

impl std::error::Error for MemFault {}

/// Convenience alias for fallible memory operations.
pub type MemResult<T> = Result<T, MemFault>;
