//! Virtual and physical address newtypes.
//!
//! GPU unified memory uses a **49-bit** virtual address space inside 64-bit
//! pointers (paper §1, §6). The upper [`TAG_BITS`] bits are architecturally
//! unused; TypePointer repurposes them to carry the object's type.

use std::fmt;

/// Number of meaningful bits in a GPU virtual address.
pub const VA_BITS: u32 = 49;
/// Number of unused upper bits in a 64-bit GPU pointer (`64 - VA_BITS`).
pub const TAG_BITS: u32 = 64 - VA_BITS;
/// Mask selecting the 49 canonical address bits.
pub const VA_MASK: u64 = (1u64 << VA_BITS) - 1;
/// Maximum tag value representable in the unused bits (`2^15 - 1`).
pub const MAX_TAG: u16 = ((1u32 << TAG_BITS) - 1) as u16;
/// Page size used by the simulated device (bytes).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A 64-bit GPU virtual address.
///
/// The low [`VA_BITS`] bits address memory; the high [`TAG_BITS`] bits are
/// the *TypePointer tag*. A `VirtAddr` with a zero tag is *canonical*.
///
/// ```
/// use gvf_mem::VirtAddr;
/// let a = VirtAddr::new(0x1000);
/// assert!(a.is_canonical());
/// let tagged = a.with_tag(7);
/// assert_eq!(tagged.tag(), 7);
/// assert_eq!(tagged.strip_tag(), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// The null address.
    pub const NULL: VirtAddr = VirtAddr(0);

    /// Creates a virtual address from a raw 64-bit value (tag preserved).
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Raw 64-bit value, including any tag bits.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The canonical 49-bit address portion.
    #[inline]
    pub const fn canonical(self) -> u64 {
        self.0 & VA_MASK
    }

    /// The 15-bit tag stored in the unused upper bits.
    #[inline]
    pub const fn tag(self) -> u16 {
        (self.0 >> VA_BITS) as u16
    }

    /// `true` when the tag bits are all zero.
    #[inline]
    pub const fn is_canonical(self) -> bool {
        self.tag() == 0
    }

    /// `true` when this is the null address (tag ignored).
    #[inline]
    pub const fn is_null(self) -> bool {
        self.canonical() == 0
    }

    /// Returns the same address with `tag` written into the upper bits.
    #[inline]
    pub const fn with_tag(self, tag: u16) -> Self {
        VirtAddr(self.canonical() | ((tag as u64) << VA_BITS))
    }

    /// Returns the canonical (tag-free) version of this address.
    #[inline]
    pub const fn strip_tag(self) -> Self {
        VirtAddr(self.canonical())
    }

    /// Virtual page number of the canonical address.
    #[inline]
    pub const fn vpn(self) -> u64 {
        self.canonical() >> PAGE_SHIFT
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.canonical() & (PAGE_SIZE - 1)
    }

    /// Address advanced by `bytes` (tag preserved).
    ///
    /// # Panics
    /// Panics in debug builds if the canonical part overflows 49 bits.
    #[inline]
    pub fn offset(self, bytes: u64) -> Self {
        let next = self.canonical() + bytes;
        debug_assert!(next <= VA_MASK, "virtual address overflow");
        VirtAddr((next & VA_MASK) | (self.0 & !VA_MASK))
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_canonical() {
            write!(f, "VirtAddr({:#x})", self.0)
        } else {
            write!(f, "VirtAddr({:#x} tag={})", self.canonical(), self.tag())
        }
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr::new(raw)
    }
}

impl From<VirtAddr> for u64 {
    fn from(a: VirtAddr) -> u64 {
        a.raw()
    }
}

/// A physical address in simulated device DRAM.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Physical frame number.
    #[inline]
    pub const fn pfn(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Byte offset within the frame.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let a = VirtAddr::new(0xdead_beef);
        for tag in [0u16, 1, 0x7fff] {
            let t = a.with_tag(tag);
            assert_eq!(t.tag(), tag);
            assert_eq!(t.canonical(), 0xdead_beef);
            assert_eq!(t.strip_tag(), a);
        }
    }

    #[test]
    fn canonical_detection() {
        assert!(VirtAddr::new(VA_MASK).is_canonical());
        assert!(!VirtAddr::new(VA_MASK + 1).is_canonical());
        assert!(VirtAddr::new(0).is_null());
        assert!(!VirtAddr::new(5).with_tag(3).is_canonical());
    }

    #[test]
    fn page_arithmetic() {
        let a = VirtAddr::new(3 * PAGE_SIZE + 17);
        assert_eq!(a.vpn(), 3);
        assert_eq!(a.page_offset(), 17);
        assert_eq!(a.offset(PAGE_SIZE).vpn(), 4);
    }

    #[test]
    fn offset_preserves_tag() {
        let a = VirtAddr::new(0x1000).with_tag(9);
        let b = a.offset(8);
        assert_eq!(b.tag(), 9);
        assert_eq!(b.canonical(), 0x1008);
    }

    #[test]
    fn max_tag_matches_bits() {
        assert_eq!(MAX_TAG, 0x7fff);
        assert_eq!(TAG_BITS, 15);
        assert_eq!(VA_BITS, 49);
    }
}
