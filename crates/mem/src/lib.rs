//! # gvf-mem — simulated GPU unified memory
//!
//! The memory substrate for the `gvf` reproduction of *"Judging a Type by
//! Its Pointer"* (ASPLOS 2021): a 49-bit GPU virtual address space with
//! 15 unused upper bits per 64-bit pointer, a single-level page table with
//! demand paging, an MMU with the paper's **TypePointer** tag-bit mode,
//! and a byte-addressable paged backing store shared by the simulated CPU
//! and GPU.
//!
//! ```
//! use gvf_mem::{DeviceMemory, MmuMode, VirtAddr};
//!
//! let mut mem = DeviceMemory::with_capacity(1 << 20);
//! let obj = mem.reserve(32, 16);
//! mem.write_u64(obj, 7).unwrap();
//!
//! // TypePointer: stash a vTable offset in the unused bits...
//! let tagged = obj.with_tag(0x120);
//! // ...which faults on a stock MMU,
//! assert!(mem.read_u64(tagged).is_err());
//! // but is transparent once the MMU ignores tag bits (paper §6.3).
//! mem.mmu_mut().set_mode(MmuMode::IgnoreTagBits);
//! assert_eq!(mem.read_u64(tagged).unwrap(), 7);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod error;
mod memory;
mod mmu;
mod page;

pub use addr::{PhysAddr, VirtAddr, MAX_TAG, PAGE_SHIFT, PAGE_SIZE, TAG_BITS, VA_BITS, VA_MASK};
pub use error::{MemFault, MemResult};
pub use memory::DeviceMemory;
pub use mmu::{Mmu, MmuMode};
pub use page::PageTable;
