//! Single-level page table mapping virtual pages to physical frames.

use crate::addr::{PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
use crate::error::{MemFault, MemResult};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative (Fibonacci) hasher for vpn keys. The default SipHash
/// is DoS-hardened but dominates the functional pass's per-lane
/// translation cost, and vpns are simulator-internal, not
/// attacker-controlled. Nothing observable depends on map iteration
/// order, so the swap cannot perturb simulated results.
#[derive(Clone, Default)]
pub struct VpnHasher(u64);

impl Hasher for VpnHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-style fallback; u64 keys take the write_u64 fast path.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_right(31);
    }
}

type VpnMap = HashMap<u64, u64, BuildHasherDefault<VpnHasher>>;

/// Page table for the simulated unified address space.
///
/// The table is a flat `vpn → pfn` map; frames are handed out sequentially
/// by an internal frame allocator, capped at the configured physical
/// memory size.
#[derive(Debug, Clone)]
pub struct PageTable {
    map: VpnMap,
    next_frame: u64,
    max_frames: u64,
    faults_served: u64,
}

impl PageTable {
    /// Creates a page table backed by `phys_bytes` of simulated DRAM.
    pub fn new(phys_bytes: u64) -> Self {
        PageTable {
            map: VpnMap::default(),
            next_frame: 0,
            max_frames: phys_bytes / PAGE_SIZE,
            faults_served: 0,
        }
    }

    /// Translates a canonical virtual address. Does **not** inspect tag
    /// bits — callers (the [`Mmu`](crate::Mmu)) decide tag policy.
    pub fn translate(&self, addr: VirtAddr) -> MemResult<PhysAddr> {
        match self.map.get(&addr.vpn()) {
            Some(&pfn) => Ok(PhysAddr::new((pfn << PAGE_SHIFT) | addr.page_offset())),
            None => Err(MemFault::Unmapped { addr }),
        }
    }

    /// Returns `true` if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: VirtAddr) -> bool {
        self.map.contains_key(&addr.vpn())
    }

    /// Maps the page containing `addr`, allocating a fresh frame.
    /// Idempotent for already-mapped pages.
    pub fn map_page(&mut self, addr: VirtAddr) -> MemResult<PhysAddr> {
        let vpn = addr.vpn();
        if let Some(&pfn) = self.map.get(&vpn) {
            return Ok(PhysAddr::new((pfn << PAGE_SHIFT) | addr.page_offset()));
        }
        if self.next_frame >= self.max_frames {
            return Err(MemFault::OutOfMemory);
        }
        let pfn = self.next_frame;
        self.next_frame += 1;
        self.map.insert(vpn, pfn);
        self.faults_served += 1;
        Ok(PhysAddr::new((pfn << PAGE_SHIFT) | addr.page_offset()))
    }

    /// Maps every page overlapping `[base, base + len)`.
    pub fn map_range(&mut self, base: VirtAddr, len: u64) -> MemResult<()> {
        if len == 0 {
            return Ok(());
        }
        let first = base.vpn();
        let last = base.offset(len - 1).vpn();
        for vpn in first..=last {
            self.map_page(VirtAddr::new(vpn << PAGE_SHIFT))?;
        }
        Ok(())
    }

    /// Number of pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Number of demand-paging faults served so far (page populations).
    pub fn faults_served(&self) -> u64 {
        self.faults_served
    }

    /// Bytes of physical memory in use.
    pub fn phys_bytes_used(&self) -> u64 {
        self.next_frame * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_unmapped_faults() {
        let pt = PageTable::new(1 << 20);
        let err = pt.translate(VirtAddr::new(0x5000)).unwrap_err();
        assert!(matches!(err, MemFault::Unmapped { .. }));
    }

    #[test]
    fn map_then_translate() {
        let mut pt = PageTable::new(1 << 20);
        let pa = pt.map_page(VirtAddr::new(0x5123)).unwrap();
        assert_eq!(pa.page_offset(), 0x123);
        let pa2 = pt.translate(VirtAddr::new(0x5fff)).unwrap();
        assert_eq!(pa2.pfn(), pa.pfn());
    }

    #[test]
    fn map_page_idempotent() {
        let mut pt = PageTable::new(1 << 20);
        let a = pt.map_page(VirtAddr::new(0x7000)).unwrap();
        let b = pt.map_page(VirtAddr::new(0x7800)).unwrap();
        assert_eq!(a.pfn(), b.pfn());
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn map_range_covers_partial_pages() {
        let mut pt = PageTable::new(1 << 20);
        pt.map_range(VirtAddr::new(PAGE_SIZE - 1), 2).unwrap();
        assert_eq!(pt.mapped_pages(), 2);
        pt.map_range(VirtAddr::new(0x100000), 0).unwrap();
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn oom_when_frames_exhausted() {
        let mut pt = PageTable::new(2 * PAGE_SIZE);
        pt.map_page(VirtAddr::new(0)).unwrap();
        pt.map_page(VirtAddr::new(PAGE_SIZE)).unwrap();
        let err = pt.map_page(VirtAddr::new(2 * PAGE_SIZE)).unwrap_err();
        assert_eq!(err, MemFault::OutOfMemory);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new(1 << 20);
        let a = pt.map_page(VirtAddr::new(0)).unwrap();
        let b = pt.map_page(VirtAddr::new(PAGE_SIZE)).unwrap();
        assert_ne!(a.pfn(), b.pfn());
    }
}
