//! Functional validation across dispatch strategies (paper §8: "We
//! perform functional validation on all the implementations to
//! guarantee they produce the same results.").

use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadConfig, WorkloadKind};

const STRATEGIES: [Strategy; 6] = [
    Strategy::Cuda,
    Strategy::Concord,
    Strategy::SharedOa,
    Strategy::Coal,
    Strategy::TypePointerProto,
    Strategy::TypePointerHw,
];

fn assert_equivalent(kind: WorkloadKind) {
    let cfg = WorkloadConfig::tiny();
    let reference = run_workload(kind, Strategy::Cuda, &cfg);
    assert!(reference.table2.objects > 0, "{kind}: no objects built");
    assert!(reference.stats.vfunc_calls > 0, "{kind}: no virtual calls");
    for s in STRATEGIES.into_iter().skip(1) {
        let r = run_workload(kind, s, &cfg);
        assert_eq!(
            r.checksum, reference.checksum,
            "{kind}: {s} produced a different result than CUDA"
        );
        assert_eq!(r.table2.objects, reference.table2.objects, "{kind}/{s}");
    }
}

#[test]
fn traffic_equivalence() {
    assert_equivalent(WorkloadKind::Traffic);
}

#[test]
fn game_of_life_equivalence() {
    assert_equivalent(WorkloadKind::GameOfLife);
}

#[test]
fn structure_equivalence() {
    assert_equivalent(WorkloadKind::Structure);
}

#[test]
fn generation_equivalence() {
    assert_equivalent(WorkloadKind::Generation);
}

#[test]
fn ve_bfs_equivalence() {
    assert_equivalent(WorkloadKind::VeBfs);
}

#[test]
fn ve_cc_equivalence() {
    assert_equivalent(WorkloadKind::VeCc);
}

#[test]
fn ve_pr_equivalence() {
    assert_equivalent(WorkloadKind::VePr);
}

#[test]
fn ven_bfs_equivalence() {
    assert_equivalent(WorkloadKind::VenBfs);
}

#[test]
fn ven_cc_equivalence() {
    assert_equivalent(WorkloadKind::VenCc);
}

#[test]
fn ven_pr_equivalence() {
    assert_equivalent(WorkloadKind::VenPr);
}

#[test]
fn raytrace_equivalence() {
    assert_equivalent(WorkloadKind::Raytrace);
}

#[test]
fn micro_equivalence_including_branch() {
    let cfg = WorkloadConfig::tiny();
    let params = gvf_workloads::MicroParams {
        n_objects: 4096,
        n_types: 4,
    };
    let reference = gvf_workloads::micro::run(Strategy::Cuda, params, &cfg);
    for s in [
        Strategy::Concord,
        Strategy::SharedOa,
        Strategy::Coal,
        Strategy::TypePointerProto,
        Strategy::TypePointerHw,
        Strategy::Branch,
    ] {
        let r = gvf_workloads::micro::run(s, params, &cfg);
        assert_eq!(r.checksum, reference.checksum, "micro: {s} diverged");
    }
}

#[test]
fn different_seeds_differ() {
    let mut cfg = WorkloadConfig::tiny();
    let a = run_workload(WorkloadKind::GameOfLife, Strategy::SharedOa, &cfg);
    cfg.seed ^= 0xffff;
    let b = run_workload(WorkloadKind::GameOfLife, Strategy::SharedOa, &cfg);
    assert_ne!(a.checksum, b.checksum, "seed must affect the input");
}

#[test]
fn iterations_change_results() {
    let mut cfg = WorkloadConfig::tiny();
    cfg.iterations = 1;
    let a = run_workload(WorkloadKind::Structure, Strategy::SharedOa, &cfg);
    cfg.iterations = 3;
    let b = run_workload(WorkloadKind::Structure, Strategy::SharedOa, &cfg);
    assert_ne!(a.checksum, b.checksum);
    assert!(b.stats.cycles > a.stats.cycles);
}

#[test]
fn coal_linear_scan_equivalent() {
    // §5 ablation: the linear-scan lookup must resolve identically.
    let mut cfg = WorkloadConfig::tiny();
    let tree = run_workload(WorkloadKind::Structure, Strategy::Coal, &cfg);
    cfg.coal_lookup = gvf_core::LookupKind::LinearScan;
    let linear = run_workload(WorkloadKind::Structure, Strategy::Coal, &cfg);
    assert_eq!(tree.checksum, linear.checksum);
}

#[test]
fn tag_budget_fallback_equivalent() {
    // §6.1 fallback: with only some types tagged, results are unchanged
    // but classic vTable loads reappear.
    let mut cfg = WorkloadConfig::tiny();
    let full = run_workload(WorkloadKind::VeBfs, Strategy::TypePointerHw, &cfg);
    cfg.tag_budget = Some(16); // 2 of vE's 4 edge types fit
    let capped = run_workload(WorkloadKind::VeBfs, Strategy::TypePointerHw, &cfg);
    assert_eq!(full.checksum, capped.checksum);
    assert_eq!(full.stats.stall(gvf_sim::AccessTag::VtablePtr), 0);
    assert!(capped.stats.stall(gvf_sim::AccessTag::VtablePtr) > 0);
}
