//! Host-reference validation: each workload's device result is checked
//! against an independent CPU implementation of the same algorithm on
//! the same deterministic input. This catches dispatch or memory bugs
//! that cross-strategy checksum comparison alone would miss (all
//! strategies could be wrong *together*).

#![allow(clippy::needless_range_loop)]

use gvf_core::Strategy;
use gvf_workloads::graphchi::generate;
use gvf_workloads::util::splitmix64;
use gvf_workloads::{run_workload, WorkloadConfig, WorkloadKind};

const INF: u32 = u32::MAX;

fn metric(r: &gvf_workloads::RunResult, name: &str) -> f64 {
    r.metrics
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .1
}

/// Reference BFS with the kernel's exact round semantics: in round `r`,
/// every unvisited vertex with an in-neighbour at level `r` moves to
/// `r + 1`.
fn host_bfs(n: usize, seed: u64, rounds: u32) -> (f64, f64) {
    let g = generate(n, seed);
    let mut level = vec![INF; g.n];
    level[0] = 0;
    for r in 0..rounds {
        let prev = level.clone();
        for v in 0..g.n {
            if prev[v] != INF {
                continue;
            }
            for k in g.in_row[v]..g.in_row[v + 1] {
                let e = g.in_edge_idx[k as usize] as usize;
                // The edge object's src field holds the original source.
                let src = edge_src(&g, e);
                if prev[src] == r {
                    level[v] = r + 1;
                    break;
                }
            }
        }
    }
    summarize(&level)
}

/// Source vertex of out-edge `e` (by construction order).
fn edge_src(g: &gvf_workloads::graphchi::SynthGraph, e: usize) -> usize {
    // Binary search the out-CSR row containing e.
    let mut lo = 0usize;
    let mut hi = g.n;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if (g.out_row[mid] as usize) <= e {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn host_cc(n: usize, seed: u64, rounds: u32) -> (f64, f64) {
    let g = generate(n, seed);
    let mut label: Vec<u32> = (0..g.n as u32).collect();
    for _ in 0..rounds {
        let prev = label.clone();
        for v in 0..g.n {
            let mut best = prev[v];
            for k in g.in_row[v]..g.in_row[v + 1] {
                let e = g.in_edge_idx[k as usize] as usize;
                best = best.min(prev[edge_src(&g, e)]);
            }
            label[v] = best;
        }
    }
    summarize(&label)
}

fn summarize(vals: &[u32]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut reached = 0.0;
    for &v in vals {
        if v != INF {
            sum += v as f64;
            reached += 1.0;
        }
    }
    (sum, reached)
}

fn host_pr_ve(n: usize, seed: u64, rounds: u32) -> f64 {
    let g = generate(n, seed);
    // Per-edge weights as ve.rs assigns them: only Weighted (10..=15)
    // and Stamped (19) edge types read their weight field; the rest
    // contribute 1.0.
    let weight = |e: u64| -> f32 {
        let h = splitmix64(seed ^ 0xed9e ^ e);
        match h % 20 {
            10..=15 | 19 => 0.25 + (h % 100) as f32 / 100.0,
            _ => 1.0,
        }
    };
    let mut rank = vec![1.0f32; g.n];
    for _ in 0..rounds {
        let prev = rank.clone();
        for v in 0..g.n {
            let mut sum = 0.0f32;
            for k in g.in_row[v]..g.in_row[v + 1] {
                let e = g.in_edge_idx[k as usize] as usize;
                let src = edge_src(&g, e);
                let outdeg = (g.out_row[src + 1] - g.out_row[src]).max(1) as f32;
                sum += prev[src] * weight(e as u64) / outdeg;
            }
            rank[v] = 0.15 + 0.85 * (sum / 1.75);
        }
    }
    rank.iter().map(|&r| r as f64).sum()
}

fn host_grid(
    init: impl Fn(u64) -> u32,
    rule: impl Fn(u32, u32) -> u32,
    is_live: impl Fn(u32) -> bool,
    w: usize,
    h: usize,
    seed: u64,
    iters: u32,
) -> (f64, f64) {
    let mut state: Vec<u32> = (0..w * h)
        .map(|i| init(splitmix64(seed ^ i as u64) % 100))
        .collect();
    for _ in 0..iters {
        let prev = state.clone();
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let mut live = 0;
                for (dx, dy) in [
                    (-1, -1),
                    (0, -1),
                    (1, -1),
                    (-1, 0),
                    (1, 0),
                    (-1, 1),
                    (0, 1),
                    (1, 1),
                ] {
                    let (nx, ny) = (x + dx, y + dy);
                    if (0..w as i64).contains(&nx)
                        && (0..h as i64).contains(&ny)
                        && is_live(prev[ny as usize * w + nx as usize])
                    {
                        live += 1;
                    }
                }
                let i = y as usize * w + x as usize;
                state[i] = rule(prev[i], live);
            }
        }
    }
    let alive = state.iter().filter(|&&s| is_live(s)).count() as f64;
    let sum = state.iter().map(|&s| s as f64).sum();
    (alive, sum)
}

#[test]
fn bfs_matches_host_reference() {
    let cfg = WorkloadConfig::tiny();
    let n = 2048 * cfg.scale as usize;
    let (sum, reached) = host_bfs(n, cfg.seed, cfg.iterations);
    let r = run_workload(WorkloadKind::VeBfs, Strategy::SharedOa, &cfg);
    assert_eq!(metric(&r, "value_sum"), sum, "vE-BFS level sum");
    assert_eq!(metric(&r, "reached"), reached, "vE-BFS reached count");
    // vEN uses a different seed mix; just assert progress.
    let r = run_workload(WorkloadKind::VenBfs, Strategy::SharedOa, &cfg);
    assert!(metric(&r, "reached") > 1.0);
}

#[test]
fn cc_matches_host_reference() {
    let cfg = WorkloadConfig::tiny();
    let n = 2048 * cfg.scale as usize;
    let (sum, reached) = host_cc(n, cfg.seed, cfg.iterations);
    let r = run_workload(WorkloadKind::VeCc, Strategy::SharedOa, &cfg);
    assert_eq!(metric(&r, "value_sum"), sum);
    assert_eq!(metric(&r, "reached"), reached);
}

#[test]
fn pr_matches_host_reference() {
    let cfg = WorkloadConfig::tiny();
    let n = 2048 * cfg.scale as usize;
    let expected = host_pr_ve(n, cfg.seed, cfg.iterations);
    let r = run_workload(WorkloadKind::VePr, Strategy::SharedOa, &cfg);
    let got = metric(&r, "value_sum");
    let rel = (got - expected).abs() / expected.abs();
    assert!(
        rel < 1e-4,
        "PageRank sum {got} vs host {expected} (rel {rel:.2e})"
    );
}

#[test]
fn gol_matches_host_reference() {
    let cfg = WorkloadConfig::tiny();
    let (alive, sum) = host_grid(
        |d| u32::from(d < 35),
        |s, l| match (s, l) {
            (1, 2) | (1, 3) => 1,
            (0, 3) => 1,
            _ => 0,
        },
        |s| s == 1,
        128,
        96 * cfg.scale as usize,
        cfg.seed,
        cfg.iterations,
    );
    let r = run_workload(WorkloadKind::GameOfLife, Strategy::SharedOa, &cfg);
    assert_eq!(metric(&r, "alive"), alive);
    assert_eq!(metric(&r, "state_sum"), sum);
}

#[test]
fn generation_matches_host_reference() {
    let cfg = WorkloadConfig::tiny();
    let (alive, sum) = host_grid(
        |d| match d {
            0..=29 => 1,
            30..=39 => 2,
            _ => 0,
        },
        |s, l| match s {
            0 => u32::from(l == 3),
            1 => {
                if l == 2 || l == 3 {
                    1
                } else {
                    2
                }
            }
            2 => 3,
            _ => 0,
        },
        |s| s == 1,
        128,
        96 * cfg.scale as usize,
        cfg.seed,
        cfg.iterations,
    );
    let r = run_workload(WorkloadKind::Generation, Strategy::SharedOa, &cfg);
    assert_eq!(metric(&r, "alive"), alive);
    assert_eq!(metric(&r, "state_sum"), sum);
}

#[test]
fn traffic_conserves_vehicles() {
    let cfg = WorkloadConfig::tiny();
    let r = run_workload(WorkloadKind::Traffic, Strategy::SharedOa, &cfg);
    // Every vehicle occupies exactly one cell after commit.
    assert_eq!(metric(&r, "occupied_cells"), metric(&r, "vehicles"));
    assert!(metric(&r, "vel_sum") > 0.0, "traffic must be moving");
}

#[test]
fn structure_anchors_do_not_drift() {
    let mut cfg = WorkloadConfig::tiny();
    cfg.iterations = 4;
    let r = run_workload(WorkloadKind::Structure, Strategy::SharedOa, &cfg);
    assert_eq!(metric(&r, "anchor_drift"), 0.0);
}

#[test]
fn raytrace_hits_something_but_not_everything() {
    let cfg = WorkloadConfig::tiny();
    let r = run_workload(WorkloadKind::Raytrace, Strategy::SharedOa, &cfg);
    let lit = metric(&r, "lit_pixels");
    let pixels = metric(&r, "pixels");
    assert!(lit > 0.0, "scene must be visible");
    // With scene-spanning planes every ray can legitimately hit
    // something; lit is bounded by the frame.
    assert!(lit <= pixels);
}

#[test]
fn bfs_reached_grows_with_rounds() {
    let mut cfg = WorkloadConfig::tiny();
    cfg.iterations = 1;
    let one = run_workload(WorkloadKind::VeBfs, Strategy::SharedOa, &cfg);
    cfg.iterations = 3;
    let three = run_workload(WorkloadKind::VeBfs, Strategy::SharedOa, &cfg);
    assert!(metric(&three, "reached") > metric(&one, "reached"));
}
