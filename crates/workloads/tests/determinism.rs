//! The determinism gate CI relies on: every evaluated workload produces
//! bit-identical [`Stats`] whether the timing engine runs serially or on
//! multiple host threads, and repeated parallel runs agree with each
//! other. This is the engine's determinism contract (DESIGN.md) checked
//! end-to-end through real workloads rather than synthetic traces.

use gvf_core::Strategy;
use gvf_workloads::{run_workload, WorkloadConfig, WorkloadKind};

fn cfg_with_threads(threads: usize) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::tiny();
    cfg.engine_threads = threads;
    cfg
}

/// All eleven evaluated workloads: serial and 2-thread engines agree
/// bit-for-bit on counters, checksum and domain metrics.
#[test]
fn all_workloads_serial_vs_parallel_identical() {
    for kind in WorkloadKind::EVALUATED {
        let serial = run_workload(kind, Strategy::SharedOa, &cfg_with_threads(1));
        let parallel = run_workload(kind, Strategy::SharedOa, &cfg_with_threads(2));
        assert_eq!(serial.stats, parallel.stats, "{kind}: stats diverged");
        assert_eq!(
            serial.checksum, parallel.checksum,
            "{kind}: checksum diverged"
        );
        assert_eq!(serial.metrics, parallel.metrics, "{kind}: metrics diverged");
        assert_eq!(
            serial.init_cycles, parallel.init_cycles,
            "{kind}: init diverged"
        );
    }
}

/// The strategy under study must not affect the contract: spot-check the
/// non-baseline dispatch paths (COAL's range walk, TypePointer's tagged
/// loads) on a representative workload each.
#[test]
fn strategies_serial_vs_parallel_identical() {
    for (kind, strategy) in [
        (WorkloadKind::Traffic, Strategy::Cuda),
        (WorkloadKind::VeBfs, Strategy::Coal),
        (WorkloadKind::Raytrace, Strategy::TypePointerProto),
        (WorkloadKind::GameOfLife, Strategy::TypePointerHw),
        (WorkloadKind::VenPr, Strategy::Concord),
    ] {
        let serial = run_workload(kind, strategy, &cfg_with_threads(1));
        let parallel = run_workload(kind, strategy, &cfg_with_threads(2));
        assert_eq!(
            serial.stats, parallel.stats,
            "{kind}/{strategy}: stats diverged"
        );
        assert_eq!(
            serial.checksum, parallel.checksum,
            "{kind}/{strategy}: checksum diverged"
        );
    }
}

/// Two parallel runs agree with each other (no hidden scheduling or
/// iteration-order dependence), including with auto thread count.
#[test]
fn parallel_runs_repeatable() {
    for threads in [2, 0] {
        let a = run_workload(
            WorkloadKind::Structure,
            Strategy::Coal,
            &cfg_with_threads(threads),
        );
        let b = run_workload(
            WorkloadKind::Structure,
            Strategy::Coal,
            &cfg_with_threads(threads),
        );
        assert_eq!(a.stats, b.stats, "threads={threads}");
        assert_eq!(a.checksum, b.checksum, "threads={threads}");
    }
}
