//! RAY — a Shirley-style ray tracer over polymorphic renderables.
//!
//! Each thread shades one pixel and loops over the whole object list
//! testing `hit()` — so every lane calls the virtual function on the
//! *same* object instance. The compiler marks these call sites
//! statically converged; COAL's heuristic therefore leaves them
//! uninstrumented (§5), which is why RAY behaves differently from the
//! other ten apps in Figs. 6–9.

use crate::config::{RunResult, WorkloadConfig};
use crate::rig::{Checksum, Rig};
use crate::util::splitmix64;
use gvf_core::{CallSite, FuncId, Strategy, TypeRegistry};
use gvf_sim::{lanes_from_fn, AccessTag, WARP_SIZE};

const F_SPHERE_HIT: FuncId = FuncId(0);
const F_PLANE_HIT: FuncId = FuncId(1);
const F_DISC_HIT: FuncId = FuncId(2);

// Sphere fields: cx, cy, cz, r (f32). Plane: nx, ny, nz, d.
// Disc: cx, cy, cz, r, nz-implied.
const G_A: u64 = 0;
const G_B: u64 = 4;
const G_C: u64 = 8;
const G_D: u64 = 12;

/// Runs RAY under `strategy`.
pub fn run(strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    let mut reg = TypeRegistry::new();
    let t_sphere = reg.add_type("Sphere", 16, &[F_SPHERE_HIT]);
    let t_plane = reg.add_type("Plane", 16, &[F_PLANE_HIT]);
    let t_disc = reg.add_type("Disc", 16, &[F_DISC_HIT]);

    let mut rig = Rig::new(&reg, strategy, cfg);
    let n_objects = 125 * cfg.scale as usize;
    let n_pixels = 2048 * cfg.scale as usize;

    let mut scene = Vec::with_capacity(n_objects);
    for i in 0..n_objects {
        let h = splitmix64(cfg.seed ^ 0x5ce0 ^ i as u64);
        let t = match h % 10 {
            0..=5 => t_sphere,
            6..=8 => t_plane,
            _ => t_disc,
        };
        let obj = rig.construct(t);
        let hdr = rig.prog.header_bytes();
        let p = obj.strip_tag();
        let f = |k: u64| ((splitmix64(h ^ k) % 2000) as f32 - 1000.0) / 100.0;
        rig.mem.write_f32(p.offset(hdr + G_A), f(1)).unwrap();
        rig.mem.write_f32(p.offset(hdr + G_B), f(2)).unwrap();
        rig.mem
            .write_f32(p.offset(hdr + G_C), f(3).abs() + 3.0)
            .unwrap();
        rig.mem
            .write_f32(p.offset(hdr + G_D), f(4).abs() * 0.2 + 0.4)
            .unwrap();
        scene.push(obj);
    }
    rig.finalize();

    let fb = rig.reserve(n_pixels as u64 * 4, 256);

    for _sample in 0..cfg.iterations {
        rig.run_kernel(n_pixels, |prog, w| {
            // Primary ray from the pixel index.
            w.alu(6);
            let mut nearest = [f32::INFINITY; WARP_SIZE];
            let mut hit_kind = [0u32; WARP_SIZE];
            let dirs: Vec<(f32, f32, f32)> = (0..WARP_SIZE)
                .map(|l| {
                    let t = w.thread_id(l);
                    let x = (t % 64) as f32 / 32.0 - 1.0;
                    let y = (t / 64) as f32 / 32.0 - 1.0;
                    let inv = 1.0 / (x * x + y * y + 1.0).sqrt();
                    (x * inv, y * inv, inv)
                })
                .collect();

            // The object loop: every lane tests the SAME object, so the
            // call site is statically converged.
            let site = CallSite::new(0).converged();
            for (oi, &obj) in scene.iter().enumerate() {
                w.branch(); // loop trip
                let objs = lanes_from_fn(|_| Some(obj));
                prog.vcall(w, &site, &objs, |w, fid| {
                    let a = prog.ld_field(w, &objs, G_A, 4);
                    let b = prog.ld_field(w, &objs, G_B, 4);
                    let c = prog.ld_field(w, &objs, G_C, 4);
                    let d = prog.ld_field(w, &objs, G_D, 4);
                    let (Some(a), Some(b), Some(c), Some(d)) = (
                        a.iter().flatten().next().copied(),
                        b.iter().flatten().next().copied(),
                        c.iter().flatten().next().copied(),
                        d.iter().flatten().next().copied(),
                    ) else {
                        return;
                    };
                    let (a, b, c, d) = (
                        f32::from_bits(a as u32),
                        f32::from_bits(b as u32),
                        f32::from_bits(c as u32),
                        f32::from_bits(d as u32),
                    );
                    match fid {
                        F_SPHERE_HIT => {
                            w.alu(16); // quadratic intersection
                            for l in w.active_lanes().collect::<Vec<_>>() {
                                let (dx, dy, dz) = dirs[l];
                                // Ray from origin: project centre on dir.
                                let tproj = a * dx + b * dy + c * dz;
                                if tproj <= 0.0 {
                                    continue;
                                }
                                let px = tproj * dx - a;
                                let py = tproj * dy - b;
                                let pz = tproj * dz - c;
                                let dist2 = px * px + py * py + pz * pz;
                                if dist2 < d * d && tproj < nearest[l] {
                                    nearest[l] = tproj;
                                    hit_kind[l] = 1 + (oi as u32 % 7);
                                }
                            }
                        }
                        F_PLANE_HIT => {
                            w.alu(8); // plane intersection
                            for l in w.active_lanes().collect::<Vec<_>>() {
                                let (dx, dy, dz) = dirs[l];
                                let denom = a * dx + b * dy + c * dz;
                                if denom.abs() < 1e-5 {
                                    continue;
                                }
                                let t = d.abs() * 8.0 / denom.abs();
                                if t > 0.0 && t < nearest[l] {
                                    nearest[l] = t;
                                    hit_kind[l] = 8 + (oi as u32 % 5);
                                }
                            }
                        }
                        F_DISC_HIT => {
                            w.alu(12);
                            for l in w.active_lanes().collect::<Vec<_>>() {
                                let (dx, dy, dz) = dirs[l];
                                let t = (c + 2.0) / dz.max(1e-5);
                                let px = t * dx - a;
                                let py = t * dy - b;
                                if px * px + py * py < d * d && t > 0.0 && t < nearest[l] {
                                    nearest[l] = t;
                                    hit_kind[l] = 16 + (oi as u32 % 3);
                                }
                            }
                        }
                        other => panic!("unexpected hit callee {other}"),
                    }
                });
            }

            // Shade and write the framebuffer.
            w.alu(5);
            let color = lanes_from_fn(|l| {
                w.is_active(l).then(|| {
                    if nearest[l].is_finite() {
                        (hit_kind[l] as u64) << 8 | ((nearest[l] * 16.0) as u64 & 0xff)
                    } else {
                        0x20 // sky
                    }
                })
            });
            let fb_addrs = lanes_from_fn(|l| {
                (w.thread_id(l) < n_pixels).then(|| fb.offset(w.thread_id(l) as u64 * 4))
            });
            w.st(AccessTag::Other, 4, &fb_addrs, &color);
        });
    }

    let mut ck = Checksum::new();
    let mut lit = 0u64;
    for px in 0..n_pixels {
        let c = rig.mem.read_u32(fb.offset(px as u64 * 4)).unwrap();
        ck.push(c as u64);
        if c != 0x20 {
            lit += 1;
        }
    }
    let metrics = vec![("lit_pixels", lit as f64), ("pixels", n_pixels as f64)];
    crate::util::collect_with_metrics(rig, &reg, ck, metrics)
}
