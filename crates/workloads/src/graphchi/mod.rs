//! GraphChi-derived graph analytics: BFS, CC, PageRank over graphs with
//! virtual edges (vE) and virtual edges + nodes (vEN).
//!
//! The paper runs GraphChi's example apps; we generate a deterministic
//! synthetic graph (no external datasets) with a skewed degree
//! distribution and a Hamiltonian ring for connectivity.

pub mod ve;
pub mod ven;

use crate::util::splitmix64;

/// The three graph algorithms of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphAlgo {
    /// Breadth-first search: level relaxation from vertex 0.
    Bfs,
    /// Connected components by min-label propagation.
    Cc,
    /// PageRank with damping 0.85.
    Pr,
}

/// A directed graph in CSR form (out-edges) plus its transpose.
#[derive(Clone, Debug)]
pub struct SynthGraph {
    /// Vertex count.
    pub n: usize,
    /// Out-CSR row offsets (`n + 1` entries).
    pub out_row: Vec<u32>,
    /// Out-edge destinations.
    pub out_dst: Vec<u32>,
    /// In-CSR row offsets (`n + 1` entries) of the transpose.
    pub in_row: Vec<u32>,
    /// For each in-edge: the *original* out-edge index (→ edge object).
    pub in_edge_idx: Vec<u32>,
}

impl SynthGraph {
    /// Edge count.
    pub fn m(&self) -> usize {
        self.out_dst.len()
    }

    /// Out-degree of `v`.
    pub fn out_deg(&self, v: usize) -> u32 {
        self.out_row[v + 1] - self.out_row[v]
    }

    /// In-degree of `v`.
    pub fn in_deg(&self, v: usize) -> u32 {
        self.in_row[v + 1] - self.in_row[v]
    }
}

/// Generates the evaluation graph: every vertex gets a ring edge
/// (`v → v+1 mod n`) plus 1–8 hash-drawn extra edges, skewed toward a
/// few hub targets.
pub fn generate(n: usize, seed: u64) -> SynthGraph {
    assert!(n >= 2, "graph needs at least two vertices");
    let mut out_row = Vec::with_capacity(n + 1);
    let mut out_dst = Vec::new();
    out_row.push(0u32);
    for v in 0..n {
        out_dst.push(((v + 1) % n) as u32);
        let extra = 1 + (splitmix64(seed ^ v as u64) % 8) as usize;
        for e in 0..extra {
            let h = splitmix64(seed ^ ((v as u64) << 20) ^ e as u64);
            // 25% of edges point at the hub set (first n/64 vertices).
            let dst = if h % 4 == 0 {
                (h >> 8) as usize % (n / 64).max(1)
            } else {
                (h >> 8) as usize % n
            };
            out_dst.push(dst as u32);
        }
        out_row.push(out_dst.len() as u32);
    }
    build_csr(n, out_row, out_dst)
}

/// Builds a graph from explicit `(src, dst)` edges (any order).
///
/// For running the graph workloads on real inputs instead of the
/// synthetic generator. Vertex count is `n`; edges referencing vertices
/// `>= n` are rejected.
///
/// # Panics
/// Panics if `n < 2` or an edge endpoint is out of range.
pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> SynthGraph {
    assert!(n >= 2, "graph needs at least two vertices");
    let mut by_src: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (s, d) in edges {
        assert!(
            (s as usize) < n && (d as usize) < n,
            "edge ({s},{d}) out of range"
        );
        by_src[s as usize].push(d);
    }
    let mut out_row = Vec::with_capacity(n + 1);
    let mut out_dst = Vec::new();
    out_row.push(0u32);
    for dsts in &by_src {
        out_dst.extend_from_slice(dsts);
        out_row.push(out_dst.len() as u32);
    }
    build_csr(n, out_row, out_dst)
}

/// Parses a whitespace-separated edge list (`src dst` per line; `#` and
/// `%` lines are comments), inferring the vertex count.
///
/// # Errors
/// Returns a message naming the offending line on malformed input.
pub fn parse_edge_list(text: &str) -> Result<SynthGraph, String> {
    let mut edges = Vec::new();
    let mut max_v = 1u32;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, String> {
            tok.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                .parse::<u32>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        max_v = max_v.max(s).max(d);
        edges.push((s, d));
    }
    if edges.is_empty() {
        return Err("edge list contains no edges".to_owned());
    }
    Ok(from_edges(max_v as usize + 1, edges))
}

fn build_csr(n: usize, out_row: Vec<u32>, out_dst: Vec<u32>) -> SynthGraph {
    // Transpose.
    let m = out_dst.len();
    let mut in_count = vec![0u32; n];
    for &d in &out_dst {
        in_count[d as usize] += 1;
    }
    let mut in_row = Vec::with_capacity(n + 1);
    in_row.push(0u32);
    for v in 0..n {
        in_row.push(in_row[v] + in_count[v]);
    }
    let mut cursor: Vec<u32> = in_row[..n].to_vec();
    let mut in_edge_idx = vec![0u32; m];
    for v in 0..n {
        for e in out_row[v]..out_row[v + 1] {
            let d = out_dst[e as usize] as usize;
            in_edge_idx[cursor[d] as usize] = e;
            cursor[d] += 1;
        }
    }

    SynthGraph {
        n,
        out_row,
        out_dst,
        in_row,
        in_edge_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = generate(500, 42);
        let b = generate(500, 42);
        assert_eq!(a.out_dst, b.out_dst);
        assert_ne!(a.out_dst, generate(500, 43).out_dst);
    }

    #[test]
    fn csr_is_well_formed() {
        let g = generate(300, 1);
        assert_eq!(g.out_row.len(), 301);
        assert_eq!(g.in_row.len(), 301);
        assert_eq!(*g.out_row.last().unwrap() as usize, g.m());
        assert_eq!(*g.in_row.last().unwrap() as usize, g.m());
        assert!(g.out_dst.iter().all(|&d| (d as usize) < g.n));
    }

    #[test]
    fn transpose_is_consistent() {
        let g = generate(200, 9);
        // Every in-edge index points at an out-edge whose dst is the
        // vertex owning that in-slot.
        for v in 0..g.n {
            for k in g.in_row[v]..g.in_row[v + 1] {
                let e = g.in_edge_idx[k as usize] as usize;
                assert_eq!(g.out_dst[e] as usize, v);
            }
        }
    }

    #[test]
    fn from_edges_and_parser_agree() {
        let text = "# comment\n0 1\n1 2\n2 0\n% another comment\n2 1\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.n, 3);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_deg(2), 2);
        assert_eq!(g.in_deg(1), 2);
        // Transpose consistency holds for loaded graphs too.
        for v in 0..g.n {
            for k in g.in_row[v]..g.in_row[v + 1] {
                let e = g.in_edge_idx[k as usize] as usize;
                assert_eq!(g.out_dst[e] as usize, v);
            }
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_edge_list("0 x\n").is_err());
        assert!(parse_edge_list("0\n").is_err());
        assert!(parse_edge_list("# only comments\n").is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_bounds_checked() {
        from_edges(2, [(0u32, 5u32)]);
    }

    #[test]
    fn ring_guarantees_reachability() {
        let g = generate(100, 3);
        for v in 0..g.n {
            let row = &g.out_dst[g.out_row[v] as usize..g.out_row[v + 1] as usize];
            assert!(row.contains(&(((v + 1) % g.n) as u32)));
        }
    }
}
