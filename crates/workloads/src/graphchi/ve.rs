//! GraphChi-vE: BFS / CC / PageRank with **virtual edges**.
//!
//! Edges are polymorphic objects (`ChiEdge` hierarchy in the original);
//! vertex state lives in flat device arrays. Every per-edge operation is
//! a virtual call through a (diverged) edge pointer — the access pattern
//! whose dispatch cost Figs. 6–9 measure.

use crate::config::{RunResult, WorkloadConfig};
use crate::graphchi::{generate, GraphAlgo, SynthGraph};
use crate::rig::{Checksum, Rig};
use crate::util::splitmix64;
use gvf_core::{CallSite, FuncId, Strategy, TypeRegistry};
use gvf_mem::VirtAddr;
use gvf_sim::{lanes_from_fn, lanes_none, AccessTag, Lanes, WARP_SIZE};

const F_PLAIN: FuncId = FuncId(0);
const F_WEIGHTED: FuncId = FuncId(1);
const F_FLAGGED: FuncId = FuncId(2);
const F_STAMPED: FuncId = FuncId(3);

// Edge fields: src u32 @0, dst u32 @4, weight f32 @8, flags u32 @12.
const E_SRC: u64 = 0;
const E_WEIGHT: u64 = 8;

const INF: u64 = u32::MAX as u64;

/// Runs a GraphChi-vE algorithm under `strategy`.
pub fn run(algo: GraphAlgo, strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    let mut reg = TypeRegistry::new();
    let t_plain = reg.add_type("PlainEdge", 16, &[F_PLAIN]);
    let t_weighted = reg.add_type("WeightedEdge", 16, &[F_WEIGHTED]);
    let t_flagged = reg.add_type("FlaggedEdge", 16, &[F_FLAGGED]);
    let t_stamped = reg.add_type("StampedEdge", 16, &[F_STAMPED]);

    let mut rig = Rig::new(&reg, strategy, cfg);
    let g = generate(2048 * cfg.scale as usize, cfg.seed);

    // Edge objects in out-edge order, types hash-interleaved.
    let mut edges = Vec::with_capacity(g.m());
    for v in 0..g.n {
        for e in g.out_row[v]..g.out_row[v + 1] {
            let h = splitmix64(cfg.seed ^ 0xed9e ^ e as u64);
            let t = match h % 20 {
                0..=9 => t_plain,
                10..=15 => t_weighted,
                16..=18 => t_flagged,
                _ => t_stamped,
            };
            let obj = rig.construct(t);
            let hdr = rig.prog.header_bytes();
            let p = obj.strip_tag();
            rig.mem.write_u32(p.offset(hdr + E_SRC), v as u32).unwrap();
            rig.mem
                .write_u32(p.offset(hdr + 4), g.out_dst[e as usize])
                .unwrap();
            let wgt = 0.25 + (h % 100) as f32 / 100.0;
            rig.mem.write_f32(p.offset(hdr + E_WEIGHT), wgt).unwrap();
            edges.push(obj);
        }
    }
    rig.finalize();

    let arrays = DeviceArrays::build(&mut rig, &g, &edges, algo);
    let mut cur = 0usize; // which of the ping-pong value arrays is current
    for round in 0..cfg.iterations {
        let (val_cur, val_next) = (arrays.val[cur], arrays.val[1 - cur]);
        relax_round(
            &mut rig, &g, &edges, &arrays, algo, round, val_cur, val_next,
        );
        cur = 1 - cur;
    }

    let mut ck = Checksum::new();
    let mut value_sum = 0.0f64;
    let mut reached = 0u64;
    for v in 0..g.n {
        let bits = rig
            .mem
            .read_u32(arrays.val[cur].offset(v as u64 * 4))
            .unwrap();
        match algo {
            GraphAlgo::Pr => {
                ck.push_f32_quantized(f32::from_bits(bits));
                value_sum += f32::from_bits(bits) as f64;
            }
            _ => {
                ck.push(bits as u64);
                if bits != INF as u32 {
                    value_sum += bits as f64;
                    reached += 1;
                }
            }
        }
    }
    let metrics = vec![("value_sum", value_sum), ("reached", reached as f64)];
    crate::util::collect_with_metrics(rig, &reg, ck, metrics)
}

pub(crate) struct DeviceArrays {
    /// Ping-pong per-vertex value arrays (level / label / rank bits).
    pub val: [VirtAddr; 2],
    /// In-CSR row offsets (u32).
    pub in_row: VirtAddr,
    /// In-edge object pointers (u64), in-CSR order.
    pub in_ptrs: VirtAddr,
    /// Per-vertex out-degree (u32), for PageRank.
    pub out_deg: VirtAddr,
}

impl DeviceArrays {
    pub(crate) fn build(
        rig: &mut Rig,
        g: &SynthGraph,
        edges: &[VirtAddr],
        algo: GraphAlgo,
    ) -> Self {
        let n = g.n as u64;
        let val = [rig.reserve(n * 4, 256), rig.reserve(n * 4, 256)];
        let in_row = rig.reserve((n + 1) * 4, 256);
        let in_ptrs = rig.reserve(g.m() as u64 * 8, 256);
        let out_deg = rig.reserve(n * 4, 256);
        for v in 0..g.n {
            let init = match algo {
                GraphAlgo::Bfs => {
                    if v == 0 {
                        0
                    } else {
                        INF as u32
                    }
                }
                GraphAlgo::Cc => v as u32,
                GraphAlgo::Pr => 1.0f32.to_bits(),
            };
            rig.mem
                .write_u32(val[0].offset(v as u64 * 4), init)
                .unwrap();
            rig.mem
                .write_u32(val[1].offset(v as u64 * 4), init)
                .unwrap();
            rig.mem
                .write_u32(out_deg.offset(v as u64 * 4), g.out_deg(v))
                .unwrap();
        }
        for v in 0..=g.n {
            rig.mem
                .write_u32(in_row.offset(v as u64 * 4), g.in_row[v])
                .unwrap();
        }
        for (k, &e) in g.in_edge_idx.iter().enumerate() {
            rig.mem
                .write_ptr(in_ptrs.offset(k as u64 * 8), edges[e as usize])
                .unwrap();
        }
        DeviceArrays {
            val,
            in_row,
            in_ptrs,
            out_deg,
        }
    }
}

/// The edge-visit virtual call: loads the edge's `src` (all types) and
/// `weight` (weighted/stamped types), with per-type extra arithmetic.
/// Returns per-lane `(src, weight)`.
pub(crate) fn edge_visit(
    prog: &gvf_core::DeviceProgram,
    w: &mut gvf_sim::WarpCtx<'_>,
    eptrs: &Lanes<VirtAddr>,
) -> (Lanes<u64>, Lanes<f32>) {
    let mut srcs = lanes_none();
    let mut weights: Lanes<f32> = lanes_from_fn(|l| eptrs[l].map(|_| 1.0f32));
    prog.vcall(w, &CallSite::new(0), eptrs, |w, fid| {
        let s = prog.ld_field(w, eptrs, E_SRC, 4);
        for l in w.active_lanes().collect::<Vec<_>>() {
            srcs[l] = s[l];
        }
        match fid {
            F_PLAIN => w.alu(1),
            F_WEIGHTED | F_STAMPED => {
                let raw = prog.ld_field(w, eptrs, E_WEIGHT, 4);
                w.alu(2);
                for l in w.active_lanes().collect::<Vec<_>>() {
                    if let Some(bits) = raw[l] {
                        weights[l] = Some(f32::from_bits(bits as u32));
                    }
                }
            }
            F_FLAGGED => w.alu(3),
            other => panic!("unexpected edge callee {other}"),
        }
    });
    (srcs, weights)
}

#[allow(clippy::too_many_arguments)]
fn relax_round(
    rig: &mut Rig,
    g: &SynthGraph,
    _edges: &[VirtAddr],
    arrays: &DeviceArrays,
    algo: GraphAlgo,
    round: u32,
    val_cur: VirtAddr,
    val_next: VirtAddr,
) {
    let in_row = &g.in_row;
    let arrays_in_row = arrays.in_row;
    let in_ptrs = arrays.in_ptrs;
    let out_deg_arr = arrays.out_deg;
    let n = g.n;
    rig.run_kernel(n, |prog, w| {
        // CSR row bounds (two converging loads) + own value.
        let row_addrs = lanes_from_fn(|l| {
            (w.thread_id(l) < n).then(|| arrays_in_row.offset(w.thread_id(l) as u64 * 4))
        });
        w.ld(AccessTag::Other, 4, &row_addrs);
        w.ld(
            AccessTag::Other,
            4,
            &lanes_from_fn(|l| row_addrs[l].map(|a| a.offset(4))),
        );
        let own_addrs = lanes_from_fn(|l| {
            (w.thread_id(l) < n).then(|| val_cur.offset(w.thread_id(l) as u64 * 4))
        });
        let own = w.ld(AccessTag::Other, 4, &own_addrs);
        w.alu(2); // degree math

        let deg: Vec<u32> = (0..WARP_SIZE)
            .map(|l| {
                let v = w.thread_id(l);
                if v < n {
                    in_row[v + 1] - in_row[v]
                } else {
                    0
                }
            })
            .collect();
        let max_deg = (0..WARP_SIZE)
            .filter(|&l| w.is_active(l))
            .map(|l| deg[l])
            .max()
            .unwrap_or(0);

        // Per-lane accumulators.
        let mut best: Vec<u64> = (0..WARP_SIZE).map(|l| own[l].unwrap_or(0)).collect();
        let mut sum = [0.0f32; WARP_SIZE];
        let mut found = [false; WARP_SIZE];

        for d in 0..max_deg {
            w.branch(); // loop trip
            let lane_on = |l: usize| {
                w.is_active(l) && w.thread_id(l) < n && d < deg[l] && {
                    // BFS only pulls for unvisited vertices.
                    algo != GraphAlgo::Bfs || own[l] == Some(INF)
                }
            };
            let any = (0..WARP_SIZE).any(&lane_on);
            if !any {
                continue;
            }
            // Edge pointer from the in-CSR pointer array (diverged).
            let ptr_addrs = lanes_from_fn(|l| {
                lane_on(l).then(|| in_ptrs.offset((in_row[w.thread_id(l)] + d) as u64 * 8))
            });
            let bits = w.ld(AccessTag::Other, 8, &ptr_addrs);
            let eptrs = lanes_from_fn(|l| bits[l].map(VirtAddr::new));
            let (srcs, weights) = edge_visit(prog, w, &eptrs);

            // Neighbour value.
            let src_val_addrs = lanes_from_fn(|l| srcs[l].map(|s| val_cur.offset(s * 4)));
            let sval = w.ld(AccessTag::Other, 4, &src_val_addrs);
            match algo {
                GraphAlgo::Bfs => {
                    w.alu(1);
                    for l in 0..WARP_SIZE {
                        if let Some(sv) = sval[l] {
                            if sv == round as u64 {
                                found[l] = true;
                            }
                        }
                    }
                }
                GraphAlgo::Cc => {
                    w.alu(1);
                    for l in 0..WARP_SIZE {
                        if let Some(sv) = sval[l] {
                            best[l] = best[l].min(sv);
                        }
                    }
                }
                GraphAlgo::Pr => {
                    let deg_addrs = lanes_from_fn(|l| srcs[l].map(|s| out_deg_arr.offset(s * 4)));
                    let sdeg = w.ld(AccessTag::Other, 4, &deg_addrs);
                    w.alu(3);
                    for l in 0..WARP_SIZE {
                        if let (Some(sv), Some(dg), Some(wt)) = (sval[l], sdeg[l], weights[l]) {
                            sum[l] += f32::from_bits(sv as u32) * wt / (dg.max(1) as f32);
                        }
                    }
                }
            }
        }

        // Publish into the next-round array (unique per vertex).
        w.alu(2);
        let next = lanes_from_fn(|l| {
            if !w.is_active(l) || w.thread_id(l) >= n {
                return None;
            }
            Some(match algo {
                GraphAlgo::Bfs => {
                    let cur = own[l].unwrap_or(INF);
                    if cur == INF && found[l] {
                        round as u64 + 1
                    } else {
                        cur
                    }
                }
                GraphAlgo::Cc => best[l],
                GraphAlgo::Pr => {
                    // Normalize the weight skew so ranks stay bounded.
                    (0.15 + 0.85 * (sum[l] / 1.75)).to_bits() as u64
                }
            })
        });
        let next_addrs = lanes_from_fn(|l| {
            (w.thread_id(l) < n).then(|| val_next.offset(w.thread_id(l) as u64 * 4))
        });
        w.st(AccessTag::Other, 4, &next_addrs, &next);
    });
}
