//! GraphChi-vEN: BFS / CC / PageRank with **virtual edges and nodes**.
//!
//! Vertices are polymorphic objects too (`ChiVertex` hierarchy): the
//! per-vertex update is itself a virtual call whose body runs the edge
//! loop with nested edge dispatches, plus a second virtual `commit`
//! phase — hence the higher vFuncPKI the paper reports for vEN.

use crate::config::{RunResult, WorkloadConfig};
use crate::graphchi::{generate, GraphAlgo, SynthGraph};
use crate::rig::{Checksum, Rig};
use crate::util::{lanes_ptrs, splitmix64};
use gvf_core::{CallSite, FuncId, Strategy, TypeRegistry};
use gvf_mem::VirtAddr;
use gvf_sim::{lanes_from_fn, lanes_none, AccessTag, Lanes, WARP_SIZE};

const F_HUB_UPDATE: FuncId = FuncId(0);
const F_LEAF_UPDATE: FuncId = FuncId(1);
const F_PLAIN_VISIT: FuncId = FuncId(2);
const F_WEIGHTED_VISIT: FuncId = FuncId(3);
const F_HUB_COMMIT: FuncId = FuncId(4);
const F_LEAF_COMMIT: FuncId = FuncId(5);

// Vertex fields: val u32 @0, next u32 @4, in_deg u32 @8, row_start u32 @12.
const V_VAL: u64 = 0;
const V_NEXT: u64 = 4;
const V_DEG: u64 = 8;
const V_ROW: u64 = 12;
// Edge fields: src u32 @0, dst u32 @4, weight f32 @8.
const E_SRC: u64 = 0;
const E_WEIGHT: u64 = 8;

const INF: u64 = u32::MAX as u64;

/// Runs a GraphChi-vEN algorithm under `strategy`.
pub fn run(algo: GraphAlgo, strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    // Paper Table 2: vEN apps carry 10-15 vFuncs in compiled code.
    let mut reg = TypeRegistry::new();
    let mut filler = 100u32;
    let t_hub = reg.add_type(
        "HubVertex",
        16,
        &crate::util::vfuncs_with_fillers(&[F_HUB_UPDATE, F_HUB_COMMIT], 2, &mut filler),
    );
    let t_leaf = reg.add_type(
        "LeafVertex",
        16,
        &crate::util::vfuncs_with_fillers(&[F_LEAF_UPDATE, F_LEAF_COMMIT], 2, &mut filler),
    );
    let t_plain = reg.add_type(
        "PlainEdge",
        16,
        &crate::util::vfuncs_with_fillers(&[F_PLAIN_VISIT], 2, &mut filler),
    );
    let t_weighted = reg.add_type(
        "WeightedEdge",
        16,
        &crate::util::vfuncs_with_fillers(&[F_WEIGHTED_VISIT], 2, &mut filler),
    );

    let mut rig = Rig::new(&reg, strategy, cfg);
    let g = generate(2048 * cfg.scale as usize, cfg.seed ^ 0x7e4);

    // Vertices and their out-edges constructed interleaved, as GraphChi's
    // loader would build them.
    let mut verts = Vec::with_capacity(g.n);
    let mut edges = Vec::with_capacity(g.m());
    for v in 0..g.n {
        let ty = if g.in_deg(v) >= 16 { t_hub } else { t_leaf };
        let obj = rig.construct(ty);
        verts.push(obj);
        for e in g.out_row[v]..g.out_row[v + 1] {
            let h = splitmix64(cfg.seed ^ 0xeeee ^ e as u64);
            let t = if h % 3 == 0 { t_weighted } else { t_plain };
            let eo = rig.construct(t);
            let hdr = rig.prog.header_bytes();
            let p = eo.strip_tag();
            rig.mem.write_u32(p.offset(hdr + E_SRC), v as u32).unwrap();
            rig.mem
                .write_u32(p.offset(hdr + 4), g.out_dst[e as usize])
                .unwrap();
            rig.mem
                .write_f32(p.offset(hdr + E_WEIGHT), 0.5 + (h % 64) as f32 / 64.0)
                .unwrap();
            edges.push(eo);
        }
    }
    // Vertex field init.
    for v in 0..g.n {
        let hdr = rig.prog.header_bytes();
        let p = verts[v].strip_tag();
        let init = match algo {
            GraphAlgo::Bfs => {
                if v == 0 {
                    0
                } else {
                    INF as u32
                }
            }
            GraphAlgo::Cc => v as u32,
            GraphAlgo::Pr => 1.0f32.to_bits(),
        };
        rig.mem.write_u32(p.offset(hdr + V_VAL), init).unwrap();
        rig.mem.write_u32(p.offset(hdr + V_NEXT), init).unwrap();
        rig.mem
            .write_u32(p.offset(hdr + V_DEG), g.in_deg(v))
            .unwrap();
        rig.mem
            .write_u32(p.offset(hdr + V_ROW), g.in_row[v])
            .unwrap();
    }
    rig.finalize();

    // Device arrays: in-edge object pointers, vertex object pointers
    // (for neighbour access), per-vertex out-degree.
    let in_ptrs = rig.reserve(g.m() as u64 * 8, 256);
    for (k, &e) in g.in_edge_idx.iter().enumerate() {
        rig.mem
            .write_ptr(in_ptrs.offset(k as u64 * 8), edges[e as usize])
            .unwrap();
    }
    let vert_ptrs = rig.reserve(g.n as u64 * 8, 256);
    for (v, p) in verts.iter().enumerate() {
        rig.mem
            .write_ptr(vert_ptrs.offset(v as u64 * 8), *p)
            .unwrap();
    }
    let out_deg = rig.reserve(g.n as u64 * 4, 256);
    for v in 0..g.n {
        rig.mem
            .write_u32(out_deg.offset(v as u64 * 4), g.out_deg(v))
            .unwrap();
    }

    for round in 0..cfg.iterations {
        update_round(
            &mut rig, &g, &verts, algo, round, in_ptrs, vert_ptrs, out_deg,
        );
        // Commit phase: val = next, via the second virtual slot.
        rig.run_kernel(g.n, |prog, w| {
            let objs = lanes_ptrs(w, &verts);
            prog.vcall(w, &CallSite::new(1), &objs, |w, fid| {
                let next = prog.ld_field(w, &objs, V_NEXT, 4);
                prog.st_field(w, &objs, V_VAL, 4, &next);
                w.alu(if fid == F_HUB_COMMIT { 2 } else { 1 });
            });
        });
        let _ = round;
    }

    let mut ck = Checksum::new();
    let hdr = rig.prog.header_bytes();
    let mut value_sum = 0.0f64;
    let mut reached = 0u64;
    for p in &verts {
        let bits = rig.mem.read_u32(p.strip_tag().offset(hdr + V_VAL)).unwrap();
        match algo {
            GraphAlgo::Pr => {
                ck.push_f32_quantized(f32::from_bits(bits));
                value_sum += f32::from_bits(bits) as f64;
            }
            _ => {
                ck.push(bits as u64);
                if bits != INF as u32 {
                    value_sum += bits as f64;
                    reached += 1;
                }
            }
        }
    }
    let metrics = vec![("value_sum", value_sum), ("reached", reached as f64)];
    crate::util::collect_with_metrics(rig, &reg, ck, metrics)
}

#[allow(clippy::too_many_arguments)]
fn update_round(
    rig: &mut Rig,
    g: &SynthGraph,
    verts: &[VirtAddr],
    algo: GraphAlgo,
    round: u32,
    in_ptrs: VirtAddr,
    vert_ptrs: VirtAddr,
    out_deg: VirtAddr,
) {
    let n = g.n;
    let in_row = &g.in_row;
    rig.run_kernel(n, |prog, w| {
        let objs = lanes_ptrs(w, verts);
        prog.vcall(w, &CallSite::new(0), &objs, |w, vfid| {
            // Hub bodies do an extra bookkeeping step.
            w.alu(if vfid == F_HUB_UPDATE { 3 } else { 1 });
            let own = prog.ld_field(w, &objs, V_VAL, 4);
            let degf = prog.ld_field(w, &objs, V_DEG, 4);
            prog.ld_field(w, &objs, V_ROW, 4);

            let deg: Vec<u32> = (0..WARP_SIZE)
                .map(|l| degf[l].map(|d| d as u32).unwrap_or(0))
                .collect();
            let max_deg = (0..WARP_SIZE)
                .filter(|&l| w.is_active(l))
                .map(|l| deg[l])
                .max()
                .unwrap_or(0);

            let mut best: Vec<u64> = (0..WARP_SIZE).map(|l| own[l].unwrap_or(0)).collect();
            let mut sum = [0.0f32; WARP_SIZE];
            let mut found = [false; WARP_SIZE];

            for d in 0..max_deg {
                w.branch();
                let outer = w.mask();
                let lane_on = |l: usize| {
                    (outer >> l) & 1 == 1 && w.thread_id(l) < n && d < deg[l] && {
                        algo != GraphAlgo::Bfs || own[l] == Some(INF)
                    }
                };
                if !(0..WARP_SIZE).any(&lane_on) {
                    continue;
                }
                let ptr_addrs = lanes_from_fn(|l| {
                    lane_on(l).then(|| in_ptrs.offset((in_row[w.thread_id(l)] + d) as u64 * 8))
                });
                let bits = w.ld(AccessTag::Other, 8, &ptr_addrs);
                let eptrs = lanes_from_fn(|l| bits[l].map(VirtAddr::new));

                // Nested edge dispatch.
                let mut srcs = lanes_none();
                let mut weights: Lanes<f32> = lanes_from_fn(|l| eptrs[l].map(|_| 1.0f32));
                prog.vcall(w, &CallSite::new(0), &eptrs, |w, efid| {
                    let s = prog.ld_field(w, &eptrs, E_SRC, 4);
                    for l in w.active_lanes().collect::<Vec<_>>() {
                        srcs[l] = s[l];
                    }
                    if efid == F_WEIGHTED_VISIT {
                        let raw = prog.ld_field(w, &eptrs, E_WEIGHT, 4);
                        w.alu(2);
                        for l in w.active_lanes().collect::<Vec<_>>() {
                            if let Some(b) = raw[l] {
                                weights[l] = Some(f32::from_bits(b as u32));
                            }
                        }
                    } else {
                        w.alu(1);
                    }
                });

                // Neighbour vertex object → its current value (Field).
                let sv_addr = lanes_from_fn(|l| srcs[l].map(|s| vert_ptrs.offset(s * 8)));
                let sp_bits = w.ld(AccessTag::Other, 8, &sv_addr);
                let sptrs = lanes_from_fn(|l| sp_bits[l].map(VirtAddr::new));
                let sval = prog.ld_field(w, &sptrs, V_VAL, 4);

                match algo {
                    GraphAlgo::Bfs => {
                        w.alu(1);
                        for l in 0..WARP_SIZE {
                            if sval[l] == Some(round as u64) {
                                found[l] = true;
                            }
                        }
                    }
                    GraphAlgo::Cc => {
                        w.alu(1);
                        for l in 0..WARP_SIZE {
                            if let Some(sv) = sval[l] {
                                best[l] = best[l].min(sv);
                            }
                        }
                    }
                    GraphAlgo::Pr => {
                        let da = lanes_from_fn(|l| srcs[l].map(|s| out_deg.offset(s * 4)));
                        let sdeg = w.ld(AccessTag::Other, 4, &da);
                        w.alu(3);
                        for l in 0..WARP_SIZE {
                            if let (Some(sv), Some(dg), Some(wt)) = (sval[l], sdeg[l], weights[l]) {
                                sum[l] += f32::from_bits(sv as u32) * wt / (dg.max(1) as f32);
                            }
                        }
                    }
                }
            }

            w.alu(2);
            let next = lanes_from_fn(|l| {
                if !w.is_active(l) || w.thread_id(l) >= n {
                    return None;
                }
                Some(match algo {
                    GraphAlgo::Bfs => {
                        let cur = own[l].unwrap_or(INF);
                        if cur == INF && found[l] {
                            round as u64 + 1
                        } else {
                            cur
                        }
                    }
                    GraphAlgo::Cc => best[l],
                    GraphAlgo::Pr => (0.15 + 0.85 * (sum[l] / 2.0)).to_bits() as u64,
                })
            });
            prog.st_field(w, &objs, V_NEXT, 4, &next);
        });
    });
}
