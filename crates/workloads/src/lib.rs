//! # gvf-workloads — the object-oriented GPU workloads of the evaluation
//!
//! Rust ports of the eleven applications in the paper's Table 2 —
//! four DynaSOAr model simulations (TRAF, GOL, STUT, GEN), six
//! GraphChi graph-analytics kernels (vE/vEN × BFS/CC/PR), and a ray
//! tracer (RAY) — plus the §8.3 scalability microbenchmarks. All inputs
//! are synthetic and deterministic; every workload produces a checksum
//! that is identical under every dispatch [`Strategy`], mirroring the
//! paper's functional validation.
//!
//! ```
//! use gvf_core::Strategy;
//! use gvf_workloads::{run_workload, WorkloadConfig, WorkloadKind};
//!
//! let cfg = WorkloadConfig::tiny();
//! let a = run_workload(WorkloadKind::GameOfLife, Strategy::SharedOa, &cfg);
//! let b = run_workload(WorkloadKind::GameOfLife, Strategy::TypePointerHw, &cfg);
//! assert_eq!(a.checksum, b.checksum);
//! ```

// Lane-indexed loops over parallel per-lane arrays are the natural way
// to write SIMT-style code; iterator adaptors obscure the lane index.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]
#![warn(missing_docs)]

pub mod dynasoar;
pub mod graphchi;
pub mod micro;
pub mod ray;

mod config;
mod rig;
pub mod util;

pub use config::{
    AllocAttribSnapshot, AttribBundle, ParseWorkloadError, RunResult, Table2Row, WorkloadConfig,
    WorkloadKind,
};
pub use graphchi::GraphAlgo;
pub use micro::MicroParams;
pub use rig::{Checksum, Rig};

use gvf_core::Strategy;

/// Runs one of the eleven evaluated workloads under `strategy`.
///
/// # Panics
/// Panics if `kind` is [`WorkloadKind::Micro`] (use [`micro::run`] with
/// explicit [`MicroParams`]) or if `strategy` is [`Strategy::Branch`]
/// (BRANCH exists only for the microbenchmarks, §8.3).
pub fn run_workload(kind: WorkloadKind, strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    assert!(
        strategy != Strategy::Branch,
        "BRANCH is a microbenchmark-only baseline; use gvf_workloads::micro"
    );
    match kind {
        WorkloadKind::Traffic => dynasoar::traffic::run(strategy, cfg),
        WorkloadKind::GameOfLife => dynasoar::game_of_life::run(strategy, cfg),
        WorkloadKind::Structure => dynasoar::structure::run(strategy, cfg),
        WorkloadKind::Generation => dynasoar::generation::run(strategy, cfg),
        WorkloadKind::VeBfs => graphchi::ve::run(GraphAlgo::Bfs, strategy, cfg),
        WorkloadKind::VeCc => graphchi::ve::run(GraphAlgo::Cc, strategy, cfg),
        WorkloadKind::VePr => graphchi::ve::run(GraphAlgo::Pr, strategy, cfg),
        WorkloadKind::VenBfs => graphchi::ven::run(GraphAlgo::Bfs, strategy, cfg),
        WorkloadKind::VenCc => graphchi::ven::run(GraphAlgo::Cc, strategy, cfg),
        WorkloadKind::VenPr => graphchi::ven::run(GraphAlgo::Pr, strategy, cfg),
        WorkloadKind::Raytrace => ray::run(strategy, cfg),
        WorkloadKind::Micro => {
            panic!("use gvf_workloads::micro::run with explicit MicroParams")
        }
    }
}
