//! Workload identification, configuration, and results.

use gvf_alloc::{AllocStats, AllocatorKind, SharedOa, TypeRegionStats};
use gvf_core::{LookupAttrib, LookupKind, TagAttrib, TagMode};
use gvf_sim::{AttribReport, CycleAuditReport, GpuConfig, ObsReport, ProbeSpec, Stats};
use std::fmt;

/// The eleven evaluated applications (paper Table 2) plus the §8.3
/// scalability microbenchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadKind {
    /// DynaSOAr: Nagel–Schreckenberg traffic simulation (TRAF).
    Traffic,
    /// DynaSOAr: Conway's Game of Life (GOL).
    GameOfLife,
    /// DynaSOAr: finite-element fracture simulation (STUT).
    Structure,
    /// DynaSOAr: Game of Life with intermediate states (GEN).
    Generation,
    /// GraphChi-vE breadth-first search (virtual edges).
    VeBfs,
    /// GraphChi-vE connected components.
    VeCc,
    /// GraphChi-vE PageRank.
    VePr,
    /// GraphChi-vEN breadth-first search (virtual edges *and* nodes).
    VenBfs,
    /// GraphChi-vEN connected components.
    VenCc,
    /// GraphChi-vEN PageRank.
    VenPr,
    /// Shirley-style ray tracer (RAY).
    Raytrace,
    /// §8.3 scalability microbenchmark (high vFuncPKI).
    Micro,
}

impl WorkloadKind {
    /// The eleven applications of Table 2, in the paper's order.
    pub const EVALUATED: [WorkloadKind; 11] = [
        WorkloadKind::Traffic,
        WorkloadKind::GameOfLife,
        WorkloadKind::Structure,
        WorkloadKind::Generation,
        WorkloadKind::VeBfs,
        WorkloadKind::VeCc,
        WorkloadKind::VePr,
        WorkloadKind::VenBfs,
        WorkloadKind::VenCc,
        WorkloadKind::VenPr,
        WorkloadKind::Raytrace,
    ];

    /// The paper's short label (Table 2).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Traffic => "TRAF",
            WorkloadKind::GameOfLife => "GOL",
            WorkloadKind::Structure => "STUT",
            WorkloadKind::Generation => "GEN",
            WorkloadKind::VeBfs => "vE-BFS",
            WorkloadKind::VeCc => "vE-CC",
            WorkloadKind::VePr => "vE-PR",
            WorkloadKind::VenBfs => "vEN-BFS",
            WorkloadKind::VenCc => "vEN-CC",
            WorkloadKind::VenPr => "vEN-PR",
            WorkloadKind::Raytrace => "RAY",
            WorkloadKind::Micro => "MICRO",
        }
    }

    /// The suite grouping used in the figures.
    pub fn suite(self) -> &'static str {
        match self {
            WorkloadKind::Traffic
            | WorkloadKind::GameOfLife
            | WorkloadKind::Structure
            | WorkloadKind::Generation => "Dynasoar",
            WorkloadKind::VeBfs | WorkloadKind::VeCc | WorkloadKind::VePr => "GraphChi-vE",
            WorkloadKind::VenBfs | WorkloadKind::VenCc | WorkloadKind::VenPr => "GraphChi-vEN",
            WorkloadKind::Raytrace => "RAY",
            WorkloadKind::Micro => "Micro",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for WorkloadKind {
    type Err = ParseWorkloadError;

    /// Parses a Table 2 label, case-insensitively; accepts long aliases
    /// (`traffic`, `gameoflife`, `structure`, `generation`, `raytrace`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        WorkloadKind::EVALUATED
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(s))
            .or(match lower.as_str() {
                "traffic" => Some(WorkloadKind::Traffic),
                "gameoflife" | "gol" => Some(WorkloadKind::GameOfLife),
                "structure" | "stut" => Some(WorkloadKind::Structure),
                "generation" | "gen" => Some(WorkloadKind::Generation),
                "raytrace" | "ray" => Some(WorkloadKind::Raytrace),
                "micro" => Some(WorkloadKind::Micro),
                _ => None,
            })
            .ok_or(ParseWorkloadError)
    }
}

/// Error returned when a workload label cannot be parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseWorkloadError;

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("unknown workload name")
    }
}

impl std::error::Error for ParseWorkloadError {}

/// Size, seed and machine knobs for one workload run.
///
/// Paper-scale inputs (0.5–5.6 M objects) are reachable by raising
/// [`scale`](WorkloadConfig::scale); the defaults are ~16× smaller so the
/// whole figure suite finishes in minutes on a CPU (DESIGN.md §6).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Linear size multiplier on the workload's base population.
    pub scale: u32,
    /// Compute-kernel iterations to run and measure.
    pub iterations: u32,
    /// RNG seed (inputs are synthetic and fully deterministic).
    pub seed: u64,
    /// GPU model.
    pub gpu: GpuConfig,
    /// SharedOA's initial chunk size, in objects (Fig. 10 knob).
    pub initial_chunk_objs: u64,
    /// Force a specific allocator regardless of strategy (Fig. 11 runs
    /// TypePointer over [`AllocatorKind::Cuda`]).
    pub allocator_override: Option<AllocatorKind>,
    /// TypePointer tag mode (§6.2).
    pub tag_mode: TagMode,
    /// COAL range-lookup structure (§5 ablation knob).
    pub coal_lookup: LookupKind,
    /// TypePointer tag-encoding budget in bytes (`None` = unbounded).
    /// Types whose vTable falls outside it take the §6.1 fallback path.
    pub tag_budget: Option<u64>,
    /// Simulated DRAM capacity in bytes.
    pub device_memory_bytes: u64,
    /// Host threads for the timing engine's per-SM phase (`1` = serial,
    /// `0` = auto). Purely a wall-clock knob: simulated results are
    /// bit-identical for any value (the engine's determinism contract).
    pub engine_threads: usize,
    /// Per-SM event-driven fast-forward in the timing engine (on by
    /// default). Like `engine_threads`, purely a wall-clock knob:
    /// stats, probe streams and artifacts are bit-identical either
    /// way. Off (`--no-fast-forward`) forces plain epoch ticking so CI
    /// can A/B the two paths.
    pub fast_forward: bool,
    /// Observability recording for this run ([`ProbeSpec::OFF`] by
    /// default, which keeps the engine on the zero-overhead
    /// `NopProbe` path). Probes observe without feeding back into
    /// timing, so enabling them never changes [`Stats`] or stdout.
    pub probe: ProbeSpec,
}

impl WorkloadConfig {
    /// Evaluation default: ~60–260 k objects per app on a V100 scaled to
    /// 8 SMs (machine shrinks with the workload so occupancy and cache
    /// pressure stay paper-like; see [`GpuConfig::v100_scaled`]).
    pub fn eval() -> Self {
        WorkloadConfig {
            scale: 8,
            iterations: 3,
            seed: 0x5eed,
            gpu: GpuConfig::v100_scaled(8),
            initial_chunk_objs: SharedOa::DEFAULT_INITIAL_CHUNK_OBJS,
            allocator_override: None,
            tag_mode: TagMode::Offset,
            coal_lookup: LookupKind::SegmentTree,
            tag_budget: None,
            device_memory_bytes: 4 << 30,
            engine_threads: 1,
            fast_forward: true,
            probe: ProbeSpec::OFF,
        }
    }

    /// Tiny configuration for unit tests: a few thousand objects on a
    /// small GPU.
    pub fn tiny() -> Self {
        WorkloadConfig {
            scale: 1,
            iterations: 2,
            seed: 7,
            gpu: GpuConfig::small(),
            initial_chunk_objs: 256,
            allocator_override: None,
            tag_mode: TagMode::Offset,
            coal_lookup: LookupKind::SegmentTree,
            tag_budget: None,
            device_memory_bytes: 512 << 20,
            engine_threads: 1,
            fast_forward: true,
            probe: ProbeSpec::OFF,
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::eval()
    }
}

/// Table 2 characteristics of one run, measured on our ports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Table2Row {
    /// Object instances created.
    pub objects: u64,
    /// Concrete types in the program.
    pub types: u32,
    /// Virtual-function pointers across all vTables.
    pub vfunc_entries: u32,
    /// Dynamic virtual calls per thousand warp instructions.
    pub vfunc_pki: f64,
}

/// Allocator-side attribution: a read-only snapshot of SharedOA's
/// per-type region accounting at the end of a run. `None` for the CUDA
/// baseline, which keeps no per-type state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocAttribSnapshot {
    /// Adjacent same-type chunk merges performed.
    pub merges: u64,
    /// Configured initial chunk size, in objects.
    pub initial_chunk_objs: u64,
    /// Per-type region stats, sorted by type key.
    pub types: Vec<TypeRegionStats>,
}

/// The complete mechanism-attribution evidence of one run: cache-level
/// per-PC access attribution from the probes, plus host-side allocator,
/// lookup and tag introspection. Collected by
/// [`Rig::take_attrib`](crate::Rig::take_attrib) when
/// [`WorkloadConfig::probe`] enables attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct AttribBundle {
    /// Merged per-PC / per-set / reuse evidence from the engine probes.
    pub probe: AttribReport,
    /// SharedOA region snapshot (when the run used SharedOA).
    pub alloc: Option<AllocAttribSnapshot>,
    /// COAL lookup-walk attribution (when a lookup structure was built).
    pub lookup: Option<LookupAttrib>,
    /// TypePointer tag decode/mask attribution (tagged strategies only).
    pub tags: Option<TagAttrib>,
}

/// The outcome of one workload × strategy run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Timing and counter statistics summed over the compute kernels.
    pub stats: Stats,
    /// Digest of the functional output — identical across strategies.
    pub checksum: u64,
    /// Allocator statistics after the build phase.
    pub alloc_stats: AllocStats,
    /// Modeled object-initialization cost (§8.2 comparison).
    pub init_cycles: u64,
    /// Table 2 characteristics.
    pub table2: Table2Row,
    /// Domain-level quantities for validation against host reference
    /// implementations (e.g. `("alive", …)` for GOL, `("level_sum", …)`
    /// for BFS). Exact integers are representable losslessly below 2^53.
    pub metrics: Vec<(&'static str, f64)>,
    /// Observability artifacts (timeline events, per-kernel metrics
    /// series) when [`WorkloadConfig::probe`] requested recording;
    /// `None` on the default zero-overhead path.
    pub obs: Option<ObsReport>,
    /// Mechanism-attribution evidence when
    /// [`WorkloadConfig::probe`] enabled attribution; `None` otherwise.
    pub attrib: Option<AttribBundle>,
    /// Deterministic cycle audit when [`WorkloadConfig::probe`] enabled
    /// it; `None` otherwise.
    pub audit: Option<CycleAuditReport>,
}
