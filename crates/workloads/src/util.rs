//! Small shared helpers for workload kernels.

use crate::config::{RunResult, Table2Row};
use crate::rig::{Checksum, Rig};
use gvf_core::TypeRegistry;
use gvf_mem::VirtAddr;
use gvf_sim::{lanes_from_fn, Lanes, WarpCtx};

/// Builds a vTable slot list: the hot entry points in `main` followed by
/// `fillers` cold virtual functions with ids from `next_id` upward.
///
/// Real object-oriented GPU programs carry many virtual functions the
/// hot kernels never call (paper Table 2 counts 3–74 per app); the cold
/// entries matter because they size the vTables — and therefore the
/// TypePointer tag space and the stride of vFunc-pointer loads.
pub fn vfuncs_with_fillers(
    main: &[gvf_core::FuncId],
    fillers: usize,
    next_id: &mut u32,
) -> Vec<gvf_core::FuncId> {
    let mut v = main.to_vec();
    for _ in 0..fillers {
        v.push(gvf_core::FuncId(*next_id));
        *next_id += 1;
    }
    v
}

/// SplitMix64: the deterministic hash all workloads derive their
/// pseudo-random inputs from (no RNG state to thread through kernels).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-lane object pointers for the classic "thread i handles object i"
/// mapping: lane `l` of warp `w` gets `arr[w*32 + l]`, `None` past the
/// end.
pub fn lanes_ptrs(w: &WarpCtx<'_>, arr: &[VirtAddr]) -> Lanes<VirtAddr> {
    lanes_from_fn(|l| arr.get(w.thread_id(l)).copied())
}

/// Host-side fold of a u32 field over `objs` into `ck` (checksum of the
/// final device state; not traced).
pub fn fold_u32_field(rig: &mut Rig, objs: &[VirtAddr], field_off: u64, ck: &mut Checksum) {
    let hdr = rig.prog.header_bytes();
    for o in objs {
        let v = rig
            .mem
            .read_u32(o.strip_tag().offset(hdr + field_off))
            .expect("field read");
        ck.push(v as u64);
    }
}

/// Host-side fold of an f32 field (quantized) over `objs` into `ck`.
pub fn fold_f32_field(rig: &mut Rig, objs: &[VirtAddr], field_off: u64, ck: &mut Checksum) {
    let hdr = rig.prog.header_bytes();
    for o in objs {
        let v = rig
            .mem
            .read_f32(o.strip_tag().offset(hdr + field_off))
            .expect("field read");
        ck.push_f32_quantized(v);
    }
}

/// Finishes a run: packages stats, allocator state, the init-cost model
/// and Table 2 characteristics.
pub fn collect_table2(rig: Rig, reg: &TypeRegistry, ck: Checksum) -> RunResult {
    collect_with_metrics(rig, reg, ck, Vec::new())
}

/// Like [`collect_table2`] with domain validation metrics attached.
pub fn collect_with_metrics(
    mut rig: Rig,
    reg: &TypeRegistry,
    ck: Checksum,
    metrics: Vec<(&'static str, f64)>,
) -> RunResult {
    let stats = rig.stats().clone();
    RunResult {
        checksum: ck.value(),
        alloc_stats: rig.alloc.stats(),
        init_cycles: rig.init_cycles_model(),
        table2: Table2Row {
            objects: rig.objects_built(),
            types: reg.num_types() as u32,
            vfunc_entries: reg.total_vfunc_entries() as u32,
            vfunc_pki: stats.vfunc_pki(),
        },
        // Attribution and audit first: each removes its half of the obs
        // report, so an attribution/audit-only run yields `obs: None`.
        attrib: rig.take_attrib(),
        audit: rig.take_audit(),
        obs: rig.take_obs(),
        stats,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        let evens = (0..1000).filter(|&i| splitmix64(i) % 2 == 0).count();
        assert!((400..600).contains(&evens));
    }
}
