//! GEN — a Generations automaton (DynaSOAr).
//!
//! The paper describes GEN as "an extension of gol" whose cells "have
//! more intermediate states which lead to more complicated scenarios".
//! We use a classic 4-state Generations rule (born on 3, survive on
//! 2/3, then two decay states before death).

use crate::config::{RunResult, WorkloadConfig};
use crate::dynasoar::grid::{self, GridSpec};
use gvf_core::Strategy;

fn init(draw: u64) -> u32 {
    match draw {
        0..=29 => 1,
        30..=39 => 2,
        _ => 0,
    }
}

fn rule(state: u32, live: u32) -> u32 {
    match state {
        0 => u32::from(live == 3),
        1 => {
            if live == 2 || live == 3 {
                1
            } else {
                2
            }
        }
        2 => 3,
        _ => 0,
    }
}

fn is_live(state: u32) -> bool {
    state == 1
}

/// Runs GEN under `strategy`.
pub fn run(strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    let spec = GridSpec {
        type_names: ["LiveZone", "EdgeZone", "ActiveAgent", "DecayAgent"],
        filler_vfuncs: 7, // paper: 33 vFuncs in GEN
        init,
        rule,
        is_live,
    };
    grid::run(&spec, strategy, cfg)
}
