//! The four DynaSOAr-derived workloads: TRAF, GOL, STUT, GEN.

pub mod game_of_life;
pub mod generation;
pub(crate) mod grid;
pub mod structure;
pub mod traffic;
