//! TRAF — Nagel–Schreckenberg traffic simulation (DynaSOAr).
//!
//! Streets are rings of cells; vehicles advance with the classic NS
//! rules (accelerate, brake to gap, random slowdown, move); traffic
//! lights block cells periodically. Six concrete types exercise
//! dispatch: two cell types, two vehicle types, and two kinds of street
//! furniture, matching the paper's six-type TRAF port.

use crate::config::{RunResult, WorkloadConfig};
use crate::rig::{Checksum, Rig};
use crate::util::{fold_u32_field, lanes_ptrs, splitmix64};
use gvf_core::{CallSite, FuncId, Strategy, TypeRegistry};
use gvf_mem::VirtAddr;
use gvf_sim::{lanes_from_fn, AccessTag};

// Virtual function ids.
const F_CELL_RESET: FuncId = FuncId(0);
const F_PRODUCER_RESET: FuncId = FuncId(1);
const F_CAR_STEP: FuncId = FuncId(2);
const F_BUS_STEP: FuncId = FuncId(3);
const F_LIGHT_STEP: FuncId = FuncId(4);
const F_SIGN_STEP: FuncId = FuncId(5);
const F_CAR_COMMIT: FuncId = FuncId(6);
const F_BUS_COMMIT: FuncId = FuncId(7);

// Cell fields: occupied u32 @0, blocked u32 @4.
const CELL_OCC: u64 = 0;
const CELL_BLK: u64 = 4;
// Vehicle fields: pos u32 @0, vel u32 @4, next_pos @8, next_vel @12,
// ring_base @16, ring_len @20.
const V_POS: u64 = 0;
const V_VEL: u64 = 4;
const V_NPOS: u64 = 8;
const V_NVEL: u64 = 12;
const V_BASE: u64 = 16;
const V_LEN: u64 = 20;
// Light fields: phase @0, period @4, cell @8. Sign: limit @0, cell @4.
const L_PHASE: u64 = 0;
const L_PERIOD: u64 = 4;
const L_CELL: u64 = 8;
const S_LIMIT: u64 = 0;
const S_CELL: u64 = 4;

const CAR_VMAX: u64 = 5;
const BUS_VMAX: u64 = 3;

/// Runs TRAF under `strategy`.
pub fn run(strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    // Hot entry points plus the cold virtual functions real DynaSOAr
    // builds carry (paper Table 2: TRAF has 74 vFuncs in compiled code).
    let mut reg = TypeRegistry::new();
    let mut filler = 100u32;
    let t_cell = reg.add_type(
        "StandardCell",
        8,
        &crate::util::vfuncs_with_fillers(&[F_CELL_RESET], 11, &mut filler),
    );
    let t_prod = reg.add_type(
        "ProducerCell",
        8,
        &crate::util::vfuncs_with_fillers(&[F_PRODUCER_RESET], 11, &mut filler),
    );
    let t_car = reg.add_type(
        "Car",
        24,
        &crate::util::vfuncs_with_fillers(&[F_CAR_STEP, F_CAR_COMMIT], 10, &mut filler),
    );
    let t_bus = reg.add_type(
        "Bus",
        24,
        &crate::util::vfuncs_with_fillers(&[F_BUS_STEP, F_BUS_COMMIT], 10, &mut filler),
    );
    let t_light = reg.add_type(
        "TrafficLight",
        12,
        &crate::util::vfuncs_with_fillers(&[F_LIGHT_STEP], 11, &mut filler),
    );
    let t_sign = reg.add_type(
        "SpeedSign",
        8,
        &crate::util::vfuncs_with_fillers(&[F_SIGN_STEP], 11, &mut filler),
    );

    let mut rig = Rig::new(&reg, strategy, cfg);
    let s = cfg.scale as usize;
    let ring_len = 512usize;
    let n_rings = 24 * s;
    let n_cells = ring_len * n_rings;
    let n_vehicles = n_cells / 4;
    let n_lights = n_cells / 128;
    let n_signs = n_cells / 256;

    // Construction interleaves types, as real initialization would.
    let mut cells: Vec<VirtAddr> = Vec::with_capacity(n_cells);
    let mut vehicles: Vec<VirtAddr> = Vec::with_capacity(n_vehicles);
    let mut infra: Vec<VirtAddr> = Vec::with_capacity(n_lights + n_signs);
    for i in 0..n_cells {
        let h = splitmix64(cfg.seed ^ i as u64);
        let ty = if h % 10 == 0 { t_prod } else { t_cell };
        cells.push(rig.construct(ty));
        if i % 4 == 0 {
            let vi = i / 4;
            let h2 = splitmix64(cfg.seed ^ 0xbeef ^ vi as u64);
            let ty = if h2 % 5 == 0 { t_bus } else { t_car };
            let v = rig.construct(ty);
            vehicles.push(v);
            let ring = (i / ring_len) as u32;
            let pos = (i % ring_len) as u32;
            let base = rig.prog.header_bytes();
            let p = v.strip_tag();
            rig.mem.write_u32(p.offset(base + V_POS), pos).unwrap();
            rig.mem
                .write_u32(p.offset(base + V_VEL), (h2 % 3) as u32)
                .unwrap();
            rig.mem
                .write_u32(p.offset(base + V_BASE), ring * ring_len as u32)
                .unwrap();
            rig.mem
                .write_u32(p.offset(base + V_LEN), ring_len as u32)
                .unwrap();
        }
        if i % 128 == 0 && infra.len() < n_lights {
            let l = rig.construct(t_light);
            let base = rig.prog.header_bytes();
            let p = l.strip_tag();
            rig.mem
                .write_u32(p.offset(base + L_PHASE), (i % 7) as u32)
                .unwrap();
            rig.mem
                .write_u32(p.offset(base + L_PERIOD), 6 + (i % 5) as u32)
                .unwrap();
            rig.mem
                .write_u32(p.offset(base + L_CELL), i as u32)
                .unwrap();
            infra.push(l);
        }
        if i % 256 == 17 && infra.len() < n_lights + n_signs {
            let g = rig.construct(t_sign);
            let base = rig.prog.header_bytes();
            let p = g.strip_tag();
            rig.mem
                .write_u32(p.offset(base + S_LIMIT), 2 + (i % 3) as u32)
                .unwrap();
            rig.mem
                .write_u32(p.offset(base + S_CELL), i as u32)
                .unwrap();
            infra.push(g);
        }
    }
    rig.finalize();

    // Device-side road array: cell pointers by position.
    let road = rig.reserve(n_cells as u64 * 8, 256);
    for (i, c) in cells.iter().enumerate() {
        rig.mem.write_ptr(road.offset(i as u64 * 8), *c).unwrap();
    }
    // Initial occupancy.
    for v in &vehicles {
        let hdr = rig.prog.header_bytes();
        let p = v.strip_tag();
        let pos = rig.mem.read_u32(p.offset(hdr + V_POS)).unwrap() as u64;
        let base = rig.mem.read_u32(p.offset(hdr + V_BASE)).unwrap() as u64;
        let cell = cells[(base + pos) as usize].strip_tag();
        rig.mem.write_u32(cell.offset(hdr + CELL_OCC), 1).unwrap();
    }

    for iter in 0..cfg.iterations {
        // K1: street furniture steps (lights toggle blocking, signs no-op
        // beyond bookkeeping). Mixed light/sign types in one array.
        rig.run_kernel(infra.len(), |prog, w| {
            let objs = lanes_ptrs(w, &infra);
            prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
                if fid == F_LIGHT_STEP {
                    let phase = prog.ld_field(w, &objs, L_PHASE, 4);
                    let period = prog.ld_field(w, &objs, L_PERIOD, 4);
                    let cell_idx = prog.ld_field(w, &objs, L_CELL, 4);
                    w.alu(3);
                    let next =
                        lanes_from_fn(|i| phase[i].zip(period[i]).map(|(p, q)| (p + 1) % q.max(1)));
                    prog.st_field(w, &objs, L_PHASE, 4, &next);
                    // Block the cell while phase < period/2.
                    let cell_ptrs = lanes_from_fn(|i| cell_idx[i].map(|c| cells[c as usize]));
                    let blocked = lanes_from_fn(|i| {
                        next[i]
                            .zip(period[i])
                            .map(|(p, q)| u64::from(p < q.max(1) / 2))
                    });
                    prog.st_field(w, &cell_ptrs, CELL_BLK, 4, &blocked);
                } else {
                    debug_assert_eq!(fid, F_SIGN_STEP);
                    prog.ld_field(w, &objs, S_LIMIT, 4);
                    w.alu(2);
                }
            });
        });

        // K2: vehicles decide (NS accelerate/brake/random slowdown).
        rig.run_kernel(vehicles.len(), |prog, w| {
            let objs = lanes_ptrs(w, &vehicles);
            prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
                let vmax = if fid == F_CAR_STEP {
                    CAR_VMAX
                } else {
                    BUS_VMAX
                };
                let pos = prog.ld_field(w, &objs, V_POS, 4);
                let vel = prog.ld_field(w, &objs, V_VEL, 4);
                let base = prog.ld_field(w, &objs, V_BASE, 4);
                let len = prog.ld_field(w, &objs, V_LEN, 4);
                w.alu(2); // accelerate + clamp
                          // Gap scan: probe up to vmax cells ahead through the road
                          // array and the (diverged) cell objects.
                let mut gap = lanes_from_fn(|i| pos[i].map(|_| vmax));
                let mut open = w.mask();
                for d in 1..=vmax {
                    if open == 0 {
                        break;
                    }
                    w.branch();
                    let probe_addrs = lanes_from_fn(|i| {
                        ((open >> i) & 1 == 1)
                            .then(|| {
                                pos[i].zip(base[i]).zip(len[i]).map(|((p, b), l)| {
                                    let idx = b + (p + d) % l.max(1);
                                    road.offset(idx * 8)
                                })
                            })
                            .flatten()
                    });
                    let cell_ptr_bits = w.ld(AccessTag::Other, 8, &probe_addrs);
                    let cell_ptrs = lanes_from_fn(|i| cell_ptr_bits[i].map(VirtAddr::new));
                    let occ = prog.ld_field(w, &cell_ptrs, CELL_OCC, 4);
                    let blk = prog.ld_field(w, &cell_ptrs, CELL_BLK, 4);
                    w.alu(2);
                    for i in 0..32 {
                        if (open >> i) & 1 == 0 {
                            continue;
                        }
                        let stop = occ[i].unwrap_or(0) != 0 || blk[i].unwrap_or(0) != 0;
                        if stop {
                            gap[i] = Some(d - 1);
                            open &= !(1 << i);
                        }
                    }
                }
                // v' = min(v+1, vmax, gap), then random slowdown.
                w.alu(3);
                let nvel = lanes_from_fn(|i| {
                    vel[i].zip(gap[i]).map(|(v, g)| {
                        let tid = w.thread_id(i) as u64;
                        let mut nv = (v + 1).min(vmax).min(g);
                        if splitmix64(cfg.seed ^ (iter as u64) << 32 ^ tid) % 10 < 2 {
                            nv = nv.saturating_sub(1);
                        }
                        nv
                    })
                });
                let npos = lanes_from_fn(|i| {
                    pos[i]
                        .zip(nvel[i])
                        .zip(len[i])
                        .map(|((p, v), l)| (p + v) % l.max(1))
                });
                prog.st_field(w, &objs, V_NVEL, 4, &nvel);
                prog.st_field(w, &objs, V_NPOS, 4, &npos);
            });
        });

        // K3: cells reset occupancy (standard vs producer bodies).
        rig.run_kernel(cells.len(), |prog, w| {
            let objs = lanes_ptrs(w, &cells);
            prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
                let zero = lanes_from_fn(|i| objs[i].map(|_| 0u64));
                prog.st_field(w, &objs, CELL_OCC, 4, &zero);
                if fid == F_PRODUCER_RESET {
                    w.alu(4); // producer bookkeeping (spawn throttling)
                } else {
                    w.alu(1);
                }
            });
        });

        // K4: vehicles commit their move and claim the new cell.
        rig.run_kernel(vehicles.len(), |prog, w| {
            let objs = lanes_ptrs(w, &vehicles);
            prog.vcall(w, &CallSite::new(1), &objs, |w, fid| {
                let npos = prog.ld_field(w, &objs, V_NPOS, 4);
                let nvel = prog.ld_field(w, &objs, V_NVEL, 4);
                let base = prog.ld_field(w, &objs, V_BASE, 4);
                prog.st_field(w, &objs, V_POS, 4, &npos);
                prog.st_field(w, &objs, V_VEL, 4, &nvel);
                w.alu(if fid == F_BUS_COMMIT { 3 } else { 1 });
                let cell_ptrs =
                    lanes_from_fn(|i| npos[i].zip(base[i]).map(|(p, b)| cells[(b + p) as usize]));
                let one = lanes_from_fn(|i| cell_ptrs[i].map(|_| 1u64));
                prog.st_field(w, &cell_ptrs, CELL_OCC, 4, &one);
            });
        });
    }

    // Checksum over final vehicle state + conservation metrics.
    let mut ck = Checksum::new();
    fold_u32_field(&mut rig, &vehicles, V_POS, &mut ck);
    fold_u32_field(&mut rig, &vehicles, V_VEL, &mut ck);
    let hdr = rig.prog.header_bytes();
    let mut occupied = 0u64;
    for c in &cells {
        occupied += rig
            .mem
            .read_u32(c.strip_tag().offset(hdr + CELL_OCC))
            .unwrap() as u64;
    }
    let mut pos_sum = 0u64;
    let mut vel_sum = 0u64;
    for v in &vehicles {
        let p = v.strip_tag();
        let pos = rig.mem.read_u32(p.offset(hdr + V_POS)).unwrap() as u64;
        let len = rig.mem.read_u32(p.offset(hdr + V_LEN)).unwrap() as u64;
        assert!(pos < len, "vehicle drove off its ring");
        pos_sum += pos;
        vel_sum += rig.mem.read_u32(p.offset(hdr + V_VEL)).unwrap() as u64;
    }
    let metrics = vec![
        ("occupied_cells", occupied as f64),
        ("vehicles", vehicles.len() as f64),
        ("pos_sum", pos_sum as f64),
        ("vel_sum", vel_sum as f64),
    ];
    crate::util::collect_with_metrics(rig, &reg, ck, metrics)
}
