//! GOL — Conway's Game of Life (DynaSOAr).
//!
//! Four concrete types (two cell classes under the abstract `Cell`, two
//! agent classes under the abstract `Agent`, matching the paper's
//! description of the benchmark's hierarchy).

use crate::config::{RunResult, WorkloadConfig};
use crate::dynasoar::grid::{self, GridSpec};
use gvf_core::Strategy;

fn init(draw: u64) -> u32 {
    u32::from(draw < 35)
}

fn rule(state: u32, live: u32) -> u32 {
    match (state, live) {
        (1, 2) | (1, 3) => 1,
        (0, 3) => 1,
        _ => 0,
    }
}

fn is_live(state: u32) -> bool {
    state == 1
}

/// Runs GOL under `strategy`.
pub fn run(strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    let spec = GridSpec {
        type_names: ["InnerCell", "BorderCell", "AliveAgent", "DeadAgent"],
        filler_vfuncs: 6, // paper: 29 vFuncs in GOL
        init,
        rule,
        is_live,
    };
    grid::run(&spec, strategy, cfg)
}
