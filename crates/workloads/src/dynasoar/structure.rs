//! STUT — finite-element fracture simulation (DynaSOAr "structure").
//!
//! Chains of nodes connected by springs; a spring kernel computes Hooke
//! forces (with optional damping — two spring types) into per-spring
//! endpoint slots, and a node kernel integrates them (anchored nodes
//! stay put — two node types). Springs fracture when over-stretched,
//! matching the benchmark's material-failure behaviour.

use crate::config::{RunResult, WorkloadConfig};
use crate::rig::{Checksum, Rig};
use crate::util::{fold_f32_field, lanes_ptrs, splitmix64};
use gvf_core::{CallSite, FuncId, Strategy, TypeRegistry};
use gvf_mem::VirtAddr;
use gvf_sim::lanes_from_fn;

const F_FREE_INTEGRATE: FuncId = FuncId(0);
const F_ANCHOR_INTEGRATE: FuncId = FuncId(1);
const F_ELASTIC_APPLY: FuncId = FuncId(2);
const F_DAMPED_APPLY: FuncId = FuncId(3);

// Node fields: x @0, y @4, vx @8, vy @12 (f32 each).
const N_X: u64 = 0;
const N_Y: u64 = 4;
const N_VX: u64 = 8;
const N_VY: u64 = 12;
// Spring fields: a_ptr @0, b_ptr @8, rest @16, k @20, broken @24,
// force on a: fax @28, fay @32; force on b: fbx @36, fby @40.
const S_A: u64 = 0;
const S_B: u64 = 8;
const S_REST: u64 = 16;
const S_K: u64 = 20;
const S_BROKEN: u64 = 24;
const S_FAX: u64 = 28;
const S_FAY: u64 = 32;
const S_FBX: u64 = 36;
const S_FBY: u64 = 40;

const DT: f32 = 0.05;

/// Runs STUT under `strategy`.
pub fn run(strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    // Paper Table 2: STUT carries 40 vFuncs in compiled code.
    let mut reg = TypeRegistry::new();
    let mut filler = 100u32;
    let t_free = reg.add_type(
        "FreeNode",
        16,
        &crate::util::vfuncs_with_fillers(&[F_FREE_INTEGRATE], 9, &mut filler),
    );
    let t_anchor = reg.add_type(
        "AnchorNode",
        16,
        &crate::util::vfuncs_with_fillers(&[F_ANCHOR_INTEGRATE], 9, &mut filler),
    );
    let t_elastic = reg.add_type(
        "ElasticSpring",
        44,
        &crate::util::vfuncs_with_fillers(&[F_ELASTIC_APPLY], 9, &mut filler),
    );
    let t_damped = reg.add_type(
        "DampedSpring",
        44,
        &crate::util::vfuncs_with_fillers(&[F_DAMPED_APPLY], 9, &mut filler),
    );

    let mut rig = Rig::new(&reg, strategy, cfg);
    let chain_len = 64usize;
    let n_chains = 48 * cfg.scale as usize;
    let n_nodes = chain_len * n_chains;

    // Per chain: anchor, free...free, anchor; springs between neighbours.
    let mut nodes = Vec::with_capacity(n_nodes);
    let mut springs = Vec::with_capacity(n_nodes - n_chains);
    let hdr_of = |rig: &Rig| rig.prog.header_bytes();
    for c in 0..n_chains {
        let mut prev: Option<VirtAddr> = None;
        for i in 0..chain_len {
            let anchor = i == 0 || i == chain_len - 1;
            let node = rig.construct(if anchor { t_anchor } else { t_free });
            let hdr = hdr_of(&rig);
            let p = node.strip_tag();
            let jitter = (splitmix64(cfg.seed ^ (c * chain_len + i) as u64) % 100) as f32 / 500.0;
            rig.mem
                .write_f32(p.offset(hdr + N_X), i as f32 + jitter)
                .unwrap();
            rig.mem.write_f32(p.offset(hdr + N_Y), c as f32).unwrap();
            nodes.push(node);
            if let Some(prev) = prev {
                let h = splitmix64(cfg.seed ^ 0xda0 ^ (c * chain_len + i) as u64);
                let spring = rig.construct(if h % 4 == 0 { t_damped } else { t_elastic });
                let sp = spring.strip_tag();
                rig.mem.write_u64(sp.offset(hdr + S_A), prev.raw()).unwrap();
                rig.mem.write_u64(sp.offset(hdr + S_B), node.raw()).unwrap();
                rig.mem.write_f32(sp.offset(hdr + S_REST), 0.9).unwrap();
                rig.mem
                    .write_f32(sp.offset(hdr + S_K), 0.8 + (h % 5) as f32 * 0.1)
                    .unwrap();
                springs.push(spring);
            }
            prev = Some(node);
        }
    }
    rig.finalize();

    // Device array mapping each free node to its two adjacent springs.
    // (-1 sentinel for chain boundaries.)
    let adj = rig.reserve(n_nodes as u64 * 16, 256);
    for (i, _) in nodes.iter().enumerate() {
        let c = i / chain_len;
        let k = i % chain_len;
        let springs_per_chain = chain_len - 1;
        let left = if k == 0 {
            u64::MAX
        } else {
            (c * springs_per_chain + k - 1) as u64
        };
        let right = if k == chain_len - 1 {
            u64::MAX
        } else {
            (c * springs_per_chain + k) as u64
        };
        rig.mem.write_u64(adj.offset(i as u64 * 16), left).unwrap();
        rig.mem
            .write_u64(adj.offset(i as u64 * 16 + 8), right)
            .unwrap();
    }

    let ld_f32 = |prog: &gvf_core::DeviceProgram,
                  w: &mut gvf_sim::WarpCtx<'_>,
                  objs: &gvf_sim::Lanes<VirtAddr>,
                  off: u64| {
        let raw = prog.ld_field(w, objs, off, 4);
        lanes_from_fn(|l| raw[l].map(|v| f32::from_bits(v as u32)))
    };
    let st_f32 = |prog: &gvf_core::DeviceProgram,
                  w: &mut gvf_sim::WarpCtx<'_>,
                  objs: &gvf_sim::Lanes<VirtAddr>,
                  off: u64,
                  vals: &gvf_sim::Lanes<f32>| {
        let raw = lanes_from_fn(|l| vals[l].map(|v| v.to_bits() as u64));
        prog.st_field(w, objs, off, 4, &raw);
    };

    for _iter in 0..cfg.iterations {
        // K1: springs compute endpoint forces into their own slots.
        rig.run_kernel(springs.len(), |prog, w| {
            let objs = lanes_ptrs(w, &springs);
            prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
                let damped = fid == F_DAMPED_APPLY;
                let a_bits = prog.ld_field(w, &objs, S_A, 8);
                let b_bits = prog.ld_field(w, &objs, S_B, 8);
                let aptr = lanes_from_fn(|l| a_bits[l].map(VirtAddr::new));
                let bptr = lanes_from_fn(|l| b_bits[l].map(VirtAddr::new));
                let ax = ld_f32(prog, w, &aptr, N_X);
                let ay = ld_f32(prog, w, &aptr, N_Y);
                let bx = ld_f32(prog, w, &bptr, N_X);
                let by = ld_f32(prog, w, &bptr, N_Y);
                let rest = ld_f32(prog, w, &objs, S_REST);
                let k = ld_f32(prog, w, &objs, S_K);
                let broken = prog.ld_field(w, &objs, S_BROKEN, 4);
                w.alu(12); // distance, normalization, Hooke
                let mut fx = gvf_sim::lanes_none::<f32>();
                let mut fy = gvf_sim::lanes_none::<f32>();
                let mut now_broken = gvf_sim::lanes_none::<u64>();
                for l in 0..32 {
                    let (Some(ax), Some(ay), Some(bx), Some(by), Some(r), Some(k)) =
                        (ax[l], ay[l], bx[l], by[l], rest[l], k[l])
                    else {
                        continue;
                    };
                    let (dx, dy) = (bx - ax, by - ay);
                    let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
                    let already_broken = broken[l].unwrap_or(0) != 0;
                    let breaks = dist > 3.0 * r;
                    let mag = if already_broken || breaks {
                        0.0
                    } else {
                        k * (dist - r) / dist
                    };
                    fx[l] = Some(mag * dx);
                    fy[l] = Some(mag * dy);
                    now_broken[l] = Some(u64::from(already_broken || breaks));
                }
                if damped {
                    // Damping term against relative velocity.
                    let avx = ld_f32(prog, w, &aptr, N_VX);
                    let bvx = ld_f32(prog, w, &bptr, N_VX);
                    let avy = ld_f32(prog, w, &aptr, N_VY);
                    let bvy = ld_f32(prog, w, &bptr, N_VY);
                    w.alu(6);
                    for l in 0..32 {
                        if let (Some(f), Some(av), Some(bv)) = (fx[l], avx[l], bvx[l]) {
                            fx[l] = Some(f + 0.1 * (bv - av));
                        }
                        if let (Some(f), Some(av), Some(bv)) = (fy[l], avy[l], bvy[l]) {
                            fy[l] = Some(f + 0.1 * (bv - av));
                        }
                    }
                }
                st_f32(prog, w, &objs, S_FAX, &fx);
                st_f32(prog, w, &objs, S_FAY, &fy);
                let nfx = lanes_from_fn(|l| fx[l].map(|v| -v));
                let nfy = lanes_from_fn(|l| fy[l].map(|v| -v));
                st_f32(prog, w, &objs, S_FBX, &nfx);
                st_f32(prog, w, &objs, S_FBY, &nfy);
                prog.st_field(w, &objs, S_BROKEN, 4, &now_broken);
            });
        });

        // K2: nodes gather adjacent spring forces and integrate.
        rig.run_kernel(nodes.len(), |prog, w| {
            let objs = lanes_ptrs(w, &nodes);
            prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
                if fid == F_ANCHOR_INTEGRATE {
                    w.alu(1); // anchors hold position
                    return;
                }
                // Read spring indices from the adjacency array, then the
                // springs' stored endpoint forces.
                let idx_addrs = lanes_from_fn(|l| {
                    (w.is_active(l) && objs[l].is_some())
                        .then(|| adj.offset(w.thread_id(l) as u64 * 16))
                });
                let left = w.ld(gvf_sim::AccessTag::Other, 8, &idx_addrs);
                let right_addrs = lanes_from_fn(|l| idx_addrs[l].map(|a| a.offset(8)));
                let right = w.ld(gvf_sim::AccessTag::Other, 8, &right_addrs);
                let lptr = lanes_from_fn(|l| {
                    left[l].and_then(|i| (i != u64::MAX).then(|| springs[i as usize]))
                });
                let rptr = lanes_from_fn(|l| {
                    right[l].and_then(|i| (i != u64::MAX).then(|| springs[i as usize]))
                });
                // Force from the left spring acts on its B endpoint (us),
                // from the right spring on its A endpoint.
                let lfx = ld_f32(prog, w, &lptr, S_FBX);
                let lfy = ld_f32(prog, w, &lptr, S_FBY);
                let rfx = ld_f32(prog, w, &rptr, S_FAX);
                let rfy = ld_f32(prog, w, &rptr, S_FAY);
                let x = ld_f32(prog, w, &objs, N_X);
                let y = ld_f32(prog, w, &objs, N_Y);
                let vx = ld_f32(prog, w, &objs, N_VX);
                let vy = ld_f32(prog, w, &objs, N_VY);
                w.alu(10); // integration
                let nvx = lanes_from_fn(|l| {
                    vx[l]
                        .map(|v| 0.995 * (v + DT * (lfx[l].unwrap_or(0.0) + rfx[l].unwrap_or(0.0))))
                });
                let nvy = lanes_from_fn(|l| {
                    vy[l]
                        .map(|v| 0.995 * (v + DT * (lfy[l].unwrap_or(0.0) + rfy[l].unwrap_or(0.0))))
                });
                let nx = lanes_from_fn(|l| x[l].zip(nvx[l]).map(|(p, v)| p + DT * v));
                let ny = lanes_from_fn(|l| y[l].zip(nvy[l]).map(|(p, v)| p + DT * v));
                st_f32(prog, w, &objs, N_VX, &nvx);
                st_f32(prog, w, &objs, N_VY, &nvy);
                st_f32(prog, w, &objs, N_X, &nx);
                st_f32(prog, w, &objs, N_Y, &ny);
            });
        });
    }

    let mut ck = Checksum::new();
    fold_f32_field(&mut rig, &nodes, N_X, &mut ck);
    fold_f32_field(&mut rig, &nodes, N_Y, &mut ck);
    fold_u32_broken(&mut rig, &springs, &mut ck);

    // Domain metrics: anchors must not drift; fracture count is bounded.
    let hdr = rig.prog.header_bytes();
    let mut anchor_drift = 0.0f64;
    for (i, node) in nodes.iter().enumerate() {
        let k = i % chain_len;
        if k == 0 || k == chain_len - 1 {
            let c = i / chain_len;
            let jitter = (splitmix64(cfg.seed ^ i as u64) % 100) as f32 / 500.0;
            let x = rig
                .mem
                .read_f32(node.strip_tag().offset(hdr + N_X))
                .unwrap();
            let y = rig
                .mem
                .read_f32(node.strip_tag().offset(hdr + N_Y))
                .unwrap();
            anchor_drift += ((x - (k as f32 + jitter)).abs() + (y - c as f32).abs()) as f64;
        }
    }
    let mut broken = 0u64;
    for s in &springs {
        broken += rig
            .mem
            .read_u32(s.strip_tag().offset(hdr + S_BROKEN))
            .unwrap() as u64;
    }
    let metrics = vec![("anchor_drift", anchor_drift), ("broken", broken as f64)];
    crate::util::collect_with_metrics(rig, &reg, ck, metrics)
}

fn fold_u32_broken(rig: &mut Rig, springs: &[VirtAddr], ck: &mut Checksum) {
    let hdr = rig.prog.header_bytes();
    for s in springs {
        let v = rig
            .mem
            .read_u32(s.strip_tag().offset(hdr + S_BROKEN))
            .unwrap();
        ck.push(v as u64);
    }
}
