//! Shared cellular-automaton skeleton for GOL and GEN.
//!
//! A `W × H` grid of cell objects, each owning an agent object. Per
//! iteration: a *decide* kernel (virtual call on the mixed inner/border
//! cell types) counts live neighbours and writes the agent's next state,
//! then a *commit* kernel (virtual call on the mixed agent types)
//! publishes it. Two-phase update keeps the result independent of lane
//! grouping, so every dispatch strategy computes the same grid.

use crate::config::{RunResult, WorkloadConfig};
use crate::rig::{Checksum, Rig};
use crate::util::{lanes_ptrs, splitmix64};
use gvf_core::{CallSite, FuncId, Strategy, TypeRegistry};
use gvf_mem::VirtAddr;
use gvf_sim::{lanes_from_fn, AccessTag};

const F_INNER_DECIDE: FuncId = FuncId(0);
const F_BORDER_DECIDE: FuncId = FuncId(1);
const F_AGENT_A_COMMIT: FuncId = FuncId(2);
const F_AGENT_B_COMMIT: FuncId = FuncId(3);

// Cell fields: agent_ptr u64 @0, state u32 @8.
const C_AGENT: u64 = 0;
const C_STATE: u64 = 8;
// Agent fields: state u32 @0, next u32 @4, cell_ptr u64 @8.
const A_STATE: u64 = 0;
const A_NEXT: u64 = 4;
const A_CELL: u64 = 8;

/// Parameters distinguishing GOL from GEN.
pub struct GridSpec {
    /// Type names: `[inner cell, border cell, agent A, agent B]`.
    pub type_names: [&'static str; 4],
    /// Cold vTable entries per type (Table 2 code-size fidelity).
    pub filler_vfuncs: usize,
    /// Initial state from a hash draw in `[0, 100)`.
    pub init: fn(u64) -> u32,
    /// Transition: `(state, live_neighbour_count) -> next state`.
    pub rule: fn(u32, u32) -> u32,
    /// States counted as "live" when neighbours look at this cell.
    pub is_live: fn(u32) -> bool,
}

const NEIGHBOURS: [(i64, i64); 8] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// Runs a grid automaton under `strategy`.
pub fn run(spec: &GridSpec, strategy: Strategy, cfg: &WorkloadConfig) -> RunResult {
    let mut reg = TypeRegistry::new();
    let mut filler = 100u32;
    let fill = spec.filler_vfuncs;
    let t_inner = reg.add_type(
        spec.type_names[0],
        16,
        &crate::util::vfuncs_with_fillers(&[F_INNER_DECIDE], fill, &mut filler),
    );
    let t_border = reg.add_type(
        spec.type_names[1],
        16,
        &crate::util::vfuncs_with_fillers(&[F_BORDER_DECIDE], fill, &mut filler),
    );
    let t_agent_a = reg.add_type(
        spec.type_names[2],
        16,
        &crate::util::vfuncs_with_fillers(&[F_AGENT_A_COMMIT], fill, &mut filler),
    );
    let t_agent_b = reg.add_type(
        spec.type_names[3],
        16,
        &crate::util::vfuncs_with_fillers(&[F_AGENT_B_COMMIT], fill, &mut filler),
    );

    let mut rig = Rig::new(&reg, strategy, cfg);
    let w_dim = 128usize;
    let h_dim = 96 * cfg.scale as usize;
    let n = w_dim * h_dim;

    // Interleaved construction: cell then its agent, row-major.
    let mut cells = Vec::with_capacity(n);
    let mut agents = Vec::with_capacity(n);
    for i in 0..n {
        let (x, y) = (i % w_dim, i / w_dim);
        let border = x == 0 || y == 0 || x == w_dim - 1 || y == h_dim - 1;
        let cell = rig.construct(if border { t_border } else { t_inner });
        let state = (spec.init)(splitmix64(cfg.seed ^ i as u64) % 100);
        let agent = rig.construct(if (spec.is_live)(state) {
            t_agent_a
        } else {
            t_agent_b
        });
        let hdr = rig.prog.header_bytes();
        rig.mem
            .write_u64(cell.strip_tag().offset(hdr + C_AGENT), agent.raw())
            .unwrap();
        rig.mem
            .write_u32(cell.strip_tag().offset(hdr + C_STATE), state)
            .unwrap();
        rig.mem
            .write_u32(agent.strip_tag().offset(hdr + A_STATE), state)
            .unwrap();
        rig.mem
            .write_u64(agent.strip_tag().offset(hdr + A_CELL), cell.raw())
            .unwrap();
        cells.push(cell);
        agents.push(agent);
    }
    rig.finalize();

    // Device-side grid of cell pointers for neighbour lookups.
    let grid = rig.reserve(n as u64 * 8, 256);
    for (i, c) in cells.iter().enumerate() {
        rig.mem.write_ptr(grid.offset(i as u64 * 8), *c).unwrap();
    }

    for _iter in 0..cfg.iterations {
        // K1: decide. One thread per cell.
        rig.run_kernel(n, |prog, w| {
            let objs = lanes_ptrs(w, &cells);
            prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
                let border_body = fid == F_BORDER_DECIDE;
                let state = prog.ld_field(w, &objs, C_STATE, 4);
                let mut count = [0u32; 32];
                for (dx, dy) in NEIGHBOURS {
                    if border_body {
                        w.alu(1); // bounds guard
                    }
                    let naddrs = lanes_from_fn(|l| {
                        if !w.is_active(l) || objs[l].is_none() {
                            return None;
                        }
                        let i = w.thread_id(l);
                        let (x, y) = ((i % w_dim) as i64, (i / w_dim) as i64);
                        let (nx, ny) = (x + dx, y + dy);
                        (nx >= 0 && ny >= 0 && nx < w_dim as i64 && ny < h_dim as i64)
                            .then(|| grid.offset((ny as u64 * w_dim as u64 + nx as u64) * 8))
                    });
                    let nptr_bits = w.ld(AccessTag::Other, 8, &naddrs);
                    let nptrs = lanes_from_fn(|l| nptr_bits[l].map(VirtAddr::new));
                    let nstate = prog.ld_field(w, &nptrs, C_STATE, 4);
                    w.alu(1); // accumulate
                    for l in 0..32 {
                        if let Some(s) = nstate[l] {
                            if (spec.is_live)(s as u32) {
                                count[l] += 1;
                            }
                        }
                    }
                }
                w.alu(4); // rule evaluation
                let next =
                    lanes_from_fn(|l| state[l].map(|s| (spec.rule)(s as u32, count[l]) as u64));
                // Write the agent's next state through the cell's pointer.
                let aptr_bits = prog.ld_field(w, &objs, C_AGENT, 8);
                let aptrs = lanes_from_fn(|l| aptr_bits[l].map(VirtAddr::new));
                prog.st_field(w, &aptrs, A_NEXT, 4, &next);
            });
        });

        // K2: commit. One thread per agent.
        rig.run_kernel(n, |prog, w| {
            let objs = lanes_ptrs(w, &agents);
            prog.vcall(w, &CallSite::new(0), &objs, |w, fid| {
                let next = prog.ld_field(w, &objs, A_NEXT, 4);
                prog.st_field(w, &objs, A_STATE, 4, &next);
                // Mirror into the cell so neighbours read it next round.
                let cptr_bits = prog.ld_field(w, &objs, A_CELL, 8);
                let cptrs = lanes_from_fn(|l| cptr_bits[l].map(VirtAddr::new));
                prog.st_field(w, &cptrs, C_STATE, 4, &next);
                w.alu(if fid == F_AGENT_A_COMMIT { 1 } else { 2 });
            });
        });
    }

    let mut ck = Checksum::new();
    let hdr = rig.prog.header_bytes();
    let mut alive = 0u64;
    let mut state_sum = 0u64;
    for a in &agents {
        let v = rig
            .mem
            .read_u32(a.strip_tag().offset(hdr + A_STATE))
            .unwrap();
        ck.push(v as u64);
        state_sum += v as u64;
        if (spec.is_live)(v) {
            alive += 1;
        }
    }
    let metrics = vec![("alive", alive as f64), ("state_sum", state_sum as f64)];
    crate::util::collect_with_metrics(rig, &reg, ck, metrics)
}
