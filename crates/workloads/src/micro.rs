//! The §8.3 scalability microbenchmarks (Fig. 12): high-vFuncPKI
//! kernels sweeping object count and types-per-warp, with the BRANCH
//! register-dispatch ideal as the baseline.
//!
//! Every thread makes one virtual call per iteration whose body performs
//! "a simple addition" (§8.3): it reads a per-thread input, adds a
//! callee-specific constant, and stores the result. Under the object
//! strategies the input is an object field; under BRANCH — which "does
//! not access memory for the function call" and has no objects — it is a
//! flat input array. Both hold the same values, so every strategy
//! produces the same output array.

use crate::config::{RunResult, WorkloadConfig};
use crate::rig::{Checksum, Rig};
use crate::util::{collect_with_metrics, lanes_ptrs};
use gvf_core::{CallSite, DeviceProgram, FuncId, Strategy, TypeId, TypeRegistry};
use gvf_mem::VirtAddr;
use gvf_sim::{lanes_from_fn, AccessTag, WarpCtx};

/// Parameters of one microbenchmark point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MicroParams {
    /// Number of objects (= threads).
    pub n_objects: usize,
    /// Number of types; lane `i` gets type `tid % n_types`, so this is
    /// also the number of distinct types touched by one warp (§8.3).
    pub n_types: usize,
}

impl MicroParams {
    /// The Fig. 12a sweep point: `x` million-ish objects at 4 types
    /// (scaled by `cfg.scale` relative to the paper's absolute counts).
    pub fn objects_sweep(x: usize) -> Self {
        MicroParams {
            n_objects: x,
            n_types: 4,
        }
    }
}

// Object field: input value u32 @0.
const F_VAL: u64 = 0;

fn registry(n_types: usize) -> (TypeRegistry, Vec<TypeId>) {
    let mut reg = TypeRegistry::new();
    let tys = (0..n_types)
        .map(|t| reg.add_type(&format!("MicroType{t}"), 8, &[FuncId(t as u32)]))
        .collect();
    (reg, tys)
}

/// The callee body: add the callee's constant to the loaded input and
/// store the result (`out[tid] = in + fid + iter`).
fn body_store(
    prog: &DeviceProgram,
    w: &mut WarpCtx<'_>,
    out: VirtAddr,
    inputs: &gvf_sim::Lanes<u64>,
    fid: FuncId,
    iter: u32,
    n: usize,
) {
    w.alu(1); // the simple addition
    let addrs = lanes_from_fn(|l| {
        (w.is_active(l) && w.thread_id(l) < n).then(|| out.offset(w.thread_id(l) as u64 * 4))
    });
    let vals = lanes_from_fn(|l| inputs[l].map(|v| (v + fid.0 as u64 + iter as u64) & 0xffff_ffff));
    w.st(AccessTag::Other, 4, &addrs, &vals);
    let _ = prog;
}

/// Runs the microbenchmark under `strategy`.
pub fn run(strategy: Strategy, params: MicroParams, cfg: &WorkloadConfig) -> RunResult {
    let (reg, tys) = registry(params.n_types);
    let mut rig = Rig::new(&reg, strategy, cfg);
    let n = params.n_objects;

    // Objects (with their input field), or a flat input array for BRANCH.
    let mut objs: Vec<VirtAddr> = Vec::new();
    let input_array = if strategy == Strategy::Branch {
        let a = rig.reserve(n as u64 * 4, 256);
        for i in 0..n {
            rig.mem.write_u32(a.offset(i as u64 * 4), i as u32).unwrap();
        }
        Some(a)
    } else {
        objs = (0..n)
            .map(|i| rig.construct(tys[i % params.n_types]))
            .collect();
        let hdr = rig.prog.header_bytes();
        for (i, o) in objs.iter().enumerate() {
            rig.mem
                .write_u32(o.strip_tag().offset(hdr + F_VAL), i as u32)
                .unwrap();
        }
        None
    };
    rig.finalize();
    let out = rig.reserve(n as u64 * 4, 256);

    for iter in 0..cfg.iterations {
        rig.run_kernel(n, |prog, w| {
            if let Some(input) = input_array {
                // BRANCH: register-based arbitration, array input. The
                // load sits inside the callee body like the adds do, so
                // divergence serializes it per group.
                let types = lanes_from_fn(|l| Some(tys[w.thread_id(l) % params.n_types]));
                prog.branch_call(w, 0, &types, |w, fid| {
                    let in_addrs = lanes_from_fn(|l| {
                        (w.is_active(l) && w.thread_id(l) < n)
                            .then(|| input.offset(w.thread_id(l) as u64 * 4))
                    });
                    let inputs = w.ld(AccessTag::Other, 4, &in_addrs);
                    body_store(prog, w, out, &inputs, fid, iter, n);
                });
            } else {
                let ptrs = lanes_ptrs(w, &objs);
                prog.vcall(w, &CallSite::new(0), &ptrs, |w, fid| {
                    let inputs = prog.ld_field(w, &ptrs, F_VAL, 4);
                    body_store(prog, w, out, &inputs, fid, iter, n);
                });
            }
        });
    }

    let mut ck = Checksum::new();
    let mut out_sum = 0u64;
    for i in 0..n {
        let v = rig.mem.read_u32(out.offset(i as u64 * 4)).unwrap();
        ck.push(v as u64);
        out_sum += v as u64;
    }
    let metrics = vec![("out_sum", out_sum as f64)];
    collect_with_metrics(rig, &reg, ck, metrics)
}
