//! Shared experiment rig: memory + program + allocator + GPU plumbing.

use crate::config::{AllocAttribSnapshot, AttribBundle, WorkloadConfig};
use gvf_alloc::{AllocatorKind, CudaHeapAllocator, DeviceAllocator, SharedOa};
use gvf_core::{DeviceProgram, Strategy, TypeId, TypeRegistry};
use gvf_mem::{DeviceMemory, VirtAddr};
use gvf_sim::hostperf::{self, Phase};
use gvf_sim::{recording_probe, Gpu, KernelTrace, ObsReport, ProbeSpec, Stats, WarpCtx};
use std::time::Instant;

/// Everything a workload needs to build objects and run kernels.
#[derive(Debug)]
pub struct Rig {
    /// The CPU–GPU shared memory space.
    pub mem: DeviceMemory,
    /// The materialized program (vTables, tags, dispatch).
    pub prog: DeviceProgram,
    /// The object allocator in use.
    pub alloc: Box<dyn DeviceAllocator>,
    gpu: Gpu,
    stats: Stats,
    objects_built: u64,
    probe_spec: ProbeSpec,
    obs: ObsReport,
    // Host-phase attribution (wall time of this rig, split between the
    // alloc/build phase and kernel execution). Two clock reads per
    // kernel launch, never per object — see gvf_sim::hostperf.
    last_mark: Instant,
    alloc_ns: u64,
    simulate_ns: u64,
}

impl Rig {
    /// Builds a rig for `strategy` under `cfg`: chooses the allocator
    /// (honouring [`WorkloadConfig::allocator_override`], the Fig. 11
    /// knob), materializes the program, and registers object sizes.
    pub fn new(registry: &TypeRegistry, strategy: Strategy, cfg: &WorkloadConfig) -> Self {
        let mut mem = DeviceMemory::with_capacity(cfg.device_memory_bytes);
        let mut prog = match cfg.tag_budget {
            Some(budget) => {
                DeviceProgram::with_tag_budget(&mut mem, registry, strategy, cfg.tag_mode, budget)
            }
            None => DeviceProgram::with_tag_mode(&mut mem, registry, strategy, cfg.tag_mode),
        };
        prog.set_lookup_kind(cfg.coal_lookup);
        let kind = cfg
            .allocator_override
            .unwrap_or_else(|| strategy.default_allocator());
        let mut alloc: Box<dyn DeviceAllocator> = match kind {
            AllocatorKind::Cuda => Box::new(CudaHeapAllocator::new()),
            AllocatorKind::SharedOa => {
                Box::new(SharedOa::with_initial_chunk(cfg.initial_chunk_objs))
            }
        };
        prog.register_types(alloc.as_mut());
        Rig {
            mem,
            prog,
            alloc,
            gpu: Gpu::new(cfg.gpu.clone())
                .with_threads(cfg.engine_threads)
                .with_fast_forward(cfg.fast_forward),
            stats: Stats::new(),
            objects_built: 0,
            probe_spec: cfg.probe,
            obs: ObsReport::default(),
            last_mark: Instant::now(),
            alloc_ns: 0,
            simulate_ns: 0,
        }
    }

    /// Constructs one object of `t` (tagged pointer under TypePointer).
    pub fn construct(&mut self, t: TypeId) -> VirtAddr {
        self.objects_built += 1;
        self.prog.construct(&mut self.mem, self.alloc.as_mut(), t)
    }

    /// Snapshots the range table into COAL's segment tree. Call after
    /// the allocation phase, before the first kernel.
    pub fn finalize(&mut self) {
        self.prog
            .finalize_ranges(&mut self.mem, self.alloc.as_ref());
    }

    /// Reserves raw device memory outside any object (arrays, frame
    /// buffers, CSR offsets...).
    pub fn reserve(&mut self, len: u64, align: u64) -> VirtAddr {
        self.mem.reserve(len, align)
    }

    /// Runs one compute kernel of `n_threads`, accumulating its timing
    /// into the rig's statistics, and returns the raw trace.
    ///
    /// Each launch gets its own constant-memory function table
    /// ([`DeviceProgram::begin_kernel`]): virtual-function code lives at
    /// different addresses in every kernel, as on real CUDA (§2).
    pub fn run_kernel(
        &mut self,
        n_threads: usize,
        mut body: impl FnMut(&DeviceProgram, &mut WarpCtx<'_>),
    ) -> KernelTrace {
        // Everything since the last kernel (object construction, range
        // finalization, host frame prep) belongs to the alloc phase;
        // the kernel call itself — functional execution plus timing
        // replay — is the simulate phase.
        let kernel_start = Instant::now();
        self.alloc_ns += kernel_start
            .saturating_duration_since(self.last_mark)
            .as_nanos() as u64;
        self.prog.begin_kernel(&mut self.mem);
        let prog = &self.prog;
        let trace = {
            let _fx = gvf_sim::spans::span("kernel.functional");
            gvf_sim::run_kernel(&mut self.mem, n_threads, |w| body(prog, w))
        };
        let s = if self.probe_spec.is_off() {
            // Zero-overhead default: the NopProbe monomorphization.
            let _tm = gvf_sim::spans::span("kernel.timing");
            self.gpu.execute(&trace)
        } else {
            let spec = self.probe_spec;
            let (s, probes) = {
                let _tm = gvf_sim::spans::span("kernel.timing");
                self.gpu
                    .execute_probed(&trace, |sm| recording_probe(sm, spec))
            };
            // Offset this launch's timeline by the cycles already
            // simulated, so back-to-back kernels read as one run; the
            // launch's own cycle count closes the cycle audit's books.
            // The absorb span measures the probe overhead itself.
            let _ab = gvf_sim::spans::span("kernel.absorb");
            self.obs.absorb(self.stats.cycles, s.cycles, probes);
            s
        };
        self.stats += &s;
        let kernel_end = Instant::now();
        self.simulate_ns += kernel_end
            .saturating_duration_since(kernel_start)
            .as_nanos() as u64;
        self.last_mark = kernel_end;
        trace
    }

    /// Host nanoseconds this rig has attributed so far as
    /// `(alloc, simulate)` — flushed to [`gvf_sim::hostperf`] on drop.
    pub fn host_phase_ns(&self) -> (u64, u64) {
        (self.alloc_ns, self.simulate_ns)
    }

    /// Accumulated statistics over every kernel run so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Takes the observability artifacts recorded so far; `None` when
    /// probes were off (or nothing fired). Leaves the rig's report
    /// empty.
    pub fn take_obs(&mut self) -> Option<ObsReport> {
        if self.obs.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.obs))
        }
    }

    /// Takes the mechanism-attribution bundle: the probes' cache-level
    /// evidence joined with the allocator, lookup and tag introspection
    /// snapshots. `None` when attribution was off (or no kernel ran).
    /// Call before [`take_obs`](Self::take_obs) — this removes the
    /// attribution half of the observability report.
    pub fn take_attrib(&mut self) -> Option<AttribBundle> {
        let probe = self.obs.attribution.take()?;
        Some(AttribBundle {
            probe,
            alloc: self.alloc.shared_oa().map(|soa| AllocAttribSnapshot {
                merges: soa.merges(),
                initial_chunk_objs: soa.initial_chunk_objs(),
                types: soa.region_stats(),
            }),
            lookup: self.prog.lookup_attrib(),
            tags: self.prog.tag_attrib(),
        })
    }

    /// Takes the cycle-audit report accumulated across this rig's
    /// kernel launches; `None` when the audit was off (or no kernel
    /// ran). Like [`take_attrib`](Self::take_attrib), call before
    /// [`take_obs`](Self::take_obs) — this removes the audit half of
    /// the observability report.
    pub fn take_audit(&mut self) -> Option<gvf_sim::CycleAuditReport> {
        self.obs.audit.take()
    }

    /// Number of objects constructed.
    pub fn objects_built(&self) -> u64 {
        self.objects_built
    }

    /// Modeled object-initialization cost (the §8.2 "80×" comparison):
    /// objects × the allocator's per-object init cycles.
    pub fn init_cycles_model(&self) -> u64 {
        self.objects_built * self.alloc.kind().init_cycles_per_object()
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        // Trailing host work after the last kernel (checksum readback,
        // metric extraction) counts as alloc/build time — this also
        // covers rigs that never launch a kernel, like the §8.2
        // allocation-only comparison.
        self.alloc_ns += self.last_mark.elapsed().as_nanos() as u64;
        hostperf::add_phase_ns(Phase::Alloc, self.alloc_ns);
        hostperf::add_phase_ns(Phase::Simulate, self.simulate_ns);
    }
}

/// Order-insensitive FNV-1a style folding for functional checksums.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checksum(u64);

impl Checksum {
    /// Fresh checksum.
    pub fn new() -> Self {
        Checksum(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one value in (order-sensitive).
    pub fn push(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }

    /// Folds a float in via its bit pattern, quantized to survive the
    /// associativity differences of per-strategy execution order.
    pub fn push_f32_quantized(&mut self, v: f32) {
        self.push((v as f64 * 1024.0).round() as i64 as u64);
    }

    /// The digest.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}
