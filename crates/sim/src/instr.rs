//! Warp-level instruction events consumed by the timing model.

use std::fmt;

/// Memory space of an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Space {
    /// Global (device) memory, cached in L1/L2.
    Global,
    /// Constant memory, served by the per-SM constant cache (the paper's
    /// per-kernel virtual-function tables live here, §2).
    Const,
}

/// Semantic tag identifying *why* an access happens, used for the
/// Fig. 1b-style latency attribution and Table 1 accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessTag {
    /// Operation **A**: load of the object's embedded vTable pointer
    /// (CUDA dispatch) — the diverged, per-object load.
    VtablePtr,
    /// Operation **B**: load of the virtual function pointer from the
    /// vTable (converged per type).
    VfuncPtr,
    /// The per-kernel constant-memory indirection between B and C (§2).
    ConstIndirection,
    /// Concord's load of the type tag embedded in the object.
    TypeTag,
    /// COAL's walk of the virtual range table / segment tree.
    RangeWalk,
    /// Ordinary object member access from workload code.
    Field,
    /// Anything else (workload arrays, outputs, ...).
    Other,
}

impl AccessTag {
    /// All tags, in display order.
    pub const ALL: [AccessTag; 7] = [
        AccessTag::VtablePtr,
        AccessTag::VfuncPtr,
        AccessTag::ConstIndirection,
        AccessTag::TypeTag,
        AccessTag::RangeWalk,
        AccessTag::Field,
        AccessTag::Other,
    ];

    /// Compact index for counter arrays.
    pub const fn index(self) -> usize {
        match self {
            AccessTag::VtablePtr => 0,
            AccessTag::VfuncPtr => 1,
            AccessTag::ConstIndirection => 2,
            AccessTag::TypeTag => 3,
            AccessTag::RangeWalk => 4,
            AccessTag::Field => 5,
            AccessTag::Other => 6,
        }
    }
}

impl fmt::Display for AccessTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessTag::VtablePtr => "vtable-ptr (A)",
            AccessTag::VfuncPtr => "vfunc-ptr (B)",
            AccessTag::ConstIndirection => "const-indirection",
            AccessTag::TypeTag => "type-tag",
            AccessTag::RangeWalk => "range-walk",
            AccessTag::Field => "field",
            AccessTag::Other => "other",
        };
        f.write_str(s)
    }
}

/// Sentinel [`Op::IndirectCall`] target for producers that cannot name
/// the callee (hand-built test traces, legacy entry points).
pub const UNKNOWN_CALL_TARGET: u64 = u64::MAX;

/// Instruction class, matching the paper's Fig. 7 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Loads and stores (global + constant).
    Mem,
    /// Arithmetic / logic.
    Compute,
    /// Branches, calls, returns.
    Ctrl,
}

/// Dense lane addresses of a [`MemOp`].
///
/// Hand-built ops own their address list; ops recorded by the
/// functional pass are interned into the owning warp trace's shared
/// lane arena (one growable buffer per warp), so trace construction
/// performs no per-instruction heap allocation. Either form resolves
/// to a `&[u64]` through `WarpTrace::lanes`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaneAddrs {
    /// Self-contained address list.
    Owned(Box<[u64]>),
    /// `len` addresses starting at index `start` of the owning warp
    /// trace's lane arena.
    Interned {
        /// First index in the arena.
        start: u32,
        /// Number of addresses.
        len: u32,
    },
}

impl From<Vec<u64>> for LaneAddrs {
    fn from(v: Vec<u64>) -> Self {
        LaneAddrs::Owned(v.into_boxed_slice())
    }
}

impl From<Box<[u64]>> for LaneAddrs {
    fn from(b: Box<[u64]>) -> Self {
        LaneAddrs::Owned(b)
    }
}

/// A memory operation by one warp: up to 32 lane addresses.
///
/// Addresses are stored densely; `mask` says which lanes participate.
/// Bit `i` of `mask` set means lane `i` issued the `k`-th address in
/// `addrs`, where `k` is the rank of bit `i` among set bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Memory space.
    pub space: Space,
    /// `true` for stores.
    pub is_store: bool,
    /// Access width in bytes (1–8).
    pub width: u8,
    /// Active-lane mask.
    pub mask: u32,
    /// Canonical per-lane byte addresses (dense, one per set mask bit).
    pub addrs: LaneAddrs,
    /// Attribution tag.
    pub tag: AccessTag,
}

impl MemOp {
    /// Number of participating lanes.
    pub fn lane_count(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// One warp-level instruction event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `n` back-to-back arithmetic instructions (fused for trace
    /// compactness; counts as `n` dynamic instructions).
    Alu(u16),
    /// A load or store.
    Mem(MemOp),
    /// A direct branch / predicate evaluation / reconvergence point.
    Branch,
    /// An indirect call through a register (operation **C**). `target`
    /// is the resolved callee identity (the registry's function id) for
    /// call-site type profiling, or [`UNKNOWN_CALL_TARGET`] when the
    /// producer does not know it. Timing never reads the target.
    IndirectCall {
        /// Resolved callee, or [`UNKNOWN_CALL_TARGET`].
        target: u64,
    },
    /// A direct call (Concord's statically-known targets).
    DirectCall,
    /// Return from a (virtual) function body.
    Ret,
}

impl Op {
    /// Instruction class of this op.
    pub fn class(&self) -> InstrClass {
        match self {
            Op::Alu(_) => InstrClass::Compute,
            Op::Mem(_) => InstrClass::Mem,
            Op::Branch | Op::IndirectCall { .. } | Op::DirectCall | Op::Ret => InstrClass::Ctrl,
        }
    }

    /// Number of dynamic instructions this event represents.
    pub fn dyn_count(&self) -> u64 {
        match self {
            Op::Alu(n) => *n as u64,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(Op::Alu(3).class(), InstrClass::Compute);
        assert_eq!(Op::Branch.class(), InstrClass::Ctrl);
        assert_eq!(
            Op::IndirectCall {
                target: UNKNOWN_CALL_TARGET
            }
            .class(),
            InstrClass::Ctrl
        );
        let m = MemOp {
            space: Space::Global,
            is_store: false,
            width: 8,
            mask: 0b101,
            addrs: vec![0, 64].into(),
            tag: AccessTag::Field,
        };
        assert_eq!(m.lane_count(), 2);
        assert_eq!(Op::Mem(m).class(), InstrClass::Mem);
    }

    #[test]
    fn dyn_counts() {
        assert_eq!(Op::Alu(5).dyn_count(), 5);
        assert_eq!(Op::Ret.dyn_count(), 1);
    }

    #[test]
    fn tag_indices_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in AccessTag::ALL {
            assert!(seen.insert(t.index()));
        }
    }
}
