//! Hierarchical host-side span profiler: where does the engine's own
//! wall-clock time go?
//!
//! [`hostperf`](crate::hostperf) answers the coarse question (alloc vs
//! simulate vs setup/report, per-worker busy/idle). This module drills
//! into the *engine*: RAII scoped timers ([`span`]) form a per-thread
//! stack whose closed frames accumulate into collapsed call paths
//! (`"engine.execute;engine.phase_a"`), each with a call count and
//! inclusive nanoseconds. [`snapshot`] merges every thread's totals,
//! derives exclusive time (inclusive minus direct children) and returns
//! the spans sorted by path; [`collapsed_stacks`] renders the standard
//! `stack value` text that flamegraph tooling consumes directly.
//!
//! Cost model: the profiler is **off by default** and gated on one
//! relaxed [`AtomicBool`] load per [`span`] call (the guard is inert
//! when disabled — no clock read, no allocation). When [`enable`]d,
//! each span costs two `Instant` reads plus a hash-map bump on a
//! thread-local table; the collapsed path is maintained incrementally
//! so steady-state spans allocate nothing. Instrumentation sites are
//! chosen at epoch/phase granularity, never per simulated event, and
//! the probe-overhead span measures the instrumentation itself.
//!
//! Like `hostPerf`, everything here is host-side wall-clock telemetry:
//! it never touches simulated [`Stats`](crate::Stats) or stdout, and
//! the emitted `gvf.hostprofile` artifact is excluded from the
//! serial-vs-parallel determinism diff by construction (it is a
//! separate file, not a manifest section).
//!
//! Thread lifecycle: worker threads (the engine's scoped phase-A
//! workers, [`SimPool`](crate::SimPool) workers) flush their local
//! tables into the global collector automatically when the thread
//! exits, via the thread-local's `Drop`. The calling thread is flushed
//! explicitly by [`snapshot`], so harness binaries need no manual
//! bookkeeping.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Separator between frames of a collapsed path (the flamegraph
/// convention).
pub const PATH_SEPARATOR: char = ';';

static ENABLED: AtomicBool = AtomicBool::new(false);
static LIVE: AtomicBool = AtomicBool::new(false);

/// Turns span recording on, process-wide. Called by the harness when
/// `--profile-out` is given; there is deliberately no `disable` — the
/// profile covers the whole run or none of it.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Additionally publishes each thread's **current open span path** to a
/// process-wide registry readable by [`live_stacks`] — the stall
/// watchdog's view into what a stuck worker is doing right now (a stuck
/// thread cannot flush or report on itself). Implies [`enable`]. Like
/// recording, this is on for the whole run or not at all.
pub fn enable_live_stacks() {
    enable();
    LIVE.store(true, Ordering::Relaxed);
}

/// Whether live-stack publishing is on.
#[inline(always)]
pub fn live_stacks_enabled() -> bool {
    LIVE.load(Ordering::Relaxed)
}

/// One thread's published live state: a stable label plus the currently
/// open collapsed path (kept allocation-free in steady state — the
/// buffer's capacity is reused on every update).
#[derive(Debug)]
struct LiveSlot {
    label: String,
    path: Mutex<String>,
}

type LiveRegistry = Mutex<Vec<(u64, Arc<LiveSlot>)>>;

fn live_registry() -> &'static LiveRegistry {
    static REGISTRY: OnceLock<LiveRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// The current open span path of every registered thread, as
/// `(thread label, collapsed path)` pairs sorted by label; threads with
/// no open span are omitted. Empty until [`enable_live_stacks`] and the
/// first instrumented work. Labels are thread names
/// (`pool-worker-N`, …) or `thread-<seq>` for unnamed threads.
pub fn live_stacks() -> Vec<(String, String)> {
    let registry = live_registry().lock().expect("live stack registry");
    let mut out: Vec<(String, String)> = registry
        .iter()
        .filter_map(|(_, slot)| {
            let path = slot.path.lock().expect("live stack slot").clone();
            if path.is_empty() {
                None
            } else {
                Some((slot.label.clone(), path))
            }
        })
        .collect();
    drop(registry);
    out.sort();
    out
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Totals {
    count: u64,
    total_ns: u64,
}

/// One merged span in a [`snapshot`]: a collapsed call path with its
/// call count, inclusive nanoseconds, and exclusive nanoseconds
/// (inclusive minus the inclusive time of direct children).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// `;`-joined path from the outermost enclosing span to this one.
    pub path: String,
    /// Times this exact path was entered and closed.
    pub count: u64,
    /// Inclusive wall nanoseconds across all entries.
    pub total_ns: u64,
    /// `total_ns` minus the `total_ns` of direct children — the time
    /// spent in this frame itself.
    pub exclusive_ns: u64,
}

struct ThreadSpans {
    /// The collapsed path of the currently open span stack, maintained
    /// incrementally (`"a;b;c"` when three spans are open).
    path: String,
    /// One mark per open span: the path length to truncate back to on
    /// close, and the start instant.
    marks: Vec<(usize, Instant)>,
    totals: HashMap<String, Totals>,
    /// This thread's slot in the live-stack registry, registered lazily
    /// on the first span opened while publishing is on; the id keys the
    /// registry entry for removal on thread exit.
    live: Option<(u64, Arc<LiveSlot>)>,
}

impl ThreadSpans {
    fn new() -> Self {
        ThreadSpans {
            path: String::new(),
            marks: Vec::new(),
            totals: HashMap::new(),
            live: None,
        }
    }

    /// Mirrors the current open path into this thread's registry slot
    /// (registering on first use). Steady-state cost: one uncontended
    /// lock plus a copy into a reused buffer.
    fn publish_live(&mut self) {
        if !live_stacks_enabled() {
            return;
        }
        if self.live.is_none() {
            static NEXT_ID: AtomicU64 = AtomicU64::new(0);
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{id}"));
            let slot = Arc::new(LiveSlot {
                label,
                path: Mutex::new(String::new()),
            });
            live_registry()
                .lock()
                .expect("live stack registry")
                .push((id, Arc::clone(&slot)));
            self.live = Some((id, slot));
        }
        if let Some((_, slot)) = &self.live {
            let mut published = slot.path.lock().expect("live stack slot");
            published.clear();
            published.push_str(&self.path);
        }
    }

    fn open(&mut self, name: &'static str) {
        let prev_len = self.path.len();
        if prev_len > 0 {
            self.path.push(PATH_SEPARATOR);
        }
        self.path.push_str(name);
        self.marks.push((prev_len, Instant::now()));
        self.publish_live();
    }

    fn close(&mut self) {
        let Some((prev_len, start)) = self.marks.pop() else {
            return; // unbalanced close; drop silently rather than panic
        };
        let ns = start.elapsed().as_nanos() as u64;
        // Steady state allocates nothing: the owned key is only cloned
        // the first time a path is seen.
        match self.totals.get_mut(self.path.as_str()) {
            Some(t) => {
                t.count += 1;
                t.total_ns += ns;
            }
            None => {
                self.totals.insert(
                    self.path.clone(),
                    Totals {
                        count: 1,
                        total_ns: ns,
                    },
                );
            }
        }
        self.path.truncate(prev_len);
        self.publish_live();
    }

    fn flush(&mut self) {
        if self.totals.is_empty() {
            return;
        }
        let mut global = collector().lock().expect("span collector mutex");
        for (path, t) in self.totals.drain() {
            let e = global.entry(path).or_default();
            e.count += t.count;
            e.total_ns += t.total_ns;
        }
    }
}

impl Drop for ThreadSpans {
    fn drop(&mut self) {
        // Worker threads (engine scope threads, SimPool workers) merge
        // their tables here when they exit.
        self.flush();
        if let Some((id, _)) = self.live.take() {
            live_registry()
                .lock()
                .expect("live stack registry")
                .retain(|(slot_id, _)| *slot_id != id);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::new());
}

fn collector() -> &'static Mutex<HashMap<String, Totals>> {
    static COLLECTOR: OnceLock<Mutex<HashMap<String, Totals>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(HashMap::new()))
}

/// RAII guard returned by [`span`]; closes the span on drop. Inert
/// (`armed == false`) when the profiler was disabled at entry.
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            LOCAL.with(|l| l.borrow_mut().close());
        }
    }
}

/// Opens a named span on this thread's stack; the returned guard closes
/// it when dropped. When the profiler is disabled this is one relaxed
/// atomic load and nothing else.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    LOCAL.with(|l| l.borrow_mut().open(name));
    SpanGuard { armed: true }
}

/// Merges this thread's local table into the global collector. Worker
/// threads do this automatically on exit; [`snapshot`] calls it for the
/// snapshotting thread.
pub fn flush_current_thread() {
    LOCAL.with(|l| l.borrow_mut().flush());
}

/// Direct-parent path of a collapsed path, or `None` for roots.
fn parent(path: &str) -> Option<&str> {
    path.rfind(PATH_SEPARATOR).map(|i| &path[..i])
}

/// A merged view of every flushed thread's spans, sorted by path, with
/// exclusive time derived. Open (unclosed) spans are not included.
pub fn snapshot() -> Vec<SpanStat> {
    flush_current_thread();
    let global = collector().lock().expect("span collector mutex");
    let mut stats: Vec<SpanStat> = global
        .iter()
        .map(|(path, t)| SpanStat {
            path: path.clone(),
            count: t.count,
            total_ns: t.total_ns,
            exclusive_ns: t.total_ns,
        })
        .collect();
    drop(global);
    stats.sort_by(|a, b| a.path.cmp(&b.path));
    // Exclusive = inclusive − Σ direct children. Children of a path can
    // have been recorded on different threads than their parent (the
    // engine's phase-A spans close on workers while "engine.execute"
    // closes on the main thread), so this is computed over the merged
    // table, saturating when a child outlives its parent's measured
    // window.
    let child_ns: HashMap<String, u64> = {
        let mut acc: HashMap<String, u64> = HashMap::new();
        for s in &stats {
            if let Some(p) = parent(&s.path) {
                *acc.entry(p.to_string()).or_default() += s.total_ns;
            }
        }
        acc
    };
    for s in &mut stats {
        if let Some(ns) = child_ns.get(&s.path) {
            s.exclusive_ns = s.total_ns.saturating_sub(*ns);
        }
    }
    stats
}

/// One aligned span path across two profiles: its exclusive time on
/// each side, zero-filled where the path is missing. Produced by
/// [`align_exclusive`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanDelta {
    /// Collapsed span path (`;`-separated).
    pub path: String,
    /// Exclusive nanoseconds in the baseline profile (0 if absent).
    pub baseline_ns: u64,
    /// Exclusive nanoseconds in the current profile (0 if absent).
    pub current_ns: u64,
}

impl SpanDelta {
    /// `current − baseline`, signed.
    pub fn delta_ns(&self) -> i128 {
        self.current_ns as i128 - self.baseline_ns as i128
    }
}

/// Aligns two `(path, exclusive_ns)` profiles — e.g. two runs' span
/// snapshots read back from `gvf.hostprofile` artifacts — into per-path
/// exclusive-time deltas. Paths present on one side only are zero-filled
/// on the other; paths whose exclusive time is identical on both sides
/// are omitted (so diffing a profile against itself yields an empty
/// list). Sorted by |delta| descending, ties by path, so the top-K
/// movers are a prefix. Duplicate paths on a side are summed.
pub fn align_exclusive(baseline: &[(String, u64)], current: &[(String, u64)]) -> Vec<SpanDelta> {
    let mut merged: HashMap<&str, (u64, u64)> = HashMap::new();
    for (path, ns) in baseline {
        merged.entry(path.as_str()).or_default().0 += ns;
    }
    for (path, ns) in current {
        merged.entry(path.as_str()).or_default().1 += ns;
    }
    let mut deltas: Vec<SpanDelta> = merged
        .into_iter()
        .filter(|(_, (b, c))| b != c)
        .map(|(path, (baseline_ns, current_ns))| SpanDelta {
            path: path.to_string(),
            baseline_ns,
            current_ns,
        })
        .collect();
    deltas.sort_by(|a, b| {
        b.delta_ns()
            .abs()
            .cmp(&a.delta_ns().abs())
            .then_with(|| a.path.cmp(&b.path))
    });
    deltas
}

/// Renders spans as collapsed-stack text (`path value` per line, values
/// in exclusive nanoseconds) — the input format of standard flamegraph
/// generators.
pub fn collapsed_stacks(stats: &[SpanStat]) -> String {
    let mut out = String::new();
    for s in stats {
        out.push_str(&s.path);
        out.push(' ');
        out.push_str(&s.exclusive_ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global and tests share a process, so
    // every test uses unique span names and filters its snapshot.

    #[test]
    fn disabled_span_records_nothing() {
        // Never enabled at this point in THIS test's view is not
        // guaranteed (another test may have enabled the profiler), so
        // assert the weaker, order-independent property: a name only
        // ever opened while we can prove recording was off is absent.
        // Run the guard before any enable() in this module's tests can
        // be assumed; uniqueness of the name keeps this sound even if
        // recording was already on — in that case we just skip.
        if enabled() {
            return;
        }
        {
            let _g = span("spans_test.disabled_probe");
        }
        let snap = snapshot();
        assert!(!snap.iter().any(|s| s.path.contains("disabled_probe")));
    }

    #[test]
    fn nested_spans_accumulate_and_derive_exclusive() {
        enable();
        {
            let _outer = span("spans_test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("spans_test.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = snapshot();
        let outer = snap
            .iter()
            .find(|s| s.path == "spans_test.outer")
            .expect("outer span recorded");
        let inner = snap
            .iter()
            .find(|s| s.path == "spans_test.outer;spans_test.inner")
            .expect("inner span recorded under outer");
        assert!(outer.count >= 1 && inner.count >= 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.exclusive_ns <= outer.total_ns.saturating_sub(inner.total_ns) + 1);
        assert_eq!(inner.exclusive_ns, inner.total_ns);
    }

    #[test]
    fn worker_thread_flushes_on_exit() {
        enable();
        std::thread::spawn(|| {
            let _g = span("spans_test.worker_root");
        })
        .join()
        .unwrap();
        let snap = snapshot();
        assert!(snap.iter().any(|s| s.path == "spans_test.worker_root"));
    }

    #[test]
    fn live_stacks_show_open_spans_and_clear_on_close() {
        enable_live_stacks();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::Builder::new()
            .name("spans-test-live".into())
            .spawn(move || {
                let _outer = span("spans_test.live_outer");
                let _inner = span("spans_test.live_inner");
                tx.send(()).unwrap();
                done_rx.recv().unwrap(); // hold the spans open
            })
            .unwrap();
        rx.recv().unwrap();
        let stacks = live_stacks();
        let mine = stacks
            .iter()
            .find(|(label, _)| label == "spans-test-live")
            .expect("worker published a live stack");
        assert_eq!(mine.1, "spans_test.live_outer;spans_test.live_inner");
        done_tx.send(()).unwrap();
        worker.join().unwrap();
        // The thread exited: its registry slot is gone.
        assert!(!live_stacks()
            .iter()
            .any(|(label, _)| label == "spans-test-live"));
    }

    #[test]
    fn collapsed_stack_lines_are_flamegraph_shaped() {
        enable();
        {
            let _g = span("spans_test.collapse_me");
        }
        let snap = snapshot();
        let text = collapsed_stacks(&snap);
        let line = text
            .lines()
            .find(|l| l.starts_with("spans_test.collapse_me "))
            .expect("collapsed line present");
        let (path, value) = line.rsplit_once(' ').unwrap();
        assert_eq!(path, "spans_test.collapse_me");
        assert!(value.parse::<u64>().is_ok());
    }

    fn profile(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(p, ns)| (p.to_string(), *ns)).collect()
    }

    #[test]
    fn align_exclusive_self_diff_is_empty() {
        let p = profile(&[("a", 100), ("a;b", 50), ("c", 0)]);
        assert!(align_exclusive(&p, &p).is_empty());
    }

    #[test]
    fn align_exclusive_zero_fills_and_ranks_by_absolute_delta() {
        let base = profile(&[("engine.execute", 1_000), ("report", 200)]);
        let cur = profile(&[
            ("engine.execute", 1_100),
            ("report", 200),
            ("sweep.slow_cell_injection", 9_000),
        ]);
        let deltas = align_exclusive(&base, &cur);
        assert_eq!(deltas.len(), 2); // "report" is unchanged → omitted
        assert_eq!(deltas[0].path, "sweep.slow_cell_injection");
        assert_eq!(deltas[0].baseline_ns, 0);
        assert_eq!(deltas[0].current_ns, 9_000);
        assert_eq!(deltas[0].delta_ns(), 9_000);
        assert_eq!(deltas[1].path, "engine.execute");
        assert_eq!(deltas[1].delta_ns(), 100);
    }

    #[test]
    fn align_exclusive_ranks_shrinkage_too() {
        let base = profile(&[("x", 5_000), ("y", 100)]);
        let cur = profile(&[("y", 250)]);
        let deltas = align_exclusive(&base, &cur);
        assert_eq!(deltas[0].path, "x");
        assert_eq!(deltas[0].delta_ns(), -5_000);
        assert_eq!(deltas[1].path, "y");
        assert_eq!(deltas[1].delta_ns(), 150);
    }
}
