//! Functional SIMT execution layer.
//!
//! Workload kernels are written against [`WarpCtx`]: warp-granular code
//! that performs *functional* loads/stores on the simulated
//! [`DeviceMemory`] while simultaneously recording the warp-level
//! instruction trace consumed by the timing engine. Control-flow
//! divergence is expressed with explicit lane masks ([`WarpCtx::with_mask`],
//! [`WarpCtx::branch_if`]), mirroring SIMT reconvergence-stack semantics.

use crate::instr::{AccessTag, Op, Space};
use crate::trace::{KernelTrace, WarpTrace};
use gvf_mem::{DeviceMemory, VirtAddr};

/// Threads per warp (fixed at 32, as on every NVIDIA GPU).
pub const WARP_SIZE: usize = 32;

/// A per-lane value vector: one optional value per warp lane.
/// `None` marks lanes that do not participate in an operation.
pub type Lanes<T> = [Option<T>; WARP_SIZE];

/// Creates a [`Lanes`] array from a function of the lane index.
pub fn lanes_from_fn<T: Copy>(f: impl FnMut(usize) -> Option<T>) -> Lanes<T> {
    std::array::from_fn(f)
}

/// A [`Lanes`] with every lane empty.
pub fn lanes_none<T: Copy>() -> Lanes<T> {
    [None; WARP_SIZE]
}

/// Execution context for one warp inside a kernel.
///
/// Every method that touches memory both performs the access on the
/// backing [`DeviceMemory`] *and* appends the corresponding warp
/// instruction to the trace, so the timing model sees exactly the
/// addresses the functional run used.
#[derive(Debug)]
pub struct WarpCtx<'m> {
    mem: &'m mut DeviceMemory,
    trace: WarpTrace,
    mask: u32,
    warp_id: usize,
}

impl<'m> WarpCtx<'m> {
    /// Creates a context for warp `warp_id` with initial active `mask`.
    pub fn new(mem: &'m mut DeviceMemory, warp_id: usize, mask: u32) -> Self {
        WarpCtx {
            mem,
            trace: WarpTrace::new(),
            warp_id,
            mask,
        }
    }

    /// This warp's index within the kernel launch.
    pub fn warp_id(&self) -> usize {
        self.warp_id
    }

    /// Global thread id of `lane`.
    pub fn thread_id(&self, lane: usize) -> usize {
        self.warp_id * WARP_SIZE + lane
    }

    /// Current active-lane mask.
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Whether `lane` is currently active.
    pub fn is_active(&self, lane: usize) -> bool {
        lane < WARP_SIZE && (self.mask >> lane) & 1 == 1
    }

    /// Iterator over currently active lane indices.
    pub fn active_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.mask;
        (0..WARP_SIZE).filter(move |&i| (mask >> i) & 1 == 1)
    }

    /// Direct access to the device memory (for host-side setup code that
    /// should not be traced).
    pub fn mem_untraced(&mut self) -> &mut DeviceMemory {
        self.mem
    }

    /// Finishes the warp, returning its trace.
    pub fn into_trace(self) -> WarpTrace {
        self.trace
    }

    /// Records `n` back-to-back arithmetic instructions.
    pub fn alu(&mut self, n: u16) {
        if self.mask != 0 && n > 0 {
            self.trace.push(Op::Alu(n));
        }
    }

    /// Records a direct branch / predicate op.
    pub fn branch(&mut self) {
        if self.mask != 0 {
            self.trace.push(Op::Branch);
        }
    }

    /// Records an indirect call (operation **C**) with an unknown
    /// callee — use [`indirect_call_to`](Self::indirect_call_to) when
    /// the dispatch target is known, so call-site type profiling can
    /// classify the site.
    pub fn indirect_call(&mut self) {
        self.indirect_call_to(crate::instr::UNKNOWN_CALL_TARGET);
    }

    /// Records an indirect call resolving to `target` (the dispatcher's
    /// function id). The target never affects timing; it only feeds the
    /// cycle-audit's per-call-site observed-type-set counters.
    pub fn indirect_call_to(&mut self, target: u64) {
        if self.mask != 0 {
            self.trace.push(Op::IndirectCall { target });
        }
    }

    /// Records a direct call.
    pub fn direct_call(&mut self) {
        if self.mask != 0 {
            self.trace.push(Op::DirectCall);
        }
    }

    /// Records a return.
    pub fn ret(&mut self) {
        if self.mask != 0 {
            self.trace.push(Op::Ret);
        }
    }

    /// Notes one dynamic virtual-function call site (Table 2 accounting).
    pub fn note_vfunc_call(&mut self) {
        if self.mask != 0 {
            self.trace.note_vfunc_call();
        }
    }

    /// Runs `f` with the active mask narrowed to `mask & self.mask()`
    /// (SIMT nested predication), restoring the previous mask afterwards.
    /// `f` is skipped entirely when the narrowed mask is empty.
    pub fn with_mask<R: Default>(&mut self, mask: u32, f: impl FnOnce(&mut Self) -> R) -> R {
        let narrowed = self.mask & mask;
        if narrowed == 0 {
            return R::default();
        }
        let saved = self.mask;
        self.mask = narrowed;
        let r = f(self);
        self.mask = saved;
        r
    }

    /// SIMT if/else: emits one branch instruction, then runs `then_f`
    /// with the lanes in `pred` and `else_f` with the rest. Either side
    /// is skipped if no lane takes it (branch-not-diverged fast path).
    pub fn branch_if(
        &mut self,
        pred: u32,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        self.branch();
        self.with_mask(pred, then_f);
        self.with_mask(!pred, else_f);
    }

    fn emit_mem(
        &mut self,
        space: Space,
        is_store: bool,
        width: u8,
        tag: AccessTag,
        addrs: &Lanes<VirtAddr>,
    ) -> u32 {
        let mut mask = 0u32;
        for lane in 0..WARP_SIZE {
            if self.is_active(lane) && addrs[lane].is_some() {
                mask |= 1 << lane;
            }
        }
        if mask != 0 {
            // The dense addresses go straight into the trace's lane
            // arena — recording a memory op never heap-allocates.
            self.trace.push_mem(
                space,
                is_store,
                width,
                mask,
                tag,
                (0..WARP_SIZE)
                    .filter(|l| (mask >> l) & 1 == 1)
                    .map(|l| addrs[l].expect("masked lane has address").canonical()),
            );
        }
        mask
    }

    /// Per-lane load of `width` (1–8) bytes, zero-extended to `u64`.
    ///
    /// Inactive lanes and `None` addresses yield `None`.
    ///
    /// # Panics
    /// Panics on an MMU fault — the simulated equivalent of a device-side
    /// trap (e.g. dereferencing a TypePointer-tagged address on a strict
    /// MMU).
    pub fn ld(&mut self, tag: AccessTag, width: u8, addrs: &Lanes<VirtAddr>) -> Lanes<u64> {
        self.ld_in(Space::Global, tag, width, addrs)
    }

    /// Like [`ld`](Self::ld) but from constant memory (the per-kernel
    /// virtual-function tables of paper §2 live there).
    pub fn ldc(&mut self, tag: AccessTag, width: u8, addrs: &Lanes<VirtAddr>) -> Lanes<u64> {
        self.ld_in(Space::Const, tag, width, addrs)
    }

    fn ld_in(
        &mut self,
        space: Space,
        tag: AccessTag,
        width: u8,
        addrs: &Lanes<VirtAddr>,
    ) -> Lanes<u64> {
        assert!((1..=8).contains(&width), "load width must be 1..=8 bytes");
        let mask = self.emit_mem(space, false, width, tag, addrs);
        let mut out = lanes_none();
        let w = width as usize;
        // Lanes overwhelmingly touch consecutive addresses (linear and
        // AoS field layouts), so fold maximal contiguous runs into one
        // device read each instead of 32 per-lane calls — the bytes
        // read are identical, only the host-side call count changes.
        let mut run = [0u8; 8 * WARP_SIZE];
        let mut lane = 0;
        while lane < WARP_SIZE {
            if (mask >> lane) & 1 == 0 {
                lane += 1;
                continue;
            }
            let base = addrs[lane].expect("masked lane has address");
            let mut len = 1;
            while lane + len < WARP_SIZE
                && (mask >> (lane + len)) & 1 == 1
                && addrs[lane + len].map(|a| a.raw()) == Some(base.raw() + (len * w) as u64)
            {
                len += 1;
            }
            self.mem
                .read_bytes(base, &mut run[..len * w])
                .unwrap_or_else(|e| panic!("device trap on load at lane {lane}: {e}"));
            for k in 0..len {
                let mut buf = [0u8; 8];
                buf[..w].copy_from_slice(&run[k * w..(k + 1) * w]);
                out[lane + k] = Some(u64::from_le_bytes(buf));
            }
            lane += len;
        }
        out
    }

    /// Per-lane store of the low `width` bytes of each value.
    ///
    /// # Panics
    /// Panics on an MMU fault, like [`ld`](Self::ld).
    pub fn st(&mut self, tag: AccessTag, width: u8, addrs: &Lanes<VirtAddr>, values: &Lanes<u64>) {
        assert!((1..=8).contains(&width), "store width must be 1..=8 bytes");
        let mask = self.emit_mem(Space::Global, true, width, tag, addrs);
        let w = width as usize;
        // Same contiguous-run batching as the load path: gather the
        // run's little-endian bytes, then one device write.
        let mut run = [0u8; 8 * WARP_SIZE];
        let mut lane = 0;
        while lane < WARP_SIZE {
            if (mask >> lane) & 1 == 0 {
                lane += 1;
                continue;
            }
            let base = addrs[lane].expect("masked lane has address");
            let mut len = 1;
            while lane + len < WARP_SIZE
                && (mask >> (lane + len)) & 1 == 1
                && addrs[lane + len].map(|a| a.raw()) == Some(base.raw() + (len * w) as u64)
            {
                len += 1;
            }
            for k in 0..len {
                let v = values[lane + k].expect("store value for active lane");
                run[k * w..(k + 1) * w].copy_from_slice(&v.to_le_bytes()[..w]);
            }
            self.mem
                .write_bytes(base, &run[..len * w])
                .unwrap_or_else(|e| panic!("device trap on store at lane {lane}: {e}"));
            lane += len;
        }
    }

    /// Convenience: 8-byte loads returning pointers.
    ///
    /// # Panics
    /// Panics on an MMU fault.
    pub fn ld_ptr(&mut self, tag: AccessTag, addrs: &Lanes<VirtAddr>) -> Lanes<VirtAddr> {
        let raw = self.ld(tag, 8, addrs);
        lanes_from_fn(|i| raw[i].map(VirtAddr::new))
    }

    /// Convenience: 4-byte loads reinterpreted as `f32`.
    ///
    /// # Panics
    /// Panics on an MMU fault.
    pub fn ld_f32(&mut self, tag: AccessTag, addrs: &Lanes<VirtAddr>) -> Lanes<f32> {
        let raw = self.ld(tag, 4, addrs);
        lanes_from_fn(|i| raw[i].map(|v| f32::from_bits(v as u32)))
    }

    /// Convenience: 4-byte stores of `f32` values.
    ///
    /// # Panics
    /// Panics on an MMU fault.
    pub fn st_f32(&mut self, tag: AccessTag, addrs: &Lanes<VirtAddr>, values: &Lanes<f32>) {
        let raw = lanes_from_fn(|i| values[i].map(|v| v.to_bits() as u64));
        self.st(tag, 4, addrs, &raw);
    }
}

/// Runs a kernel of `n_threads` threads, executing `body` once per warp,
/// and returns the recorded trace.
///
/// The final partial warp (if `n_threads` is not a multiple of 32) starts
/// with only its valid lanes active, exactly like a guard
/// `if (tid < n) return;` in CUDA.
pub fn run_kernel(
    mem: &mut DeviceMemory,
    n_threads: usize,
    mut body: impl FnMut(&mut WarpCtx<'_>),
) -> KernelTrace {
    let n_warps = n_threads.div_ceil(WARP_SIZE);
    let mut kernel = KernelTrace::new();
    for w in 0..n_warps {
        let remaining = n_threads - w * WARP_SIZE;
        let mask = if remaining >= WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << remaining) - 1
        };
        let mut ctx = WarpCtx::new(mem, w, mask);
        body(&mut ctx);
        kernel.warps.push(ctx.into_trace());
    }
    kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::InstrClass;

    fn mem() -> DeviceMemory {
        DeviceMemory::with_capacity(1 << 20)
    }

    #[test]
    fn partial_warp_mask() {
        let mut m = mem();
        let k = run_kernel(&mut m, 40, |w| {
            if w.warp_id() == 0 {
                assert_eq!(w.mask(), u32::MAX);
            } else {
                assert_eq!(w.mask().count_ones(), 8);
            }
            w.alu(1);
        });
        assert_eq!(k.warps.len(), 2);
    }

    #[test]
    fn load_store_roundtrip_with_trace() {
        let mut m = mem();
        let base = m.reserve(256, 8);
        let mut k = run_kernel(&mut m, 32, |w| {
            let addrs = lanes_from_fn(|i| Some(base.offset(i as u64 * 8)));
            let vals = lanes_from_fn(|i| Some(i as u64 * 3));
            w.st(AccessTag::Other, 8, &addrs, &vals);
            let got = w.ld(AccessTag::Other, 8, &addrs);
            for i in 0..WARP_SIZE {
                assert_eq!(got[i], Some(i as u64 * 3));
            }
        });
        let w = k.warps.pop().unwrap();
        assert_eq!(w.dyn_instrs_of(InstrClass::Mem), 2);
    }

    #[test]
    fn inactive_lanes_do_not_access() {
        let mut m = mem();
        let base = m.reserve(256, 8);
        run_kernel(&mut m, 32, |w| {
            let addrs = lanes_from_fn(|i| Some(base.offset(i as u64 * 8)));
            w.with_mask(0b1, |w| {
                let got = w.ld(AccessTag::Other, 8, &addrs);
                assert!(got[0].is_some());
                assert!(got[1].is_none());
            });
        });
    }

    #[test]
    fn with_mask_restores() {
        let mut m = mem();
        run_kernel(&mut m, 32, |w| {
            assert_eq!(w.mask(), u32::MAX);
            w.with_mask(0xff, |w| {
                assert_eq!(w.mask(), 0xff);
                w.with_mask(0xf0f, |w| assert_eq!(w.mask(), 0x0f));
            });
            assert_eq!(w.mask(), u32::MAX);
        });
    }

    #[test]
    fn empty_mask_skips_closure() {
        let mut m = mem();
        run_kernel(&mut m, 32, |w| {
            let mut ran = false;
            w.with_mask(0, |_| ran = true);
            assert!(!ran);
        });
    }

    #[test]
    fn branch_if_covers_both_sides() {
        let mut m = mem();
        let base = m.reserve(256, 8);
        run_kernel(&mut m, 32, |w| {
            let addrs = lanes_from_fn(|i| Some(base.offset(i as u64 * 8)));
            let pred = 0x0000_ffff;
            w.branch_if(
                pred,
                |w| {
                    let ones = lanes_from_fn(|_| Some(1u64));
                    w.st(AccessTag::Other, 8, &addrs, &ones)
                },
                |w| {
                    let twos = lanes_from_fn(|_| Some(2u64));
                    w.st(AccessTag::Other, 8, &addrs, &twos)
                },
            );
        });
        assert_eq!(m.read_u64(base).unwrap(), 1);
        assert_eq!(m.read_u64(base.offset(31 * 8)).unwrap(), 2);
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = mem();
        let base = m.reserve(128, 4);
        run_kernel(&mut m, 32, |w| {
            let addrs = lanes_from_fn(|i| Some(base.offset(i as u64 * 4)));
            let vals = lanes_from_fn(|i| Some(i as f32 * 0.5));
            w.st_f32(AccessTag::Field, &addrs, &vals);
            let got = w.ld_f32(AccessTag::Field, &addrs);
            assert_eq!(got[7], Some(3.5));
        });
    }

    #[test]
    fn alu_zero_or_masked_is_silent() {
        let mut m = mem();
        let k = run_kernel(&mut m, 32, |w| {
            w.alu(0);
            w.with_mask(0, |w| w.alu(5));
        });
        assert_eq!(k.dyn_instrs(), 0);
    }

    #[test]
    fn thread_ids() {
        let mut m = mem();
        run_kernel(&mut m, 96, |w| {
            if w.warp_id() == 2 {
                assert_eq!(w.thread_id(5), 69);
            }
        });
    }
}
