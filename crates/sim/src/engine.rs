//! The cycle-approximate SIMT timing engine.
//!
//! Warps replay their traces in order. Loads do **not** stall the warp at
//! issue — like a real GPU's scoreboard, they enter a per-warp
//! outstanding-load queue so misses from different reconvergence
//! subgroups overlap. A warp waits only when
//!
//! - an instruction *consumes* an outstanding load, encoded through
//!   access tags: the vFunc-pointer load waits on the vTable-pointer load
//!   or range walk that produced its address, the constant indirection on
//!   the vFunc load, the indirect call on the constant load, and segment
//!   tree levels on each other (the serial chain of paper Fig. 1 /
//!   Algorithm 1); or
//! - the queue exceeds the configured per-warp MLP
//!   ([`GpuConfig::max_pending_loads`]).
//!
//! Memory instructions are coalesced into 32-byte sector transactions
//! that probe a per-SM sectored L1, an address-sliced shared L2, and
//! channel-interleaved DRAM with both latency and bandwidth (service
//! time) costs — so heavily diverged access, cache thrash and bandwidth
//! saturation behave as on hardware, which is where the paper's effects
//! live.
//!
//! # Execution model: epochs and the determinism contract
//!
//! The engine advances in *epochs* (one simulated cycle each, with idle
//! stretches skipped). Every epoch has two phases:
//!
//! 1. **Phase A (per-SM, independent):** each SM runs its warp
//!    schedulers, issues instructions, probes its private L1/constant
//!    caches and MSHR file, and *queues* any traffic that must leave the
//!    SM (L1 miss sectors, stores) instead of touching the shared memory
//!    system. Phase A reads and writes only that SM's state, so SMs can
//!    run in any order — or concurrently.
//! 2. **Phase B (shared, canonical order):** the [`MemSystem`] (L2
//!    slices + DRAM channels) services the queued requests in ascending
//!    `(cycle, sm_id, issue order within the SM)` order, computes each
//!    load's completion time, and posts it back to the issuing warp's
//!    scoreboard.
//!
//! Because phase A is SM-local and phase B consumes requests in a fixed
//! canonical order, the simulation is **bit-identical for any host
//! thread count** — [`Gpu::execute_serial`] is the reference oracle and
//! the `parallel`-feature thread pool must match it exactly. All future
//! performance work must preserve this contract (see DESIGN.md,
//! "Determinism contract").

use crate::cache::SectoredCache;
use crate::config::GpuConfig;
use crate::instr::{AccessTag, MemOp, Op, Space};
use crate::probe::{NopProbe, Probe, StallCause};
use crate::stats::{Stats, STALL_INDIRECT_CALL};
use crate::trace::{KernelTrace, WarpTrace};

/// The simulated GPU. Construct once, [`execute`](Gpu::execute) many
/// kernels; caches are cold at each kernel boundary.
///
/// Host-side parallelism ([`with_threads`](Gpu::with_threads)) changes
/// wall-clock time only — simulated results are bit-identical for any
/// thread count (see the module docs for the determinism contract).
#[derive(Clone, Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    threads: usize,
    fast_forward: bool,
}

/// The tag-encoded dependence chains of virtual dispatch (paper Fig. 1):
/// the vFunc load's address comes from the vTable-pointer load (or the
/// COAL range walk), the constant indirection's from the vFunc load, and
/// the indirect call's target from the constant load. Tree-walk levels
/// chain on each other. Everything else (fields, workload arrays) is
/// overlappable address-independent traffic.
fn dep_tags(tag: AccessTag) -> &'static [AccessTag] {
    match tag {
        AccessTag::VfuncPtr => &[AccessTag::VtablePtr, AccessTag::RangeWalk],
        AccessTag::ConstIndirection => &[AccessTag::VfuncPtr],
        AccessTag::RangeWalk => &[AccessTag::RangeWalk],
        _ => &[],
    }
}

/// One outstanding load in the per-SM pending arena: completion cycle
/// and [`AccessTag::index`] of the access that produced it.
type Pending = (u64, u32);

/// One sector of shared-memory-system traffic queued by phase A.
#[derive(Clone, Copy)]
struct SectorReq {
    sector: u64,
    /// Cycle the sector may enter the L2 (post L1 latency + MSHR wait);
    /// for stores, the issue cycle.
    ready: u64,
    /// Index of the placeholder MSHR entry to overwrite with the real
    /// fill time (`usize::MAX` for stores, which allocate no MSHR).
    mshr_slot: usize,
}

/// One load or store batch queued by phase A for canonical phase-B
/// servicing. Sector payloads live in `SmState::sectors`
/// (`sec_start..sec_start + sec_len`).
#[derive(Clone, Copy)]
struct MemRequest {
    is_store: bool,
    /// Issuing warp slot (loads only).
    wi: usize,
    /// Kernel-wide warp id of the issuer, for probe attribution (loads
    /// only).
    trace_idx: usize,
    /// Trace position of the issuing op, for probe attribution (loads
    /// only).
    pc: usize,
    /// [`AccessTag::index`] of the access (loads only).
    tag_idx: usize,
    /// Completion lower bound from L1-hit sectors (loads only).
    known_done: u64,
    issue_cycle: u64,
    sec_start: usize,
    sec_len: usize,
}

struct SmState<P: Probe> {
    l1: SectoredCache,
    cmem: SectoredCache,
    l1_free_at: u64,
    /// Completion times of outstanding L1 miss sectors (MSHR model):
    /// when full, new misses wait for the earliest outstanding one.
    /// Misses queued this epoch hold a lower-bound placeholder until
    /// phase B computes the real fill time. Completed entries are
    /// garbage-collected lazily (see [`sm_prologue`]) — every reader
    /// filters on `> now`, so dead entries are invisible.
    mshr: Vec<u64>,
    /// Upper bound on the completion times in `mshr` (exact unless a
    /// GC ran since the max was pushed): lets the prologue clear the
    /// whole file in O(1) once everything completed.
    mshr_max: u64,
    /// Length past which the prologue compacts `mshr` (the in-flight
    /// ceiling plus one warp of slack).
    mshr_gc_at: usize,
    /// Resident warp state, structure-of-arrays indexed by slot: the
    /// hot scheduler scan touches only `w_ready`, so a 64-warp SM's
    /// scan walks one dense `u64` array instead of striding through a
    /// `Vec` of multi-word structs. A retired slot with no replacement
    /// warp parks at `u64::MAX`, which no ready-check or min-fold ever
    /// selects — the "done" flag costs no second array.
    w_trace: Vec<u32>,
    w_pc: Vec<u32>,
    w_ready: Vec<u64>,
    /// Latest warp-retire completion seen on this SM (feeds the
    /// kernel's final cycle count in [`finish`]).
    max_retire: u64,
    /// Outstanding-load arena, fixed stride [`SmState::pend_stride`]
    /// per slot: slot `wi`'s entries occupy
    /// `wi * stride .. wi * stride + pend_len[wi]`. The scoreboard
    /// defers loads at `max_pending_loads` outstanding, so the arena
    /// never overflows and warp replacement never reallocates.
    pend: Vec<Pending>,
    pend_len: Vec<u32>,
    pend_stride: usize,
    pending_warps: Vec<usize>,
    rr: usize,
    /// Per-scheduler cache of the earliest cycle any of its warps can
    /// issue; `0` forces a rescan. Purely a simulation speed-up.
    sched_next: Vec<u64>,
    /// Fast-forward cache: after a *quiet* epoch (no scheduler chose a
    /// warp, nothing retiring) the SM provably repeats that epoch's
    /// outcome verbatim until `ff_until`, so the execute loops replay
    /// `{live: ff_live, issued: false, min_next: ff_until}` without
    /// running the schedulers. `0` means "must run".
    ff_until: u64,
    ff_live: bool,
    /// Per-SM partial counters, merged deterministically at the end.
    stats: Stats,
    /// Warps whose trace ended this epoch: `(slot, retire cycle)`.
    /// Finalized at the next epoch's prologue, once phase B has posted
    /// the completion of any load issued in the retire cycle.
    retiring: Vec<(usize, u64)>,
    /// Coalescing scratch (reused across epochs).
    scratch: Vec<u64>,
    /// Phase-A → phase-B queues (reused across epochs).
    reqs: Vec<MemRequest>,
    sectors: Vec<SectorReq>,
    /// This SM's observability hooks ([`NopProbe`] unless the caller
    /// asked for recording via [`Gpu::execute_probed`]).
    probe: P,
}

impl<P: Probe> SmState<P> {
    /// Latest completion among slot `wi`'s pending loads whose tag is
    /// in `tags`.
    fn dep_ready(&self, wi: usize, tags: &[AccessTag]) -> u64 {
        let base = wi * self.pend_stride;
        self.pend[base..base + self.pend_len[wi] as usize]
            .iter()
            .filter(|(_, t)| tags.iter().any(|x| x.index() as u32 == *t))
            .map(|(c, _)| *c)
            .max()
            .unwrap_or(0)
    }

    /// Drops slot `wi`'s pending loads that completed at or before
    /// `now`, compacting in place.
    fn prune(&mut self, wi: usize, now: u64) {
        let base = wi * self.pend_stride;
        let len = self.pend_len[wi] as usize;
        let mut keep = 0;
        for k in 0..len {
            let e = self.pend[base + k];
            if e.0 > now {
                self.pend[base + keep] = e;
                keep += 1;
            }
        }
        self.pend_len[wi] = keep as u32;
    }

    /// Earliest completion among slot `wi`'s pending loads (callers
    /// check non-emptiness via `pend_len`).
    fn pend_oldest(&self, wi: usize) -> u64 {
        let base = wi * self.pend_stride;
        self.pend[base..base + self.pend_len[wi] as usize]
            .iter()
            .map(|(c, _)| *c)
            .min()
            .expect("non-empty pending")
    }

    fn pend_push(&mut self, wi: usize, done: u64, tag_idx: usize) {
        let len = self.pend_len[wi] as usize;
        debug_assert!(len < self.pend_stride, "pending arena overflow");
        self.pend[wi * self.pend_stride + len] = (done, tag_idx as u32);
        self.pend_len[wi] = (len + 1) as u32;
    }

    /// Clears slot `wi`'s pending loads, returning the latest
    /// completion among them (`0` if none).
    fn drain_all(&mut self, wi: usize) -> u64 {
        let base = wi * self.pend_stride;
        let max = self.pend[base..base + self.pend_len[wi] as usize]
            .iter()
            .map(|(c, _)| *c)
            .max()
            .unwrap_or(0);
        self.pend_len[wi] = 0;
        max
    }

    /// Installs a fresh warp (trace `trace_idx`, first issue no earlier
    /// than `ready_at`) into slot `wi`.
    fn install(&mut self, wi: usize, trace_idx: usize, ready_at: u64) {
        self.w_trace[wi] = trace_idx as u32;
        self.w_pc[wi] = 0;
        self.w_ready[wi] = ready_at;
        self.pend_len[wi] = 0;
    }
}

/// Non-destructive MSHR reservation: the time a miss starting at `t`
/// may enter the memory system, given the outstanding entries. The
/// caller pushes the new entry itself; completed entries are garbage
/// collected once per epoch in the prologue.
fn mshr_acquire(mshr: &[u64], cap: usize, t: u64) -> u64 {
    // Outstanding entries are a subset of the raw file, so a file with
    // spare raw slots can never gate — the common case, answered O(1).
    if mshr.len() < cap {
        return t;
    }
    let mut outstanding = 0usize;
    let mut earliest = u64::MAX;
    for &c in mshr {
        if c > t {
            outstanding += 1;
            earliest = earliest.min(c);
        }
    }
    if outstanding < cap {
        t
    } else {
        earliest
    }
}

struct MemSystem {
    l2: SectoredCache,
    l2_free_at: Vec<u64>,
    dram_free_at: Vec<u64>,
}

/// Phase-A outcome for one SM and one epoch.
struct EpochOut {
    live: bool,
    issued: bool,
    min_next: u64,
}

impl Gpu {
    /// Creates a GPU with the given configuration (serial host
    /// execution).
    pub fn new(cfg: GpuConfig) -> Self {
        Gpu {
            cfg,
            threads: 1,
            fast_forward: true,
        }
    }

    /// Creates a V100-like GPU.
    pub fn v100() -> Self {
        Gpu::new(GpuConfig::v100())
    }

    /// Sets the host thread count used for the per-SM phase of
    /// [`execute`](Gpu::execute): `1` is serial, `0` picks the machine's
    /// available parallelism, anything else is used as-is (clamped to
    /// the SM count). Simulated results are identical regardless.
    ///
    /// Without the `parallel` crate feature the engine always runs
    /// serially and this is a wall-clock no-op.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured host thread count (see [`with_threads`](Gpu::with_threads)).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables or disables per-SM event-driven fast-forward (on by
    /// default). When an SM's epoch is *quiet* — no scheduler chose a
    /// warp, nothing retiring — the engine replays the cached epoch
    /// outcome until the SM's earliest wake-up instead of re-running
    /// its schedulers. Simulated results, probe streams and artifacts
    /// are bit-identical either way; the toggle exists so CI can A/B
    /// the fast-forward path against plain epoch ticking.
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Whether event-driven fast-forward is enabled (see
    /// [`with_fast_forward`](Gpu::with_fast_forward)).
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    fn effective_threads(&self) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.clamp(1, self.cfg.num_sms as usize)
    }

    /// Replays `kernel` through the timing model and returns the
    /// counters, using the configured host thread count. Runs with
    /// [`NopProbe`], i.e. the zero-overhead un-instrumented path.
    pub fn execute(&self, kernel: &KernelTrace) -> Stats {
        self.execute_probed(kernel, |_| NopProbe).0
    }

    /// Like [`execute`](Gpu::execute), but instrumented: `mk` builds
    /// one [`Probe`] per SM (called with the SM id, on the calling
    /// thread, in ascending order), and the probes are returned in SM
    /// order alongside the counters. Probes observe without feeding
    /// back into timing, so the returned [`Stats`] are bit-identical to
    /// an un-probed run — and, per the determinism contract, identical
    /// for any host thread count.
    pub fn execute_probed<P: Probe>(
        &self,
        kernel: &KernelTrace,
        mk: impl FnMut(usize) -> P,
    ) -> (Stats, Vec<P>) {
        #[cfg(feature = "parallel")]
        {
            let threads = self.effective_threads();
            if threads > 1 {
                return self.execute_parallel_probed(kernel, threads, mk);
            }
        }
        self.execute_serial_probed(kernel, mk)
    }

    /// The serial reference oracle: phase A runs SM-by-SM in ascending
    /// order on the calling thread. [`execute`](Gpu::execute) with any
    /// thread count must produce bit-identical [`Stats`].
    pub fn execute_serial(&self, kernel: &KernelTrace) -> Stats {
        self.execute_serial_probed(kernel, |_| NopProbe).0
    }

    /// [`execute_serial`](Gpu::execute_serial) with per-SM probes (see
    /// [`execute_probed`](Gpu::execute_probed)).
    pub fn execute_serial_probed<P: Probe>(
        &self,
        kernel: &KernelTrace,
        mut mk: impl FnMut(usize) -> P,
    ) -> (Stats, Vec<P>) {
        let _ex = crate::spans::span("engine.execute");
        let cfg = &self.cfg;
        let Some((mut sms, mut memsys, base)) = setup(cfg, kernel, &mut mk) else {
            let probes = (0..cfg.num_sms as usize).map(mk).collect();
            return (empty_stats(kernel), probes);
        };
        let mut memstats = Stats::new();
        let mut cycle: u64 = 0;
        let ff = self.fast_forward;
        let mut liveness = crate::progress::EpochBatcher::new();
        loop {
            liveness.tick();
            let mut live = false;
            let mut issued = false;
            let mut min_next = u64::MAX;
            {
                let _pa = crate::spans::span("engine.phase_a");
                for sm in sms.iter_mut() {
                    if ff && cycle < sm.ff_until {
                        // Quiet SM asleep until `ff_until`: replay the
                        // cached epoch outcome (and the probe hooks a
                        // ticked epoch would have fired) without
                        // running the schedulers.
                        if !P::IS_NOP {
                            sm.probe.epoch(cycle);
                            sm.probe.epoch_end(cycle, sm.ff_live, false, sm.ff_until);
                        }
                        live |= sm.ff_live;
                        min_next = min_next.min(sm.ff_until);
                        continue;
                    }
                    let out = sm_epoch(cfg, kernel, sm, cycle);
                    live |= out.live;
                    issued |= out.issued;
                    min_next = min_next.min(out.min_next);
                }
            }
            {
                let _pb = crate::spans::span("engine.phase_b");
                for sm in sms.iter_mut() {
                    if !sm.reqs.is_empty() {
                        mem_phase_b(cfg, &mut memsys, &mut memstats, sm);
                    }
                }
            }
            if !live {
                break;
            }
            cycle = next_cycle(cycle, issued, min_next);
        }
        let _fin = crate::spans::span("engine.finish");
        let stats = finish(base, &mut sms, &memsys, &memstats, cycle);
        let probes = sms.into_iter().map(|sm| sm.probe).collect();
        (stats, probes)
    }

    /// Runs phase A on `threads` worker threads, phase B on the calling
    /// thread. Exposed for determinism tests; [`execute`](Gpu::execute)
    /// dispatches here when [`with_threads`](Gpu::with_threads) asks for
    /// parallelism.
    #[cfg(feature = "parallel")]
    pub fn execute_parallel(&self, kernel: &KernelTrace, threads: usize) -> Stats {
        self.execute_parallel_probed(kernel, threads, |_| NopProbe)
            .0
    }

    /// [`execute_parallel`](Gpu::execute_parallel) with per-SM probes
    /// (see [`execute_probed`](Gpu::execute_probed)). Probes are built
    /// on the calling thread before the workers spawn; each lives in
    /// its SM's state, so phase A fires hooks on whichever worker owns
    /// the SM while phase B (main thread, canonical ascending-SM order)
    /// appends to the requesting SM's probe — the recorded streams are
    /// identical for any thread count.
    #[cfg(feature = "parallel")]
    pub fn execute_parallel_probed<P: Probe>(
        &self,
        kernel: &KernelTrace,
        threads: usize,
        mut mk: impl FnMut(usize) -> P,
    ) -> (Stats, Vec<P>) {
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
        use std::sync::Mutex;

        let _ex = crate::spans::span("engine.execute");
        let cfg = &self.cfg;
        let threads = threads.clamp(1, cfg.num_sms as usize);
        if threads == 1 {
            // One worker would only add synchronization overhead.
            return self.execute_serial_probed(kernel, mk);
        }
        let Some((sms, mut memsys, base)) = setup(cfg, kernel, &mut mk) else {
            let probes = (0..cfg.num_sms as usize).map(mk).collect();
            return (empty_stats(kernel), probes);
        };
        let mut memstats = Stats::new();

        // Workers own disjoint SM index ranges; the mutexes are never
        // contended (phases alternate through the epoch gate below) —
        // they exist to let the main thread service phase B between the
        // workers' phase-A turns.
        let sms: Vec<Mutex<SmState<P>>> = sms.into_iter().map(Mutex::new).collect();
        let num_sms = sms.len();

        // Epoch gate: main publishes (cycle, epoch), workers run phase A
        // for their SMs, fold their outputs into the shared accumulators
        // and count themselves done; main waits for all of them, runs
        // phase B, and opens the next epoch.
        let epoch = AtomicU64::new(0);
        let cycle_slot = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let done = AtomicUsize::new(0);
        let acc_live = AtomicBool::new(false);
        let acc_issued = AtomicBool::new(false);
        let acc_min_next = AtomicU64::new(u64::MAX);

        let spin_wait = |current: &AtomicU64, seen: u64| {
            let mut spins = 0u32;
            loop {
                let e = current.load(Ordering::Acquire);
                if e != seen {
                    return e;
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        };

        let chunk = num_sms.div_ceil(threads);
        let ff = self.fast_forward;
        let mut final_cycle = 0u64;
        std::thread::scope(|scope| {
            for w in 0..threads {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(num_sms);
                let (sms, epoch, cycle_slot, stop, done) =
                    (&sms, &epoch, &cycle_slot, &stop, &done);
                let (acc_live, acc_issued, acc_min_next) = (&acc_live, &acc_issued, &acc_min_next);
                scope.spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        seen = spin_wait(epoch, seen);
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let cycle = cycle_slot.load(Ordering::Relaxed);
                        let mut live = false;
                        let mut issued = false;
                        let mut min_next = u64::MAX;
                        {
                            let _pa = crate::spans::span("engine.phase_a");
                            for sm in sms.iter().take(hi).skip(lo) {
                                let sm = &mut *sm.lock().expect("sm mutex");
                                if ff && cycle < sm.ff_until {
                                    // Same fast-forward replay as the
                                    // serial loop — per-SM state, so
                                    // thread placement cannot perturb
                                    // it.
                                    if !P::IS_NOP {
                                        sm.probe.epoch(cycle);
                                        sm.probe.epoch_end(cycle, sm.ff_live, false, sm.ff_until);
                                    }
                                    live |= sm.ff_live;
                                    min_next = min_next.min(sm.ff_until);
                                    continue;
                                }
                                let out = sm_epoch(cfg, kernel, sm, cycle);
                                live |= out.live;
                                issued |= out.issued;
                                min_next = min_next.min(out.min_next);
                            }
                        }
                        if live {
                            acc_live.store(true, Ordering::Relaxed);
                        }
                        if issued {
                            acc_issued.store(true, Ordering::Relaxed);
                        }
                        acc_min_next.fetch_min(min_next, Ordering::Relaxed);
                        done.fetch_add(1, Ordering::Release);
                    }
                });
            }

            let mut cycle = 0u64;
            let mut worker_epoch = 0u64;
            let mut liveness = crate::progress::EpochBatcher::new();
            loop {
                liveness.tick();
                acc_live.store(false, Ordering::Relaxed);
                acc_issued.store(false, Ordering::Relaxed);
                acc_min_next.store(u64::MAX, Ordering::Relaxed);
                done.store(0, Ordering::Relaxed);
                cycle_slot.store(cycle, Ordering::Relaxed);
                worker_epoch += 1;
                epoch.store(worker_epoch, Ordering::Release);

                let mut spins = 0u32;
                while done.load(Ordering::Acquire) != threads {
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }

                // Phase B — canonical ascending-SM order, regardless of
                // which worker simulated which SM.
                {
                    let _pb = crate::spans::span("engine.phase_b");
                    for sm in sms.iter() {
                        let sm = &mut *sm.lock().expect("sm mutex");
                        if !sm.reqs.is_empty() {
                            mem_phase_b(cfg, &mut memsys, &mut memstats, sm);
                        }
                    }
                }

                if !acc_live.load(Ordering::Relaxed) {
                    break;
                }
                cycle = next_cycle(
                    cycle,
                    acc_issued.load(Ordering::Relaxed),
                    acc_min_next.load(Ordering::Relaxed),
                );
            }
            final_cycle = cycle;
            stop.store(true, Ordering::Release);
            epoch.store(worker_epoch + 1, Ordering::Release);
        });

        let mut sms: Vec<SmState<P>> = sms
            .into_iter()
            .map(|m| m.into_inner().expect("sm mutex"))
            .collect();
        let _fin = crate::spans::span("engine.finish");
        let stats = finish(base, &mut sms, &memsys, &memstats, final_cycle);
        let probes = sms.into_iter().map(|sm| sm.probe).collect();
        (stats, probes)
    }
}

/// Builds the initial machine state (one probe per SM, from `mk`) and
/// pre-counts the trace-derived statistics; `None` for an empty kernel.
fn setup<P: Probe>(
    cfg: &GpuConfig,
    kernel: &KernelTrace,
    mk: &mut impl FnMut(usize) -> P,
) -> Option<(Vec<SmState<P>>, MemSystem, Stats)> {
    if kernel.warps.is_empty() {
        return None;
    }
    let mut base = Stats::new();
    base.warps = kernel.warps.len() as u64;
    base.vfunc_calls = kernel.vfunc_calls();
    for w in &kernel.warps {
        for op in w.ops() {
            base.count_instrs(op.class(), op.dyn_count());
        }
    }

    let num_sms = cfg.num_sms as usize;
    let scheds = cfg.schedulers_per_sm as usize;
    let warp_size = cfg.warp_size as usize;
    // Every capacity below is an epoch-level upper bound, so the hot
    // loop never grows a Vec (see `tests/zero_alloc.rs`): at most one
    // issue per scheduler per epoch, each coalescing to at most
    // `warp_size` sectors; completed MSHR entries linger until the next
    // prologue's GC on top of the `mshr_per_sm` in-flight ceiling.
    let mshr_cap = cfg.mshr_per_sm + (scheds + 2) * warp_size;
    let mut sms: Vec<SmState<P>> = (0..num_sms)
        .map(|i| SmState {
            probe: mk(i),
            l1: SectoredCache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes, cfg.sector_bytes),
            cmem: SectoredCache::new(cfg.const_bytes, 4, 64, 64),
            l1_free_at: 0,
            mshr: Vec::with_capacity(mshr_cap),
            mshr_max: 0,
            mshr_gc_at: cfg.mshr_per_sm + warp_size,
            w_trace: Vec::new(),
            w_pc: Vec::new(),
            w_ready: Vec::new(),
            max_retire: 0,
            pend: Vec::new(),
            pend_len: Vec::new(),
            pend_stride: cfg.max_pending_loads,
            pending_warps: Vec::new(),
            rr: 0,
            sched_next: vec![0; scheds],
            ff_until: 0,
            ff_live: false,
            stats: Stats::new(),
            retiring: Vec::with_capacity(scheds),
            scratch: Vec::with_capacity(warp_size),
            reqs: Vec::with_capacity(scheds),
            sectors: Vec::with_capacity(scheds * warp_size),
        })
        .collect();

    // Round-robin warp → SM assignment. Empty traces never occupy a
    // slot.
    for (i, w) in kernel.warps.iter().enumerate() {
        if !w.is_empty() {
            sms[i % num_sms].pending_warps.push(i);
        }
    }
    for sm in &mut sms {
        sm.pending_warps.reverse(); // pop() yields lowest warp id first
        let take = (cfg.max_warps_per_sm as usize).min(sm.pending_warps.len());
        sm.w_trace = Vec::with_capacity(take);
        sm.w_pc = vec![0; take];
        sm.w_ready = vec![0; take];
        sm.pend = vec![(0, 0); take * sm.pend_stride];
        sm.pend_len = vec![0; take];
        for _ in 0..take {
            let idx = sm.pending_warps.pop().expect("pending warp");
            sm.w_trace.push(idx as u32);
        }
    }

    let memsys = MemSystem {
        l2: SectoredCache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes, cfg.sector_bytes),
        l2_free_at: vec![0; cfg.l2_slices as usize],
        dram_free_at: vec![0; cfg.dram_channels as usize],
    };
    Some((sms, memsys, base))
}

fn empty_stats(kernel: &KernelTrace) -> Stats {
    let mut stats = Stats::new();
    stats.warps = kernel.warps.len() as u64;
    stats.vfunc_calls = kernel.vfunc_calls();
    stats
}

/// Computes the next canonical cycle from an epoch's merged outcome.
///
/// `min_next` is the earliest wake-up reported by any SM; when nothing
/// issued anywhere the whole machine jumps there. The `max` with
/// `cycle + 1` is load-bearing, not belt-and-braces: an SM that drained
/// this epoch (or one whose schedulers cached a wake-up that phase B
/// has since overtaken) can report a `min_next` at or before the
/// canonical clock, and without the clamp the machine would re-execute
/// an epoch — wasted work on the tick path, wrong Stats once
/// fast-forward replays cached outcomes. See
/// `epoch_tests::next_cycle_never_moves_backwards`.
fn next_cycle(cycle: u64, issued: bool, min_next: u64) -> u64 {
    let next = if issued || min_next == u64::MAX {
        cycle + 1
    } else {
        (cycle + 1).max(min_next)
    };
    debug_assert!(next > cycle, "canonical clock must strictly advance");
    next
}

/// Epoch prologue for one SM: finalize warps whose trace ended last
/// epoch (their final load completions were posted by phase B since),
/// then garbage-collect completed MSHR entries.
fn sm_prologue<P: Probe>(sm: &mut SmState<P>, cycle: u64) {
    for k in 0..sm.retiring.len() {
        let (wi, retire_cycle) = sm.retiring[k];
        let drain = sm.drain_all(wi);
        let final_ready = sm.w_ready[wi].max(drain);
        sm.max_retire = sm.max_retire.max(final_ready);
        sm.probe.warp_retire(final_ready, sm.w_trace[wi] as usize);
        if let Some(next) = sm.pending_warps.pop() {
            sm.install(wi, next, final_ready.max(retire_cycle + 1));
        } else {
            // Slot stays empty: park it past any reachable cycle so the
            // scheduler scan skips it without a separate "done" flag.
            sm.w_ready[wi] = u64::MAX;
        }
    }
    sm.retiring.clear();
    // Lazy MSHR GC. Eager per-epoch `retain` was the single hottest
    // line in phase A (an O(len) sweep per SM per epoch, live or not);
    // all readers filter on `> now`, so dead entries only cost scan
    // width and can be dropped on any schedule. Clear in O(1) once
    // everything completed, compact only when the file grows past the
    // in-flight ceiling — each compaction then frees at least a warp's
    // worth of slots, keeping the cost amortized O(1) per push and the
    // length below the preallocated capacity.
    if !sm.mshr.is_empty() {
        if sm.mshr_max <= cycle {
            sm.mshr.clear();
        } else if sm.mshr.len() >= sm.mshr_gc_at {
            sm.mshr.retain(|&c| c > cycle);
        }
    }
}

/// Phase A for one SM and one cycle: the warp schedulers. SM-local by
/// construction — shared-memory traffic is queued for phase B.
fn sm_epoch<P: Probe>(
    cfg: &GpuConfig,
    kernel: &KernelTrace,
    sm: &mut SmState<P>,
    cycle: u64,
) -> EpochOut {
    sm.probe.epoch(cycle);
    sm_prologue(sm, cycle);
    let mut out = EpochOut {
        live: false,
        issued: false,
        min_next: u64::MAX,
    };
    let n = sm.w_trace.len();
    let s_count = cfg.schedulers_per_sm as usize;
    // Whether any scheduler *chose* a warp this epoch — issued or
    // deferred, either way the SM's picture can change next epoch, so
    // the fast-forward cache must not arm (a deferred choice leaves
    // `sched_next` at 0 with other ready warps possibly unscanned).
    let mut any_chosen = false;

    for sched in 0..s_count {
        if n == 0 {
            continue;
        }
        // Fast path: nothing on this scheduler can issue yet.
        let cached = sm.sched_next[sched];
        if cached > cycle {
            if cached != u64::MAX {
                out.live = true;
                out.min_next = out.min_next.min(cached);
            }
            continue;
        }
        // Scheduler `sched` owns slots `sched, sched + s_count, …`; the
        // strided walk below visits exactly the slots the old full scan
        // `(rr + k) % n` visited after its ownership filter, in the
        // same circular order starting from the first owned slot at or
        // after `rr`.
        let owned = if sched < n {
            (n - 1 - sched) / s_count + 1
        } else {
            0
        };
        let mut chosen: Option<usize> = None;
        let mut sched_min = u64::MAX;
        if owned > 0 {
            let rr = sm.rr;
            let mut wi = if rr <= sched {
                sched
            } else {
                let next = sched + (rr - sched).div_ceil(s_count) * s_count;
                if next < n {
                    next
                } else {
                    sched
                }
            };
            for _ in 0..owned {
                let r = sm.w_ready[wi];
                if r <= cycle {
                    out.live = true;
                    chosen = Some(wi);
                    break;
                }
                // Parked (retired) slots sit at `u64::MAX`: they fold
                // into the min as a no-op and never read as live.
                sched_min = sched_min.min(r);
                wi += s_count;
                if wi >= n {
                    wi = sched;
                }
            }
        }
        let Some(wi) = chosen else {
            sm.sched_next[sched] = sched_min;
            if sched_min != u64::MAX {
                out.live = true;
                out.min_next = out.min_next.min(sched_min);
            }
            continue;
        };
        // Issued: the picture changes, rescan next cycle.
        any_chosen = true;
        sm.sched_next[sched] = 0;
        sm.rr = (wi + 1) % n;

        let trace_idx = sm.w_trace[wi] as usize;
        let pc = sm.w_pc[wi] as usize;
        let op = &kernel.warps[trace_idx].ops()[pc];

        // Scoreboard check: an op whose operands are still in flight
        // (or a load with the MLP queue full) does not issue now — the
        // warp retries once ready, keeping resource reservations
        // causal.
        let defer_until = match op {
            Op::IndirectCall { .. } => {
                sm.dep_ready(wi, &[AccessTag::ConstIndirection, AccessTag::VfuncPtr])
            }
            Op::Mem(m) if !m.is_store => {
                sm.prune(wi, cycle);
                let mut until = sm.dep_ready(wi, dep_tags(m.tag));
                if sm.pend_len[wi] as usize >= cfg.max_pending_loads {
                    until = until.max(sm.pend_oldest(wi));
                }
                // LSU queue back-pressure.
                if sm.l1_free_at > cycle + cfg.l1_queue_cap {
                    until = until.max(sm.l1_free_at - cfg.l1_queue_cap);
                }
                // MSHR back-pressure: leave room for a full warp's
                // worth of miss sectors before issuing (an empty MSHR
                // file always admits a load). Outstanding ≤ raw length,
                // so a short file can never gate — skip the scan.
                if sm.mshr.len() + cfg.warp_size as usize > cfg.mshr_per_sm {
                    let mut outstanding = 0usize;
                    let mut earliest = u64::MAX;
                    for &c in &sm.mshr {
                        if c > cycle {
                            outstanding += 1;
                            earliest = earliest.min(c);
                        }
                    }
                    if outstanding > 0 && outstanding + cfg.warp_size as usize > cfg.mshr_per_sm {
                        until = until.max(earliest);
                    }
                }
                until
            }
            _ => 0,
        };
        if defer_until > cycle {
            sm.w_ready[wi] = defer_until;
            out.min_next = out.min_next.min(defer_until);
            continue;
        }
        out.issued = true;
        sm.probe.issue(cycle, trace_idx, pc, op);

        let ready_at = match op {
            Op::Alu(nn) => cycle + (*nn as u64) * cfg.alu_chain_latency + cfg.alu_latency,
            Op::Branch | Op::DirectCall => cycle + cfg.branch_latency,
            Op::Ret => cycle + cfg.ret_latency,
            Op::IndirectCall { .. } => {
                sm.stats.stall_by_tag[STALL_INDIRECT_CALL] += cfg.indirect_call_latency;
                sm.probe.stall(
                    trace_idx,
                    pc,
                    StallCause::IndirectCall,
                    cycle,
                    cycle + cfg.indirect_call_latency,
                );
                cycle + cfg.indirect_call_latency
            }
            Op::Mem(m) if m.is_store => {
                issue_store_phase_a(cfg, cycle, m, &kernel.warps[trace_idx], sm)
            }
            Op::Mem(m) => issue_load_phase_a(
                cfg,
                cycle,
                m,
                &kernel.warps[trace_idx],
                sm,
                wi,
                trace_idx,
                pc,
            ),
        };

        sm.w_ready[wi] = ready_at;
        sm.w_pc[wi] += 1;
        if sm.w_pc[wi] as usize >= kernel.warps[trace_idx].ops().len() {
            // Trace ended. Finalization (outstanding-load drain, slot
            // reuse) waits for the next epoch's prologue, after phase B
            // posts the completion of a load issued this very cycle.
            sm.retiring.push((wi, cycle));
        }
    }

    if !sm.pending_warps.is_empty() || !sm.retiring.is_empty() {
        out.live = true;
    }
    for &(_, retire_cycle) in &sm.retiring {
        out.min_next = out.min_next.min(retire_cycle + 1);
    }
    // Arm the fast-forward cache. On a quiet epoch nothing SM-local
    // mutates until `out.min_next` (phase B only posts completions for
    // requests this SM queued this epoch — there are none), so every
    // epoch until then replays this exact outcome; the skipped MSHR GC
    // is result-identical because all readers filter on `> cycle`.
    sm.ff_until = if !any_chosen && sm.retiring.is_empty() {
        sm.ff_live = out.live;
        out.min_next
    } else {
        0
    };
    sm.probe
        .epoch_end(cycle, out.live, out.issued, out.min_next);
    out
}

/// Coalesces a memory op's lane addresses into deduplicated, ascending
/// sector ids in `scratch` (no allocation — the caller's scratch is
/// sized to the warp width). Lane addresses are overwhelmingly already
/// sorted (linear and strided layouts), so the push loop dedups
/// adjacent repeats inline and tracks sortedness; only genuinely
/// unsorted accesses pay for a sort. Power-of-two sector sizes (every
/// real geometry) divide by shift.
fn coalesce(scratch: &mut Vec<u64>, addrs: &[u64], sector_bytes: u64) {
    scratch.clear();
    // At most one sector id per lane address, and the caller's scratch
    // is pre-sized to the warp width — the pushes below must never
    // reallocate (the steady-state epoch loop is allocation-free; see
    // tests/zero_alloc.rs).
    debug_assert!(
        scratch.capacity() >= addrs.len(),
        "coalesce scratch under-sized: {} < {}",
        scratch.capacity(),
        addrs.len()
    );
    let shift = sector_bytes.trailing_zeros();
    let pow2 = sector_bytes.is_power_of_two();
    let mut sorted = true;
    for &a in addrs {
        let s = if pow2 { a >> shift } else { a / sector_bytes };
        match scratch.last() {
            Some(&last) if last == s => continue,
            Some(&last) if last > s => sorted = false,
            _ => {}
        }
        scratch.push(s);
    }
    if !sorted {
        scratch.sort_unstable();
        scratch.dedup();
    }
}

/// Phase A of a store: count transactions and queue the sectors for the
/// shared system; the warp continues through the store buffer almost
/// immediately.
fn issue_store_phase_a<P: Probe>(
    cfg: &GpuConfig,
    cycle: u64,
    m: &MemOp,
    wt: &WarpTrace,
    sm: &mut SmState<P>,
) -> u64 {
    coalesce(&mut sm.scratch, wt.lanes(m), cfg.sector_bytes);
    sm.stats.global_store_transactions += sm.scratch.len() as u64;
    sm.probe.store_sectors(cycle, sm.scratch.len() as u64);
    let sec_start = sm.sectors.len();
    for k in 0..sm.scratch.len() {
        sm.sectors.push(SectorReq {
            sector: sm.scratch[k],
            ready: cycle,
            mshr_slot: usize::MAX,
        });
    }
    sm.reqs.push(MemRequest {
        is_store: true,
        wi: 0,
        trace_idx: 0,
        pc: 0,
        tag_idx: 0,
        known_done: 0,
        issue_cycle: cycle,
        sec_start,
        sec_len: sm.scratch.len(),
    });
    cycle + cfg.alu_latency
}

/// Phase A of a load: coalesce into sectors and walk the SM-local
/// hierarchy (constant cache, L1 port, L1, MSHR file). Sectors that
/// miss are queued for phase B with an MSHR placeholder; pure-hit loads
/// complete immediately. Returns the warp's issue-pipe busy time — a
/// diverged access is replayed one sector per cycle through the LSU, the
/// direct issue-side price of divergence.
#[allow(clippy::too_many_arguments)]
fn issue_load_phase_a<P: Probe>(
    cfg: &GpuConfig,
    cycle: u64,
    m: &MemOp,
    wt: &WarpTrace,
    sm: &mut SmState<P>,
    wi: usize,
    trace_idx: usize,
    pc: usize,
) -> u64 {
    let _lm = crate::spans::span("engine.l1_mshr");
    coalesce(&mut sm.scratch, wt.lanes(m), cfg.sector_bytes);
    let tag_idx = m.tag.index();
    match m.space {
        Space::Const => {
            let mut done = cycle;
            for k in 0..sm.scratch.len() {
                let addr = sm.scratch[k] * cfg.sector_bytes;
                let hit = sm.cmem.access(addr).is_hit();
                sm.probe.const_access(cycle, m.tag, hit);
                let lat = if hit {
                    cfg.const_latency
                } else {
                    cfg.const_miss_latency
                };
                done = done.max(cycle + lat);
            }
            sm.stats.stall_by_tag[tag_idx] += done - cycle;
            sm.probe
                .stall(trace_idx, pc, StallCause::Access(m.tag), cycle, done);
            sm.pend_push(wi, done, tag_idx);
        }
        Space::Global => {
            sm.stats.global_load_transactions += sm.scratch.len() as u64;
            sm.stats.load_transactions_by_tag[tag_idx] += sm.scratch.len() as u64;
            sm.probe.load_coalesced(
                cycle,
                pc,
                m.tag,
                m.lane_count() as u64,
                sm.scratch.len() as u64,
            );
            let mut known_done = cycle;
            let sec_start = sm.sectors.len();
            // One batched L1 probe per touched line: `scratch` is
            // sorted, so each line's sectors are one contiguous run.
            // Per-sector timing (LSU port, MSHR) is unchanged — only
            // the tag search is shared. Exotic geometries (> 8 sectors
            // per line) fall back to sector-by-sector probes.
            let spl = cfg.line_bytes / cfg.sector_bytes;
            let batched = spl <= 8;
            let len = sm.scratch.len();
            let mut k = 0;
            while k < len {
                let (group_end, hit_mask) = if batched {
                    let line = sm.scratch[k] / spl;
                    let mut mask = 0u8;
                    let mut j = k;
                    while j < len && sm.scratch[j] / spl == line {
                        mask |= 1 << (sm.scratch[j] % spl);
                        j += 1;
                    }
                    (j, sm.l1.access_sectors(line * cfg.line_bytes, mask))
                } else {
                    (k + 1, 0)
                };
                for i in k..group_end {
                    let s = sm.scratch[i];
                    let addr = s * cfg.sector_bytes;
                    // One sector per cycle through the SM's LSU port.
                    let t1 = sm.l1_free_at.max(cycle);
                    sm.l1_free_at = t1 + 1;
                    let hit = if batched {
                        hit_mask & (1 << (s % spl)) != 0
                    } else {
                        sm.l1.access(addr).is_hit()
                    };
                    sm.probe.l1_access(cycle, m.tag, hit);
                    let (set, line_addr) = sm.l1.set_of(addr);
                    sm.probe.l1_sector(cycle, pc, m.tag, line_addr, set, hit);
                    if hit {
                        known_done = known_done.max(t1 + cfg.l1_latency);
                    } else {
                        // A miss needs an MSHR slot before entering L2/DRAM.
                        let want = t1 + cfg.l1_latency;
                        let tm = mshr_acquire(&sm.mshr, cfg.mshr_per_sm, want);
                        if tm > want {
                            sm.probe.mshr_wait(want, tm);
                        }
                        let slot = sm.mshr.len();
                        // Lower-bound placeholder; phase B writes the real
                        // fill time before any later epoch reads it.
                        sm.mshr.push(tm + cfg.l2_latency);
                        sm.mshr_max = sm.mshr_max.max(tm + cfg.l2_latency);
                        sm.sectors.push(SectorReq {
                            sector: s,
                            ready: tm,
                            mshr_slot: slot,
                        });
                    }
                }
                k = group_end;
            }
            let sec_len = sm.sectors.len() - sec_start;
            if sec_len == 0 {
                // Every sector hit L1: the completion is known now.
                sm.stats.stall_by_tag[tag_idx] += known_done - cycle;
                sm.probe
                    .stall(trace_idx, pc, StallCause::Access(m.tag), cycle, known_done);
                sm.pend_push(wi, known_done, tag_idx);
            } else {
                sm.reqs.push(MemRequest {
                    is_store: false,
                    wi,
                    trace_idx,
                    pc,
                    tag_idx,
                    known_done,
                    issue_cycle: cycle,
                    sec_start,
                    sec_len,
                });
            }
        }
    }
    cycle + sm.scratch.len() as u64
}

/// Phase B for one SM's queued requests: the shared L2 slices and DRAM
/// channels service sectors in issue order, then post load completions
/// back to the issuing warps. Callers must invoke this in ascending
/// `sm_id` order every epoch — that, plus phase A's issue ordering, is
/// the canonical arbitration order of the determinism contract.
fn mem_phase_b<P: Probe>(
    cfg: &GpuConfig,
    memsys: &mut MemSystem,
    memstats: &mut Stats,
    sm: &mut SmState<P>,
) {
    for ri in 0..sm.reqs.len() {
        let req = sm.reqs[ri];
        if req.is_store {
            for k in req.sec_start..req.sec_start + req.sec_len {
                let s = sm.sectors[k].sector;
                let addr = s * cfg.sector_bytes;
                let slice = (s % memsys.l2_free_at.len() as u64) as usize;
                let t = memsys.l2_free_at[slice].max(req.issue_cycle);
                memsys.l2_free_at[slice] = t + 1;
                let hit = memsys.l2.access(addr).is_hit();
                sm.probe.l2_access(t, hit);
                if !hit {
                    let chan = ((addr >> 8) % memsys.dram_free_at.len() as u64) as usize;
                    let td = memsys.dram_free_at[chan].max(t);
                    memsys.dram_free_at[chan] = td + cfg.dram_sector_cycles;
                    memstats.dram_accesses += 1;
                    sm.probe.dram_access(td);
                }
            }
        } else {
            let mut done = req.known_done;
            for k in req.sec_start..req.sec_start + req.sec_len {
                let SectorReq {
                    sector,
                    ready,
                    mshr_slot,
                } = sm.sectors[k];
                let addr = sector * cfg.sector_bytes;
                let slice = (sector % memsys.l2_free_at.len() as u64) as usize;
                let t2 = memsys.l2_free_at[slice].max(ready);
                memsys.l2_free_at[slice] = t2 + 1;
                let hit = memsys.l2.access(addr).is_hit();
                sm.probe.l2_access(t2, hit);
                let filled = if hit {
                    t2 + cfg.l2_latency
                } else {
                    let chan = ((addr >> 8) % memsys.dram_free_at.len() as u64) as usize;
                    let td = memsys.dram_free_at[chan].max(t2 + cfg.l2_latency);
                    memsys.dram_free_at[chan] = td + cfg.dram_sector_cycles;
                    memstats.dram_accesses += 1;
                    sm.probe.dram_access(td);
                    td + cfg.dram_latency
                };
                sm.mshr[mshr_slot] = filled;
                sm.mshr_max = sm.mshr_max.max(filled);
                done = done.max(filled);
            }
            memstats.stall_by_tag[req.tag_idx] += done.saturating_sub(req.issue_cycle);
            sm.probe.stall(
                req.trace_idx,
                req.pc,
                StallCause::Access(AccessTag::ALL[req.tag_idx]),
                req.issue_cycle,
                done,
            );
            sm.pend_push(req.wi, done, req.tag_idx);
        }
    }
    sm.reqs.clear();
    sm.sectors.clear();
}

/// Merges the per-SM partial stats, memory-system stats and cache
/// counters into the final [`Stats`] — ascending SM order, though every
/// counter is an exact integer sum, so the merge is order-independent.
fn finish<P: Probe>(
    base: Stats,
    sms: &mut [SmState<P>],
    memsys: &MemSystem,
    memstats: &Stats,
    cycle: u64,
) -> Stats {
    // Finalize any retirement left from the last epoch (its phase-B
    // completions have been posted) so drain times reach `ready_at`.
    // Also the single end-of-run point where probes may snapshot their
    // SM's L1 — shared by the serial and parallel paths.
    for sm in sms.iter_mut() {
        sm_prologue(sm, cycle);
        sm.probe.cache_final(&sm.l1);
    }
    let mut stats = base;
    for sm in sms.iter() {
        stats += &sm.stats;
        stats.l1_accesses += sm.l1.hits() + sm.l1.misses();
        stats.l1_hits += sm.l1.hits();
        stats.const_accesses += sm.cmem.hits() + sm.cmem.misses();
        stats.const_hits += sm.cmem.hits();
    }
    stats += memstats;
    stats.l2_accesses = memsys.l2.hits() + memsys.l2.misses();
    stats.l2_hits = memsys.l2.hits();
    let last = sms.iter().map(|s| s.max_retire).max().unwrap_or(cycle);
    stats.cycles = last.max(cycle);
    if crate::progress::enabled() {
        crate::progress::kernel_finished(stats.cycles);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AccessTag, MemOp};
    use crate::trace::WarpTrace;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::small())
    }

    fn load(addrs: Vec<u64>, tag: AccessTag) -> Op {
        let mask = (1u64 << addrs.len()).wrapping_sub(1) as u32;
        Op::Mem(MemOp {
            space: Space::Global,
            is_store: false,
            width: 8,
            mask,
            addrs: addrs.into(),
            tag,
        })
    }

    fn one_warp(ops: Vec<Op>) -> KernelTrace {
        let mut w = WarpTrace::new();
        for op in ops {
            w.push(op);
        }
        KernelTrace { warps: vec![w] }
    }

    #[test]
    fn empty_kernel() {
        let s = gpu().execute(&KernelTrace::new());
        assert_eq!(s.cycles, 0);
        assert_eq!(s.total_instrs(), 0);
    }

    #[test]
    fn alu_only_kernel_is_cheap() {
        let s = gpu().execute(&one_warp(vec![Op::Alu(10)]));
        assert!(s.cycles >= 10);
        assert!(s.cycles < 100);
        assert_eq!(s.instrs_compute, 10);
    }

    #[test]
    fn diverged_load_generates_many_transactions() {
        // 32 lanes, each to a different 128B-separated address.
        let addrs: Vec<u64> = (0..32).map(|i| 0x1_0000 + i * 128).collect();
        let s = gpu().execute(&one_warp(vec![load(addrs, AccessTag::VtablePtr)]));
        assert_eq!(s.global_load_transactions, 32);
        assert_eq!(s.l1_accesses, 32);
        assert_eq!(s.l1_hits, 0);
    }

    #[test]
    fn converged_load_is_one_transaction() {
        let addrs: Vec<u64> = vec![0x2_0000; 32];
        let s = gpu().execute(&one_warp(vec![load(addrs, AccessTag::RangeWalk)]));
        assert_eq!(s.global_load_transactions, 1);
    }

    #[test]
    fn adjacent_loads_coalesce() {
        // 32 lanes x 8B consecutive = 256B = 8 sectors.
        let addrs: Vec<u64> = (0..32).map(|i| 0x3_0000 + i * 8).collect();
        let s = gpu().execute(&one_warp(vec![load(addrs, AccessTag::Field)]));
        assert_eq!(s.global_load_transactions, 8);
    }

    #[test]
    fn second_load_hits_l1() {
        let addrs: Vec<u64> = vec![0x4_0000; 32];
        let s = gpu().execute(&one_warp(vec![
            load(addrs.clone(), AccessTag::Field),
            load(addrs, AccessTag::Field),
        ]));
        assert_eq!(s.l1_hits, 1);
        assert!((s.l1_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn diverged_load_slower_than_converged() {
        let diverged: Vec<u64> = (0..32).map(|i| 0x1_0000 + i * 256).collect();
        let converged: Vec<u64> = vec![0x1_0000; 32];
        let sd = gpu().execute(&one_warp(vec![load(diverged, AccessTag::VtablePtr)]));
        let sc = gpu().execute(&one_warp(vec![load(converged, AccessTag::VtablePtr)]));
        assert!(
            sd.cycles > sc.cycles,
            "diverged {} !> converged {}",
            sd.cycles,
            sc.cycles
        );
    }

    #[test]
    fn multithreading_hides_latency() {
        // One warp doing a cold load vs. 8 warps doing cold loads: the
        // 8-warp version must be far cheaper than 8x the single warp.
        let mk = |i: u64| {
            let mut w = WarpTrace::new();
            w.push(load(
                (0..32).map(|l| 0x10_0000 + i * 0x1000 + l * 32).collect(),
                AccessTag::Field,
            ));
            w
        };
        let one = gpu().execute(&KernelTrace { warps: vec![mk(0)] });
        let eight = gpu().execute(&KernelTrace {
            warps: (0..8).map(mk).collect(),
        });
        assert!(eight.cycles < one.cycles * 4);
    }

    #[test]
    fn stall_attribution_recorded() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x5_0000 + i * 128).collect();
        let s = gpu().execute(&one_warp(vec![
            load(addrs, AccessTag::VtablePtr),
            Op::IndirectCall { target: 0 },
        ]));
        assert!(s.stall(AccessTag::VtablePtr) > 0);
        assert!(s.stall_by_tag[STALL_INDIRECT_CALL] > 0);
        let (a, _b, c) = s.dispatch_latency_breakdown();
        assert!(a > c);
    }

    #[test]
    fn stores_do_not_stall_much() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x6_0000 + i * 32).collect();
        let st = Op::Mem(MemOp {
            space: Space::Global,
            is_store: true,
            width: 8,
            mask: u32::MAX,
            addrs: addrs.into(),
            tag: AccessTag::Other,
        });
        let s = gpu().execute(&one_warp(vec![st]));
        assert_eq!(s.global_store_transactions, 32);
        assert!(s.cycles < 50);
    }

    #[test]
    fn const_cache_hits_after_first() {
        let ldc = |tag| {
            Op::Mem(MemOp {
                space: Space::Const,
                is_store: false,
                width: 8,
                mask: u32::MAX,
                addrs: vec![0x100; 32].into(),
                tag,
            })
        };
        let s = gpu().execute(&one_warp(vec![
            ldc(AccessTag::ConstIndirection),
            ldc(AccessTag::ConstIndirection),
        ]));
        assert_eq!(s.const_accesses, 2);
        assert_eq!(s.const_hits, 1);
    }

    #[test]
    fn more_warps_than_residency_all_complete() {
        let cfg = GpuConfig::small(); // 2 SMs x 8 warps resident
        let warps: Vec<WarpTrace> = (0..64)
            .map(|i| {
                let mut w = WarpTrace::new();
                w.push(Op::Alu(3));
                w.push(load(vec![0x7_0000 + i * 64; 32], AccessTag::Field));
                w
            })
            .collect();
        let s = Gpu::new(cfg).execute(&KernelTrace { warps });
        assert_eq!(s.warps, 64);
        assert_eq!(s.instrs_compute, 64 * 3);
        assert_eq!(s.instrs_mem, 64);
    }

    #[test]
    fn cache_thrash_increases_miss_rate() {
        // Working set far beyond the small L1 (4 KiB): re-touching a big
        // footprint twice should still miss, while a tiny footprint hits.
        let big: Vec<Op> = (0..2)
            .flat_map(|_| {
                (0..64u64).map(|i| load(vec![0x20_0000 + i * 4096; 32], AccessTag::Field))
            })
            .collect();
        let small_ops: Vec<Op> = (0..2)
            .flat_map(|_| (0..4u64).map(|i| load(vec![0x30_0000 + i * 32; 32], AccessTag::Field)))
            .collect();
        let sb = gpu().execute(&one_warp(big));
        let ss = gpu().execute(&one_warp(small_ops));
        assert!(sb.l1_hit_rate() < 0.2);
        assert!(ss.l1_hit_rate() >= 0.5);
    }
}

#[cfg(test)]
mod scoreboard_tests {
    use super::*;
    use crate::instr::MemOp;
    use crate::trace::WarpTrace;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::small())
    }

    fn ld(addrs: Vec<u64>, tag: AccessTag) -> Op {
        let mask = if addrs.len() >= 32 {
            u32::MAX
        } else {
            (1u32 << addrs.len()) - 1
        };
        Op::Mem(MemOp {
            space: Space::Global,
            is_store: false,
            width: 8,
            mask,
            addrs: addrs.into(),
            tag,
        })
    }

    fn one(ops: Vec<Op>) -> KernelTrace {
        let mut w = WarpTrace::new();
        for op in ops {
            w.push(op);
        }
        KernelTrace { warps: vec![w] }
    }

    #[test]
    fn independent_loads_overlap() {
        // Two independent cold loads from different lines should cost
        // barely more than one; a dependent A->B chain costs two misses.
        let a = (0..8).map(|i| 0x10_0000 + i * 128).collect::<Vec<_>>();
        let b = (0..8).map(|i| 0x20_0000 + i * 128).collect::<Vec<_>>();
        let both_independent = gpu().execute(&one(vec![
            ld(a.clone(), AccessTag::Field),
            ld(b.clone(), AccessTag::Field),
        ]));
        let chained = gpu().execute(&one(vec![
            ld(a, AccessTag::VtablePtr),
            ld(b, AccessTag::VfuncPtr), // waits for the vtable load
        ]));
        assert!(
            chained.cycles > both_independent.cycles + 50,
            "dependent chain {} must far exceed overlapped pair {}",
            chained.cycles,
            both_independent.cycles
        );
    }

    #[test]
    fn range_walk_levels_serialize() {
        let lvl = |a: u64| ld(vec![a; 32], AccessTag::RangeWalk);
        let serial = gpu().execute(&one(vec![lvl(0x1000), lvl(0x2000), lvl(0x3000)]));
        let free = gpu().execute(&one(vec![
            ld(vec![0x1000; 32], AccessTag::Field),
            ld(vec![0x2000; 32], AccessTag::Field),
            ld(vec![0x3000; 32], AccessTag::Field),
        ]));
        assert!(serial.cycles > free.cycles, "walk levels must chain");
    }

    #[test]
    fn indirect_call_waits_for_const_indirection() {
        let cold_const = Op::Mem(MemOp {
            space: Space::Const,
            is_store: false,
            width: 8,
            mask: u32::MAX,
            addrs: vec![0x9000; 32].into(),
            tag: AccessTag::ConstIndirection,
        });
        let with_wait = gpu().execute(&one(vec![
            cold_const.clone(),
            Op::IndirectCall { target: 0 },
        ]));
        let call_only = gpu().execute(&one(vec![Op::IndirectCall { target: 0 }]));
        let cfg = GpuConfig::small();
        assert!(
            with_wait.cycles >= call_only.cycles + cfg.const_miss_latency / 2,
            "call must wait for its target: {} vs {}",
            with_wait.cycles,
            call_only.cycles
        );
    }

    #[test]
    fn mlp_queue_cap_backpressures() {
        // Far more outstanding loads than the small config's cap (8):
        // issue must throttle, so cycles grow superlinearly past the cap.
        let mk = |n: usize| {
            let ops = (0..n)
                .map(|i| ld(vec![0x40_0000 + i as u64 * 4096], AccessTag::Other))
                .collect();
            gpu().execute(&one(ops)).cycles
        };
        let under = mk(4);
        let over = mk(32);
        assert!(over > under * 3, "cap must throttle: {over} vs {under}");
    }

    #[test]
    fn trace_end_drains_outstanding_loads() {
        // A single cold load as the LAST op: the kernel cannot finish
        // before the load lands.
        let s = gpu().execute(&one(vec![ld(vec![0x50_0000], AccessTag::Other)]));
        let cfg = GpuConfig::small();
        assert!(s.cycles >= cfg.l1_latency + cfg.l2_latency);
    }

    #[test]
    fn mshr_limits_concurrent_misses() {
        // Many warps each firing one diverged miss burst: with a tiny
        // MSHR file the kernel must take longer than with a huge one.
        let warps: Vec<WarpTrace> = (0..16)
            .map(|wi| {
                let mut w = WarpTrace::new();
                w.push(ld(
                    (0..32).map(|l| 0x80_0000 + (wi * 32 + l) * 128).collect(),
                    AccessTag::Field,
                ));
                w.push(Op::Alu(1));
                w
            })
            .collect();
        let mut small_mshr = GpuConfig::small();
        small_mshr.num_sms = 1;
        small_mshr.mshr_per_sm = 33;
        let mut big_mshr = small_mshr.clone();
        big_mshr.mshr_per_sm = 4096;
        let slow = Gpu::new(small_mshr).execute(&KernelTrace {
            warps: warps.clone(),
        });
        let fast = Gpu::new(big_mshr).execute(&KernelTrace { warps });
        assert!(
            slow.cycles > fast.cycles,
            "{} !> {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn load_transactions_attributed_to_tags() {
        let s = gpu().execute(&one(vec![
            ld(
                (0..32).map(|i| 0x100_0000 + i * 64).collect(),
                AccessTag::VtablePtr,
            ),
            ld(vec![0x200_0000; 32], AccessTag::RangeWalk),
        ]));
        assert_eq!(s.load_transactions(AccessTag::VtablePtr), 32);
        assert_eq!(s.load_transactions(AccessTag::RangeWalk), 1);
        assert_eq!(s.load_transactions(AccessTag::Field), 0);
        assert_eq!(s.global_load_transactions, 33);
    }
}

#[cfg(test)]
mod epoch_tests {
    use super::*;
    use crate::instr::MemOp;
    use crate::trace::WarpTrace;

    /// A mixed kernel exercising every op class, cache level and the
    /// warp-replacement path (more warps than residency).
    fn mixed_kernel(warps: usize) -> KernelTrace {
        let mk = |wi: usize| {
            let mut w = WarpTrace::new();
            for k in 0..12 {
                match (wi + k) % 5 {
                    0 => w.push(Op::Alu(2 + (k as u16 % 3))),
                    1 => {
                        let addrs: Vec<u64> = (0..32)
                            .map(|l| ((wi * 64 + k * 8 + l) as u64) * 32)
                            .collect();
                        w.push(Op::Mem(MemOp {
                            space: Space::Global,
                            is_store: false,
                            width: 8,
                            mask: u32::MAX,
                            addrs: addrs.into(),
                            tag: AccessTag::VtablePtr,
                        }));
                    }
                    2 => w.push(Op::IndirectCall { target: 0 }),
                    3 => w.push(Op::Mem(MemOp {
                        space: Space::Global,
                        is_store: true,
                        width: 4,
                        mask: u32::MAX,
                        addrs: (0..32u64)
                            .map(|l| 0x40_0000 + (wi as u64 * 32 + l) * 4)
                            .collect::<Vec<_>>()
                            .into(),
                        tag: AccessTag::Other,
                    })),
                    _ => w.push(Op::Mem(MemOp {
                        space: Space::Const,
                        is_store: false,
                        width: 8,
                        mask: u32::MAX,
                        addrs: vec![0x100 + (k as u64 % 4) * 64; 32].into(),
                        tag: AccessTag::ConstIndirection,
                    })),
                }
            }
            w
        };
        KernelTrace {
            warps: (0..warps).map(mk).collect(),
        }
    }

    #[test]
    fn serial_path_is_deterministic() {
        let k = mixed_kernel(40);
        let a = Gpu::new(GpuConfig::small()).execute_serial(&k);
        let b = Gpu::new(GpuConfig::small()).execute_serial(&k);
        assert_eq!(a, b);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_matches_serial_bitwise() {
        let k = mixed_kernel(64);
        let gpu = Gpu::new(GpuConfig::small());
        let serial = gpu.execute_serial(&k);
        for threads in [2, 3, 8] {
            let par = gpu.execute_parallel(&k, threads);
            assert_eq!(par, serial, "threads={threads} diverged from serial oracle");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_is_self_deterministic() {
        let k = mixed_kernel(48);
        let gpu = Gpu::new(GpuConfig::small()).with_threads(2);
        assert_eq!(gpu.execute(&k), gpu.execute(&k));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn with_threads_dispatches_to_identical_results() {
        let k = mixed_kernel(32);
        let serial = Gpu::new(GpuConfig::small()).execute(&k);
        let auto = Gpu::new(GpuConfig::small()).with_threads(0).execute(&k);
        assert_eq!(serial, auto);
    }

    #[test]
    fn probed_run_matches_unprobed_and_events_cover_stats() {
        use crate::probe::CountingProbe;
        let k = mixed_kernel(40);
        let gpu = Gpu::new(GpuConfig::small());
        let plain = gpu.execute_serial(&k);
        let (probed, probes) = gpu.execute_serial_probed(&k, |_| CountingProbe::new());
        assert_eq!(plain, probed, "probes must not perturb timing");
        // The hook stream reconstructs every event-derived counter; the
        // trace-derived trio is not event-covered, so copy it over.
        let mut view = CountingProbe::merged(probes.iter());
        view.cycles = plain.cycles;
        view.warps = plain.warps;
        view.vfunc_calls = plain.vfunc_calls;
        assert_eq!(view, plain, "aggregated probe view diverged from Stats");
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_probe_streams_match_serial() {
        use crate::probe::CountingProbe;
        let k = mixed_kernel(48);
        let gpu = Gpu::new(GpuConfig::small());
        let (s_stats, s_probes) = gpu.execute_serial_probed(&k, |_| CountingProbe::new());
        for threads in [2, 5] {
            let (p_stats, p_probes) =
                gpu.execute_parallel_probed(&k, threads, |_| CountingProbe::new());
            assert_eq!(s_stats, p_stats);
            for (a, b) in s_probes.iter().zip(p_probes.iter()) {
                assert_eq!(a.view(), b.view(), "per-SM probe view diverged");
            }
        }
    }

    #[test]
    fn next_cycle_never_moves_backwards() {
        // A drained SM (or a scheduler cache overtaken by phase B) can
        // report a wake-up at or before the canonical clock; the clamp
        // must still advance strictly.
        assert_eq!(next_cycle(100, false, 5), 101);
        assert_eq!(next_cycle(100, false, 100), 101);
        // An issuing epoch ticks by one even when a later wake-up is on
        // file — the issue may have changed the picture before it.
        assert_eq!(next_cycle(100, true, 500), 101);
        // Quiet machine: jump to the earliest wake-up.
        assert_eq!(next_cycle(100, false, 500), 500);
        // No wake-up anywhere (all-MAX min): plain tick.
        assert_eq!(next_cycle(100, false, u64::MAX), 101);
    }

    #[test]
    fn fast_forward_off_matches_on() {
        // The FF cache is a pure wall-clock optimization: plain epoch
        // ticking must produce bit-identical Stats and probe streams.
        use crate::probe::CountingProbe;
        let k = mixed_kernel(40);
        let on = Gpu::new(GpuConfig::small());
        let off = Gpu::new(GpuConfig::small()).with_fast_forward(false);
        assert!(on.fast_forward() && !off.fast_forward());
        let (s_on, p_on) = on.execute_serial_probed(&k, |_| CountingProbe::new());
        let (s_off, p_off) = off.execute_serial_probed(&k, |_| CountingProbe::new());
        assert_eq!(s_on, s_off, "fast-forward changed Stats");
        for (a, b) in p_on.iter().zip(p_off.iter()) {
            assert_eq!(a.view(), b.view(), "fast-forward changed probe view");
        }
    }
}
