//! The cycle-approximate SIMT timing engine.
//!
//! Warps replay their traces in order. Loads do **not** stall the warp at
//! issue — like a real GPU's scoreboard, they enter a per-warp
//! outstanding-load queue so misses from different reconvergence
//! subgroups overlap. A warp waits only when
//!
//! - an instruction *consumes* an outstanding load, encoded through
//!   access tags: the vFunc-pointer load waits on the vTable-pointer load
//!   or range walk that produced its address, the constant indirection on
//!   the vFunc load, the indirect call on the constant load, and segment
//!   tree levels on each other (the serial chain of paper Fig. 1 /
//!   Algorithm 1); or
//! - the queue exceeds the configured per-warp MLP
//!   ([`GpuConfig::max_pending_loads`]).
//!
//! Memory instructions are coalesced into 32-byte sector transactions
//! that probe a per-SM sectored L1, an address-sliced shared L2, and
//! channel-interleaved DRAM with both latency and bandwidth (service
//! time) costs — so heavily diverged access, cache thrash and bandwidth
//! saturation behave as on hardware, which is where the paper's effects
//! live.

use crate::cache::SectoredCache;
use crate::config::GpuConfig;
use crate::instr::{AccessTag, MemOp, Op, Space};
use crate::stats::{Stats, STALL_INDIRECT_CALL};
use crate::trace::KernelTrace;

/// The simulated GPU. Construct once, [`execute`](Gpu::execute) many
/// kernels; caches are cold at each kernel boundary.
#[derive(Clone, Debug)]
pub struct Gpu {
    cfg: GpuConfig,
}

/// The tag-encoded dependence chains of virtual dispatch (paper Fig. 1):
/// the vFunc load's address comes from the vTable-pointer load (or the
/// COAL range walk), the constant indirection's from the vFunc load, and
/// the indirect call's target from the constant load. Tree-walk levels
/// chain on each other. Everything else (fields, workload arrays) is
/// overlappable address-independent traffic.
fn dep_tags(tag: AccessTag) -> &'static [AccessTag] {
    match tag {
        AccessTag::VfuncPtr => &[AccessTag::VtablePtr, AccessTag::RangeWalk],
        AccessTag::ConstIndirection => &[AccessTag::VfuncPtr],
        AccessTag::RangeWalk => &[AccessTag::RangeWalk],
        _ => &[],
    }
}

struct WarpState {
    trace_idx: usize,
    pc: usize,
    ready_at: u64,
    done: bool,
    /// Outstanding loads: (completion cycle, tag index).
    pending: Vec<(u64, usize)>,
}

impl WarpState {
    fn fresh(trace_idx: usize, ready_at: u64) -> Self {
        WarpState { trace_idx, pc: 0, ready_at, done: false, pending: Vec::new() }
    }

    /// Latest completion among pending loads whose tag is in `tags`.
    fn dep_ready(&self, tags: &[AccessTag]) -> u64 {
        self.pending
            .iter()
            .filter(|(_, t)| tags.iter().any(|x| x.index() == *t))
            .map(|(c, _)| *c)
            .max()
            .unwrap_or(0)
    }

    fn prune(&mut self, now: u64) {
        self.pending.retain(|(c, _)| *c > now);
    }

    fn drain_all(&mut self) -> u64 {
        let max = self.pending.iter().map(|(c, _)| *c).max().unwrap_or(0);
        self.pending.clear();
        max
    }
}

struct SmState {
    l1: SectoredCache,
    cmem: SectoredCache,
    l1_free_at: u64,
    /// Completion times of outstanding L1 miss sectors (MSHR model):
    /// when full, new misses wait for the earliest outstanding one.
    mshr: Vec<u64>,
    resident: Vec<WarpState>,
    pending_warps: Vec<usize>,
    rr: usize,
    /// Per-scheduler cache of the earliest cycle any of its warps can
    /// issue; `0` forces a rescan. Purely a simulation speed-up.
    sched_next: Vec<u64>,
}

/// Reserves an MSHR slot for a miss starting at `t`, returning the
/// (possibly delayed) time the miss may enter the memory system.
fn mshr_acquire(mshr: &mut Vec<u64>, cap: usize, t: u64) -> u64 {
    mshr.retain(|&c| c > t);
    if mshr.len() < cap {
        return t;
    }
    let earliest = mshr.iter().copied().min().expect("full mshr");
    mshr.retain(|&c| c > earliest);
    t.max(earliest)
}

struct MemSystem {
    l2: SectoredCache,
    l2_free_at: Vec<u64>,
    dram_free_at: Vec<u64>,
}

impl Gpu {
    /// Creates a GPU with the given configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        Gpu { cfg }
    }

    /// Creates a V100-like GPU.
    pub fn v100() -> Self {
        Gpu::new(GpuConfig::v100())
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Replays `kernel` through the timing model and returns the counters.
    pub fn execute(&self, kernel: &KernelTrace) -> Stats {
        let cfg = &self.cfg;
        let mut stats = Stats::new();
        stats.warps = kernel.warps.len() as u64;
        stats.vfunc_calls = kernel.vfunc_calls();

        if kernel.warps.is_empty() {
            return stats;
        }

        for w in &kernel.warps {
            for op in w.ops() {
                stats.count_instrs(op.class(), op.dyn_count());
            }
        }

        let num_sms = cfg.num_sms as usize;
        let mut sms: Vec<SmState> = (0..num_sms)
            .map(|_| SmState {
                l1: SectoredCache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes, cfg.sector_bytes),
                cmem: SectoredCache::new(cfg.const_bytes, 4, 64, 64),
                l1_free_at: 0,
                mshr: Vec::new(),
                resident: Vec::new(),
                pending_warps: Vec::new(),
                rr: 0,
                sched_next: vec![0; cfg.schedulers_per_sm as usize],
            })
            .collect();

        // Round-robin warp → SM assignment. Empty traces never occupy a
        // slot.
        for (i, w) in kernel.warps.iter().enumerate() {
            if !w.is_empty() {
                sms[i % num_sms].pending_warps.push(i);
            }
        }
        for sm in &mut sms {
            sm.pending_warps.reverse(); // pop() yields lowest warp id first
            let take = (cfg.max_warps_per_sm as usize).min(sm.pending_warps.len());
            for _ in 0..take {
                let idx = sm.pending_warps.pop().expect("pending warp");
                sm.resident.push(WarpState::fresh(idx, 0));
            }
        }

        let mut memsys = MemSystem {
            l2: SectoredCache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes, cfg.sector_bytes),
            l2_free_at: vec![0; cfg.l2_slices as usize],
            dram_free_at: vec![0; cfg.dram_channels as usize],
        };

        let mut cycle: u64 = 0;
        let mut scratch: Vec<u64> = Vec::with_capacity(cfg.warp_size as usize);
        loop {
            let mut live = false;
            let mut min_next = u64::MAX;
            let mut issued_any = false;

            for sm in &mut sms {
                for sched in 0..cfg.schedulers_per_sm as usize {
                    let n = sm.resident.len();
                    if n == 0 {
                        continue;
                    }
                    // Fast path: nothing on this scheduler can issue yet.
                    let cached = sm.sched_next[sched];
                    if cached > cycle {
                        if cached != u64::MAX {
                            live = true;
                            min_next = min_next.min(cached);
                        }
                        continue;
                    }
                    let mut chosen: Option<usize> = None;
                    let mut sched_min = u64::MAX;
                    for k in 0..n {
                        let wi = (sm.rr + k) % n;
                        let w = &sm.resident[wi];
                        if w.done || wi % cfg.schedulers_per_sm as usize != sched {
                            continue;
                        }
                        live = true;
                        if w.ready_at <= cycle {
                            chosen = Some(wi);
                            break;
                        }
                        sched_min = sched_min.min(w.ready_at);
                    }
                    let Some(wi) = chosen else {
                        sm.sched_next[sched] = sched_min;
                        if sched_min != u64::MAX {
                            min_next = min_next.min(sched_min);
                        }
                        continue;
                    };
                    // Issued: the picture changes, rescan next cycle.
                    sm.sched_next[sched] = 0;
                    sm.rr = (wi + 1) % n;

                    let trace_idx = sm.resident[wi].trace_idx;
                    let pc = sm.resident[wi].pc;
                    let op = &kernel.warps[trace_idx].ops()[pc];

                    // Scoreboard check: an op whose operands are still in
                    // flight (or a load with the MLP queue full) does not
                    // issue now — the warp retries once ready, keeping
                    // resource reservations causal.
                    let defer_until = match op {
                        Op::IndirectCall => sm.resident[wi].dep_ready(&[
                            AccessTag::ConstIndirection,
                            AccessTag::VfuncPtr,
                        ]),
                        Op::Mem(m) if !m.is_store => {
                            let w = &mut sm.resident[wi];
                            w.prune(cycle);
                            let mut until = w.dep_ready(dep_tags(m.tag));
                            if w.pending.len() >= cfg.max_pending_loads {
                                let oldest = w
                                    .pending
                                    .iter()
                                    .map(|(c, _)| *c)
                                    .min()
                                    .expect("non-empty pending");
                                until = until.max(oldest);
                            }
                            // LSU queue back-pressure.
                            if sm.l1_free_at > cycle + cfg.l1_queue_cap {
                                until = until.max(sm.l1_free_at - cfg.l1_queue_cap);
                            }
                            // MSHR back-pressure: leave room for a full
                            // warp's worth of miss sectors before issuing
                            // (an empty MSHR file always admits a load).
                            sm.mshr.retain(|&c| c > cycle);
                            if !sm.mshr.is_empty()
                                && sm.mshr.len() + cfg.warp_size as usize > cfg.mshr_per_sm
                            {
                                let earliest = sm
                                    .mshr
                                    .iter()
                                    .copied()
                                    .min()
                                    .expect("mshr checked non-empty");
                                until = until.max(earliest);
                            }
                            until
                        }
                        _ => 0,
                    };
                    if defer_until > cycle {
                        sm.resident[wi].ready_at = defer_until;
                        min_next = min_next.min(defer_until);
                        continue;
                    }
                    issued_any = true;

                    let ready_at = match op {
                        Op::Alu(nn) => {
                            cycle + (*nn as u64) * cfg.alu_chain_latency + cfg.alu_latency
                        }
                        Op::Branch | Op::DirectCall => cycle + cfg.branch_latency,
                        Op::Ret => cycle + cfg.ret_latency,
                        Op::IndirectCall => {
                            stats.stall_by_tag[STALL_INDIRECT_CALL] +=
                                cfg.indirect_call_latency;
                            cycle + cfg.indirect_call_latency
                        }
                        Op::Mem(m) if m.is_store => issue_store(
                            cfg, cycle, m, &mut memsys, &mut stats, &mut scratch,
                        ),
                        Op::Mem(m) => {
                            let completion = issue_load(
                                cfg,
                                cycle,
                                m,
                                &mut sm.l1,
                                &mut sm.cmem,
                                &mut sm.l1_free_at,
                                &mut sm.mshr,
                                &mut memsys,
                                &mut stats,
                                &mut scratch,
                            );
                            stats.stall_by_tag[m.tag.index()] +=
                                completion.saturating_sub(cycle);
                            sm.resident[wi].pending.push((completion, m.tag.index()));
                            // A diverged access is replayed one sector per
                            // cycle through the LSU: the warp owns the
                            // issue pipe for the duration. This is the
                            // direct issue-side price of divergence.
                            cycle + scratch.len() as u64
                        }
                    };

                    let w = &mut sm.resident[wi];
                    w.ready_at = ready_at;
                    w.pc += 1;
                    if w.pc >= kernel.warps[w.trace_idx].ops().len() {
                        // Drain outstanding loads before retiring.
                        let drain = w.drain_all();
                        w.ready_at = w.ready_at.max(drain);
                        w.done = true;
                        let final_ready = w.ready_at;
                        if let Some(next) = sm.pending_warps.pop() {
                            *w = WarpState::fresh(next, final_ready.max(cycle + 1));
                        } else {
                            w.ready_at = final_ready;
                        }
                    }
                }
            }

            if !live && sms.iter().all(|s| s.pending_warps.is_empty()) {
                break;
            }
            cycle = if issued_any {
                cycle + 1
            } else {
                (cycle + 1).max(min_next)
            };
        }

        let last = sms
            .iter()
            .flat_map(|s| s.resident.iter().map(|w| w.ready_at))
            .max()
            .unwrap_or(cycle);
        stats.cycles = last.max(cycle);

        for sm in &sms {
            stats.l1_accesses += sm.l1.hits() + sm.l1.misses();
            stats.l1_hits += sm.l1.hits();
            stats.const_accesses += sm.cmem.hits() + sm.cmem.misses();
            stats.const_hits += sm.cmem.hits();
        }
        stats.l2_accesses = memsys.l2.hits() + memsys.l2.misses();
        stats.l2_hits = memsys.l2.hits();
        stats
    }
}

fn coalesce(scratch: &mut Vec<u64>, m: &MemOp, sector_bytes: u64) {
    scratch.clear();
    for &a in m.addrs.iter() {
        scratch.push(a / sector_bytes);
    }
    scratch.sort_unstable();
    scratch.dedup();
}

/// A store: count transactions, consume L2/DRAM bandwidth; the warp
/// continues through the store buffer almost immediately.
fn issue_store(
    cfg: &GpuConfig,
    cycle: u64,
    m: &MemOp,
    memsys: &mut MemSystem,
    stats: &mut Stats,
    scratch: &mut Vec<u64>,
) -> u64 {
    coalesce(scratch, m, cfg.sector_bytes);
    stats.global_store_transactions += scratch.len() as u64;
    for &s in scratch.iter() {
        let addr = s * cfg.sector_bytes;
        let slice = (s % memsys.l2_free_at.len() as u64) as usize;
        let t = memsys.l2_free_at[slice].max(cycle);
        memsys.l2_free_at[slice] = t + 1;
        if !memsys.l2.access(addr).is_hit() {
            let chan = ((addr >> 8) % memsys.dram_free_at.len() as u64) as usize;
            let td = memsys.dram_free_at[chan].max(t);
            memsys.dram_free_at[chan] = td + cfg.dram_sector_cycles;
            stats.dram_accesses += 1;
        }
    }
    cycle + cfg.alu_latency
}

/// A load: coalesce into sectors, walk L1 → L2 → DRAM per sector with
/// port/slice/channel service costs; returns the completion cycle.
#[allow(clippy::too_many_arguments)]
fn issue_load(
    cfg: &GpuConfig,
    cycle: u64,
    m: &MemOp,
    l1: &mut SectoredCache,
    cmem: &mut SectoredCache,
    l1_free_at: &mut u64,
    mshr: &mut Vec<u64>,
    memsys: &mut MemSystem,
    stats: &mut Stats,
    scratch: &mut Vec<u64>,
) -> u64 {
    coalesce(scratch, m, cfg.sector_bytes);
    match m.space {
        Space::Const => {
            let mut done = cycle;
            for &s in scratch.iter() {
                let addr = s * cfg.sector_bytes;
                let lat = if cmem.access(addr).is_hit() {
                    cfg.const_latency
                } else {
                    cfg.const_miss_latency
                };
                done = done.max(cycle + lat);
            }
            done
        }
        Space::Global => {
            stats.global_load_transactions += scratch.len() as u64;
            stats.load_transactions_by_tag[m.tag.index()] += scratch.len() as u64;
            let mut done = cycle;
            for &s in scratch.iter() {
                let addr = s * cfg.sector_bytes;
                // One sector per cycle through the SM's LSU port.
                let t1 = (*l1_free_at).max(cycle);
                *l1_free_at = t1 + 1;
                let sector_done = if l1.access(addr).is_hit() {
                    t1 + cfg.l1_latency
                } else {
                    // A miss needs an MSHR slot before entering L2/DRAM.
                    let tm = mshr_acquire(mshr, cfg.mshr_per_sm, t1 + cfg.l1_latency);
                    let slice = (s % memsys.l2_free_at.len() as u64) as usize;
                    let t2 = memsys.l2_free_at[slice].max(tm);
                    memsys.l2_free_at[slice] = t2 + 1;
                    let filled = if memsys.l2.access(addr).is_hit() {
                        t2 + cfg.l2_latency
                    } else {
                        let chan = ((addr >> 8) % memsys.dram_free_at.len() as u64) as usize;
                        let td = memsys.dram_free_at[chan].max(t2 + cfg.l2_latency);
                        memsys.dram_free_at[chan] = td + cfg.dram_sector_cycles;
                        stats.dram_accesses += 1;
                        td + cfg.dram_latency
                    };
                    mshr.push(filled);
                    filled
                };
                done = done.max(sector_done);
            }
            done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AccessTag, MemOp};
    use crate::trace::WarpTrace;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::small())
    }

    fn load(addrs: Vec<u64>, tag: AccessTag) -> Op {
        let mask = (1u64 << addrs.len()).wrapping_sub(1) as u32;
        Op::Mem(MemOp {
            space: Space::Global,
            is_store: false,
            width: 8,
            mask,
            addrs: addrs.into_boxed_slice(),
            tag,
        })
    }

    fn one_warp(ops: Vec<Op>) -> KernelTrace {
        let mut w = WarpTrace::new();
        for op in ops {
            w.push(op);
        }
        KernelTrace { warps: vec![w] }
    }

    #[test]
    fn empty_kernel() {
        let s = gpu().execute(&KernelTrace::new());
        assert_eq!(s.cycles, 0);
        assert_eq!(s.total_instrs(), 0);
    }

    #[test]
    fn alu_only_kernel_is_cheap() {
        let s = gpu().execute(&one_warp(vec![Op::Alu(10)]));
        assert!(s.cycles >= 10);
        assert!(s.cycles < 100);
        assert_eq!(s.instrs_compute, 10);
    }

    #[test]
    fn diverged_load_generates_many_transactions() {
        // 32 lanes, each to a different 128B-separated address.
        let addrs: Vec<u64> = (0..32).map(|i| 0x1_0000 + i * 128).collect();
        let s = gpu().execute(&one_warp(vec![load(addrs, AccessTag::VtablePtr)]));
        assert_eq!(s.global_load_transactions, 32);
        assert_eq!(s.l1_accesses, 32);
        assert_eq!(s.l1_hits, 0);
    }

    #[test]
    fn converged_load_is_one_transaction() {
        let addrs: Vec<u64> = vec![0x2_0000; 32];
        let s = gpu().execute(&one_warp(vec![load(addrs, AccessTag::RangeWalk)]));
        assert_eq!(s.global_load_transactions, 1);
    }

    #[test]
    fn adjacent_loads_coalesce() {
        // 32 lanes x 8B consecutive = 256B = 8 sectors.
        let addrs: Vec<u64> = (0..32).map(|i| 0x3_0000 + i * 8).collect();
        let s = gpu().execute(&one_warp(vec![load(addrs, AccessTag::Field)]));
        assert_eq!(s.global_load_transactions, 8);
    }

    #[test]
    fn second_load_hits_l1() {
        let addrs: Vec<u64> = vec![0x4_0000; 32];
        let s = gpu().execute(&one_warp(vec![
            load(addrs.clone(), AccessTag::Field),
            load(addrs, AccessTag::Field),
        ]));
        assert_eq!(s.l1_hits, 1);
        assert!((s.l1_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn diverged_load_slower_than_converged() {
        let diverged: Vec<u64> = (0..32).map(|i| 0x1_0000 + i * 256).collect();
        let converged: Vec<u64> = vec![0x1_0000; 32];
        let sd = gpu().execute(&one_warp(vec![load(diverged, AccessTag::VtablePtr)]));
        let sc = gpu().execute(&one_warp(vec![load(converged, AccessTag::VtablePtr)]));
        assert!(
            sd.cycles > sc.cycles,
            "diverged {} !> converged {}",
            sd.cycles,
            sc.cycles
        );
    }

    #[test]
    fn multithreading_hides_latency() {
        // One warp doing a cold load vs. 8 warps doing cold loads: the
        // 8-warp version must be far cheaper than 8x the single warp.
        let mk = |i: u64| {
            let mut w = WarpTrace::new();
            w.push(load(
                (0..32).map(|l| 0x10_0000 + i * 0x1000 + l * 32).collect(),
                AccessTag::Field,
            ));
            w
        };
        let one = gpu().execute(&KernelTrace { warps: vec![mk(0)] });
        let eight = gpu().execute(&KernelTrace { warps: (0..8).map(mk).collect() });
        assert!(eight.cycles < one.cycles * 4);
    }

    #[test]
    fn stall_attribution_recorded() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x5_0000 + i * 128).collect();
        let s = gpu().execute(&one_warp(vec![
            load(addrs, AccessTag::VtablePtr),
            Op::IndirectCall,
        ]));
        assert!(s.stall(AccessTag::VtablePtr) > 0);
        assert!(s.stall_by_tag[STALL_INDIRECT_CALL] > 0);
        let (a, _b, c) = s.dispatch_latency_breakdown();
        assert!(a > c);
    }

    #[test]
    fn stores_do_not_stall_much() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x6_0000 + i * 32).collect();
        let st = Op::Mem(MemOp {
            space: Space::Global,
            is_store: true,
            width: 8,
            mask: u32::MAX,
            addrs: addrs.into_boxed_slice(),
            tag: AccessTag::Other,
        });
        let s = gpu().execute(&one_warp(vec![st]));
        assert_eq!(s.global_store_transactions, 32);
        assert!(s.cycles < 50);
    }

    #[test]
    fn const_cache_hits_after_first() {
        let ldc = |tag| {
            Op::Mem(MemOp {
                space: Space::Const,
                is_store: false,
                width: 8,
                mask: u32::MAX,
                addrs: vec![0x100; 32].into_boxed_slice(),
                tag,
            })
        };
        let s = gpu().execute(&one_warp(vec![
            ldc(AccessTag::ConstIndirection),
            ldc(AccessTag::ConstIndirection),
        ]));
        assert_eq!(s.const_accesses, 2);
        assert_eq!(s.const_hits, 1);
    }

    #[test]
    fn more_warps_than_residency_all_complete() {
        let cfg = GpuConfig::small(); // 2 SMs x 8 warps resident
        let warps: Vec<WarpTrace> = (0..64)
            .map(|i| {
                let mut w = WarpTrace::new();
                w.push(Op::Alu(3));
                w.push(load(vec![0x7_0000 + i * 64; 32], AccessTag::Field));
                w
            })
            .collect();
        let s = Gpu::new(cfg).execute(&KernelTrace { warps });
        assert_eq!(s.warps, 64);
        assert_eq!(s.instrs_compute, 64 * 3);
        assert_eq!(s.instrs_mem, 64);
    }

    #[test]
    fn cache_thrash_increases_miss_rate() {
        // Working set far beyond the small L1 (4 KiB): re-touching a big
        // footprint twice should still miss, while a tiny footprint hits.
        let big: Vec<Op> = (0..2)
            .flat_map(|_| {
                (0..64u64).map(|i| load(vec![0x20_0000 + i * 4096; 32], AccessTag::Field))
            })
            .collect();
        let small_ops: Vec<Op> = (0..2)
            .flat_map(|_| (0..4u64).map(|i| load(vec![0x30_0000 + i * 32; 32], AccessTag::Field)))
            .collect();
        let sb = gpu().execute(&one_warp(big));
        let ss = gpu().execute(&one_warp(small_ops));
        assert!(sb.l1_hit_rate() < 0.2);
        assert!(ss.l1_hit_rate() >= 0.5);
    }
}

#[cfg(test)]
mod scoreboard_tests {
    use super::*;
    use crate::instr::MemOp;
    use crate::trace::WarpTrace;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::small())
    }

    fn ld(addrs: Vec<u64>, tag: AccessTag) -> Op {
        let mask = if addrs.len() >= 32 { u32::MAX } else { (1u32 << addrs.len()) - 1 };
        Op::Mem(MemOp {
            space: Space::Global,
            is_store: false,
            width: 8,
            mask,
            addrs: addrs.into_boxed_slice(),
            tag,
        })
    }

    fn one(ops: Vec<Op>) -> KernelTrace {
        let mut w = WarpTrace::new();
        for op in ops {
            w.push(op);
        }
        KernelTrace { warps: vec![w] }
    }

    #[test]
    fn independent_loads_overlap() {
        // Two independent cold loads from different lines should cost
        // barely more than one; a dependent A->B chain costs ~двa misses.
        let a = (0..8).map(|i| 0x10_0000 + i * 128).collect::<Vec<_>>();
        let b = (0..8).map(|i| 0x20_0000 + i * 128).collect::<Vec<_>>();
        let both_independent =
            gpu().execute(&one(vec![ld(a.clone(), AccessTag::Field), ld(b.clone(), AccessTag::Field)]));
        let chained = gpu().execute(&one(vec![
            ld(a, AccessTag::VtablePtr),
            ld(b, AccessTag::VfuncPtr), // waits for the vtable load
        ]));
        assert!(
            chained.cycles > both_independent.cycles + 50,
            "dependent chain {} must far exceed overlapped pair {}",
            chained.cycles,
            both_independent.cycles
        );
    }

    #[test]
    fn range_walk_levels_serialize() {
        let lvl = |a: u64| ld(vec![a; 32], AccessTag::RangeWalk);
        let serial = gpu().execute(&one(vec![lvl(0x1000), lvl(0x2000), lvl(0x3000)]));
        let free = gpu().execute(&one(vec![
            ld(vec![0x1000; 32], AccessTag::Field),
            ld(vec![0x2000; 32], AccessTag::Field),
            ld(vec![0x3000; 32], AccessTag::Field),
        ]));
        assert!(serial.cycles > free.cycles, "walk levels must chain");
    }

    #[test]
    fn indirect_call_waits_for_const_indirection() {
        let cold_const = Op::Mem(MemOp {
            space: Space::Const,
            is_store: false,
            width: 8,
            mask: u32::MAX,
            addrs: vec![0x9000; 32].into_boxed_slice(),
            tag: AccessTag::ConstIndirection,
        });
        let with_wait = gpu().execute(&one(vec![cold_const.clone(), Op::IndirectCall]));
        let call_only = gpu().execute(&one(vec![Op::IndirectCall]));
        let cfg = GpuConfig::small();
        assert!(
            with_wait.cycles >= call_only.cycles + cfg.const_miss_latency / 2,
            "call must wait for its target: {} vs {}",
            with_wait.cycles,
            call_only.cycles
        );
    }

    #[test]
    fn mlp_queue_cap_backpressures() {
        // Far more outstanding loads than the small config's cap (8):
        // issue must throttle, so cycles grow superlinearly past the cap.
        let mk = |n: usize| {
            let ops = (0..n)
                .map(|i| ld(vec![0x40_0000 + i as u64 * 4096], AccessTag::Other))
                .collect();
            gpu().execute(&one(ops)).cycles
        };
        let under = mk(4);
        let over = mk(32);
        assert!(over > under * 3, "cap must throttle: {over} vs {under}");
    }

    #[test]
    fn trace_end_drains_outstanding_loads() {
        // A single cold load as the LAST op: the kernel cannot finish
        // before the load lands.
        let s = gpu().execute(&one(vec![ld(vec![0x50_0000], AccessTag::Other)]));
        let cfg = GpuConfig::small();
        assert!(s.cycles >= cfg.l1_latency + cfg.l2_latency);
    }

    #[test]
    fn mshr_limits_concurrent_misses() {
        // Many warps each firing one diverged miss burst: with a tiny
        // MSHR file the kernel must take longer than with a huge one.
        let warps: Vec<WarpTrace> = (0..16)
            .map(|wi| {
                let mut w = WarpTrace::new();
                w.push(ld(
                    (0..32).map(|l| 0x80_0000 + (wi * 32 + l) * 128).collect(),
                    AccessTag::Field,
                ));
                w.push(Op::Alu(1));
                w
            })
            .collect();
        let mut small_mshr = GpuConfig::small();
        small_mshr.num_sms = 1;
        small_mshr.mshr_per_sm = 33;
        let mut big_mshr = small_mshr.clone();
        big_mshr.mshr_per_sm = 4096;
        let slow = Gpu::new(small_mshr).execute(&KernelTrace { warps: warps.clone() });
        let fast = Gpu::new(big_mshr).execute(&KernelTrace { warps });
        assert!(slow.cycles > fast.cycles, "{} !> {}", slow.cycles, fast.cycles);
    }

    #[test]
    fn load_transactions_attributed_to_tags() {
        let s = gpu().execute(&one(vec![
            ld((0..32).map(|i| 0x100_0000 + i * 64).collect(), AccessTag::VtablePtr),
            ld(vec![0x200_0000; 32], AccessTag::RangeWalk),
        ]));
        assert_eq!(s.load_transactions(AccessTag::VtablePtr), 32);
        assert_eq!(s.load_transactions(AccessTag::RangeWalk), 1);
        assert_eq!(s.load_transactions(AccessTag::Field), 0);
        assert_eq!(s.global_load_transactions, 33);
    }
}
