//! Zero-overhead observability hooks for the timing engine.
//!
//! The engine's hot loops are generic over a [`Probe`]: every
//! simulation-visible event — warp issue, stall attribution, cache and
//! DRAM traffic, MSHR pressure, epoch boundaries, warp retirement —
//! calls the matching hook on the issuing SM's probe instance. The
//! default [`NopProbe`] has empty inline hooks, so the un-probed paths
//! monomorphize to exactly the pre-probe machine code: no branches, no
//! buffers, no cycle drift. Probes **observe** and never feed back into
//! timing, so a probed run produces bit-identical [`Stats`] to an
//! un-probed one (property-tested in `tests/prop.rs`).
//!
//! Probes are **per SM**: [`crate::Gpu::execute_probed`] builds one
//! instance per SM from a factory closure, and every hook fires on the
//! SM that owns the event (phase-B memory events are attributed to the
//! *requesting* SM). Phase A only touches SM-local state and phase B
//! runs in canonical order, so each probe records an identical event
//! stream for any host thread count — observability inherits the
//! engine's determinism contract for free.
//!
//! Shipped probes:
//!
//! - [`NopProbe`] — the zero-cost default;
//! - [`CountingProbe`] — rebuilds the event-derived slice of [`Stats`]
//!   purely from hooks (the cross-check used by the property suite);
//! - [`EpochMetricsProbe`] — a bounded, auto-coarsening time series of
//!   per-bucket counter deltas (IPC, hit rates, stall mix over time);
//! - [`crate::TimelineProbe`] — bounded per-SM event buffers exported
//!   as Chrome trace-event / Perfetto JSON (see [`crate::timeline`]).
//!
//! Composition: `(A, B)` and `Option<P>` are probes themselves, so a
//! run can record a timeline and a metrics series at once without a
//! bespoke combined type.

use crate::attrib::{AttribReport, AttributionProbe, LogHist};
use crate::cache::SectoredCache;
use crate::instr::{AccessTag, Op, UNKNOWN_CALL_TARGET};
use crate::stats::{Stats, STALL_INDIRECT_CALL};
use crate::timeline::{TimelineProbe, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

/// Why a warp stalled, mirroring the indexing of
/// [`Stats::stall_by_tag`]: one slot per [`AccessTag`] plus the
/// indirect call (operation **C** of the paper's Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Waiting on a memory access with this attribution tag.
    Access(AccessTag),
    /// The indirect-call issue latency itself.
    IndirectCall,
}

/// Number of distinct [`StallCause`] values (array sizing).
pub const STALL_CAUSES: usize = AccessTag::ALL.len() + 1;

impl StallCause {
    /// Compact index, compatible with [`Stats::stall_by_tag`].
    pub const fn index(self) -> usize {
        match self {
            StallCause::Access(tag) => tag.index(),
            StallCause::IndirectCall => STALL_INDIRECT_CALL,
        }
    }

    /// Every cause, in [`index`](StallCause::index) order.
    pub fn all() -> [StallCause; STALL_CAUSES] {
        let mut out = [StallCause::IndirectCall; STALL_CAUSES];
        let mut i = 0;
        while i < AccessTag::ALL.len() {
            out[i] = StallCause::Access(AccessTag::ALL[i]);
            i += 1;
        }
        out
    }

    /// Short machine-readable label (trace/metrics schema field).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Access(AccessTag::VtablePtr) => "vtable-ptr",
            StallCause::Access(AccessTag::VfuncPtr) => "vfunc-ptr",
            StallCause::Access(AccessTag::ConstIndirection) => "const-indirection",
            StallCause::Access(AccessTag::TypeTag) => "type-tag",
            StallCause::Access(AccessTag::RangeWalk) => "range-walk",
            StallCause::Access(AccessTag::Field) => "field",
            StallCause::Access(AccessTag::Other) => "other",
            StallCause::IndirectCall => "indirect-call",
        }
    }
}

/// Observability hooks called from the engine's hot loops.
///
/// Every method has an empty default body, so an implementation only
/// pays for (and only writes) the events it cares about. Implementors
/// are per-SM — see the module docs for the determinism argument.
/// Hooks mirror the counter updates of [`Stats`] exactly: summing a
/// hook's payloads over a run reproduces the corresponding counter
/// bit-for-bit (this is what [`CountingProbe`] does).
pub trait Probe: Send {
    /// Statically `true` when every hook of this probe type is a no-op
    /// ([`NopProbe`] and compositions of it). The engine's fast-forward
    /// path uses this to elide the per-skipped-epoch hook replay that
    /// keeps instrumented runs byte-identical to epoch-tick runs: when
    /// the hooks provably observe nothing, skipping the calls changes
    /// nothing. Leave this `false` for any probe that records events.
    const IS_NOP: bool = false;

    /// A new epoch begins on this SM at `cycle` (idle stretches are
    /// skipped, so consecutive calls may jump forward).
    #[inline(always)]
    fn epoch(&mut self, _cycle: u64) {}

    /// The epoch at `cycle` finished on this SM: `live` / `issued` /
    /// `min_next` are the SM's phase-A outputs (whether any warp still
    /// has work, whether anything issued this cycle, and the earliest
    /// cycle at which a currently-stalled warp is known to become
    /// ready — `u64::MAX` when unknown). Fired once per
    /// [`epoch`](Probe::epoch), after the schedulers ran.
    #[inline(always)]
    fn epoch_end(&mut self, _cycle: u64, _live: bool, _issued: bool, _min_next: u64) {}

    /// Warp `warp` issued `op` (its `pc`-th trace entry) at `cycle`.
    #[inline(always)]
    fn issue(&mut self, _cycle: u64, _warp: usize, _pc: usize, _op: &Op) {}

    /// A stall interval `[from, until)` charged to `cause`, incurred by
    /// `warp` at trace position `pc` — the generalized Fig. 1b event.
    #[inline(always)]
    fn stall(&mut self, _warp: usize, _pc: usize, _cause: StallCause, _from: u64, _until: u64) {}

    /// One L1 sector probe (a global-load transaction) tagged `tag`.
    #[inline(always)]
    fn l1_access(&mut self, _cycle: u64, _tag: AccessTag, _hit: bool) {}

    /// A global load at trace position `pc` coalesced `lanes`
    /// participating lanes into `sectors` sector transactions. Fires
    /// once per dynamic load instruction, before the per-sector
    /// [`l1_access`](Probe::l1_access)/[`l1_sector`](Probe::l1_sector)
    /// stream it summarizes.
    #[inline(always)]
    fn load_coalesced(
        &mut self,
        _cycle: u64,
        _pc: usize,
        _tag: AccessTag,
        _lanes: u64,
        _sectors: u64,
    ) {
    }

    /// The addressed companion of [`l1_access`](Probe::l1_access): the
    /// same L1 sector probe, carrying the trace position, the cache
    /// line address and the L1 set it mapped to. One call per global
    /// load transaction, in the same order as `l1_access`.
    #[inline(always)]
    fn l1_sector(
        &mut self,
        _cycle: u64,
        _pc: usize,
        _tag: AccessTag,
        _line_addr: u64,
        _set: usize,
        _hit: bool,
    ) {
    }

    /// End-of-run snapshot of this SM's L1, fired once from the
    /// engine's finish path (after the last epoch, before stats
    /// merging).
    #[inline(always)]
    fn cache_final(&mut self, _l1: &SectoredCache) {}

    /// One constant-cache sector probe tagged `tag`.
    #[inline(always)]
    fn const_access(&mut self, _cycle: u64, _tag: AccessTag, _hit: bool) {}

    /// One L2 sector probe (attributed to the requesting SM).
    #[inline(always)]
    fn l2_access(&mut self, _cycle: u64, _hit: bool) {}

    /// One DRAM sector access (attributed to the requesting SM).
    #[inline(always)]
    fn dram_access(&mut self, _cycle: u64) {}

    /// A miss wanted an MSHR entry at `cycle` but the file was full;
    /// it enters the memory system at `until`.
    #[inline(always)]
    fn mshr_wait(&mut self, _cycle: u64, _until: u64) {}

    /// A store issued `sectors` coalesced store transactions.
    #[inline(always)]
    fn store_sectors(&mut self, _cycle: u64, _sectors: u64) {}

    /// Warp `warp` retired (its last outstanding load drained) at
    /// `cycle`.
    #[inline(always)]
    fn warp_retire(&mut self, _cycle: u64, _warp: usize) {}
}

/// The default probe: every hook is an empty `#[inline(always)]` body,
/// so `execute::<NopProbe>` compiles to the same machine code as an
/// engine without hooks. This is the "zero" in zero-overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NopProbe;

impl Probe for NopProbe {
    const IS_NOP: bool = true;
}

/// `Option<P>` is a probe that forwards when `Some` — the building
/// block for runtime-configurable probe stacks.
impl<P: Probe> Probe for Option<P> {
    // Forwarding to a no-op is still a no-op, whether Some or None.
    const IS_NOP: bool = P::IS_NOP;

    #[inline(always)]
    fn epoch(&mut self, cycle: u64) {
        if let Some(p) = self {
            p.epoch(cycle);
        }
    }
    #[inline(always)]
    fn epoch_end(&mut self, cycle: u64, live: bool, issued: bool, min_next: u64) {
        if let Some(p) = self {
            p.epoch_end(cycle, live, issued, min_next);
        }
    }
    #[inline(always)]
    fn issue(&mut self, cycle: u64, warp: usize, pc: usize, op: &Op) {
        if let Some(p) = self {
            p.issue(cycle, warp, pc, op);
        }
    }
    #[inline(always)]
    fn stall(&mut self, warp: usize, pc: usize, cause: StallCause, from: u64, until: u64) {
        if let Some(p) = self {
            p.stall(warp, pc, cause, from, until);
        }
    }
    #[inline(always)]
    fn l1_access(&mut self, cycle: u64, tag: AccessTag, hit: bool) {
        if let Some(p) = self {
            p.l1_access(cycle, tag, hit);
        }
    }
    #[inline(always)]
    fn load_coalesced(&mut self, cycle: u64, pc: usize, tag: AccessTag, lanes: u64, sectors: u64) {
        if let Some(p) = self {
            p.load_coalesced(cycle, pc, tag, lanes, sectors);
        }
    }
    #[inline(always)]
    fn l1_sector(
        &mut self,
        cycle: u64,
        pc: usize,
        tag: AccessTag,
        line_addr: u64,
        set: usize,
        hit: bool,
    ) {
        if let Some(p) = self {
            p.l1_sector(cycle, pc, tag, line_addr, set, hit);
        }
    }
    #[inline(always)]
    fn cache_final(&mut self, l1: &SectoredCache) {
        if let Some(p) = self {
            p.cache_final(l1);
        }
    }
    #[inline(always)]
    fn const_access(&mut self, cycle: u64, tag: AccessTag, hit: bool) {
        if let Some(p) = self {
            p.const_access(cycle, tag, hit);
        }
    }
    #[inline(always)]
    fn l2_access(&mut self, cycle: u64, hit: bool) {
        if let Some(p) = self {
            p.l2_access(cycle, hit);
        }
    }
    #[inline(always)]
    fn dram_access(&mut self, cycle: u64) {
        if let Some(p) = self {
            p.dram_access(cycle);
        }
    }
    #[inline(always)]
    fn mshr_wait(&mut self, cycle: u64, until: u64) {
        if let Some(p) = self {
            p.mshr_wait(cycle, until);
        }
    }
    #[inline(always)]
    fn store_sectors(&mut self, cycle: u64, sectors: u64) {
        if let Some(p) = self {
            p.store_sectors(cycle, sectors);
        }
    }
    #[inline(always)]
    fn warp_retire(&mut self, cycle: u64, warp: usize) {
        if let Some(p) = self {
            p.warp_retire(cycle, warp);
        }
    }
}

/// A pair of probes fires both halves, in order — composition without a
/// bespoke combined type.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const IS_NOP: bool = A::IS_NOP && B::IS_NOP;

    #[inline(always)]
    fn epoch(&mut self, cycle: u64) {
        self.0.epoch(cycle);
        self.1.epoch(cycle);
    }
    #[inline(always)]
    fn epoch_end(&mut self, cycle: u64, live: bool, issued: bool, min_next: u64) {
        self.0.epoch_end(cycle, live, issued, min_next);
        self.1.epoch_end(cycle, live, issued, min_next);
    }
    #[inline(always)]
    fn issue(&mut self, cycle: u64, warp: usize, pc: usize, op: &Op) {
        self.0.issue(cycle, warp, pc, op);
        self.1.issue(cycle, warp, pc, op);
    }
    #[inline(always)]
    fn stall(&mut self, warp: usize, pc: usize, cause: StallCause, from: u64, until: u64) {
        self.0.stall(warp, pc, cause, from, until);
        self.1.stall(warp, pc, cause, from, until);
    }
    #[inline(always)]
    fn l1_access(&mut self, cycle: u64, tag: AccessTag, hit: bool) {
        self.0.l1_access(cycle, tag, hit);
        self.1.l1_access(cycle, tag, hit);
    }
    #[inline(always)]
    fn load_coalesced(&mut self, cycle: u64, pc: usize, tag: AccessTag, lanes: u64, sectors: u64) {
        self.0.load_coalesced(cycle, pc, tag, lanes, sectors);
        self.1.load_coalesced(cycle, pc, tag, lanes, sectors);
    }
    #[inline(always)]
    fn l1_sector(
        &mut self,
        cycle: u64,
        pc: usize,
        tag: AccessTag,
        line_addr: u64,
        set: usize,
        hit: bool,
    ) {
        self.0.l1_sector(cycle, pc, tag, line_addr, set, hit);
        self.1.l1_sector(cycle, pc, tag, line_addr, set, hit);
    }
    #[inline(always)]
    fn cache_final(&mut self, l1: &SectoredCache) {
        self.0.cache_final(l1);
        self.1.cache_final(l1);
    }
    #[inline(always)]
    fn const_access(&mut self, cycle: u64, tag: AccessTag, hit: bool) {
        self.0.const_access(cycle, tag, hit);
        self.1.const_access(cycle, tag, hit);
    }
    #[inline(always)]
    fn l2_access(&mut self, cycle: u64, hit: bool) {
        self.0.l2_access(cycle, hit);
        self.1.l2_access(cycle, hit);
    }
    #[inline(always)]
    fn dram_access(&mut self, cycle: u64) {
        self.0.dram_access(cycle);
        self.1.dram_access(cycle);
    }
    #[inline(always)]
    fn mshr_wait(&mut self, cycle: u64, until: u64) {
        self.0.mshr_wait(cycle, until);
        self.1.mshr_wait(cycle, until);
    }
    #[inline(always)]
    fn store_sectors(&mut self, cycle: u64, sectors: u64) {
        self.0.store_sectors(cycle, sectors);
        self.1.store_sectors(cycle, sectors);
    }
    #[inline(always)]
    fn warp_retire(&mut self, cycle: u64, warp: usize) {
        self.0.warp_retire(cycle, warp);
        self.1.warp_retire(cycle, warp);
    }
}

/// Rebuilds the event-derived slice of [`Stats`] purely from probe
/// hooks. Used by the property suite to prove the hook stream is
/// complete and exact; [`view`](CountingProbe::view) leaves the
/// trace-derived fields (`cycles`, `warps`, `vfunc_calls`) at zero
/// because no event carries them.
#[derive(Clone, Debug, Default)]
pub struct CountingProbe {
    view: Stats,
}

impl CountingProbe {
    /// A fresh, zeroed counting probe.
    pub fn new() -> Self {
        CountingProbe::default()
    }

    /// The counters reconstructed so far.
    pub fn view(&self) -> &Stats {
        &self.view
    }

    /// Sums the views of a set of per-SM counting probes.
    pub fn merged<'a>(probes: impl IntoIterator<Item = &'a CountingProbe>) -> Stats {
        Stats::merged(probes.into_iter().map(|p| &p.view))
    }
}

impl Probe for CountingProbe {
    fn issue(&mut self, _cycle: u64, _warp: usize, _pc: usize, op: &Op) {
        self.view.count_instrs(op.class(), op.dyn_count());
    }
    fn stall(&mut self, _warp: usize, _pc: usize, cause: StallCause, from: u64, until: u64) {
        self.view.stall_by_tag[cause.index()] += until.saturating_sub(from);
    }
    fn l1_access(&mut self, _cycle: u64, tag: AccessTag, hit: bool) {
        self.view.l1_accesses += 1;
        self.view.l1_hits += hit as u64;
        self.view.global_load_transactions += 1;
        self.view.load_transactions_by_tag[tag.index()] += 1;
    }
    fn const_access(&mut self, _cycle: u64, _tag: AccessTag, hit: bool) {
        self.view.const_accesses += 1;
        self.view.const_hits += hit as u64;
    }
    fn l2_access(&mut self, _cycle: u64, hit: bool) {
        self.view.l2_accesses += 1;
        self.view.l2_hits += hit as u64;
    }
    fn dram_access(&mut self, _cycle: u64) {
        self.view.dram_accesses += 1;
    }
    fn store_sectors(&mut self, _cycle: u64, sectors: u64) {
        self.view.global_store_transactions += sectors;
    }
}

/// One bucket of the [`EpochMetricsProbe`] time series: counter deltas
/// over a span of `bucket_cycles` simulated cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsBucket {
    /// Dynamic warp instructions issued (IPC = `instrs / bucket_cycles`).
    pub instrs: u64,
    /// L1 sector probes.
    pub l1_accesses: u64,
    /// L1 sector hits.
    pub l1_hits: u64,
    /// L2 sector probes.
    pub l2_accesses: u64,
    /// L2 sector hits.
    pub l2_hits: u64,
    /// DRAM sector accesses.
    pub dram_accesses: u64,
    /// Stall cycles charged per [`StallCause::index`].
    pub stall_by_cause: [u64; STALL_CAUSES],
}

impl MetricsBucket {
    fn absorb(&mut self, other: &MetricsBucket) {
        self.instrs += other.instrs;
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.dram_accesses += other.dram_accesses;
        for (d, s) in self
            .stall_by_cause
            .iter_mut()
            .zip(other.stall_by_cause.iter())
        {
            *d += *s;
        }
    }

    /// `true` when every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == MetricsBucket::default()
    }
}

/// A bounded time series of [`MetricsBucket`]s indexed by simulated
/// cycle. When the series would exceed its bucket cap, adjacent pairs
/// are coalesced and the bucket width doubles — memory stays bounded
/// for any kernel length while early buckets keep their (coarsened)
/// history, like a streaming histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochSeries {
    bucket_cycles: u64,
    max_buckets: usize,
    buckets: Vec<MetricsBucket>,
}

impl EpochSeries {
    /// A series with `bucket_cycles`-wide buckets, holding at most
    /// `max_buckets` before coarsening. Both are clamped to ≥ 1 (≥ 2
    /// for the cap, so coalescing can always make progress).
    pub fn new(bucket_cycles: u64, max_buckets: usize) -> Self {
        EpochSeries {
            bucket_cycles: bucket_cycles.max(1),
            max_buckets: max_buckets.max(2),
            buckets: Vec::new(),
        }
    }

    /// Current bucket width in cycles (grows by doubling).
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// The buckets, oldest first.
    pub fn buckets(&self) -> &[MetricsBucket] {
        &self.buckets
    }

    fn at(&mut self, cycle: u64) -> &mut MetricsBucket {
        let mut idx = (cycle / self.bucket_cycles) as usize;
        while idx >= self.max_buckets {
            // Coalesce pairs and double the width.
            let halved = self.buckets.len().div_ceil(2);
            for i in 0..halved {
                let mut merged = self.buckets[2 * i];
                if let Some(b) = self.buckets.get(2 * i + 1) {
                    merged.absorb(b);
                }
                self.buckets[i] = merged;
            }
            self.buckets.truncate(halved);
            self.bucket_cycles *= 2;
            idx = (cycle / self.bucket_cycles) as usize;
        }
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, MetricsBucket::default());
        }
        &mut self.buckets[idx]
    }

    /// Folds `other` in. If widths differ, the narrower side is
    /// coarsened to the wider one first, so merging per-SM series with
    /// different coalescing histories is well-defined.
    pub fn merge(&mut self, other: &EpochSeries) {
        let width = self.bucket_cycles.max(other.bucket_cycles);
        self.rescale_to(width);
        let mut rhs = other.clone();
        rhs.rescale_to(width);
        if rhs.buckets.len() > self.buckets.len() {
            self.buckets
                .resize(rhs.buckets.len(), MetricsBucket::default());
        }
        for (d, s) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            d.absorb(s);
        }
    }

    fn rescale_to(&mut self, width: u64) {
        while self.bucket_cycles < width {
            let halved = self.buckets.len().div_ceil(2);
            for i in 0..halved {
                let mut merged = self.buckets[2 * i];
                if let Some(b) = self.buckets.get(2 * i + 1) {
                    merged.absorb(b);
                }
                self.buckets[i] = merged;
            }
            self.buckets.truncate(halved);
            self.bucket_cycles *= 2;
        }
    }
}

/// Records per-bucket [`Stats`] deltas over simulated time — IPC, hit
/// rates and the stall mix as a time series rather than one end-of-run
/// aggregate. One instance per SM; merge with
/// [`EpochSeries::merge`] for a whole-GPU view.
#[derive(Clone, Debug)]
pub struct EpochMetricsProbe {
    series: EpochSeries,
}

/// Default metrics bucket width in cycles.
pub const DEFAULT_METRICS_BUCKET_CYCLES: u64 = 256;

/// Default cap on buckets per SM before coarsening.
pub const DEFAULT_METRICS_MAX_BUCKETS: usize = 512;

impl EpochMetricsProbe {
    /// A probe bucketing at `bucket_cycles` with the default cap.
    pub fn new(bucket_cycles: u64) -> Self {
        EpochMetricsProbe {
            series: EpochSeries::new(bucket_cycles, DEFAULT_METRICS_MAX_BUCKETS),
        }
    }

    /// The recorded series.
    pub fn series(&self) -> &EpochSeries {
        &self.series
    }

    /// Consumes the probe, returning its series.
    pub fn into_series(self) -> EpochSeries {
        self.series
    }
}

impl Probe for EpochMetricsProbe {
    fn issue(&mut self, cycle: u64, _warp: usize, _pc: usize, op: &Op) {
        self.series.at(cycle).instrs += op.dyn_count();
    }
    fn stall(&mut self, _warp: usize, _pc: usize, cause: StallCause, from: u64, until: u64) {
        self.series.at(from).stall_by_cause[cause.index()] += until.saturating_sub(from);
    }
    fn l1_access(&mut self, cycle: u64, _tag: AccessTag, hit: bool) {
        let b = self.series.at(cycle);
        b.l1_accesses += 1;
        b.l1_hits += hit as u64;
    }
    fn l2_access(&mut self, cycle: u64, hit: bool) {
        let b = self.series.at(cycle);
        b.l2_accesses += 1;
        b.l2_hits += hit as u64;
    }
    fn dram_access(&mut self, cycle: u64) {
        self.series.at(cycle).dram_accesses += 1;
    }
}

/// How one simulated epoch was spent on one SM, derived from the
/// phase-A outputs at [`Probe::epoch_end`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochClass {
    /// At least one warp issued this cycle.
    Active,
    /// Nothing issued, but every stalled warp's completion cycle is
    /// known (`min_next != u64::MAX`) — the epoch an event-driven
    /// engine could fast-forward over.
    StalledKnown,
    /// Nothing issued and at least one warp's wake-up is unknown
    /// (waiting on phase-B arbitration still in flight).
    StalledOther,
    /// This SM has no work left while another SM keeps the clock
    /// running.
    Drained,
}

impl EpochClass {
    /// Machine-readable label (audit artifact field name).
    pub fn label(self) -> &'static str {
        match self {
            EpochClass::Active => "active",
            EpochClass::StalledKnown => "stalledKnown",
            EpochClass::StalledOther => "stalledOther",
            EpochClass::Drained => "drained",
        }
    }
}

/// Cap on distinct [`Op::IndirectCall`] targets remembered per call
/// site; beyond it the site sets
/// [`overflowed`](CallSiteStats::overflowed) and is megamorphic by
/// definition.
pub const CALL_SITE_TARGET_CAP: usize = 32;

/// Observed-type-set classification of an indirect-call site, after
/// the inline-cache literature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallSiteClass {
    /// No resolved target was ever observed (all calls carried
    /// [`UNKNOWN_CALL_TARGET`]).
    Unknown,
    /// Exactly one target — a direct-call / speculative
    /// devirtualization candidate.
    Monomorphic,
    /// 2–4 targets — an inline-cache / guarded-dispatch candidate.
    FewTyped,
    /// 5 or more targets (or the target set overflowed its cap).
    Megamorphic,
}

impl CallSiteClass {
    /// Machine-readable label (audit artifact field name).
    pub fn label(self) -> &'static str {
        match self {
            CallSiteClass::Unknown => "unknown",
            CallSiteClass::Monomorphic => "monomorphic",
            CallSiteClass::FewTyped => "fewTyped",
            CallSiteClass::Megamorphic => "megamorphic",
        }
    }
}

/// Per-call-site counters: how many dynamic indirect calls a trace
/// position issued and which callees they resolved to. Sites are keyed
/// by trace position (the engine's `pc`), aggregated across warps and
/// SMs — a positional proxy for the static call site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CallSiteStats {
    /// Dynamic indirect calls observed at this position.
    pub calls: u64,
    /// Calls whose target was [`UNKNOWN_CALL_TARGET`].
    pub unknown_calls: u64,
    /// Distinct resolved targets, capped at [`CALL_SITE_TARGET_CAP`].
    pub targets: BTreeSet<u64>,
    /// `true` once the target set hit its cap and stopped admitting.
    pub overflowed: bool,
}

impl CallSiteStats {
    fn observe(&mut self, target: u64) {
        self.calls += 1;
        if target == UNKNOWN_CALL_TARGET {
            self.unknown_calls += 1;
        } else if !self.targets.contains(&target) {
            if self.targets.len() < CALL_SITE_TARGET_CAP {
                self.targets.insert(target);
            } else {
                self.overflowed = true;
            }
        }
    }

    fn absorb(&mut self, other: &CallSiteStats) {
        self.calls += other.calls;
        self.unknown_calls += other.unknown_calls;
        self.overflowed |= other.overflowed;
        for &t in &other.targets {
            if self.targets.len() < CALL_SITE_TARGET_CAP {
                self.targets.insert(t);
            } else if !self.targets.contains(&t) {
                self.overflowed = true;
            }
        }
    }

    /// The site's observed-type-set class.
    pub fn class(&self) -> CallSiteClass {
        if self.overflowed || self.targets.len() >= 5 {
            CallSiteClass::Megamorphic
        } else {
            match self.targets.len() {
                0 => CallSiteClass::Unknown,
                1 => CallSiteClass::Monomorphic,
                _ => CallSiteClass::FewTyped,
            }
        }
    }
}

/// The deterministic cycle audit of a run: every per-SM epoch-cycle of
/// the simulated timeline classified, a histogram of fast-forwardable
/// gap lengths, and per-call-site type profiles. Wall-clock-free —
/// byte-identical for any host thread count.
///
/// Accounting model: each SM sees the same epoch cycles `c_0 < … <
/// c_n`. Epoch `i < n` covers `[c_i, c_{i+1})`: one cycle in its
/// [`EpochClass`] plus `c_{i+1} − c_i − 1` cycles the engine's global
/// fast-forward already [`skipped`](CycleAuditReport::skipped). The
/// final epoch's coverage `[c_n, cycles)` is the
/// [`tail`](CycleAuditReport::tail). Hence the hard invariant checked
/// by [`reconciles`](CycleAuditReport::reconciles): the six counters
/// sum to `sms × audited_cycles` exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleAuditReport {
    /// SMs audited (constant across the run's kernels).
    pub sms: u64,
    /// Simulated cycles audited: the sum of every launched kernel's
    /// `Stats::cycles` — each SM's timeline is this long.
    pub audited_cycles: u64,
    /// Epoch-cycles where the SM issued at least one instruction.
    pub active: u64,
    /// Epoch-cycles with nothing issued and every wake-up known — the
    /// per-SM fast-forward opportunity.
    pub stalled_known: u64,
    /// Epoch-cycles with nothing issued and some wake-up unknown.
    pub stalled_other: u64,
    /// Epoch-cycles on an SM with no remaining work.
    pub drained: u64,
    /// Cycles the engine's global all-SM fast-forward already skipped
    /// (no epoch was simulated for them).
    pub skipped: u64,
    /// Cycles after each kernel's last simulated epoch (drain window up
    /// to `Stats::cycles`).
    pub tail: u64,
    /// Log₂ histogram of `min_next − cycle` gap lengths over
    /// stalled-known epochs.
    pub gap_hist: LogHist,
    /// Per-trace-position indirect-call-site profiles.
    pub call_sites: BTreeMap<usize, CallSiteStats>,
}

/// Stable JSON member names of the six epoch-cycle classes, in the
/// order [`CycleAuditReport::class_counts`] reports them. Every
/// consumer that serializes, validates, or diffs a cycle-audit
/// `classes` object (manifest emitter, `validate_json`, REPORT.md
/// cross-checks, `rundiff` stall-mix) iterates this list instead of
/// hand-repeating the keys.
pub const CYCLE_CLASS_LABELS: [&str; 6] = [
    "active",
    "stalledKnown",
    "stalledOther",
    "drained",
    "skipped",
    "tail",
];

impl CycleAuditReport {
    /// The six epoch-cycle class counters paired with their stable JSON
    /// labels, in [`CYCLE_CLASS_LABELS`] order — the read-back helper
    /// for serializers and differs.
    pub fn class_counts(&self) -> [(&'static str, u64); 6] {
        [
            (CYCLE_CLASS_LABELS[0], self.active),
            (CYCLE_CLASS_LABELS[1], self.stalled_known),
            (CYCLE_CLASS_LABELS[2], self.stalled_other),
            (CYCLE_CLASS_LABELS[3], self.drained),
            (CYCLE_CLASS_LABELS[4], self.skipped),
            (CYCLE_CLASS_LABELS[5], self.tail),
        ]
    }

    /// Sum of all six epoch-cycle classes.
    pub fn classes_total(&self) -> u64 {
        self.active
            + self.stalled_known
            + self.stalled_other
            + self.drained
            + self.skipped
            + self.tail
    }

    /// The hard invariant: classified cycles cover each SM's timeline
    /// exactly once.
    pub fn reconciles(&self) -> bool {
        self.classes_total() == self.sms * self.audited_cycles
    }

    /// Cycles an event-driven engine could skip outright: stalled with
    /// a known completion, or on a drained SM.
    pub fn skippable_cycles(&self) -> u64 {
        self.stalled_known + self.drained
    }

    /// `skippable / (sms × audited)` — the fraction of per-SM
    /// epoch-cycles that are fast-forwardable; `0.0` when nothing was
    /// audited.
    pub fn skippable_fraction(&self) -> f64 {
        let denom = self.sms * self.audited_cycles;
        if denom == 0 {
            0.0
        } else {
            self.skippable_cycles() as f64 / denom as f64
        }
    }

    /// Amdahl-style upper bound on engine speedup if every skippable
    /// epoch-cycle cost nothing: `1 / (1 − fraction)`.
    pub fn upper_bound_speedup(&self) -> f64 {
        let f = self.skippable_fraction();
        if f >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - f)
        }
    }

    /// Call-site counts by class, in
    /// `(unknown, monomorphic, few-typed, megamorphic)` order.
    pub fn site_class_counts(&self) -> (u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0);
        for s in self.call_sites.values() {
            match s.class() {
                CallSiteClass::Unknown => c.0 += 1,
                CallSiteClass::Monomorphic => c.1 += 1,
                CallSiteClass::FewTyped => c.2 += 1,
                CallSiteClass::Megamorphic => c.3 += 1,
            }
        }
        c
    }
}

/// Per-SM collector behind [`CycleAuditReport`]. Classification is
/// deferred by one epoch: [`Probe::epoch`] at `c_{i+1}` commits epoch
/// `i`'s class and the skipped gap, and the kernel's trailing epoch is
/// folded into the report tail by `ObsReport::absorb`, which knows the
/// kernel's final cycle count.
#[derive(Clone, Debug, Default)]
pub struct CycleAuditProbe {
    pending: Option<(u64, EpochClass)>,
    active: u64,
    stalled_known: u64,
    stalled_other: u64,
    drained: u64,
    skipped: u64,
    gap_hist: LogHist,
    sites: BTreeMap<usize, CallSiteStats>,
}

impl CycleAuditProbe {
    /// A fresh, zeroed audit collector.
    pub fn new() -> Self {
        CycleAuditProbe::default()
    }

    fn commit(&mut self, class: EpochClass) {
        match class {
            EpochClass::Active => self.active += 1,
            EpochClass::StalledKnown => self.stalled_known += 1,
            EpochClass::StalledOther => self.stalled_other += 1,
            EpochClass::Drained => self.drained += 1,
        }
    }

    /// Folds this SM's audit into `report`, closing the books at
    /// `kernel_cycles` (the launch's `Stats::cycles`): the last epoch's
    /// coverage becomes tail, and this SM's timeline accounts for
    /// exactly `kernel_cycles` cycles.
    pub fn finalize_into(mut self, kernel_cycles: u64, report: &mut CycleAuditReport) {
        let tail = match self.pending.take() {
            Some((last_cycle, _)) => kernel_cycles.saturating_sub(last_cycle),
            None => kernel_cycles,
        };
        report.active += self.active;
        report.stalled_known += self.stalled_known;
        report.stalled_other += self.stalled_other;
        report.drained += self.drained;
        report.skipped += self.skipped;
        report.tail += tail;
        report.gap_hist.merge(&self.gap_hist);
        for (pc, s) in &self.sites {
            report.call_sites.entry(*pc).or_default().absorb(s);
        }
    }
}

impl Probe for CycleAuditProbe {
    fn epoch(&mut self, cycle: u64) {
        if let Some((prev, class)) = self.pending.take() {
            self.commit(class);
            self.skipped += cycle.saturating_sub(prev + 1);
        }
    }

    fn epoch_end(&mut self, cycle: u64, live: bool, issued: bool, min_next: u64) {
        let class = if issued {
            EpochClass::Active
        } else if !live {
            EpochClass::Drained
        } else if min_next != u64::MAX {
            self.gap_hist.record(min_next.saturating_sub(cycle));
            EpochClass::StalledKnown
        } else {
            EpochClass::StalledOther
        };
        self.pending = Some((cycle, class));
    }

    fn issue(&mut self, _cycle: u64, _warp: usize, pc: usize, op: &Op) {
        if let Op::IndirectCall { target } = op {
            self.sites.entry(pc).or_default().observe(*target);
        }
    }
}

/// What a [`crate::Gpu`] run should record. `OFF` (the default) keeps
/// the engine on the [`NopProbe`] fast path; any enabled field routes
/// execution through [`recording_probe`].
///
/// Lives in the simulator so workload configuration can carry it
/// without the harness depending on probe internals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeSpec {
    /// Timeline event cap per SM per kernel (`0` = no timeline).
    pub timeline_events_per_sm: usize,
    /// Metrics bucket width in cycles (`0` = no metrics series).
    pub metrics_bucket_cycles: u64,
    /// Record per-PC / cache-line / reuse attribution evidence
    /// (see [`crate::attrib`]).
    pub attribution: bool,
    /// Record the deterministic cycle audit (epoch classification,
    /// fast-forward gaps, call-site type profiles).
    pub cycle_audit: bool,
}

impl ProbeSpec {
    /// Record nothing (the zero-overhead default).
    pub const OFF: ProbeSpec = ProbeSpec {
        timeline_events_per_sm: 0,
        metrics_bucket_cycles: 0,
        attribution: false,
        cycle_audit: false,
    };

    /// `true` when no probe is requested.
    pub fn is_off(&self) -> bool {
        *self == ProbeSpec::OFF
    }
}

/// The concrete probe stack built from a [`ProbeSpec`]: an optional
/// timeline, an optional metrics series, an optional attribution
/// collector and an optional cycle audit, composed through the
/// `Option` / tuple [`Probe`] impls.
pub type RecordingProbe = (
    Option<TimelineProbe>,
    (
        Option<EpochMetricsProbe>,
        (Option<AttributionProbe>, Option<CycleAuditProbe>),
    ),
);

/// Builds the [`RecordingProbe`] for SM `sm` according to `spec`.
pub fn recording_probe(sm: usize, spec: ProbeSpec) -> RecordingProbe {
    let timeline = (spec.timeline_events_per_sm > 0)
        .then(|| TimelineProbe::new(sm, spec.timeline_events_per_sm));
    let metrics = (spec.metrics_bucket_cycles > 0)
        .then(|| EpochMetricsProbe::new(spec.metrics_bucket_cycles));
    let attrib = spec.attribution.then(AttributionProbe::new);
    let audit = spec.cycle_audit.then(CycleAuditProbe::new);
    (timeline, (metrics, (attrib, audit)))
}

/// Observability artifacts accumulated over one or more kernel
/// launches: a flattened timeline (timestamps offset so launches read
/// as one continuous run) and one merged metrics series per kernel.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Timeline events across all launches, absolute timestamps.
    pub events: Vec<TraceEvent>,
    /// Events discarded by the per-SM buffer caps.
    pub events_dropped: u64,
    /// One whole-GPU metrics series per kernel launch.
    pub kernel_series: Vec<EpochSeries>,
    /// Merged attribution evidence across all SMs and launches, when
    /// attribution was requested.
    pub attribution: Option<AttribReport>,
    /// Merged cycle audit across all SMs and launches, when the audit
    /// was requested.
    pub audit: Option<CycleAuditReport>,
}

impl ObsReport {
    /// Folds the per-SM probes of one kernel launch in. `cycle_base` is
    /// the cumulative simulated-cycle offset of this launch (the sum of
    /// all previous launches' cycles), applied to timeline timestamps;
    /// `kernel_cycles` is this launch's own `Stats::cycles`, which
    /// closes the cycle audit's books (tail accounting). Probes arrive
    /// in ascending-SM order from both engine paths, so every merge
    /// below is order-deterministic.
    pub fn absorb(&mut self, cycle_base: u64, kernel_cycles: u64, probes: Vec<RecordingProbe>) {
        let mut merged: Option<EpochSeries> = None;
        let mut audit_sms: u64 = 0;
        for (timeline, (metrics, (attrib, audit))) in probes {
            if let Some(t) = timeline {
                self.events_dropped += t.dropped();
                self.events.extend(t.into_events().into_iter().map(|mut e| {
                    e.start += cycle_base;
                    e
                }));
            }
            if let Some(m) = metrics {
                match &mut merged {
                    Some(acc) => acc.merge(m.series()),
                    None => merged = Some(m.into_series()),
                }
            }
            if let Some(a) = attrib {
                match &mut self.attribution {
                    Some(acc) => acc.merge(a.report()),
                    None => self.attribution = Some(a.into_report()),
                }
            }
            if let Some(a) = audit {
                let acc = self.audit.get_or_insert_with(CycleAuditReport::default);
                a.finalize_into(kernel_cycles, acc);
                audit_sms += 1;
            }
        }
        if audit_sms > 0 {
            let acc = self.audit.as_mut().expect("audit report exists");
            // One kernel's worth of timeline per SM; the SM count is
            // constant across launches on the same GPU.
            acc.sms = audit_sms;
            acc.audited_cycles += kernel_cycles;
        }
        if let Some(series) = merged {
            self.kernel_series.push(series);
        }
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.kernel_series.is_empty()
            && self.events_dropped == 0
            && self.attribution.is_none()
            && self.audit.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_cause_indices_cover_stats_slots() {
        let mut seen = std::collections::HashSet::new();
        for c in StallCause::all() {
            assert!(c.index() < STALL_CAUSES);
            assert!(seen.insert(c.index()));
        }
        assert_eq!(seen.len(), STALL_CAUSES);
        assert_eq!(StallCause::IndirectCall.index(), STALL_INDIRECT_CALL);
    }

    #[test]
    fn counting_probe_accumulates() {
        let mut p = CountingProbe::new();
        p.l1_access(0, AccessTag::VtablePtr, false);
        p.l1_access(1, AccessTag::VtablePtr, true);
        p.stall(0, 0, StallCause::Access(AccessTag::VtablePtr), 10, 25);
        p.store_sectors(2, 4);
        let v = p.view();
        assert_eq!(v.l1_accesses, 2);
        assert_eq!(v.l1_hits, 1);
        assert_eq!(v.global_load_transactions, 2);
        assert_eq!(v.load_transactions_by_tag[AccessTag::VtablePtr.index()], 2);
        assert_eq!(v.stall_by_tag[AccessTag::VtablePtr.index()], 15);
        assert_eq!(v.global_store_transactions, 4);
    }

    #[test]
    fn epoch_series_coarsens_under_cap() {
        let mut s = EpochSeries::new(1, 4);
        for cycle in 0..64 {
            s.at(cycle).instrs += 1;
        }
        assert!(s.buckets().len() <= 4);
        assert!(s.bucket_cycles() >= 16);
        let total: u64 = s.buckets().iter().map(|b| b.instrs).sum();
        assert_eq!(total, 64, "coarsening must not lose counts");
    }

    #[test]
    fn epoch_series_merges_mismatched_widths() {
        let mut a = EpochSeries::new(1, 4);
        for cycle in 0..40 {
            a.at(cycle).instrs += 2;
        }
        let mut b = EpochSeries::new(1, 1024);
        b.at(0).instrs = 5;
        a.merge(&b);
        let total: u64 = a.buckets().iter().map(|x| x.instrs).sum();
        assert_eq!(total, 85);
    }

    #[test]
    fn probe_spec_off_by_default() {
        assert!(ProbeSpec::default().is_off());
        let (t, (m, (a, au))) = recording_probe(0, ProbeSpec::OFF);
        assert!(t.is_none() && m.is_none() && a.is_none() && au.is_none());
        let (t, (m, (a, au))) = recording_probe(
            1,
            ProbeSpec {
                timeline_events_per_sm: 8,
                metrics_bucket_cycles: 16,
                attribution: true,
                cycle_audit: true,
            },
        );
        assert!(t.is_some() && m.is_some() && a.is_some() && au.is_some());
    }

    #[test]
    fn cycle_audit_accounting_covers_the_timeline() {
        // Hand-drive the hook sequence of one SM: epochs at cycles
        // 0 (issued), 1 (stalled, wake known at 5), 5 (issued),
        // 6 (drained), with the kernel finishing at cycle 10.
        let mut p = CycleAuditProbe::new();
        p.epoch(0);
        p.epoch_end(0, true, true, u64::MAX);
        p.epoch(1);
        p.epoch_end(1, true, false, 5);
        p.epoch(5);
        p.epoch_end(5, true, true, u64::MAX);
        p.epoch(6);
        p.epoch_end(6, false, false, u64::MAX);
        let mut r = CycleAuditReport::default();
        p.finalize_into(10, &mut r);
        r.sms = 1;
        r.audited_cycles = 10;
        assert_eq!(r.active, 2);
        assert_eq!(r.stalled_known, 1);
        assert_eq!(r.stalled_other, 0);
        // Epoch at 6 is the last: its class is never committed; its
        // coverage [6, 10) is the tail.
        assert_eq!(r.drained, 0);
        assert_eq!(r.skipped, 3, "cycles 2,3,4 were globally fast-forwarded");
        assert_eq!(r.tail, 4);
        assert!(r.reconciles());
        assert_eq!(r.skippable_cycles(), 1);
        assert_eq!(r.gap_hist.total(), 1);
    }

    #[test]
    fn cycle_audit_empty_probe_is_all_tail() {
        let p = CycleAuditProbe::new();
        let mut r = CycleAuditReport::default();
        p.finalize_into(7, &mut r);
        r.sms = 1;
        r.audited_cycles = 7;
        assert_eq!(r.tail, 7);
        assert!(r.reconciles());
        // And the zero-kernel case sums to zero.
        let z = CycleAuditReport::default();
        assert!(z.reconciles());
        assert_eq!(z.skippable_fraction(), 0.0);
    }

    #[test]
    fn call_sites_classify_by_observed_targets() {
        let mut p = CycleAuditProbe::new();
        let call = |t: u64| Op::IndirectCall { target: t };
        p.issue(0, 0, 3, &call(1));
        p.issue(0, 0, 3, &call(1));
        p.issue(0, 1, 4, &call(1));
        p.issue(0, 1, 4, &call(2));
        for t in 0..6 {
            p.issue(0, 2, 5, &call(t));
        }
        p.issue(0, 3, 6, &call(UNKNOWN_CALL_TARGET));
        let mut r = CycleAuditReport::default();
        p.finalize_into(0, &mut r);
        assert_eq!(r.call_sites[&3].class(), CallSiteClass::Monomorphic);
        assert_eq!(r.call_sites[&4].class(), CallSiteClass::FewTyped);
        assert_eq!(r.call_sites[&5].class(), CallSiteClass::Megamorphic);
        assert_eq!(r.call_sites[&6].class(), CallSiteClass::Unknown);
        assert_eq!(r.call_sites[&6].unknown_calls, 1);
        assert_eq!(r.site_class_counts(), (1, 1, 1, 1));
    }

    #[test]
    fn call_site_target_cap_overflows_to_megamorphic() {
        let mut s = CallSiteStats::default();
        for t in 0..(CALL_SITE_TARGET_CAP as u64 + 3) {
            s.observe(t);
        }
        assert!(s.overflowed);
        assert_eq!(s.targets.len(), CALL_SITE_TARGET_CAP);
        assert_eq!(s.class(), CallSiteClass::Megamorphic);
        assert_eq!(s.calls, CALL_SITE_TARGET_CAP as u64 + 3);
    }

    #[test]
    fn option_and_tuple_probes_forward() {
        let mut p: (Option<CountingProbe>, Option<CountingProbe>) =
            (Some(CountingProbe::new()), None);
        p.dram_access(3);
        p.l2_access(3, true);
        assert_eq!(p.0.as_ref().unwrap().view().dram_accesses, 1);
        assert_eq!(p.0.as_ref().unwrap().view().l2_hits, 1);
    }
}
