//! Bounded per-SM event timelines and their Chrome trace-event export.
//!
//! [`TimelineProbe`] records one [`TraceEvent`] per stall interval /
//! warp retirement into a fixed-capacity buffer (overflow is counted,
//! never reallocated), and [`write_chrome_trace`] serializes a set of
//! events as Chrome trace-event JSON — the format consumed by
//! `chrome://tracing` and <https://ui.perfetto.dev>. The convention is
//! one simulated cycle = one microsecond of trace time, `pid` = SM id,
//! `tid` = warp id, so Perfetto's track grouping reproduces the SM/warp
//! hierarchy directly.
//!
//! Schema: `gvf.timeline` version 1 (see DESIGN.md "Observability" for
//! the versioning policy).

use crate::instr::Op;
use crate::probe::{Probe, StallCause};
use std::io::{self, Write};

/// Trace schema identifier embedded in exported files.
pub const TIMELINE_SCHEMA: &str = "gvf.timeline";
/// Trace schema version; bump on any breaking field change.
pub const TIMELINE_SCHEMA_VERSION: u32 = 1;

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A stall interval charged to a cause (duration event, ph `X`).
    Stall(StallCause),
    /// A warp retired (instant event, ph `i`).
    Retire,
}

/// One timeline event, in simulated cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Owning SM (trace `pid`).
    pub sm: usize,
    /// Warp id within the kernel (trace `tid`).
    pub warp: usize,
    /// Trace position (op index) the event is attributed to.
    pub pc: usize,
    /// Event class and attribution.
    pub kind: TraceEventKind,
    /// Start cycle (trace `ts`, 1 cycle ≡ 1 µs).
    pub start: u64,
    /// Duration in cycles (0 for instants).
    pub dur: u64,
}

/// Records stall and retirement events for one SM into a bounded
/// buffer. The capacity is fixed at construction; events beyond it are
/// dropped and counted, so a pathological kernel can never balloon the
/// host's memory. Per-SM instances keep recording deterministic under
/// the parallel engine (see [`crate::probe`] module docs).
#[derive(Clone, Debug)]
pub struct TimelineProbe {
    sm: usize,
    cap: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TimelineProbe {
    /// A probe for SM `sm` holding at most `cap` events.
    pub fn new(sm: usize, cap: usize) -> Self {
        TimelineProbe {
            sm,
            cap,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the probe, returning its event buffer.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

impl Probe for TimelineProbe {
    fn stall(&mut self, warp: usize, pc: usize, cause: StallCause, from: u64, until: u64) {
        self.push(TraceEvent {
            sm: self.sm,
            warp,
            pc,
            kind: TraceEventKind::Stall(cause),
            start: from,
            dur: until.saturating_sub(from),
        });
    }

    fn warp_retire(&mut self, cycle: u64, warp: usize) {
        self.push(TraceEvent {
            sm: self.sm,
            warp,
            pc: 0,
            kind: TraceEventKind::Retire,
            start: cycle,
            dur: 0,
        });
    }

    fn issue(&mut self, _cycle: u64, _warp: usize, _pc: usize, _op: &Op) {}
}

/// Writes `events` as a Chrome trace-event JSON object (the
/// `{"traceEvents": [...]}` form, with schema metadata in `otherData`).
/// `dropped` is the count of events lost to buffer caps, recorded in
/// the metadata so truncation is visible rather than silent.
pub fn write_chrome_trace<W: Write>(
    w: &mut W,
    events: &[TraceEvent],
    dropped: u64,
) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"displayTimeUnit\": \"ms\",")?;
    writeln!(
        w,
        "  \"otherData\": {{\"schema\": \"{TIMELINE_SCHEMA}\", \"version\": {TIMELINE_SCHEMA_VERSION}, \"cycles_per_us\": 1, \"dropped_events\": {dropped}}},"
    )?;
    writeln!(w, "  \"traceEvents\": [")?;
    for (i, ev) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        match ev.kind {
            TraceEventKind::Stall(cause) => {
                let name = cause.label();
                writeln!(
                    w,
                    "    {{\"name\": \"{name}\", \"cat\": \"stall\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{\"pc\": {}, \"cause\": \"{name}\"}}}}{sep}",
                    ev.start, ev.dur, ev.sm, ev.warp, ev.pc
                )?;
            }
            TraceEventKind::Retire => {
                writeln!(
                    w,
                    "    {{\"name\": \"retire\", \"cat\": \"warp\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{}}}}{sep}",
                    ev.start, ev.sm, ev.warp
                )?;
            }
        }
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::AccessTag;

    #[test]
    fn bounded_buffer_counts_drops() {
        let mut p = TimelineProbe::new(0, 2);
        for i in 0..5u64 {
            p.stall(1, 3, StallCause::IndirectCall, i, i + 4);
        }
        assert_eq!(p.events().len(), 2);
        assert_eq!(p.dropped(), 3);
        assert_eq!(p.events()[0].dur, 4);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let mut p = TimelineProbe::new(2, 16);
        p.stall(7, 12, StallCause::Access(AccessTag::VtablePtr), 100, 180);
        p.warp_retire(200, 7);
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, p.events(), p.dropped()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"vtable-ptr\""));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"pid\": 2"));
        assert!(text.contains("\"tid\": 7"));
        assert!(text.contains("\"ts\": 100"));
        assert!(text.contains("\"dur\": 80"));
        assert!(text.contains("\"ph\": \"i\""));
        // Balanced braces/brackets — cheap structural sanity before the
        // real parser round-trip test in gvf-bench.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }
}
