//! Set-associative, sectored cache model.
//!
//! Volta caches use 128-byte lines split into four 32-byte sectors: a tag
//! match with a missing sector is a *sector miss* that fills only 32 bytes.
//! Both L1 and L2 are modelled this way; the coalescer in
//! [`engine`](crate::Gpu) already works at sector granularity, so the
//! cache is probed once per transaction.

/// Result of a cache probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheProbe {
    /// Tag and sector present.
    Hit,
    /// Tag present but sector absent (32-byte fill).
    SectorMiss,
    /// Tag absent (line allocation + 32-byte fill).
    LineMiss,
}

impl CacheProbe {
    /// Whether the probe found the requested data.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheProbe::Hit)
    }
}

#[derive(Clone, Debug)]
struct Line {
    tag: u64,
    valid_sectors: u8,
    last_used: u64,
}

/// A sectored, set-associative cache with LRU replacement.
///
/// Storage is one flat set-major array (`set * ways + way`) with an
/// explicit per-set occupancy count rather than a `Vec` per set: the
/// engine probes the L1 on every coalesced sector, and a flat array
/// keeps those probes on one cache line per set with zero pointer
/// chasing.
#[derive(Clone, Debug)]
pub struct SectoredCache {
    lines: Vec<Line>,
    /// Number of valid ways per set; ways `0..occ[set]` are occupied,
    /// in insertion order (eviction replaces in place, preserving it).
    occ: Vec<u8>,
    ways: usize,
    line_bytes: u64,
    sector_bytes: u64,
    set_count: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SectoredCache {
    /// Builds a cache of `total_bytes` with `ways`-way associativity,
    /// `line_bytes` lines and `sector_bytes` sectors.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly or is zero-sized.
    pub fn new(total_bytes: u64, ways: u32, line_bytes: u64, sector_bytes: u64) -> Self {
        assert!(total_bytes > 0 && ways > 0 && line_bytes > 0 && sector_bytes > 0);
        assert_eq!(line_bytes % sector_bytes, 0);
        assert_eq!(
            total_bytes % line_bytes,
            0,
            "cache size must be a whole number of lines"
        );
        let lines = total_bytes / line_bytes;
        assert!(lines >= ways as u64, "cache smaller than one set");
        assert_eq!(
            lines % ways as u64,
            0,
            "cache lines must divide evenly into {ways}-way sets"
        );
        assert!(
            ways <= u8::MAX as u32,
            "per-set occupancy is tracked in a u8"
        );
        let set_count = lines / ways as u64;
        SectoredCache {
            lines: vec![
                Line {
                    tag: 0,
                    valid_sectors: 0,
                    last_used: 0,
                };
                lines as usize
            ],
            occ: vec![0; set_count as usize],
            ways: ways as usize,
            line_bytes,
            sector_bytes,
            set_count,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64, u8) {
        let line_addr = addr / self.line_bytes;
        let set = (line_addr % self.set_count) as usize;
        let tag = line_addr / self.set_count;
        let sector = ((addr % self.line_bytes) / self.sector_bytes) as u8;
        (set, tag, sector)
    }

    /// Probes (and fills on miss) the sector containing `addr`.
    pub fn access(&mut self, addr: u64) -> CacheProbe {
        self.tick += 1;
        let (set_idx, tag, sector) = self.locate(addr);
        let tick = self.tick;
        let base = set_idx * self.ways;
        let occ = self.occ[set_idx] as usize;
        let sector_bit = 1u8 << sector;

        if let Some(line) = self.lines[base..base + occ]
            .iter_mut()
            .find(|l| l.tag == tag)
        {
            line.last_used = tick;
            if line.valid_sectors & sector_bit != 0 {
                self.hits += 1;
                return CacheProbe::Hit;
            }
            line.valid_sectors |= sector_bit;
            self.misses += 1;
            return CacheProbe::SectorMiss;
        }

        self.misses += 1;
        self.fill_line(set_idx, tag, sector_bit, tick);
        CacheProbe::LineMiss
    }

    /// Batched sector probe: exactly equivalent to calling
    /// [`access`](Self::access) once per set bit of `sector_mask`, in
    /// ascending bit order, on the corresponding sectors of the line
    /// containing `line_base` (any byte address inside the line) — but
    /// with one tag search and one replacement decision instead of one
    /// per sector. Returns the hit mask: bit `k` set iff sector `k`'s
    /// probe was a [`CacheProbe::Hit`].
    ///
    /// The equivalence holds because the batch's sectors are distinct:
    /// a line already resident gives `valid_sectors & sector_mask` hits
    /// and fills the rest; an absent line takes all-miss, with the
    /// first sector allocating (empty way, else LRU victim chosen
    /// before any of the batch's `last_used` bumps — identical to the
    /// sequential victim) and the rest sector-filling the new line.
    /// `tick`, `hits`, `misses` and the final `last_used` advance by
    /// the same amounts as the sequential calls.
    pub fn access_sectors(&mut self, line_base: u64, sector_mask: u8) -> u8 {
        debug_assert!(sector_mask != 0, "empty sector batch");
        debug_assert!(
            self.line_bytes / self.sector_bytes <= 8,
            "sector mask wider than u8"
        );
        let nbits = sector_mask.count_ones() as u64;
        self.tick += nbits;
        let (set_idx, tag, _) = self.locate(line_base);
        let tick = self.tick;
        let base = set_idx * self.ways;
        let occ = self.occ[set_idx] as usize;

        if let Some(line) = self.lines[base..base + occ]
            .iter_mut()
            .find(|l| l.tag == tag)
        {
            line.last_used = tick;
            let hit_mask = line.valid_sectors & sector_mask;
            line.valid_sectors |= sector_mask;
            let h = hit_mask.count_ones() as u64;
            self.hits += h;
            self.misses += nbits - h;
            return hit_mask;
        }

        self.misses += nbits;
        self.fill_line(set_idx, tag, sector_mask, tick);
        0
    }

    /// Allocates a line in `set_idx`: the first empty way if any,
    /// otherwise the LRU victim.
    #[inline]
    fn fill_line(&mut self, set_idx: usize, tag: u64, valid_sectors: u8, tick: u64) {
        let base = set_idx * self.ways;
        let occ = self.occ[set_idx] as usize;
        let slot = if occ < self.ways {
            self.occ[set_idx] = (occ + 1) as u8;
            &mut self.lines[base + occ]
        } else {
            self.lines[base..base + occ]
                .iter_mut()
                .min_by_key(|l| l.last_used)
                .expect("non-empty set")
        };
        slot.tag = tag;
        slot.valid_sectors = valid_sectors;
        slot.last_used = tick;
    }

    /// Probes without filling (used for stores in a write-through,
    /// no-write-allocate L1).
    pub fn probe_only(&mut self, addr: u64) -> CacheProbe {
        let (set_idx, tag, sector) = self.locate(addr);
        let base = set_idx * self.ways;
        let occ = self.occ[set_idx] as usize;
        let sector_bit = 1u8 << sector;
        match self.lines[base..base + occ].iter().find(|l| l.tag == tag) {
            Some(line) if line.valid_sectors & sector_bit != 0 => CacheProbe::Hit,
            Some(_) => CacheProbe::SectorMiss,
            None => CacheProbe::LineMiss,
        }
    }

    /// Invalidates everything (kernel boundary).
    pub fn flush(&mut self) {
        self.occ.fill(0);
    }

    /// Demand accesses that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand accesses that missed (line or sector).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; `0` when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears the hit/miss counters but keeps contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of sets (attribution indexes per-set evidence by this).
    pub fn set_count(&self) -> usize {
        self.set_count as usize
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// The set `addr` maps to and its line address (`addr /
    /// line_bytes`) — the same mapping [`access`](Self::access) uses,
    /// exposed so probes can attribute transactions without mutating
    /// the cache.
    pub fn set_of(&self, addr: u64) -> (usize, u64) {
        let (set, _, _) = self.locate(addr);
        (set, addr / self.line_bytes)
    }

    /// Valid sectors currently resident per set — an occupancy
    /// snapshot, one count per set in index order.
    pub fn per_set_valid_sectors(&self) -> Vec<u32> {
        (0..self.set_count as usize)
            .map(|s| {
                let base = s * self.ways;
                self.lines[base..base + self.occ[s] as usize]
                    .iter()
                    .map(|l| l.valid_sectors.count_ones())
                    .sum::<u32>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SectoredCache {
        // 2 sets x 2 ways x 128B lines = 512B.
        SectoredCache::new(512, 2, 128, 32)
    }

    #[test]
    #[should_panic(expected = "whole number of lines")]
    fn ragged_total_bytes_panics() {
        // 600B is not a whole number of 128B lines; the old code silently
        // truncated it to 4 lines.
        SectoredCache::new(600, 2, 128, 32);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn ragged_set_geometry_panics() {
        // 5 lines across 2 ways is not a whole number of sets; the old
        // code silently truncated to 2 sets (dropping a line).
        SectoredCache::new(640, 2, 128, 32);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x100), CacheProbe::LineMiss);
        assert_eq!(c.access(0x100), CacheProbe::Hit);
        assert_eq!(c.access(0x104), CacheProbe::Hit); // same sector
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn sector_miss_within_resident_line() {
        let mut c = tiny();
        assert_eq!(c.access(0x100), CacheProbe::LineMiss);
        assert_eq!(c.access(0x120), CacheProbe::SectorMiss); // sector 1 of same line
        assert_eq!(c.access(0x120), CacheProbe::Hit);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Set index = (addr/128) % 2. Lines 0, 2, 4 all map to set 0.
        let (line0, line2, line4) = (0u64, 2 * 128, 4 * 128);
        c.access(line0);
        c.access(line2);
        c.access(line0); // refresh line 0
        c.access(line4); // evicts line 2 (LRU)
        assert_eq!(c.access(line0), CacheProbe::Hit);
        assert_eq!(c.access(line2), CacheProbe::LineMiss);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x100);
        c.flush();
        assert_eq!(c.access(0x100), CacheProbe::LineMiss);
    }

    #[test]
    fn probe_only_does_not_fill() {
        let mut c = tiny();
        assert_eq!(c.probe_only(0x100), CacheProbe::LineMiss);
        assert_eq!(c.probe_only(0x100), CacheProbe::LineMiss);
        c.access(0x100);
        assert_eq!(c.probe_only(0x100), CacheProbe::Hit);
        assert_eq!(c.probe_only(0x120), CacheProbe::SectorMiss);
    }

    #[test]
    fn introspection_matches_geometry() {
        let mut c = tiny();
        assert_eq!(c.set_count(), 2);
        assert_eq!(c.line_bytes(), 128);
        assert_eq!(c.set_of(0x100), (0, 2)); // line 2 -> set 0
        assert_eq!(c.set_of(0x1a0), (1, 3)); // line 3 -> set 1
        assert_eq!(c.per_set_valid_sectors(), vec![0, 0]);
        c.access(0x100); // one sector in set 0
        c.access(0x120); // second sector, same line
        c.access(0x180); // one sector in set 1
        assert_eq!(c.per_set_valid_sectors(), vec![2, 1]);
        c.flush();
        assert_eq!(c.per_set_valid_sectors(), vec![0, 0]);
    }

    #[test]
    fn access_sectors_matches_sequential_access() {
        // Drive two identical caches through the same line/mask
        // sequence — one batched, one sector-by-sector — and require
        // identical hit decisions, counters and subsequent behavior
        // (i.e. identical LRU state). The xorshift sequence covers
        // resident lines, sector misses, empty-way fills and LRU
        // evictions across both sets.
        let mut batched = tiny();
        let mut seq = tiny();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 16; // 16 lines over 2 sets of 2 ways: heavy conflict
            let mask = ((x >> 8) % 15 + 1) as u8; // 4 sectors per line, never empty
            let line_base = line * 128;
            let batch_hits = batched.access_sectors(line_base, mask);
            let mut seq_hits = 0u8;
            for sector in 0..4 {
                if mask & (1 << sector) != 0 && seq.access(line_base + sector * 32).is_hit() {
                    seq_hits |= 1 << sector;
                }
            }
            assert_eq!(batch_hits, seq_hits, "hit mask diverged");
            assert_eq!(batched.hits(), seq.hits());
            assert_eq!(batched.misses(), seq.misses());
        }
        assert_eq!(batched.per_set_valid_sectors(), seq.per_set_valid_sectors());
    }

    #[test]
    fn access_sectors_single_bit_matches_access_probe() {
        let mut c = tiny();
        assert_eq!(c.access_sectors(0x100, 0b01), 0); // line miss
        assert_eq!(c.access_sectors(0x100, 0b01), 0b01); // hit
        assert_eq!(c.access_sectors(0x100, 0b10), 0); // sector miss
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0x0);
        c.access(0x0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }
}
